#!/usr/bin/env python3
"""A DeFi trading day: tokens, AMM swaps, and an NFT sale in one block.

Walks the full three-stage node pipeline the paper describes (Fig. 4):

1. **Dissemination** — users broadcast approvals, swaps on both routers,
   stablecoin transfers and a marketplace purchase.
2. **Consensus** — the proposer packages them with the dependency DAG.
3. **Execution** — a validator replays the block on a hotspot-optimized
   4-PU MTPU and reports throughput at the paper's 300 MHz clock.

Run:  python examples/token_exchange_block.py
"""

import random

from repro import build_deployment
from repro.chain.node import Node
from repro.chain.receipt import receipts_root
from repro.contracts import registry
from repro.core.hotspot import HotspotOptimizer
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import run_sequential, run_spatial_temporal
from repro.evm import abi
from repro.workload import ActionLibrary, all_entry_function_calls

CLOCK_HZ = 300_000_000  # the paper's synthesis point
BLOCK_INTERVAL_S = 13.0


def build_trading_block(node: Node, deployment, rng) -> None:
    """Disseminate a realistic mix of DeFi transactions."""
    library = ActionLibrary(deployment, rng)
    accounts = deployment.accounts

    # A burst of stablecoin transfers (the redundant hotspot traffic).
    for _ in range(20):
        node.hear(library.to_transaction(library.plan("TetherToken")))
        node.hear(library.to_transaction(library.plan("Dai")))

    # Swappers hit both routers.
    for _ in range(8):
        node.hear(library.to_transaction(
            library.plan("UniswapV2Router02")))
        node.hear(library.to_transaction(library.plan("SwapRouter")))

    # One collector buys an NFT; a whale bridges funds out.
    node.hear(library.to_transaction(library.plan("OpenSea")))
    node.hear(library.to_transaction(
        library.plan("MainchainGatewayProxy")))

    # And someone wraps ether by hand (raw transaction construction).
    from repro.chain import Transaction

    whale = accounts[0]
    node.hear(Transaction(
        sender=whale, to=registry.WETH, value=10**9,
        data=abi.encode_call("deposit()"), gas_limit=200_000,
        tags={"contract": "WETH9", "signature": "deposit()",
              "is_erc20": True},
    ))


def main() -> None:
    rng = random.Random(2023)
    deployment = build_deployment()
    node = Node(state=deployment.state.copy())

    print("== dissemination ==")
    build_trading_block(node, deployment, rng)
    print(f"mempool: {len(node.mempool)} transactions")

    print("\n== consensus ==")
    block = node.propose_block()
    print(f"block #{block.header.height}: {len(block.transactions)} txs, "
          f"{len(block.dag_edges)} DAG edges "
          f"(dependency ratio "
          f"{len({j for _, j in block.dag_edges}) / len(block.transactions):.0%})")

    print("\n== execution (validator with a 4-PU MTPU) ==")
    # The idle slice before the block arrives: optimize the hotspots.
    optimizer = HotspotOptimizer(deployment.state)
    for name in ("TetherToken", "Dai", "UniswapV2Router02"):
        samples = all_entry_function_calls(deployment, name, seed=1)
        optimizer.optimize_contract(deployment.address_of(name), samples)
    print(f"hotspot contract table: {len(optimizer.contract_table)} "
          "(contract, function) profiles")

    baseline = run_sequential(
        MTPUExecutor(deployment.state.copy(), num_pus=1,
                     pu_config=PUConfig(enable_db_cache=False,
                                        redundancy_reuse=False)),
        block.transactions,
    )
    accelerated = run_spatial_temporal(
        MTPUExecutor(deployment.state.copy(), num_pus=4,
                     pu_config=PUConfig(), hotspot_optimizer=optimizer),
        block.transactions, block.dag_edges,
    )

    # The unaccelerated node's own execution defines correctness.
    reference = node.execute_block(block)
    assert receipts_root(
        accelerated.receipts_in_block_order(block.transactions)
    ) == receipts_root(reference), "validator diverged!"

    success = sum(1 for r in reference if r.success)
    print(f"receipts: {success}/{len(reference)} succeeded, "
          f"{sum(len(r.logs) for r in reference)} events")

    speedup = baseline.makespan_cycles / accelerated.makespan_cycles
    for label, cycles in (("plain sequential core",
                           baseline.makespan_cycles),
                          ("MTPU (full co-design)",
                           accelerated.makespan_cycles)):
        seconds = cycles / CLOCK_HZ
        tps = len(block.transactions) / BLOCK_INTERVAL_S
        capacity = len(block.transactions) * (
            BLOCK_INTERVAL_S * 0.05 / seconds
        )
        print(f"  {label:22s}: {cycles:>8} cycles = {1e6 * seconds:.0f}us"
              f" -> ~{capacity / BLOCK_INTERVAL_S:,.0f} TPS sustainable")
    print(f"\nco-design speedup: {speedup:.2f}x "
          "(more transactions per block at the same interval)")


if __name__ == "__main__":
    main()
