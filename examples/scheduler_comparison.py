#!/usr/bin/env python3
"""Scheduler shoot-out across the dependency spectrum.

Reproduces the paper's Figs. 14-16 story interactively: sweeps the
dependency ratio, runs every scheduler/feature combination, and prints
speedup and utilization side by side. Watch the spatio-temporal
scheduler's advantage open up at mid ratios and the redundancy/hotspot
optimizations stack on top.

Run:  python examples/scheduler_comparison.py [num_txs] [num_pus]
"""

import sys

from repro.core.hotspot import HotspotOptimizer
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import (
    run_sequential,
    run_spatial_temporal,
    run_synchronous,
)
from repro.workload import all_entry_function_calls, generate_dependency_block
from repro.workload.generator import INDEPENDENT_TOKENS


def main() -> None:
    num_txs = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    num_pus = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    header = (f"{'dep':>5} {'cpath':>5} | {'sync':>5} {'ST':>5} "
              f"{'ST+Re':>6} {'+Hot':>6} | {'util(ST)':>8}")
    print(f"schedulers on {num_txs}-tx blocks, {num_pus} PUs "
          "(speedup over a no-reuse sequential PU)")
    print(header)
    print("-" * len(header))

    for i, ratio in enumerate((0.0, 0.2, 0.4, 0.6, 0.8, 1.0)):
        block = generate_dependency_block(
            num_transactions=num_txs, target_ratio=ratio, seed=300 + i
        )
        deployment = block.deployment

        optimizer = HotspotOptimizer(deployment.state)
        for name in INDEPENDENT_TOKENS:
            optimizer.optimize_contract(
                deployment.address_of(name),
                all_entry_function_calls(deployment, name, seed=1),
            )

        def run(runner, pus, hotspot=None, **pu_kwargs):
            executor = MTPUExecutor(
                deployment.state.copy(), num_pus=pus,
                pu_config=PUConfig(**pu_kwargs),
                hotspot_optimizer=hotspot,
            )
            if runner is run_sequential:
                return runner(executor, block.transactions)
            return runner(executor, block.transactions, block.dag_edges)

        baseline = run(run_sequential, 1, redundancy_reuse=False)
        sync = run(run_synchronous, num_pus, redundancy_reuse=False)
        st = run(run_spatial_temporal, num_pus, redundancy_reuse=False)
        st_reuse = run(run_spatial_temporal, num_pus)
        st_hot = run(run_spatial_temporal, num_pus, hotspot=optimizer)

        from repro.chain.dag import critical_path_length

        cpath = critical_path_length(
            len(block.transactions), block.dag_edges
        )
        base = baseline.makespan_cycles
        print(
            f"{block.measured_dependency_ratio:5.2f} {cpath:5d} | "
            f"{base / sync.makespan_cycles:5.2f} "
            f"{base / st.makespan_cycles:5.2f} "
            f"{base / st_reuse.makespan_cycles:6.2f} "
            f"{base / st_hot.makespan_cycles:6.2f} | "
            f"{st_hot.utilization:8.0%}"
        )

    print("\ncolumns: sync = barrier rounds; ST = spatio-temporal "
          "scheduling;\nST+Re = +DB-cache/context reuse; "
          "+Hot = +hotspot optimization (paper Fig. 16b)")


if __name__ == "__main__":
    main()
