#!/usr/bin/env python3
"""Inside the hotspot optimizer: what the idle slice buys you.

Profiles TetherToken the way the MTPU does during the block interval
(paper section 3.4), prints the collected Contract Table entry for
``transfer`` — chunk boundaries, constant instructions, prefetchable
accesses, on-path bytecode fraction — then ablates each optimization to
show its individual contribution to execution cycles.

Run:  python examples/hotspot_tuning.py
"""

from repro import build_deployment
from repro.core.hotspot import HotspotOptimizer, find_chunks
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.crypto import selector
from repro.evm import EVM, Tracer
from repro.workload import all_entry_function_calls


def cycles_with(deployment, txs, optimizer=None) -> int:
    executor = MTPUExecutor(
        deployment.state.copy(), num_pus=1, pu_config=PUConfig(),
        hotspot_optimizer=optimizer,
    )
    pu = executor.pus[0]
    return sum(executor.execute_on(pu, tx).cycles for tx in txs)


def build_optimizer(deployment, samples, **toggles) -> HotspotOptimizer:
    optimizer = HotspotOptimizer(deployment.state, **toggles)
    optimizer.optimize_contract(
        deployment.address_of("TetherToken"), samples
    )
    return optimizer


def main() -> None:
    deployment = build_deployment()
    address = deployment.address_of("TetherToken")
    samples = all_entry_function_calls(deployment, "TetherToken", seed=3)
    workload = all_entry_function_calls(
        deployment, "TetherToken", seed=4, per_function=4
    )

    print("== profiling TetherToken in the idle slice ==")
    optimizer = build_optimizer(deployment, samples)
    transfer_selector = selector("transfer(address,uint256)")
    profile = optimizer.contract_table.get(address, transfer_selector)
    print(f"contract table entries: {len(optimizer.contract_table)}")
    print("\nContract Table entry (TetherToken, transfer):")
    print(f"  samples profiled        : {profile.samples}")
    print(f"  on-path bytecode        : {profile.on_path_fraction:.1%} "
          "(paper: 8.2% for Tether.transfer)")
    print(f"  constant instructions   : "
          f"{len(profile.analysis.eliminable_pcs)} eliminated pcs")
    print(f"  constants table         : "
          f"{len(profile.analysis.constants)} separated operands")
    print(f"  prefetchable accesses   : "
          f"{len(profile.analysis.prefetch_pcs)} "
          "(fixed-key SLOAD/BALANCE)")

    # Show the chunk structure on a live trace (paper Fig. 10b).
    tx = workload[-1]
    tracer = Tracer()
    EVM(deployment.state.copy(), tracer=tracer).execute_transaction(tx)
    spans = find_chunks(tracer.steps, address)
    print("\nchunk boundaries on a live trace "
          f"({tx.tags['signature']}):")
    print(f"  Compare chunk: steps 0..{spans.compare_end} "
          "(selector dispatch — pre-executable)")
    if spans.check_end > spans.compare_end:
        print(f"  Check chunk  : steps {spans.compare_end + 1}.."
              f"{spans.check_end} (CALLVALUE guard — pre-executable)")
    print(f"  Execute/End  : steps {spans.preexec_end + 1}.."
          f"{len(tracer.steps) - 1}")

    print("\n== ablation: cycles for a 4x-per-function batch ==")
    plain = cycles_with(deployment, workload)
    rows = [("no hotspot optimization", plain, None)]
    configs = [
        ("chunk pre-execution only", dict(enable_elimination=False,
                                          enable_prefetch=False,
                                          enable_chunk_loading=False)),
        ("+ chunked bytecode loading", dict(enable_elimination=False,
                                            enable_prefetch=False)),
        ("+ data prefetching", dict(enable_elimination=False)),
        ("+ constant elimination (full)", dict()),
    ]
    for label, toggles in configs:
        optimizer = build_optimizer(deployment, samples, **toggles)
        rows.append((label, cycles_with(deployment, workload, optimizer),
                     None))
    for label, cycles, _ in rows:
        print(f"  {label:32s}: {cycles:>7} cycles "
              f"({plain / cycles:.2f}x)")


if __name__ == "__main__":
    main()
