#!/usr/bin/env python3
"""Quickstart: accelerate one block of smart-contract transactions.

Builds the synthetic mainnet, generates a block of transactions, and
executes it three ways — sequentially (the baseline every real node uses
today), with barrier-round parallelism, and with the paper's
spatio-temporal scheduler on a 4-PU MTPU — verifying along the way that
all three agree on every receipt.

Run:  python examples/quickstart.py
"""

from repro import build_deployment, generate_block
from repro.chain.receipt import receipts_root
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import (
    run_sequential,
    run_spatial_temporal,
    run_synchronous,
)


def main() -> None:
    print("deploying the contract suite...")
    deployment = build_deployment()

    print("generating a 60-transaction block (Zipf-skewed TOP8 mix)...")
    block = generate_block(deployment, num_transactions=60, seed=7)
    print(f"  contracts hit: {block.redundancy_histogram()}")
    print(f"  dependency ratio: {block.measured_dependency_ratio:.2f}")
    print(f"  TOP5 share: {block.top_k_share(5):.0%} "
          "(paper observes 37% on mainnet)")

    def executor(num_pus: int) -> MTPUExecutor:
        return MTPUExecutor(
            deployment.state.copy(), num_pus=num_pus,
            pu_config=PUConfig(),
        )

    print("\nexecuting...")
    seq = run_sequential(executor(1), block.transactions)
    sync = run_synchronous(executor(4), block.transactions,
                           block.dag_edges)
    st = run_spatial_temporal(executor(4), block.transactions,
                              block.dag_edges)

    root = receipts_root(seq.receipts_in_block_order(block.transactions))
    for label, result in (("synchronous x4", sync),
                          ("spatio-temporal x4", st)):
        assert receipts_root(
            result.receipts_in_block_order(block.transactions)
        ) == root, f"{label} diverged!"

    print(f"  sequential 1 PU     : {seq.makespan_cycles:>8} cycles "
          "(baseline)")
    print(f"  synchronous 4 PUs   : {sync.makespan_cycles:>8} cycles "
          f"({seq.makespan_cycles / sync.makespan_cycles:.2f}x)")
    print(f"  spatio-temporal 4 PU: {st.makespan_cycles:>8} cycles "
          f"({seq.makespan_cycles / st.makespan_cycles:.2f}x, "
          f"utilization {st.utilization:.0%}, "
          f"redundant picks {st.redundancy_hit_ratio:.0%})")
    print("\nall receipts identical across schedules — serializability "
          "holds.")


if __name__ == "__main__":
    main()
