#!/usr/bin/env python3
"""Fault drill: a validator surviving a hostile block stream.

Every block interval throws a different fault class at an
:class:`AcceleratedValidator` — hostile transactions at dissemination,
a corrupted block-embedded DAG, a PU dying mid-schedule, a stalled PU,
a bogus claimed receipts root, and a hotspot contract upgraded after it
was profiled. Each fault is produced by a seeded
:class:`~repro.faults.FaultInjector` (replayable), detected by the
corresponding defense layer, and reported in the block's
:class:`~repro.faults.DegradationReport`.

An honest reference node executes the same blocks sequentially; the
drill ends by checking that the battered validator's world state is
bit-identical to the reference — graceful degradation, not corruption.

Run:  python examples/fault_drill.py
"""

from dataclasses import replace

from repro import AcceleratedValidator, build_deployment
from repro.chain import Node
from repro.chain.receipt import receipts_root
from repro.faults import (
    PU_DEAD,
    PU_STALL,
    DagCorruption,
    FaultInjector,
    FaultPlan,
    PUFault,
    TxCorruption,
)
from repro.workload import generate_block

#: One scenario per block interval: (label, FaultPlan).
SCENARIOS = [
    ("clean warm-up", FaultPlan(seed=1)),
    ("hostile dissemination", FaultPlan(
        seed=2, txs=TxCorruption(malformed=4, duplicates=3, underfunded=5),
    )),
    ("corrupted block DAG", FaultPlan(
        seed=3, dag=DagCorruption(drop_edges=2, bogus_edges=2,
                                  make_cycle=True),
    )),
    ("PU1 dies mid-block", FaultPlan(
        seed=4, pu_faults=(PUFault(pu_id=1, kind=PU_DEAD, at_cycle=1_500),),
    )),
    ("PU2 stalls 4k cycles", FaultPlan(
        seed=5, pu_faults=(PUFault(pu_id=2, kind=PU_STALL, at_cycle=800,
                                   stall_cycles=4_000),),
    )),
    ("bogus claimed root", FaultPlan(seed=6, corrupt_receipts_root=True)),
]


def main() -> None:
    deployment = build_deployment()
    validator = AcceleratedValidator(
        deployment.state.copy(), num_pus=4, mempool_capacity=512,
    )
    reference = Node(state=deployment.state.copy())

    print(f"{'blk':>3} {'scenario':<24} {'txs':>3} {'ok':>5} "
          f"{'committed':>9} degradation report")
    print("-" * 100)
    for height, (label, plan) in enumerate(SCENARIOS, start=1):
        injector = FaultInjector(plan)
        validator.fault_injector = injector

        honest = generate_block(
            deployment, num_transactions=20, seed=height,
        ).transactions
        for tx in honest:
            validator.hear(tx)
        for tx in injector.hostile_transactions(honest):
            validator.hear(tx)  # admission refuses these

        block = validator.propose_block()
        block = replace(
            block,
            dag_edges=injector.corrupt_dag(
                len(block.transactions), block.dag_edges
            ),
        )
        # The honest chain executes the same block sequentially; its
        # receipts root is what consensus would have claimed.
        claimed = injector.corrupt_root(
            receipts_root(reference.execute_block(block))
        )

        outcome = validator.validate(block, claimed_root=claimed)
        if not outcome.committed:
            # The rejected block is real on the honest chain; resync it
            # (the drill's stand-in for fetching the honest root).
            resync = validator.validate(
                block,
                claimed_root=receipts_root(
                    reference.receipts[block.hash()]
                ),
            )
            assert resync.committed
        print(f"{height:>3} {label:<24} {len(block.transactions):>3} "
              f"{str(outcome.verified):>5} {str(outcome.committed):>9} "
              f"{outcome.report}")

    # One more interval: upgrade every hot contract behind the
    # optimizer's back, then validate honest traffic.
    hot = tuple(sorted(validator.optimizer.hotspot_addresses))
    stale_plan = FaultPlan(seed=7, stale_profiles=hot)
    FaultInjector(stale_plan).poison_profiles(reference.state)
    FaultInjector(stale_plan).poison_profiles(validator.state)
    validator.fault_injector = None
    honest = generate_block(
        deployment, num_transactions=20, seed=99,
    ).transactions
    for tx in honest:
        validator.hear(tx)
    block = validator.propose_block()
    claimed = receipts_root(reference.execute_block(block))
    outcome = validator.validate(block, claimed_root=claimed)
    print(f"{len(SCENARIOS) + 1:>3} {'stale hotspot profiles':<24} "
          f"{len(block.transactions):>3} {str(outcome.verified):>5} "
          f"{str(outcome.committed):>9} {outcome.report}")

    print("-" * 100)
    same = (validator.state.state_digest()
            == reference.state.state_digest())
    print(f"\nchain height {len(validator.chain)} "
          f"(reference {len(reference.chain)}); "
          f"state identical to honest sequential node: {same}")
    print(f"lifetime: {validator.total_degradation}")
    assert same, "degraded validator diverged from the honest reference"


if __name__ == "__main__":
    main()
