#!/usr/bin/env python3
"""A validator following the chain, with hotspots shifting under it.

Simulates several block intervals on an :class:`AcceleratedValidator`:
traffic starts as a CryptoCat craze, then fashion moves to DeFi. Watch
the hotspot tracker dethrone the collectible, the idle-slice optimizer
re-target, and per-block execution cycles drop once the new hotspots are
profiled — the paper's answer (section 2.2.3) to BPU's hard-wired ERC20
specialization.

Run:  python examples/validator_chain.py
"""

import random

from repro import AcceleratedValidator, build_deployment
from repro.workload import ActionLibrary

#: Each era is (label, contract mix) for a few blocks of traffic.
ERAS = [
    ("collectible craze", ["CryptoCat", "CryptoCat", "CryptoCat", "Dai"]),
    ("collectible craze", ["CryptoCat", "CryptoCat", "CryptoCat", "Dai"]),
    ("DeFi rotation", ["UniswapV2Router02", "Dai", "Dai", "TetherToken"]),
    ("DeFi rotation", ["UniswapV2Router02", "Dai", "Dai", "TetherToken"]),
    ("DeFi rotation", ["UniswapV2Router02", "Dai", "Dai", "TetherToken"]),
]


def main() -> None:
    deployment = build_deployment()
    validator = AcceleratedValidator(
        state=deployment.state.copy(), num_pus=4, deployment=deployment,
        hotspot_top_k=3,
    )
    library = ActionLibrary(deployment, random.Random(99))

    print(f"{'blk':>3} {'era':<18} {'txs':>3} {'cycles':>7} "
          f"{'hot-applied':>11} {'optimized this slice':<24} top hotspots")
    print("-" * 100)
    for height, (era, mix) in enumerate(ERAS, start=1):
        for i in range(16):
            contract = mix[i % len(mix)]
            validator.hear(library.to_transaction(library.plan(contract)))
        block = validator.propose_block()
        outcome = validator.execute_block(block)
        applied = sum(
            1 for e in outcome.schedule.executions if e.hotspot_applied
        )
        optimized = [
            deployment.by_address(a).name
            for a in outcome.hotspots_optimized
        ]
        hotspots = [
            deployment.by_address(a).name
            for a in validator.tracker.current_hotspots(3)
            if deployment.by_address(a)
        ]
        print(f"{height:>3} {era:<18} {len(block.transactions):>3} "
              f"{outcome.makespan_cycles:>7} {applied:>11} "
              f"{', '.join(optimized) or '-':<24} {', '.join(hotspots)}")

    print(f"\nchain height {len(validator.chain)}; "
          f"contract table holds {len(validator.optimizer.contract_table)} "
          "(contract, function) profiles")
    share = validator.tracker.head_share(3)
    print(f"TOP3 traffic share (decayed): {share:.0%} "
          "(paper: TOP5 = 37% on mainnet)")


if __name__ == "__main__":
    main()
