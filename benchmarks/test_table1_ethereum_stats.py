"""Bench: regenerate paper Table 1 (Ethereum statistics)."""

from repro.experiments import table1_ethereum_stats


def test_table1_ethereum_stats(run_experiment):
    result = run_experiment(table1_ethereum_stats, "table1.txt")
    # The derived overhead column must be monotone increasing, like the
    # paper's, and within 15 percentage points of every paper value.
    ours = [float(row[3].rstrip("%")) for row in result.rows]
    paper = [float(row[4].rstrip("%")) for row in result.rows]
    assert ours == sorted(ours)
    for mine, theirs in zip(ours, paper):
        assert abs(mine - theirs) < 15.0
