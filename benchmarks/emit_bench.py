#!/usr/bin/env python
"""Emit the headline benchmark JSON (``BENCH_<date>.json``).

Runs one instrumented block through :func:`repro.experiments.measure_block`
and writes the four headline metrics — speedup over a plain sequential
core, DB-cache hit rate, PU utilization, and p50/p99 per-transaction
latency in model cycles — plus the full :class:`repro.obs.BlockPerfReport`
for drill-down.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py --quick
    PYTHONPATH=src python benchmarks/emit_bench.py \\
        --check-baseline benchmarks/baseline.json
    PYTHONPATH=src python benchmarks/emit_bench.py --quick \\
        --write-baseline benchmarks/baseline.json

``--check-baseline`` exits non-zero when the measured speedup regresses
below 0.9x the committed baseline for the same configuration — the CI
``bench-smoke`` job's guardrail. All numbers are simulated model cycles,
deterministic for a given (config, seed), so the 0.9x slack only absorbs
intentional model changes, not machine noise.
"""

from __future__ import annotations

import argparse
import contextlib
import datetime
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.experiments import measure_block, measure_wall_clock  # noqa: E402

#: Benchmark configurations: name -> measure_block kwargs.
CONFIGS = {
    "quick": dict(num_transactions=20, num_pus=4, ratio=0.25, seed=7),
    "full": dict(num_transactions=64, num_pus=8, ratio=0.5, seed=7),
}

#: Wall-clock configurations: name -> measure_wall_clock kwargs (a
#: low-conflict block so the execute-once pipeline has replays to win on).
WALL_CONFIGS = {
    "quick": dict(num_transactions=64, num_workers=4, ratio=0.0, seed=7),
    "full": dict(num_transactions=64, num_workers=4, ratio=0.0, seed=7),
}

#: Serving-layer configurations: name -> run_serve_load kwargs. A real
#: socket round trip through the continuous block builder; clients ==
#: block_size_target so blocks cut the moment every in-flight tx lands.
SERVE_CONFIGS = {
    "quick": dict(transactions=192, clients=16, block_size_target=16,
                  executor="sequential", seed=7),
    "full": dict(transactions=512, clients=16, block_size_target=16,
                 executor="sequential", seed=7),
}

#: Durability benchmark: closed-loop serve load per fsync policy, plus
#: offline recovery of a freshly written WAL. ``recovery_blocks`` sizes
#: the WAL; recovery replays from the newest snapshot allowed by the
#: retention window, so the replay suffix is bounded by
#: ``receipt_history`` regardless of chain length.
STORAGE_CONFIGS = {
    "quick": dict(recovery_blocks=200, txs_per_block=4,
                  snapshot_interval=32, receipt_history=64),
    "full": dict(recovery_blocks=1000, txs_per_block=4,
                 snapshot_interval=64, receipt_history=64),
}

#: Replication benchmark: read throughput through the proxy for growing
#: replica fleets, replication lag, and the cost streaming imposes on
#: the writer's own serve throughput.
REPLICATION_CONFIGS = {
    "quick": dict(write_txs=96, reads=600, read_clients=8,
                  replica_counts=(1, 2, 4), block_size_target=8,
                  efficiency_txs=256, efficiency_rounds=4),
    "full": dict(write_txs=192, reads=1500, read_clients=8,
                 replica_counts=(1, 2, 4), block_size_target=8,
                 efficiency_txs=256, efficiency_rounds=4),
}

#: A run regresses when speedup falls below this fraction of baseline.
REGRESSION_FLOOR = 0.9

#: Hard gate: serving with a WAL attached under fsync=never must keep at
#: least this fraction of the in-memory serve throughput. The WAL write
#: is a buffered append on the commit path — if it costs more than 10%
#: the storage layer is doing something wrong.
DURABLE_EFFICIENCY_FLOOR = 0.9


def measure_storage(name: str) -> dict:
    """Durable serve throughput per fsync policy + WAL recovery time."""
    import tempfile
    import time

    from repro.chain.node import Node
    from repro.chain.state import WorldState
    from repro.chain.transaction import Transaction
    from repro.serve.smoke import run_serve_load
    from repro.storage import StorageConfig, attach, recover

    params = STORAGE_CONFIGS[name]

    def durable_run(policy: str) -> float:
        with tempfile.TemporaryDirectory() as data_dir:
            run = run_serve_load(
                data_dir=data_dir, fsync=policy, **SERVE_CONFIGS[name]
            )
            return run["load"]["tx_per_second"]

    durable_tps = {
        policy: durable_run(policy) for policy in ("interval", "always")
    }
    # The gated ratio (fsync=never durable vs in-memory) divides two
    # noisy socket loads: a single sample swings ±30% on a loaded
    # machine, far more than the WAL append costs. Run back-to-back
    # pairs and gate on the best paired ratio — adjacent runs share the
    # machine's momentary load, so pairing cancels the drift a lone
    # sample of each cannot.
    ratios = []
    never_samples = []
    for _ in range(4):
        inmem = run_serve_load(
            **SERVE_CONFIGS[name]
        )["load"]["tx_per_second"]
        never = durable_run("never")
        never_samples.append(never)
        ratios.append(never / inmem if inmem else 0.0)
    durable_tps["never"] = max(never_samples)

    # Recovery: write a WAL of simple transfer blocks offline, then time
    # a cold recover() of the directory.
    accounts = [0x1000 + i for i in range(8)]
    with tempfile.TemporaryDirectory() as data_dir:
        state = WorldState()
        for account in accounts:
            state.set_balance(account, 10**18)
        state.clear_journal()
        node = Node(state=state)
        attach(node, data_dir, StorageConfig(
            fsync="never",
            snapshot_interval_blocks=params["snapshot_interval"],
        ))
        nonces = dict.fromkeys(accounts, 0)
        for height in range(params["recovery_blocks"]):
            for i in range(params["txs_per_block"]):
                sender = accounts[(height + i) % len(accounts)]
                nonces[sender] += 1
                node.hear(Transaction(
                    sender=sender,
                    to=accounts[(height + i + 3) % len(accounts)],
                    value=1,
                    nonce=nonces[sender],
                ))
            node.execute_block(
                node.propose_block(
                    max_transactions=params["txs_per_block"]
                )
            )
        node.store.close()

        start = time.perf_counter()
        result = recover(
            data_dir, receipt_history_blocks=params["receipt_history"]
        )
        elapsed = time.perf_counter() - start
        assert result.height == params["recovery_blocks"]

    return {
        "parameters": dict(params),
        "durable_tps": durable_tps,
        "durable_efficiency": max(ratios),
        "durable_efficiency_samples": ratios,
        "recovery": {
            "wal_blocks": result.height,
            "snapshot_height": result.snapshot_height,
            "replayed_blocks": result.replayed_blocks,
            "seconds": elapsed,
            "blocks_per_second": (
                result.height / elapsed if elapsed else 0.0
            ),
        },
    }

#: Hard gate: a writer that streams its WAL to replicas must keep at
#: least this fraction of the no-replication serve throughput. The
#: stream is an async tail of a file the writer already flushes — if it
#: costs more than 10% the replication layer is on the commit path.
REPLICATION_WRITE_EFFICIENCY_FLOOR = 0.9


def measure_replication(name: str) -> dict:
    """Proxy read throughput vs fleet size + replication lag + cost."""
    import asyncio
    import tempfile
    import time

    from repro.chain.node import Node
    from repro.contracts import build_deployment
    from repro.replication import (
        BackoffPolicy,
        ReadProxy,
        Replica,
        ReplicationConfig,
    )
    from repro.serve import RpcServer, ServeConfig
    from repro.serve.loadgen import LoadGenerator, RpcClient

    params = REPLICATION_CONFIGS[name]
    deployment = build_deployment(16)

    def replication_config() -> ReplicationConfig:
        return ReplicationConfig(
            poll_interval_s=0.01,
            backoff=BackoffPolicy(base_delay_s=0.02, max_delay_s=0.5),
            health_interval_s=0.1,
        )

    async def start_writer(data_dir: str, replicated: bool) -> RpcServer:
        config = ServeConfig(
            host="127.0.0.1",
            port=0,
            block_size_target=params["block_size_target"],
            gas_target=None,
            block_interval_ms=10.0,
            data_dir=data_dir,
            fsync="never",
            snapshot_interval_blocks=16,
            replication_port=0 if replicated else None,
        )
        node = Node(
            state=deployment.state.copy(),
            per_sender_cap=config.per_sender_cap,
        )
        server = RpcServer(node=node, config=config)
        await server.start()
        return server

    async def start_replica(writer: RpcServer):
        config = ServeConfig(host="127.0.0.1", port=0, role="replica")
        node = Node(state=deployment.state.copy())
        server = RpcServer(node=node, config=config)
        replica = Replica(
            node=node,
            builder=server.builder,
            writer_host="127.0.0.1",
            writer_stream_port=writer.config.replication_port,
            config=replication_config(),
        )
        server.replication = replica
        await server.start()
        replica.start()
        return server, replica

    async def write_phase(
        writer: RpcServer, txs: int | None = None
    ) -> float:
        total = txs if txs is not None else params["write_txs"]
        load = LoadGenerator(
            "127.0.0.1", writer.config.port, deployment
        )
        result = await load.run_closed_loop(total, clients=8, seed=7)
        assert result.ok == total, "write load failed"
        return result.to_dict()["tx_per_second"]

    async def read_phase(proxy_port: int) -> float:
        addresses = [hex(a) for a in deployment.accounts]
        per_client = params["reads"] // params["read_clients"]

        async def reader(worker: int) -> None:
            client = await RpcClient.connect("127.0.0.1", proxy_port)
            try:
                for i in range(per_client):
                    await client.call(
                        "repro_getBalance",
                        {"address": addresses[
                            (worker + i) % len(addresses)
                        ]},
                    )
            finally:
                await client.close()

        start = time.perf_counter()
        await asyncio.gather(
            *(reader(w) for w in range(params["read_clients"]))
        )
        elapsed = time.perf_counter() - start
        return (
            per_client * params["read_clients"] / elapsed
            if elapsed else 0.0
        )

    async def measure_fleet(n_replicas: int) -> dict:
        with tempfile.TemporaryDirectory() as data_dir:
            writer = await start_writer(data_dir, replicated=True)
            replicas = [
                await start_replica(writer) for _ in range(n_replicas)
            ]
            try:
                write_tps = await write_phase(writer)
                target = len(writer.node.chain)
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    if all(r.height >= target for _, r in replicas):
                        break
                    await asyncio.sleep(0.01)
                else:
                    raise AssertionError(
                        f"{n_replicas}-replica fleet never converged"
                    )
                proxy = ReadProxy(
                    writer_addr=("127.0.0.1", writer.config.port),
                    replica_addrs=[
                        ("127.0.0.1", s.config.port)
                        for s, _ in replicas
                    ],
                    config=replication_config(),
                )
                await proxy.start()
                try:
                    read_tps = await read_phase(proxy.port)
                    fallback = proxy.writer_fallback_reads
                finally:
                    await proxy.stop()
                lag_ms = sorted(
                    s * 1000.0
                    for _, r in replicas
                    for s in r.lag_samples_s
                )
                p99 = (
                    lag_ms[min(len(lag_ms) - 1,
                               int(0.99 * len(lag_ms)))]
                    if lag_ms else 0.0
                )
                return {
                    "replicas": n_replicas,
                    "read_tps": read_tps,
                    "write_tps": write_tps,
                    "lag_p99_ms": p99,
                    "lag_samples": len(lag_ms),
                    "writer_fallback_reads": fallback,
                }
            finally:
                for server, replica in replicas:
                    await replica.stop()
                    await server.shutdown()
                await writer.shutdown()

    async def baseline_write() -> float:
        with tempfile.TemporaryDirectory() as data_dir:
            writer = await start_writer(data_dir, replicated=False)
            try:
                return await write_phase(
                    writer, params["efficiency_txs"]
                )
            finally:
                await writer.shutdown()

    async def sink_follower(
        stream_port: int, genesis_digest: bytes
    ) -> asyncio.Task:
        """A follower that consumes the stream without re-executing.

        The efficiency ratio isolates what *streaming* costs the
        writer: tailing its WAL, framing, and pushing to follower
        sockets. Verification happens on other machines in production;
        a co-located verifying replica would make the ratio measure
        CPU contention on the bench box, not the writer's overhead.
        """
        from repro.replication import stream as rstream

        reader, sock_writer = await asyncio.open_connection(
            "127.0.0.1", stream_port
        )
        sock_writer.write(
            rstream.encode_hello(0, genesis_digest, False)
        )
        await sock_writer.drain()

        async def drain_forever() -> None:
            # Raw byte drain, no decode: the sink must cost the bench
            # box as little as possible so the ratio charges the
            # *writer's* streaming work, not the consumer's.
            try:
                while await reader.read(1 << 16):
                    pass
            except (ConnectionError, OSError):
                pass
            finally:
                with contextlib.suppress(Exception):
                    sock_writer.close()

        return asyncio.get_running_loop().create_task(drain_forever())

    async def replicated_write() -> float:
        from repro.storage import codec

        genesis_digest = codec.state_digest_bytes(
            deployment.state.copy()
        )
        with tempfile.TemporaryDirectory() as data_dir:
            writer = await start_writer(data_dir, replicated=True)
            sinks = []
            try:
                for _ in range(2):
                    sinks.append(await sink_follower(
                        writer.config.replication_port,
                        genesis_digest,
                    ))
                deadline = time.monotonic() + 30.0
                while writer.streamer.connections_active < 2:
                    if time.monotonic() > deadline:
                        raise AssertionError(
                            "sink followers never connected"
                        )
                    await asyncio.sleep(0.01)
                return await write_phase(
                    writer, params["efficiency_txs"]
                )
            finally:
                for task in sinks:
                    task.cancel()
                await asyncio.gather(*sinks, return_exceptions=True)
                await writer.shutdown()

    fleets = [
        asyncio.run(measure_fleet(n))
        for n in params["replica_counts"]
    ]
    # Same pairing trick as durable_efficiency: adjacent runs share the
    # machine's momentary load, so the best paired ratio cancels drift
    # a lone sample of each side cannot.
    ratios = []
    for _ in range(params["efficiency_rounds"]):
        base = asyncio.run(baseline_write())
        repl = asyncio.run(replicated_write())
        ratios.append(repl / base if base else 0.0)

    return {
        "parameters": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in params.items()
        },
        "fleets": fleets,
        "write_efficiency": max(ratios),
        "write_efficiency_samples": ratios,
        "lag_p99_ms": max(f["lag_p99_ms"] for f in fleets),
    }


#: Merkleized-state benchmark: the same durable serve load run with the
#: incremental trie on and off (paired rounds), plus proof/witness size
#: and verify-latency stats from the authenticated-state smoke drill.
MERKLE_CONFIGS = {
    "quick": dict(rounds=3, smoke_blocks=6, smoke_transactions=32),
    "full": dict(rounds=4, smoke_blocks=8, smoke_transactions=32),
}

#: Hard gate: durable serve throughput with per-block Merkleization must
#: keep at least this fraction of the flat-digest baseline. First-touch
#: capture makes each block cost O(touched · depth) — if the trie eats
#: more than 15% of serve throughput the incremental path is broken.
MERKLE_EFFICIENCY_FLOOR = 0.85


def measure_merkle(name: str) -> dict:
    """Merkleized vs flat-digest durable serve + proof/witness stats."""
    import tempfile

    from repro.serve.smoke import run_serve_load
    from repro.trie.smoke import run_smoke

    params = MERKLE_CONFIGS[name]
    serve_kwargs = dict(SERVE_CONFIGS[name])

    def durable_run(merkleize: bool) -> float:
        with tempfile.TemporaryDirectory() as data_dir:
            run = run_serve_load(
                data_dir=data_dir, fsync="never",
                merkleize=merkleize, **serve_kwargs,
            )
            return run["load"]["tx_per_second"]

    # Best-of-pairs, same trick as durable_efficiency: adjacent runs
    # share the machine's momentary load, so pairing cancels drift.
    ratios = []
    merkleized_samples = []
    for _ in range(params["rounds"]):
        flat = durable_run(merkleize=False)
        merkleized = durable_run(merkleize=True)
        merkleized_samples.append(merkleized)
        ratios.append(merkleized / flat if flat else 0.0)

    smoke = run_smoke(
        blocks=params["smoke_blocks"],
        transactions=params["smoke_transactions"],
        workload="mixed",
        seed=7,
    )
    failures = smoke.pop("failures")
    assert not failures, f"trie smoke failed inside the bench: {failures}"
    proofs = smoke["proved_accounts"] + smoke["proved_slots"]

    return {
        "parameters": dict(params),
        "merkle_efficiency": max(ratios),
        "merkle_efficiency_samples": ratios,
        "durable_tps_merkleized": max(merkleized_samples),
        "proof": {
            "count": proofs,
            "max_bytes": smoke["proof_bytes_max"],
            "verify_ms_avg": (
                smoke["verify_ms_total"] / proofs if proofs else 0.0
            ),
            "mutations_rejected": smoke["mutations_checked"],
        },
        "witness_max_bytes": smoke["witness_bytes_max"],
        "nodes_rehashed": smoke["nodes_rehashed"],
    }


#: The execute-once pipeline must beat the seed's discover-then-execute
#: sequential path by this wall-clock factor. A same-machine ratio, so
#: the gate is portable across hardware.
WALL_SPEEDUP_FLOOR = 1.5

#: Conflict-aware packing benchmark: the same conflict-heavy
#: (``hotburst``) transaction set cut FIFO vs packed, both chains
#: re-executed through the optimistic (OCC) executor whose wall cost is
#: order-sensitive (one execution per transaction plus one per abort).
PACKING_CONFIGS = {
    "quick": dict(transactions=192, block_size=32, lane_depth=4,
                  aging_bound=8, seed=7, repeats=2,
                  serve_transactions=192, serve_clients=16),
    "full": dict(transactions=384, block_size=32, lane_depth=4,
                 aging_bound=8, seed=7, repeats=3,
                 serve_transactions=384, serve_clients=16),
}

#: Hard gate: packed blocks must cut the OCC executor's wall time for
#: the conflict-heavy workload by at least this factor over FIFO blocks
#: of the same transactions. A same-machine best-of-pairs ratio, so the
#: gate travels across hardware.
PACKING_SPEEDUP_FLOOR = 1.3


def measure_packing(name: str) -> dict:
    """Packed vs FIFO: OCC wall cost, digest parity, serve throughput."""
    import time

    from repro.chain.mempool import PackingPolicy
    from repro.chain.node import Node
    from repro.contracts import build_deployment
    from repro.parallel import OptimisticBlockExecutor
    from repro.serve.loadgen import make_transactions
    from repro.serve.smoke import run_serve_load

    params = PACKING_CONFIGS[name]
    deployment = build_deployment(num_accounts=64)
    txs = make_transactions(
        deployment, params["transactions"], workload="hotburst",
        seed=params["seed"],
    )
    policy = PackingPolicy(
        lane_depth=params["lane_depth"],
        aging_bound=params["aging_bound"],
    )

    def build_chain(packing: str):
        node = Node(state=deployment.state.copy())
        for at, tx in enumerate(txs):
            node.hear(tx, at=at)
        blocks = []
        while len(node.mempool):
            block = node.propose_block(
                max_transactions=params["block_size"],
                packing=packing,
                packing_policy=policy if packing != "fifo" else None,
            )
            if not block.transactions:
                break
            node.execute_block(block)
            blocks.append(block)
        return node, blocks

    fifo_node, fifo_blocks = build_chain("fifo")
    packed_node, packed_blocks = build_chain("conflict_aware")
    digest_parity = (
        fifo_node.state.state_digest() == packed_node.state.state_digest()
    )

    def occ_run(blocks):
        state = deployment.state.copy()
        executor = OptimisticBlockExecutor(state)
        start = time.perf_counter()
        for block in blocks:
            executor.execute_block(block.transactions)
            state.clear_journal()
        wall = time.perf_counter() - start
        return executor.executions, executor.aborts, wall, state

    # Best-of-pairs: adjacent FIFO/packed runs share the machine's
    # momentary load, so pairing cancels drift; execution counts are
    # deterministic and identical across repeats.
    wall_ratios = []
    for _ in range(params["repeats"]):
        fifo_exec, fifo_aborts, fifo_wall, fifo_state = occ_run(fifo_blocks)
        packed_exec, packed_aborts, packed_wall, packed_state = occ_run(
            packed_blocks
        )
        wall_ratios.append(
            fifo_wall / packed_wall if packed_wall else 0.0
        )
    occ_parity = (
        fifo_state.state_digest()
        == packed_state.state_digest()
        == fifo_node.state.state_digest()
    )

    parallelism = [
        block.packed_parallelism
        for block in packed_blocks
        if block.packed_parallelism
    ]
    serve_kwargs = dict(
        transactions=params["serve_transactions"],
        clients=params["serve_clients"],
        block_size_target=params["block_size"],
        workload="hotburst",
        seed=params["seed"],
    )
    serve_fifo = run_serve_load(**serve_kwargs)
    serve_packed = run_serve_load(
        packing="conflict_aware",
        packing_lane_depth=params["lane_depth"],
        packing_aging_bound=params["aging_bound"],
        **serve_kwargs,
    )

    return {
        "parameters": dict(params),
        "digest_parity": digest_parity,
        "occ_digest_parity": occ_parity,
        "serve_digest_parity": bool(
            serve_packed.get("digest_match")
            and serve_packed.get("fifo_digest_match", True)
        ),
        "fifo": {
            "blocks": len(fifo_blocks),
            "occ_executions": fifo_exec,
            "occ_aborts": fifo_aborts,
            "wall_tx_per_second": (
                len(txs) / fifo_wall if fifo_wall else 0.0
            ),
            "serve_tps": serve_fifo["load"]["tx_per_second"],
        },
        "packed": {
            "blocks": len(packed_blocks),
            "occ_executions": packed_exec,
            "occ_aborts": packed_aborts,
            "wall_tx_per_second": (
                len(txs) / packed_wall if packed_wall else 0.0
            ),
            "serve_tps": serve_packed["load"]["tx_per_second"],
            "serve_parallelism": (
                serve_packed["stats"]["packedParallelism"]
            ),
        },
        "packing_speedup": max(wall_ratios),
        "packing_speedup_samples": wall_ratios,
        # Deterministic for (config, seed): total speculative executions
        # FIFO/packed — the machine-independent form of the same win.
        "packing_exec_ratio": (
            fifo_exec / packed_exec if packed_exec else 0.0
        ),
        "packed_parallelism": (
            sum(parallelism) / len(parallelism) if parallelism else 0.0
        ),
    }


#: Decoded-bytecode cache benchmark: the same hot ERC-20 transaction
#: stream executed sequentially by the legacy byte-at-a-time interpreter
#: loop (``fast_path=False``) and by the decoded fast path, best-of-N
#: interleaved pairs. Receipts and the post-state digest must be
#: bit-identical between the two runs.
EVM_CONFIGS = {
    "quick": dict(transactions=200, seed=7, repeats=4),
    "full": dict(transactions=400, seed=7, repeats=4),
}

#: Hard gate: the decoded fast path must beat the legacy interpreter
#: loop by this wall-clock factor on the hot ERC-20 stream. A
#: same-machine best-of-pairs ratio, so the gate travels across
#: hardware.
EVM_SPEEDUP_FLOOR = 1.5


def measure_evm(name: str) -> dict:
    """Decoded fast path vs legacy interpreter loop: tx/s + parity."""
    import time

    from repro.contracts import build_deployment
    from repro.evm import EVM
    from repro.evm.context import BlockContext
    from repro.evm.decoded import DECODE_CACHE
    from repro.serve.loadgen import make_transactions
    from repro.storage.codec import state_digest_bytes

    params = EVM_CONFIGS[name]
    deployment = build_deployment(num_accounts=64)
    txs = make_transactions(
        deployment, params["transactions"], workload="erc20",
        seed=params["seed"],
    )

    def run(fast_path):
        state = deployment.state.copy()
        evm = EVM(state, block=BlockContext(), fast_path=fast_path)
        start = time.perf_counter()
        receipts = [evm.execute_transaction(tx) for tx in txs]
        wall = time.perf_counter() - start
        return receipts, state, wall

    # Parity first — this also warms the decoded-program cache, so the
    # timed pairs below measure steady-state execution, not first-touch
    # decode (the AOT decode is amortized over the program's lifetime).
    DECODE_CACHE.clear()
    fast_receipts, fast_state, _ = run(None)
    legacy_receipts, legacy_state, _ = run(False)
    receipt_parity = fast_receipts == legacy_receipts
    digest_parity = (
        state_digest_bytes(fast_state)
        == state_digest_bytes(legacy_state)
    )

    # Best-of-N interleaved pairs: adjacent runs share the machine's
    # momentary load, so pairing cancels the drift a lone sample of
    # each side cannot (same trick as the efficiency ratios above).
    legacy_best = fast_best = float("inf")
    for _ in range(params["repeats"]):
        _, _, wall = run(False)
        legacy_best = min(legacy_best, wall)
        _, _, wall = run(None)
        fast_best = min(fast_best, wall)

    return {
        "parameters": dict(params),
        "receipt_parity": receipt_parity,
        "digest_parity": digest_parity,
        "decoded_speedup": (
            legacy_best / fast_best if fast_best else 0.0
        ),
        "legacy_tps": len(txs) / legacy_best if legacy_best else 0.0,
        "fast_tps": len(txs) / fast_best if fast_best else 0.0,
        "decode_cache": DECODE_CACHE.stats(),
    }


#: Speculative-execution benchmark: a dynamic-storage-key block (path
#: router, batch airdrop, proxy hot path — storage keys derived from
#: calldata, so no access set can be declared) run through three lanes:
#: the seed's discover-then-execute sequential pipeline, the
#: declared-DAG execute-once pipeline, and the speculative (OCC)
#: executor with no access sets anywhere. Lanes are interleaved
#: best-of-4 pairs; receipts and state digests must be bit-identical.
OCC_CONFIGS = {
    "quick": dict(num_transactions=128, num_workers=4, seed=11,
                  repeats=4),
    "full": dict(num_transactions=192, num_workers=4, seed=11,
                 repeats=4),
}

#: Hard gate: on the dynamic-key workload the speculative executor must
#: beat the sequential pipeline's wall tx/s by this factor. A
#: same-machine interleaved ratio, so the gate travels across hardware.
OCC_SPEEDUP_FLOOR = 1.3


def measure_occ(name: str) -> dict:
    """Sequential vs declared-DAG vs OCC on undeclared dynamic keys."""
    from repro.experiments.perf import measure_occ_wall_clock

    return measure_occ_wall_clock(**OCC_CONFIGS[name])


def run_config(name: str) -> dict:
    from repro.serve.smoke import run_serve_load

    report = measure_block(label=f"bench:{name}", **CONFIGS[name])
    wall = measure_wall_clock(**WALL_CONFIGS[name])
    serve = run_serve_load(**SERVE_CONFIGS[name])
    serve_latency = serve["load"]["latency"]
    storage = measure_storage(name)
    replication = measure_replication(name)
    packing = measure_packing(name)
    evm = measure_evm(name)
    merkle = measure_merkle(name)
    occ = measure_occ(name)
    fleet_tps = {
        f["replicas"]: f["read_tps"] for f in replication["fleets"]
    }
    return {
        "config": name,
        "parameters": dict(CONFIGS[name]),
        "headline": {
            "speedup": report.headline_speedup,
            "cache_hit_rate": report.cache_hit_rate,
            "pu_utilization": report.utilization,
            "p50_tx_cycles": report.p50_tx_cycles,
            "p99_tx_cycles": report.p99_tx_cycles,
            "wall_sequential_tps": wall["sequential"]["tx_per_second"],
            "wall_pipeline_tps": wall["pipeline"]["tx_per_second"],
            "wall_pipeline_speedup": wall["pipeline_speedup"],
            "serve_tps": serve["load"]["tx_per_second"],
            "serve_p50_ms": serve_latency["p50_ms"],
            "serve_p99_ms": serve_latency["p99_ms"],
            # Socket-path throughput over raw offline sequential
            # throughput of the same blocks: a same-machine ratio, so
            # it travels across hardware (1.0 = serving adds nothing).
            "serve_efficiency": (
                serve["load"]["tx_per_second"]
                / serve["offline_tx_per_second"]
                if serve.get("offline_tx_per_second") else 0.0
            ),
            # WAL-attached (fsync=never) serve throughput over the
            # in-memory serve throughput: same machine, same load, so
            # the ratio is portable (1.0 = durability costs nothing).
            "durable_efficiency": storage["durable_efficiency"],
            "durable_tps_never": storage["durable_tps"]["never"],
            "durable_tps_interval": storage["durable_tps"]["interval"],
            "durable_tps_always": storage["durable_tps"]["always"],
            "recovery_blocks_per_second": (
                storage["recovery"]["blocks_per_second"]
            ),
            # Writer serve throughput while streaming its WAL to two
            # followers over the no-replication writer: same machine,
            # same load, so the ratio is portable (1.0 = streaming
            # costs the writer nothing).
            "replication_write_efficiency": (
                replication["write_efficiency"]
            ),
            "replication_read_tps_1": fleet_tps.get(1, 0.0),
            "replication_read_tps_2": fleet_tps.get(2, 0.0),
            "replication_read_tps_4": fleet_tps.get(4, 0.0),
            "replication_lag_p99_ms": replication["lag_p99_ms"],
            # OCC wall time of the conflict-heavy chain, FIFO cut over
            # packed cut: a same-machine best-of-pairs ratio, portable
            # across hardware. The exec ratio is the deterministic form
            # (speculative execution counts, no timing at all).
            "packing_speedup": packing["packing_speedup"],
            "packing_exec_ratio": packing["packing_exec_ratio"],
            "packed_parallelism": packing["packed_parallelism"],
            "packing_wall_tps_fifo": (
                packing["fifo"]["wall_tx_per_second"]
            ),
            "packing_wall_tps_packed": (
                packing["packed"]["wall_tx_per_second"]
            ),
            "packing_serve_tps_fifo": packing["fifo"]["serve_tps"],
            "packing_serve_tps_packed": packing["packed"]["serve_tps"],
            # Decoded fast path over the legacy byte-at-a-time loop on
            # the hot ERC-20 stream: a same-machine best-of-pairs
            # ratio, portable across hardware. Absolute tx/s of either
            # side is machine-dependent and excluded from the baseline.
            "evm_decoded_speedup": evm["decoded_speedup"],
            "evm_fast_tps": evm["fast_tps"],
            "evm_legacy_tps": evm["legacy_tps"],
            # Durable serve throughput with per-block Merkleization over
            # the flat-digest durable baseline: same machine, same load,
            # so the ratio is portable (1.0 = the trie costs nothing).
            "merkle_efficiency": merkle["merkle_efficiency"],
            "merkle_proof_max_bytes": merkle["proof"]["max_bytes"],
            "merkle_witness_max_bytes": merkle["witness_max_bytes"],
            "merkle_verify_ms_avg": merkle["proof"]["verify_ms_avg"],
            # Speculative execution on the dynamic-storage-key workload
            # (no declared access sets anywhere): OCC wall tx/s over the
            # seed's discover-then-execute sequential pipeline, plus the
            # declared-DAG pipeline on the same block for scale. Both
            # are same-machine interleaved ratios, portable across
            # hardware; the exec ratio is the deterministic form.
            "occ_speedup": occ["occ_speedup"],
            "occ_dag_speedup": occ["dag_speedup"],
            "occ_tps": occ["occ"]["tx_per_second"],
            "occ_sequential_tps": occ["sequential"]["tx_per_second"],
            "occ_exec_ratio": (
                occ["occ"]["executions"] / occ["num_transactions"]
                if occ["num_transactions"] else 0.0
            ),
        },
        "report": report.to_dict(),
        "wall": wall,
        "serve": serve,
        "storage": storage,
        "replication": replication,
        "packing": packing,
        "evm": evm,
        "merkle": merkle,
        "occ": occ,
    }


def check_baseline(result: dict, baseline_path: pathlib.Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    entry = baseline.get(result["config"])
    if entry is None:
        print(
            f"baseline {baseline_path} has no entry for "
            f"'{result['config']}'; skipping check"
        )
        return 0
    measured = result["headline"]["speedup"]
    floor = REGRESSION_FLOOR * entry["speedup"]
    if measured < floor:
        print(
            f"REGRESSION: speedup {measured:.2f}x is below "
            f"{REGRESSION_FLOOR}x baseline "
            f"({entry['speedup']:.2f}x -> floor {floor:.2f}x)"
        )
        return 1
    print(
        f"ok: speedup {measured:.2f}x vs baseline "
        f"{entry['speedup']:.2f}x (floor {floor:.2f}x)"
    )
    wall_speedup = result["headline"]["wall_pipeline_speedup"]
    if wall_speedup < WALL_SPEEDUP_FLOOR:
        print(
            f"REGRESSION: wall-clock pipeline speedup {wall_speedup:.2f}x "
            f"is below the {WALL_SPEEDUP_FLOOR}x floor over the seed "
            "sequential path"
        )
        return 1
    print(
        f"ok: wall-clock pipeline speedup {wall_speedup:.2f}x "
        f"(floor {WALL_SPEEDUP_FLOOR}x)"
    )
    baseline_efficiency = entry.get("serve_efficiency")
    if baseline_efficiency:
        measured_efficiency = result["headline"]["serve_efficiency"]
        efficiency_floor = REGRESSION_FLOOR * baseline_efficiency
        if measured_efficiency < efficiency_floor:
            print(
                f"REGRESSION: serve efficiency "
                f"{measured_efficiency:.3f} is below "
                f"{REGRESSION_FLOOR}x baseline "
                f"({baseline_efficiency:.3f} -> floor "
                f"{efficiency_floor:.3f})"
            )
            return 1
        print(
            f"ok: serve efficiency {measured_efficiency:.3f} vs "
            f"baseline {baseline_efficiency:.3f} "
            f"(floor {efficiency_floor:.3f})"
        )
    durable = result["headline"]["durable_efficiency"]
    if durable < DURABLE_EFFICIENCY_FLOOR:
        print(
            f"REGRESSION: durable serve (fsync=never) keeps only "
            f"{durable:.3f} of in-memory throughput — below the "
            f"{DURABLE_EFFICIENCY_FLOOR} floor"
        )
        return 1
    print(
        f"ok: durable serve efficiency {durable:.3f} "
        f"(floor {DURABLE_EFFICIENCY_FLOOR})"
    )
    repl_efficiency = result["headline"]["replication_write_efficiency"]
    if repl_efficiency < REPLICATION_WRITE_EFFICIENCY_FLOOR:
        print(
            f"REGRESSION: a streaming writer keeps only "
            f"{repl_efficiency:.3f} of no-replication throughput — "
            f"below the {REPLICATION_WRITE_EFFICIENCY_FLOOR} floor"
        )
        return 1
    print(
        f"ok: replication write efficiency {repl_efficiency:.3f} "
        f"(floor {REPLICATION_WRITE_EFFICIENCY_FLOOR})"
    )
    baseline_repl = entry.get("replication_write_efficiency")
    if baseline_repl:
        repl_floor = REGRESSION_FLOOR * baseline_repl
        if repl_efficiency < repl_floor:
            print(
                f"REGRESSION: replication write efficiency "
                f"{repl_efficiency:.3f} is below {REGRESSION_FLOOR}x "
                f"baseline ({baseline_repl:.3f} -> floor "
                f"{repl_floor:.3f})"
            )
            return 1
        print(
            f"ok: replication write efficiency {repl_efficiency:.3f} "
            f"vs baseline {baseline_repl:.3f} "
            f"(floor {repl_floor:.3f})"
        )
    packing_speedup = result["headline"]["packing_speedup"]
    if packing_speedup < PACKING_SPEEDUP_FLOOR:
        print(
            f"REGRESSION: conflict-aware packing speeds up the OCC "
            f"executor only {packing_speedup:.2f}x over FIFO on the "
            f"conflict-heavy workload — below the "
            f"{PACKING_SPEEDUP_FLOOR}x floor"
        )
        return 1
    print(
        f"ok: packing OCC speedup {packing_speedup:.2f}x "
        f"(floor {PACKING_SPEEDUP_FLOOR}x)"
    )
    baseline_packing = entry.get("packing_exec_ratio")
    if baseline_packing:
        exec_ratio = result["headline"]["packing_exec_ratio"]
        packing_floor = REGRESSION_FLOOR * baseline_packing
        if exec_ratio < packing_floor:
            print(
                f"REGRESSION: packing exec ratio {exec_ratio:.2f} is "
                f"below {REGRESSION_FLOOR}x baseline "
                f"({baseline_packing:.2f} -> floor {packing_floor:.2f})"
            )
            return 1
        print(
            f"ok: packing exec ratio {exec_ratio:.2f} vs baseline "
            f"{baseline_packing:.2f} (floor {packing_floor:.2f})"
        )
    evm_speedup = result["headline"]["evm_decoded_speedup"]
    if evm_speedup < EVM_SPEEDUP_FLOOR:
        print(
            f"REGRESSION: decoded fast path is only {evm_speedup:.2f}x "
            f"the legacy interpreter loop — below the "
            f"{EVM_SPEEDUP_FLOOR}x floor"
        )
        return 1
    # No relative gate on top of the hard floor: like packing_speedup,
    # this is a wall-clock ratio — the committed baseline value is
    # informational, and the deterministic parity checks plus the hard
    # floor are the gates that travel across machines.
    print(
        f"ok: evm decoded speedup {evm_speedup:.2f}x "
        f"(floor {EVM_SPEEDUP_FLOOR}x)"
    )
    occ_speedup = result["headline"]["occ_speedup"]
    if occ_speedup < OCC_SPEEDUP_FLOOR:
        print(
            f"REGRESSION: speculative execution is only "
            f"{occ_speedup:.2f}x the sequential pipeline on the "
            f"dynamic-key workload — below the "
            f"{OCC_SPEEDUP_FLOOR}x floor"
        )
        return 1
    # Like evm_decoded_speedup: a wall-clock ratio, so the committed
    # baseline value is informational — the parity assertions inside
    # measure_occ_wall_clock plus the hard floor are the gates that
    # travel across machines.
    print(
        f"ok: occ speedup {occ_speedup:.2f}x "
        f"(floor {OCC_SPEEDUP_FLOOR}x)"
    )
    merkle_efficiency = result["headline"]["merkle_efficiency"]
    if merkle_efficiency < MERKLE_EFFICIENCY_FLOOR:
        print(
            f"REGRESSION: Merkleized durable serve keeps only "
            f"{merkle_efficiency:.3f} of flat-digest throughput — "
            f"below the {MERKLE_EFFICIENCY_FLOOR} floor"
        )
        return 1
    print(
        f"ok: merkle efficiency {merkle_efficiency:.3f} "
        f"(floor {MERKLE_EFFICIENCY_FLOOR})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the small configuration (20 txs, 4 PUs)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="directory for BENCH_<date>.json (default: repo root)",
    )
    parser.add_argument(
        "--check-baseline", type=pathlib.Path, default=None,
        metavar="BASELINE",
        help="fail when speedup < 0.9x this baseline file's entry",
    )
    parser.add_argument(
        "--write-baseline", type=pathlib.Path, default=None,
        metavar="BASELINE",
        help="update this baseline file with the measured headline",
    )
    args = parser.parse_args(argv)

    config = "quick" if args.quick else "full"
    result = run_config(config)
    headline = result["headline"]
    print(
        f"[{config}] speedup {headline['speedup']:.2f}x, "
        f"cache hit rate {headline['cache_hit_rate']:.1%}, "
        f"PU utilization {headline['pu_utilization']:.1%}, "
        f"p50/p99 tx cycles "
        f"{headline['p50_tx_cycles']}/{headline['p99_tx_cycles']}"
    )
    print(
        f"[{config}] wall-clock: sequential "
        f"{headline['wall_sequential_tps']:.0f} tx/s, pipeline "
        f"{headline['wall_pipeline_tps']:.0f} tx/s "
        f"({headline['wall_pipeline_speedup']:.2f}x, "
        f"{result['wall']['num_workers']} workers, "
        f"{result['wall']['backend']} backend)"
    )
    print(
        f"[{config}] serve: {headline['serve_tps']:.0f} tx/s "
        f"closed-loop over sockets, p50/p99 "
        f"{headline['serve_p50_ms']:.1f}/{headline['serve_p99_ms']:.1f} "
        f"ms, efficiency {headline['serve_efficiency']:.3f} vs offline, "
        f"digest match: {result['serve'].get('digest_match')}"
    )
    if not result["serve"].get("digest_match", True):
        print("FAIL: serve state/receipts diverged from offline")
        return 1
    storage = result["storage"]
    print(
        f"[{config}] storage: durable serve "
        f"{headline['durable_tps_never']:.0f}/"
        f"{headline['durable_tps_interval']:.0f}/"
        f"{headline['durable_tps_always']:.0f} tx/s "
        f"(fsync never/interval/always, efficiency "
        f"{headline['durable_efficiency']:.3f} vs in-memory); "
        f"recovered {storage['recovery']['wal_blocks']}-block WAL in "
        f"{storage['recovery']['seconds']:.2f}s "
        f"({headline['recovery_blocks_per_second']:.0f} blocks/s, "
        f"snapshot {storage['recovery']['snapshot_height']} + "
        f"{storage['recovery']['replayed_blocks']} replayed)"
    )
    print(
        f"[{config}] replication: proxy reads "
        f"{headline['replication_read_tps_1']:.0f}/"
        f"{headline['replication_read_tps_2']:.0f}/"
        f"{headline['replication_read_tps_4']:.0f} tx/s "
        f"(1/2/4 replicas), lag p99 "
        f"{headline['replication_lag_p99_ms']:.1f} ms, writer "
        f"efficiency {headline['replication_write_efficiency']:.3f} "
        f"vs no replication"
    )
    packing = result["packing"]
    print(
        f"[{config}] packing: OCC wall "
        f"{headline['packing_wall_tps_fifo']:.0f} -> "
        f"{headline['packing_wall_tps_packed']:.0f} tx/s "
        f"({headline['packing_speedup']:.2f}x, exec ratio "
        f"{headline['packing_exec_ratio']:.2f}, parallelism "
        f"{headline['packed_parallelism']:.1f}); serve "
        f"{headline['packing_serve_tps_fifo']:.0f} -> "
        f"{headline['packing_serve_tps_packed']:.0f} tx/s; "
        f"digest parity: "
        f"{packing['digest_parity'] and packing['occ_digest_parity']}"
    )
    if not (
        packing["digest_parity"]
        and packing["occ_digest_parity"]
        and packing["serve_digest_parity"]
    ):
        print("FAIL: packed chain diverged from FIFO replay")
        return 1
    evm = result["evm"]
    print(
        f"[{config}] evm: decoded fast path "
        f"{headline['evm_legacy_tps']:.0f} -> "
        f"{headline['evm_fast_tps']:.0f} tx/s "
        f"({headline['evm_decoded_speedup']:.2f}x, "
        f"{evm['decode_cache']['programs']} programs, "
        f"{evm['decode_cache']['hits']} cache hits); "
        f"parity: {evm['receipt_parity'] and evm['digest_parity']}"
    )
    if not (evm["receipt_parity"] and evm["digest_parity"]):
        print("FAIL: decoded fast path diverged from the legacy loop")
        return 1
    merkle = result["merkle"]
    print(
        f"[{config}] merkle: durable serve keeps "
        f"{headline['merkle_efficiency']:.3f} of flat-digest throughput "
        f"({merkle['durable_tps_merkleized']:.0f} tx/s Merkleized); "
        f"proofs {merkle['proof']['count']} verified, max "
        f"{headline['merkle_proof_max_bytes']}B, "
        f"{headline['merkle_verify_ms_avg']:.3f} ms avg; witness max "
        f"{headline['merkle_witness_max_bytes']}B, "
        f"{merkle['proof']['mutations_rejected']} corruptions rejected"
    )

    occ = result["occ"]
    print(
        f"[{config}] occ (dynamic keys, no access sets): sequential "
        f"{headline['occ_sequential_tps']:.0f} tx/s, declared-DAG "
        f"{occ['dag']['tx_per_second']:.0f} tx/s, occ "
        f"{headline['occ_tps']:.0f} tx/s "
        f"({headline['occ_speedup']:.2f}x, {occ['backend']} backend, "
        f"{occ['occ']['executions']} executions / "
        f"{occ['occ']['aborts']} aborts / {occ['occ']['rounds']} rounds)"
    )

    out_dir = args.out or pathlib.Path(__file__).resolve().parent.parent
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = datetime.date.today().isoformat()
    out_path = out_dir / f"BENCH_{stamp}.json"
    out_path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    if args.write_baseline is not None:
        baseline = {}
        if args.write_baseline.exists():
            baseline = json.loads(args.write_baseline.read_text())
        # Absolute tx/s is machine-dependent; commit only the portable
        # ratios and model-cycle metrics.
        baseline[config] = {
            key: value
            for key, value in headline.items()
            if key not in (
                "wall_sequential_tps", "wall_pipeline_tps",
                "serve_tps", "serve_p50_ms", "serve_p99_ms",
                "durable_tps_never", "durable_tps_interval",
                "durable_tps_always", "recovery_blocks_per_second",
                "replication_read_tps_1", "replication_read_tps_2",
                "replication_read_tps_4", "replication_lag_p99_ms",
                "packing_wall_tps_fifo", "packing_wall_tps_packed",
                "packing_serve_tps_fifo", "packing_serve_tps_packed",
                "evm_fast_tps", "evm_legacy_tps",
                "merkle_verify_ms_avg",
                "occ_tps", "occ_sequential_tps",
            )
        }
        args.write_baseline.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"updated baseline {args.write_baseline}")

    if args.check_baseline is not None:
        return check_baseline(result, args.check_baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
