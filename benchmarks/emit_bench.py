#!/usr/bin/env python
"""Emit the headline benchmark JSON (``BENCH_<date>.json``).

Runs one instrumented block through :func:`repro.experiments.measure_block`
and writes the four headline metrics — speedup over a plain sequential
core, DB-cache hit rate, PU utilization, and p50/p99 per-transaction
latency in model cycles — plus the full :class:`repro.obs.BlockPerfReport`
for drill-down.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py --quick
    PYTHONPATH=src python benchmarks/emit_bench.py \\
        --check-baseline benchmarks/baseline.json
    PYTHONPATH=src python benchmarks/emit_bench.py --quick \\
        --write-baseline benchmarks/baseline.json

``--check-baseline`` exits non-zero when the measured speedup regresses
below 0.9x the committed baseline for the same configuration — the CI
``bench-smoke`` job's guardrail. All numbers are simulated model cycles,
deterministic for a given (config, seed), so the 0.9x slack only absorbs
intentional model changes, not machine noise.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.experiments import measure_block, measure_wall_clock  # noqa: E402

#: Benchmark configurations: name -> measure_block kwargs.
CONFIGS = {
    "quick": dict(num_transactions=20, num_pus=4, ratio=0.25, seed=7),
    "full": dict(num_transactions=64, num_pus=8, ratio=0.5, seed=7),
}

#: Wall-clock configurations: name -> measure_wall_clock kwargs (a
#: low-conflict block so the execute-once pipeline has replays to win on).
WALL_CONFIGS = {
    "quick": dict(num_transactions=64, num_workers=4, ratio=0.0, seed=7),
    "full": dict(num_transactions=64, num_workers=4, ratio=0.0, seed=7),
}

#: Serving-layer configurations: name -> run_serve_load kwargs. A real
#: socket round trip through the continuous block builder; clients ==
#: block_size_target so blocks cut the moment every in-flight tx lands.
SERVE_CONFIGS = {
    "quick": dict(transactions=192, clients=16, block_size_target=16,
                  executor="sequential", seed=7),
    "full": dict(transactions=512, clients=16, block_size_target=16,
                 executor="sequential", seed=7),
}

#: A run regresses when speedup falls below this fraction of baseline.
REGRESSION_FLOOR = 0.9

#: The execute-once pipeline must beat the seed's discover-then-execute
#: sequential path by this wall-clock factor. A same-machine ratio, so
#: the gate is portable across hardware.
WALL_SPEEDUP_FLOOR = 1.5


def run_config(name: str) -> dict:
    from repro.serve.smoke import run_serve_load

    report = measure_block(label=f"bench:{name}", **CONFIGS[name])
    wall = measure_wall_clock(**WALL_CONFIGS[name])
    serve = run_serve_load(**SERVE_CONFIGS[name])
    serve_latency = serve["load"]["latency"]
    return {
        "config": name,
        "parameters": dict(CONFIGS[name]),
        "headline": {
            "speedup": report.headline_speedup,
            "cache_hit_rate": report.cache_hit_rate,
            "pu_utilization": report.utilization,
            "p50_tx_cycles": report.p50_tx_cycles,
            "p99_tx_cycles": report.p99_tx_cycles,
            "wall_sequential_tps": wall["sequential"]["tx_per_second"],
            "wall_pipeline_tps": wall["pipeline"]["tx_per_second"],
            "wall_pipeline_speedup": wall["pipeline_speedup"],
            "serve_tps": serve["load"]["tx_per_second"],
            "serve_p50_ms": serve_latency["p50_ms"],
            "serve_p99_ms": serve_latency["p99_ms"],
            # Socket-path throughput over raw offline sequential
            # throughput of the same blocks: a same-machine ratio, so
            # it travels across hardware (1.0 = serving adds nothing).
            "serve_efficiency": (
                serve["load"]["tx_per_second"]
                / serve["offline_tx_per_second"]
                if serve.get("offline_tx_per_second") else 0.0
            ),
        },
        "report": report.to_dict(),
        "wall": wall,
        "serve": serve,
    }


def check_baseline(result: dict, baseline_path: pathlib.Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    entry = baseline.get(result["config"])
    if entry is None:
        print(
            f"baseline {baseline_path} has no entry for "
            f"'{result['config']}'; skipping check"
        )
        return 0
    measured = result["headline"]["speedup"]
    floor = REGRESSION_FLOOR * entry["speedup"]
    if measured < floor:
        print(
            f"REGRESSION: speedup {measured:.2f}x is below "
            f"{REGRESSION_FLOOR}x baseline "
            f"({entry['speedup']:.2f}x -> floor {floor:.2f}x)"
        )
        return 1
    print(
        f"ok: speedup {measured:.2f}x vs baseline "
        f"{entry['speedup']:.2f}x (floor {floor:.2f}x)"
    )
    wall_speedup = result["headline"]["wall_pipeline_speedup"]
    if wall_speedup < WALL_SPEEDUP_FLOOR:
        print(
            f"REGRESSION: wall-clock pipeline speedup {wall_speedup:.2f}x "
            f"is below the {WALL_SPEEDUP_FLOOR}x floor over the seed "
            "sequential path"
        )
        return 1
    print(
        f"ok: wall-clock pipeline speedup {wall_speedup:.2f}x "
        f"(floor {WALL_SPEEDUP_FLOOR}x)"
    )
    baseline_efficiency = entry.get("serve_efficiency")
    if baseline_efficiency:
        measured_efficiency = result["headline"]["serve_efficiency"]
        efficiency_floor = REGRESSION_FLOOR * baseline_efficiency
        if measured_efficiency < efficiency_floor:
            print(
                f"REGRESSION: serve efficiency "
                f"{measured_efficiency:.3f} is below "
                f"{REGRESSION_FLOOR}x baseline "
                f"({baseline_efficiency:.3f} -> floor "
                f"{efficiency_floor:.3f})"
            )
            return 1
        print(
            f"ok: serve efficiency {measured_efficiency:.3f} vs "
            f"baseline {baseline_efficiency:.3f} "
            f"(floor {efficiency_floor:.3f})"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the small configuration (20 txs, 4 PUs)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="directory for BENCH_<date>.json (default: repo root)",
    )
    parser.add_argument(
        "--check-baseline", type=pathlib.Path, default=None,
        metavar="BASELINE",
        help="fail when speedup < 0.9x this baseline file's entry",
    )
    parser.add_argument(
        "--write-baseline", type=pathlib.Path, default=None,
        metavar="BASELINE",
        help="update this baseline file with the measured headline",
    )
    args = parser.parse_args(argv)

    config = "quick" if args.quick else "full"
    result = run_config(config)
    headline = result["headline"]
    print(
        f"[{config}] speedup {headline['speedup']:.2f}x, "
        f"cache hit rate {headline['cache_hit_rate']:.1%}, "
        f"PU utilization {headline['pu_utilization']:.1%}, "
        f"p50/p99 tx cycles "
        f"{headline['p50_tx_cycles']}/{headline['p99_tx_cycles']}"
    )
    print(
        f"[{config}] wall-clock: sequential "
        f"{headline['wall_sequential_tps']:.0f} tx/s, pipeline "
        f"{headline['wall_pipeline_tps']:.0f} tx/s "
        f"({headline['wall_pipeline_speedup']:.2f}x, "
        f"{result['wall']['num_workers']} workers, "
        f"{result['wall']['backend']} backend)"
    )
    print(
        f"[{config}] serve: {headline['serve_tps']:.0f} tx/s "
        f"closed-loop over sockets, p50/p99 "
        f"{headline['serve_p50_ms']:.1f}/{headline['serve_p99_ms']:.1f} "
        f"ms, efficiency {headline['serve_efficiency']:.3f} vs offline, "
        f"digest match: {result['serve'].get('digest_match')}"
    )
    if not result["serve"].get("digest_match", True):
        print("FAIL: serve state/receipts diverged from offline")
        return 1

    out_dir = args.out or pathlib.Path(__file__).resolve().parent.parent
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = datetime.date.today().isoformat()
    out_path = out_dir / f"BENCH_{stamp}.json"
    out_path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    if args.write_baseline is not None:
        baseline = {}
        if args.write_baseline.exists():
            baseline = json.loads(args.write_baseline.read_text())
        # Absolute tx/s is machine-dependent; commit only the portable
        # ratios and model-cycle metrics.
        baseline[config] = {
            key: value
            for key, value in headline.items()
            if key not in (
                "wall_sequential_tps", "wall_pipeline_tps",
                "serve_tps", "serve_p50_ms", "serve_p99_ms",
            )
        }
        args.write_baseline.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"updated baseline {args.write_baseline}")

    if args.check_baseline is not None:
        return check_baseline(result, args.check_baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
