"""Bench: regenerate paper Fig. 2 (block interval + consensus TPS)."""

from repro.experiments import fig2_consensus


def test_fig2_consensus(run_experiment):
    result = run_experiment(fig2_consensus, "fig2.txt")
    # Quarterly mean intervals must all sit near the 13s protocol target.
    quarters = [
        float(row[1].rstrip("s"))
        for row in result.rows
        if str(row[0]).startswith("interval (quarter")
    ]
    assert len(quarters) == 4
    for mean in quarters:
        assert abs(mean - 13.0) < 1.5
