"""Bench: regenerate paper Table 9 (BPU vs MTPU, quad-core)."""

from repro.experiments import table9_bpu_parallel


def parse(cell):
    return float(cell.rstrip("x"))


def test_table9_bpu_parallel(run_experiment):
    result = run_experiment(table9_bpu_parallel, "table9.txt")
    bpu = [parse(row[1]) for row in result.rows]
    mtpu = [parse(row[3]) for row in result.rows]
    # MTPU beats BPU at every dependency ratio (paper's headline claim
    # for this table), and both gain as dependencies drop.
    for b, m in zip(bpu, mtpu):
        assert m > b
    assert mtpu[-1] > mtpu[0]  # 0% dep (last row) beats 100% dep
    assert bpu[-1] > bpu[0]
