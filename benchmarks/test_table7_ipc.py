"""Bench: regenerate paper Table 7 (2K-entry cache vs upper limit)."""

from repro.experiments import table7_ipc


def test_table7_ipc(run_experiment):
    result = run_experiment(table7_ipc, "table7.txt")
    for row in result.rows:
        if row[0] == "Avg":
            continue
        upper_speedup, real_speedup = row[2], row[4]
        # The finite cache can never beat the perfect-hit upper bound,
        # and the paper's loss is modest (avg -9.36%).
        assert real_speedup <= upper_speedup
        assert real_speedup > upper_speedup * 0.8
    avg_loss = float(result.row_by_label("Avg")[6].rstrip("%"))
    assert -15.0 < avg_loss <= 0.0
