"""Bench: regenerate paper Fig. 12 (ILP ablation upper bounds)."""

from repro.experiments import fig12_ilp_ablation


def test_fig12_ilp_ablation(run_experiment):
    result = run_experiment(fig12_ilp_ablation, "fig12.txt")
    avg = result.row_by_label("Avg")
    fd, df, all_on = avg[1], avg[2], avg[3]
    # Each optimization adds on top of the previous one.
    assert 1.0 < fd < df < all_on
    # Paper: the full stack averages 1.99x (per contract 1.64x-2.40x).
    assert 1.6 < all_on < 2.5
    for row in result.rows:
        if row[0] == "Avg":
            continue
        assert 1.4 < row[3] < 2.7
