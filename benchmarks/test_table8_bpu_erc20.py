"""Bench: regenerate paper Table 8 (BPU vs MTPU, ERC20 sweep)."""

from repro.experiments import table8_bpu_erc20


def parse(cell):
    return float(cell.rstrip("x"))


def test_table8_bpu_erc20(run_experiment):
    result = run_experiment(table8_bpu_erc20, "table8.txt")
    bpu = [parse(row[1]) for row in result.rows]
    mtpu = [parse(row[3]) for row in result.rows]
    # BPU collapses as the ERC20 share falls (12.82x -> 1x)...
    assert bpu[0] > 10.0
    assert abs(bpu[-1] - 1.0) < 0.05
    assert bpu == sorted(bpu, reverse=True)
    # ...while the general MTPU stays stable (paper: 2.79x -> 1.71x).
    assert max(mtpu) / min(mtpu) < 2.5
    assert min(mtpu) > 1.2
