"""Bench: regenerate paper Fig. 15 (resource utilization)."""

from repro.experiments import fig15_utilization


def test_fig15_utilization(run_experiment):
    result = run_experiment(fig15_utilization, "fig15.txt")
    st = [float(row[2].rstrip("%")) for row in result.rows]
    sync = [float(row[1].rstrip("%")) for row in result.rows]
    # Utilization collapses toward 1/num_pus = 25% as dependencies
    # serialize the block.
    assert st[0] > 90.0
    assert st[-1] < 30.0
    assert sync[0] > sync[-1]
