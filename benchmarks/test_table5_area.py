"""Bench: regenerate paper Table 5 (area/power breakdown)."""

from repro.experiments import table5_area


def test_table5_area(run_experiment):
    result = run_experiment(table5_area, "table5.txt")
    total = float(result.row_by_label("Total")[1])
    assert abs(total - 79.623) < 1.0
