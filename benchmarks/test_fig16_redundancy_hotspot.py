"""Bench: regenerate paper Fig. 16 (+redundancy, +hotspot)."""

from repro.experiments import fig16_redundancy_hotspot


def test_fig16_redundancy_hotspot(run_experiment):
    result = run_experiment(fig16_redundancy_hotspot, "fig16.txt")
    re1 = result.headers.index("ST+Re x1")
    hot1 = result.headers.index("ST+Re+Hot x1")
    re4 = result.headers.index("ST+Re x4")
    hot4 = result.headers.index("ST+Re+Hot x4")
    for row in result.rows:
        # Paper 16(a): reuse helps even on a single PU.
        assert row[re1] > 1.3
        # Paper 16(b): hotspot optimization adds on top of reuse.
        assert row[hot1] > row[re1]
        assert row[hot4] > row[re4] * 0.95
    # And 4 PUs beat 1 PU when parallelism exists.
    assert result.rows[0][re4] > result.rows[0][re1] * 2
