"""Bench: regenerate paper Table 6 (instruction breakdown of TOP8)."""

from repro.experiments import table6_instruction_mix


def test_table6_instruction_mix(run_experiment):
    result = run_experiment(table6_instruction_mix, "table6.txt")
    avg = result.row_by_label("Avg (ours)")
    stack_index = result.headers.index("Stack")
    stack_share = float(avg[stack_index].rstrip("%"))
    # Paper: stack ops average 62.24%; ours must dominate comparably.
    assert stack_share > 40.0
    for row in result.rows:
        if row[0] in ("Avg (ours)", "Avg (paper)"):
            continue
        assert float(row[stack_index].rstrip("%")) > 40.0
