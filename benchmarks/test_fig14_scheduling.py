"""Bench: regenerate paper Fig. 14 (speedup vs dependency ratio)."""

from repro.experiments import fig14_scheduling_speedup


def test_fig14_scheduling(run_experiment):
    result = run_experiment(fig14_scheduling_speedup, "fig14.txt")
    ratios = [float(row[0]) for row in result.rows]
    st4 = [row[result.headers.index("ST x4")] for row in result.rows]
    sync4 = [row[result.headers.index("sync x4")] for row in result.rows]
    # Overall falling trend (compare low- vs high-dependency endpoints).
    assert st4[0] > st4[-1]
    assert sync4[0] > sync4[-1]
    # At the conflict-free end, 4 PUs deliver close-to-linear speedup.
    assert st4[0] > 3.0
    # At full dependency, parallelism evaporates.
    assert st4[-1] < 1.5
