"""Benchmark harness plumbing.

Each benchmark regenerates one of the paper's tables/figures via
:mod:`repro.experiments`, times the regeneration once with
pytest-benchmark (``pedantic``, single round — the interesting output is
the table, not the wall time), prints the rendered table, and persists it
under ``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def run_experiment(benchmark, results_dir, capsys):
    """Run an experiment once under the benchmark timer and persist it."""

    def runner(experiment_fn, filename: str, **kwargs):
        result = benchmark.pedantic(
            experiment_fn, kwargs=kwargs, rounds=1, iterations=1
        )
        rendered = result.render()
        (results_dir / filename).write_text(rendered + "\n")
        with capsys.disabled():
            print("\n" + rendered)
        benchmark.extra_info["experiment"] = result.experiment_id
        return result

    return runner
