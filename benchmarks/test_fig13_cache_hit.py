"""Bench: regenerate paper Fig. 13 (DB-cache hit ratio vs size)."""

from repro.experiments import fig13_cache_hit_ratio


def test_fig13_cache_hit(run_experiment):
    result = run_experiment(fig13_cache_hit_ratio, "fig13.txt")
    last = result.headers[-1]  # 2048 entries
    assert last == "2048"
    for row in result.rows:
        ratios = [float(cell.rstrip("%")) for cell in row[1:]]
        # Monotone non-decreasing in cache size; ends in the paper's
        # 70%-95% plateau band.
        assert all(b >= a - 0.2 for a, b in zip(ratios, ratios[1:]))
        assert 65.0 < ratios[-1] < 95.0
    mixed = result.row_by_label("Mixed TOP8")
    mixed_ratios = [float(cell.rstrip("%")) for cell in mixed[1:]]
    # The mixed workload needs the large cache (capacity-limited ramp).
    assert mixed_ratios[0] < 20.0
    assert mixed_ratios[-1] > 70.0
