"""Bench: design-choice ablations (DESIGN.md sensitivity studies)."""

from repro.experiments import (
    ablation_pu_scaling,
    ablation_selection_overhead,
    ablation_state_buffer,
    ablation_unit_capacity,
    ablation_window_size,
)


def test_ablation_window_size(run_experiment):
    result = run_experiment(ablation_window_size, "ablation_window.txt")
    speedups = result.column("speedup")
    # Returns diminish: the largest window buys <5% over window=8.
    assert speedups[-1] <= speedups[2] * 1.05
    assert min(speedups) > 2.0


def test_ablation_state_buffer(run_experiment):
    result = run_experiment(ablation_state_buffer, "ablation_sb.txt")
    cycles = result.column("cycles")
    # Larger buffers never hurt; the knee arrives early.
    assert cycles == sorted(cycles, reverse=True)
    assert cycles[-1] <= cycles[0]


def test_ablation_unit_capacity(run_experiment):
    result = run_experiment(ablation_unit_capacity, "ablation_uc.txt")
    speedups = result.column("speedup")
    # Every added port helps monotonically.
    assert speedups == sorted(speedups)
    # Even the paper-literal single-field line beats no DB cache.
    assert speedups[0] > 1.5


def test_ablation_selection_overhead(run_experiment):
    result = run_experiment(
        ablation_selection_overhead, "ablation_so.txt"
    )
    speedups = result.column("speedup")
    assert speedups == sorted(speedups, reverse=True)
    # At the paper's O(n)-bit-logic scale (a few cycles) the cost is
    # negligible (<3%); at 128 cycles it visibly is not.
    assert speedups[1] > speedups[0] * 0.97
    assert speedups[-1] < speedups[0] * 0.8


def test_ablation_pu_scaling(run_experiment):
    result = run_experiment(ablation_pu_scaling, "ablation_pus.txt")
    speedups = result.column("speedup")
    # Monotone scaling with diminishing per-PU efficiency.
    assert speedups == sorted(speedups)
    per_pu_4 = speedups[2] / 4
    per_pu_16 = speedups[4] / 16
    assert per_pu_16 < per_pu_4
