"""Bench: the abstract's 3.53x-16.19x overall acceleration claim."""

from repro.experiments import headline_speedup


def test_headline_speedup(run_experiment):
    result = run_experiment(headline_speedup, "headline.txt")
    range_row = result.row_by_label("range")
    low = float(range_row[1].rstrip("x"))
    high = float(range_row[2].rstrip("x"))
    # Paper: 3.53x-16.19x. Same order of magnitude at both ends.
    assert 1.8 < low < 6.0
    assert 9.0 < high < 25.0
