"""Bench: regenerate paper Table 2 (bytecode share of context data)."""

from repro.experiments import table2_bytecode_share


def test_table2_bytecode_share(run_experiment):
    result = run_experiment(table2_bytecode_share, "table2.txt")
    # Paper: bytecode dominates the loaded context (86%-95%); our
    # smaller synthetic contracts must still show clear dominance.
    for row in result.rows:
        ours = float(row[4].rstrip("%"))
        assert ours > 60.0
