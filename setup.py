"""Legacy setup shim.

The reference environment has setuptools but no `wheel` package, so PEP 660
editable installs (`pip install -e .`) cannot build a wheel. This shim lets
`python setup.py develop` provide the editable install instead; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
