"""Serve-suite fixtures: optional durable variant of every serve test.

Setting ``REPRO_SERVE_DATA_DIR=1`` re-runs the whole serve suite with a
durable store attached: every ``ServeConfig`` constructed without an
explicit ``data_dir`` gets a fresh temporary directory (fsync=never, so
the suite's timing assumptions hold). CI runs the suite both ways; the
tests themselves don't change.
"""

import os
import shutil
import tempfile

import pytest


@pytest.fixture(autouse=True)
def serve_data_dir_variant(monkeypatch):
    if not os.environ.get("REPRO_SERVE_DATA_DIR"):
        yield None
        return

    from repro.serve import config as serve_config

    created: list[str] = []
    original_post_init = serve_config.ServeConfig.__post_init__

    def durable_post_init(self):
        if self.data_dir is None:
            self.data_dir = tempfile.mkdtemp(prefix="repro-serve-t1-")
            self.fsync = "never"
            created.append(self.data_dir)
        original_post_init(self)

    monkeypatch.setattr(
        serve_config.ServeConfig, "__post_init__", durable_post_init
    )
    yield created
    for path in created:
        shutil.rmtree(path, ignore_errors=True)
