"""Wire codec round-trips and framing errors."""

import pytest

from repro.chain import LogEntry, Receipt, Transaction
from repro.serve import protocol
from repro.serve.errors import INVALID_REQUEST, PARSE_ERROR, RpcError


class TestFraming:
    def test_frame_round_trip(self):
        obj = protocol.request("repro_stats", {"a": 1}, request_id=7)
        line = protocol.encode_frame(obj)
        assert line.endswith(b"\n")
        assert protocol.decode_frame(line) == obj

    def test_frame_is_single_line(self):
        frame = protocol.encode_frame(
            protocol.response(1, {"text": "a\nb"})
        )
        assert frame.count(b"\n") == 1

    def test_bad_json_is_parse_error(self):
        with pytest.raises(RpcError) as err:
            protocol.decode_frame(b"{nope}\n")
        assert err.value.code == PARSE_ERROR

    def test_non_object_rejected(self):
        with pytest.raises(RpcError) as err:
            protocol.decode_frame(b"[1,2]\n")
        assert err.value.code == INVALID_REQUEST


class TestTxCodec:
    def test_tx_round_trip(self):
        tx = Transaction(sender=0xA11CE, to=0xB0B, nonce=3,
                         value=17, data=b"\x01\x02", gas_limit=60_000)
        wire = protocol.tx_to_wire(tx)
        back = protocol.tx_from_wire(wire)
        assert back.hash() == tx.hash()

    def test_undecodable_tx_is_typed_error(self):
        with pytest.raises(RpcError) as err:
            protocol.tx_from_wire("zz-not-hex")
        assert err.value.code == INVALID_REQUEST


class TestReceiptCodec:
    def test_receipt_round_trip(self):
        receipt = Receipt(
            tx_hash=b"\x01" * 32,
            success=False,
            gas_used=21_412,
            logs=(LogEntry(address=5, topics=(1, 2), data=b"\xff"),),
            output=b"\xaa",
            error="revert",
        )
        wire = protocol.receipt_to_wire(receipt, 9, 2)
        assert wire["blockHeight"] == 9 and wire["txIndex"] == 2
        assert protocol.receipt_from_wire(wire) == receipt
