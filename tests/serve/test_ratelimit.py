"""Token-bucket rate limiting with an explicit fake clock."""

from repro.serve.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.1)  # exactly one token at 10 tokens/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_acquire() for _ in range(3)] == [
            True, True, False,
        ]

    def test_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.retry_after() == 0.0
        bucket.try_acquire()
        assert abs(bucket.retry_after() - 0.25) < 1e-9

    def test_failed_acquire_spends_nothing(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        bucket.try_acquire()
        clock.advance(0.5)
        assert not bucket.try_acquire()
        clock.advance(0.5)  # the half token from before must survive
        assert bucket.try_acquire()


class TestRateLimiter:
    def test_clients_are_independent(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.try_acquire("a")
        assert limiter.try_acquire("b")
        assert not limiter.try_acquire("a")

    def test_prunes_idle_full_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(
            rate=100.0, burst=1, clock=clock, prune_above=4
        )
        for i in range(4):
            limiter.try_acquire(f"client-{i}")
        clock.advance(10.0)  # everyone refilled to burst
        limiter.try_acquire("fresh")
        assert len(limiter._buckets) <= 2  # pruned + the new client

    def test_active_clients_survive_prune(self):
        clock = FakeClock()
        limiter = RateLimiter(
            rate=0.001, burst=2, clock=clock, prune_above=2
        )
        limiter.try_acquire("busy")  # below burst, must not be pruned
        limiter.try_acquire("idle-ish")
        limiter.try_acquire("new")
        assert not limiter.bucket("busy").tokens == 2.0
