"""Socket-level behaviour of conflict-aware packing.

Over real connections: a hot-key flood cannot starve a conflicting
transaction past the aging bound, resubmission stays idempotent while
packing holds transactions deferred, and the stats surface reports the
packing counters.
"""

import asyncio

import pytest

from repro.chain.node import Node
from repro.chain.transaction import Transaction
from repro.serve import (
    ADMISSION_REJECTED,
    RpcClient,
    RpcClientError,
    RpcServer,
    ServeConfig,
)
from repro.serve import protocol

HOT = 0xAB00_0001  # one shared recipient: every flood tx conflicts


def make_config(**overrides):
    defaults = dict(
        host="127.0.0.1",
        port=0,
        block_size_target=4,
        gas_target=None,
        block_interval_ms=5.0,
        executor="sequential",
        packing="conflict_aware",
        packing_lane_depth=2,
        packing_aging_bound=2,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def booted(deployment, config):
    node = Node(state=deployment.state.copy(),
                per_sender_cap=config.per_sender_cap)
    server = RpcServer(node=node, config=config)
    await server.start()
    client = await RpcClient.connect(config.host, config.port)
    return server, client


def send_params(tx, **extra):
    return {"tx": protocol.tx_to_wire(tx), **extra}


def hot_tx(deployment, account_index, nonce=1, to=HOT):
    return Transaction(
        sender=deployment.accounts[account_index], to=to,
        value=1, nonce=nonce, gas_limit=50_000,
    )


def test_hot_flood_cannot_starve_a_conflicting_transaction(deployment):
    """The victim conflicts with every flood transaction; more flood
    keeps arriving *after* it. It must still commit within its backlog
    rank + 1 blocks — the aging bound's socket-level contract."""
    flood_before, flood_after = 24, 24

    async def run():
        server, client = await booted(deployment, make_config())
        try:
            for i in range(flood_before):
                await client.call(
                    "repro_sendTransaction",
                    send_params(hot_tx(deployment, i), wait=False),
                )
            victim = hot_tx(deployment, 63)
            waiter = asyncio.create_task(client.call(
                "repro_sendTransaction", send_params(victim)
            ))
            # The flood continues behind the victim while it waits.
            for i in range(flood_after):
                await client.call(
                    "repro_sendTransaction",
                    send_params(hot_tx(deployment, 32 + i), wait=False),
                )
            receipt = await asyncio.wait_for(waiter, timeout=30.0)
            stats = await client.call("repro_stats")
        finally:
            await client.close()
            await server.shutdown()
        return receipt, stats

    receipt, stats = asyncio.run(run())
    assert receipt["success"] is True
    # Backlog rank at admission was flood_before: even if every cut
    # frees only one older transaction, the victim is in by then.
    assert receipt["blockHeight"] <= flood_before + 1
    # The run actually exercised the deferral path.
    assert stats["packing"] == "conflict_aware"
    assert stats["packedDeferred"] > 0
    assert stats["packedBlocks"] > 0


def test_resubmission_after_commit_is_idempotent(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        tx = hot_tx(deployment, 0)
        try:
            first = await client.call(
                "repro_sendTransaction", send_params(tx)
            )
            second = await client.call(
                "repro_sendTransaction", send_params(tx)
            )
        finally:
            await client.close()
            await server.shutdown()
        return first, second

    first, second = asyncio.run(run())
    assert first["success"] is True
    assert second == first  # byte-identical wire receipt, no re-execution


def test_duplicate_while_deferred_is_refused(deployment):
    """A transaction sitting deferred in the pool is still 'pending':
    resubmitting it must be refused, not double-admitted."""
    config = make_config(
        block_size_target=100, block_interval_ms=10_000.0,
    )

    async def run():
        server, client = await booted(deployment, config)
        tx = hot_tx(deployment, 0)
        try:
            await client.call(
                "repro_sendTransaction", send_params(tx, wait=False)
            )
            with pytest.raises(RpcClientError) as err:
                await client.call(
                    "repro_sendTransaction", send_params(tx, wait=False)
                )
        finally:
            await client.close()
            await server.shutdown()
        return err.value

    err = asyncio.run(run())
    assert err.code == ADMISSION_REJECTED
