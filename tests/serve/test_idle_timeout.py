"""Idle-connection reaping, driven by a fake clock (no sleeps)."""

import asyncio

from repro.chain.node import Node
from repro.serve import RpcClient, RpcServer, ServeConfig


async def booted(deployment, idle_timeout_s=30.0):
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        block_size_target=4,
        gas_target=None,
        idle_timeout_s=idle_timeout_s,
    )
    node = Node(state=deployment.state.copy())
    server = RpcServer(node=node, config=config)
    await server.start()
    now = [1000.0]
    server._clock = lambda: now[0]
    return server, now


def test_idle_connection_reaped_after_timeout(deployment):
    async def run():
        server, now = await booted(deployment)
        idle = await RpcClient.connect(
            "127.0.0.1", server.config.port
        )
        active = await RpcClient.connect(
            "127.0.0.1", server.config.port
        )
        try:
            await idle.call("repro_stats")
            await active.call("repro_stats")
            assert len(server._connections) == 2

            # Time passes; only one client keeps talking.
            now[0] += 20.0
            await active.call("repro_stats")
            now[0] += 15.0  # idle is now 35s silent; active only 15s
            reaped = server._reap_idle()
            assert reaped == 1
            assert server.idle_drops == 1
            assert len(server._connections) == 1

            # The survivor still works; the reaped socket is dead.
            stats = await active.call("repro_stats")
            assert stats["idleDrops"] == 1
            try:
                await asyncio.wait_for(
                    idle.call("repro_stats"), timeout=5.0
                )
            except (ConnectionError, asyncio.TimeoutError):
                pass
            else:
                raise AssertionError(
                    "reaped connection still answered"
                )
        finally:
            await idle.close()
            await active.close()
            await server.shutdown()

    asyncio.run(run())


def test_subscribers_are_exempt_from_idle_reaping(deployment):
    async def run():
        server, now = await booted(deployment)
        subscriber = await RpcClient.connect(
            "127.0.0.1", server.config.port
        )
        try:
            await subscriber.call(
                "repro_subscribe", {"topic": "newHeads"}
            )
            now[0] += 10_000.0  # hours of push-only silence
            assert server._reap_idle() == 0
            assert server.idle_drops == 0
            assert len(server._connections) == 1
            # Still a live subscription, not a zombie entry.
            assert len(server._subscriptions) == 1
        finally:
            await subscriber.close()
            await server.shutdown()

    asyncio.run(run())


def test_no_timeout_configured_never_reaps(deployment):
    async def run():
        config = ServeConfig(
            host="127.0.0.1", port=0, block_size_target=4,
            gas_target=None,
        )
        node = Node(state=deployment.state.copy())
        server = RpcServer(node=node, config=config)
        await server.start()
        client = await RpcClient.connect(
            "127.0.0.1", server.config.port
        )
        try:
            await client.call("repro_stats")
            server._clock = lambda: 10**9
            assert server._reap_idle() == 0
            assert server._reaper is None  # no reaper task either
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())
