"""Socket-level RPC server tests: typed refusals, deadlines, drain."""

import asyncio

import pytest

from repro.chain.node import Node
from repro.serve import (
    ADMISSION_REJECTED,
    BUSY,
    DEADLINE_EXCEEDED,
    RATE_LIMITED,
    SHUTTING_DOWN,
    RpcClient,
    RpcClientError,
    RpcServer,
    ServeConfig,
)
from repro.serve import protocol
from repro.serve.errors import INVALID_PARAMS, METHOD_NOT_FOUND
from repro.serve.loadgen import make_transactions


def make_config(**overrides):
    defaults = dict(
        host="127.0.0.1",
        port=0,
        block_size_target=4,
        gas_target=None,
        block_interval_ms=25.0,
        executor="sequential",
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def make_server(deployment, config):
    node = Node(state=deployment.state.copy(),
                per_sender_cap=config.per_sender_cap)
    return RpcServer(node=node, config=config)


async def booted(deployment, config):
    server = make_server(deployment, config)
    await server.start()
    client = await RpcClient.connect(config.host, config.port)
    return server, client


def send_params(tx, **extra):
    return {"tx": protocol.tx_to_wire(tx), **extra}


def test_send_transaction_round_trip(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        tx = make_transactions(deployment, 1)[0]
        try:
            receipt = await client.call(
                "repro_sendTransaction", send_params(tx)
            )
            fetched = await client.call(
                "repro_getReceipt", {"txHash": tx.hash().hex()}
            )
            balance = await client.call(
                "repro_getBalance", {"address": hex(tx.sender)}
            )
            stats = await client.call("repro_stats")
        finally:
            await client.close()
            await server.shutdown()
        return receipt, fetched, balance, stats

    receipt, fetched, balance, stats = asyncio.run(run())
    assert receipt["success"] is True
    assert receipt["blockHeight"] == 1 and receipt["txIndex"] == 0
    assert fetched == receipt
    assert isinstance(balance, int)
    assert stats["txsCommitted"] == 1
    assert stats["blocksBuilt"] == 1


def test_unknown_receipt_is_null(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        try:
            return await client.call(
                "repro_getReceipt", {"txHash": "ab" * 32}
            )
        finally:
            await client.close()
            await server.shutdown()

    assert asyncio.run(run()) is None


def test_saturated_ingress_gets_typed_busy(deployment):
    config = make_config(
        max_pending=2, block_size_target=100,
        block_interval_ms=10_000.0,
    )

    async def run():
        server, client = await booted(deployment, config)
        txs = make_transactions(deployment, 3)
        try:
            for tx in txs[:2]:
                await client.call(
                    "repro_sendTransaction",
                    send_params(tx, wait=False),
                )
            with pytest.raises(RpcClientError) as err:
                await client.call(
                    "repro_sendTransaction", send_params(txs[2])
                )
            stats = await client.call("repro_stats")
        finally:
            await client.close()
            await server.shutdown()
        return err.value, stats

    err, stats = asyncio.run(run())
    assert err.code == BUSY
    assert err.data["max_pending"] == 2
    assert stats["busyRejects"] == 1
    assert stats["queueDepth"] == 2  # the refused tx was never buffered


def test_rate_limit_enforced_per_client(deployment):
    config = make_config(
        rate_limit=0.001, rate_burst=2,
        block_size_target=100, block_interval_ms=10_000.0,
    )

    async def run():
        server, client = await booted(deployment, config)
        txs = make_transactions(deployment, 3)
        try:
            for tx in txs[:2]:
                await client.call(
                    "repro_sendTransaction",
                    send_params(tx, wait=False),
                )
            with pytest.raises(RpcClientError) as err:
                await client.call(
                    "repro_sendTransaction",
                    send_params(txs[2], wait=False),
                )
            stats = await client.call("repro_stats")
        finally:
            await client.close()
            await server.shutdown()
        return err.value, stats

    err, stats = asyncio.run(run())
    assert err.code == RATE_LIMITED
    assert err.data["retry_after_s"] > 0
    assert stats["rateLimitRejects"] == 1


def test_deadline_cancels_wait_not_transaction(deployment):
    config = make_config(
        block_size_target=100, block_interval_ms=10_000.0
    )

    async def run():
        server, client = await booted(deployment, config)
        tx = make_transactions(deployment, 1)[0]
        try:
            with pytest.raises(RpcClientError) as err:
                await client.call(
                    "repro_sendTransaction",
                    send_params(tx, deadline_ms=50),
                )
            # The wait died; the transaction must still be admitted.
            assert server.builder.depth == 1
            unresolved = await client.call(
                "repro_getReceipt", {"txHash": tx.hash().hex()}
            )
        finally:
            await client.close()
            await server.shutdown()
        # Drain committed it; the receipt is now fetchable server-side.
        committed = server.builder.committed.get(tx.hash())
        return err.value, unresolved, committed, server.stats()

    err, unresolved, committed, stats = asyncio.run(run())
    assert err.code == DEADLINE_EXCEEDED
    assert unresolved is None
    assert committed is not None and committed.receipt.success
    assert stats["deadlineMisses"] == 1


def test_shutdown_drains_inflight_waits(deployment):
    config = make_config(
        block_size_target=100, block_interval_ms=10_000.0
    )

    async def run():
        server, client = await booted(deployment, config)
        txs = make_transactions(deployment, 4)
        waits = [
            asyncio.ensure_future(client.call(
                "repro_sendTransaction", send_params(tx)
            ))
            for tx in txs
        ]
        await asyncio.sleep(0.05)  # let all four reach the builder
        assert server.builder.depth == 4
        await server.shutdown()
        # Drain must have flushed the partial block and answered
        # every in-flight wait before the transports closed.
        receipts = await asyncio.wait_for(
            asyncio.gather(*waits), timeout=5.0
        )
        await client.close()
        return receipts, server.stats()

    receipts, stats = asyncio.run(run())
    assert len(receipts) == 4
    assert all(r["success"] for r in receipts)
    assert stats["txsCommitted"] == 4
    assert stats["queueDepth"] == 0


def test_draining_server_refuses_new_transactions(deployment):
    config = make_config(
        block_size_target=100, block_interval_ms=10_000.0
    )

    async def run():
        server, client = await booted(deployment, config)
        server._shutting_down = True  # drain announced, listener open
        tx = make_transactions(deployment, 1)[0]
        try:
            with pytest.raises(RpcClientError) as err:
                await client.call(
                    "repro_sendTransaction", send_params(tx)
                )
        finally:
            await client.close()
            await server.shutdown()
        return err.value

    assert asyncio.run(run()).code == SHUTTING_DOWN


def test_duplicate_resubmission_serves_committed_receipt(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        tx = make_transactions(deployment, 1)[0]
        try:
            first = await client.call(
                "repro_sendTransaction", send_params(tx)
            )
            # Retrying a committed transaction is idempotent.
            second = await client.call(
                "repro_sendTransaction", send_params(tx)
            )
        finally:
            await client.close()
            await server.shutdown()
        return first, second

    first, second = asyncio.run(run())
    assert first == second


def test_duplicate_while_pending_attaches_to_wait(deployment):
    config = make_config(
        block_size_target=2, block_interval_ms=10_000.0
    )

    async def run():
        server, client = await booted(deployment, config)
        txs = make_transactions(deployment, 2)
        try:
            await client.call(
                "repro_sendTransaction", send_params(txs[0], wait=False)
            )
            # Same hash again, this time waiting: it must attach to the
            # pending future, and resolve once tx #2 completes the block.
            wait = asyncio.ensure_future(client.call(
                "repro_sendTransaction", send_params(txs[0])
            ))
            await asyncio.sleep(0.05)
            assert not wait.done()
            await client.call(
                "repro_sendTransaction", send_params(txs[1])
            )
            receipt = await asyncio.wait_for(wait, timeout=5.0)
        finally:
            await client.close()
            await server.shutdown()
        return receipt

    receipt = asyncio.run(run())
    assert receipt["success"] and receipt["blockHeight"] == 1


def test_duplicate_without_wait_is_admission_rejected(deployment):
    config = make_config(
        block_size_target=100, block_interval_ms=10_000.0
    )

    async def run():
        server, client = await booted(deployment, config)
        tx = make_transactions(deployment, 1)[0]
        try:
            await client.call(
                "repro_sendTransaction", send_params(tx, wait=False)
            )
            with pytest.raises(RpcClientError) as err:
                await client.call(
                    "repro_sendTransaction", send_params(tx, wait=False)
                )
        finally:
            await client.close()
            await server.shutdown()
        return err.value

    err = asyncio.run(run())
    assert err.code == ADMISSION_REJECTED
    assert err.data["reason"] == "DuplicateTransactionError"


def test_resubmission_of_in_flight_block_executes_once(deployment):
    """A retry while the tx is mid-block (the DEADLINE_EXCEEDED retry
    path) must attach to the existing wait, never re-admit and
    double-execute."""
    import threading

    config = make_config(block_size_target=1)

    async def run():
        server, client = await booted(deployment, config)
        tx = make_transactions(deployment, 1)[0]
        recipient = tx.to
        before = server.node.state._accounts[recipient].balance
        release = threading.Event()
        real = server.builder._build_and_execute

        def gated(txs, *args, **kwargs):
            release.wait(timeout=5.0)
            return real(txs, *args, **kwargs)

        server.builder._build_and_execute = gated
        try:
            await client.call(
                "repro_sendTransaction", send_params(tx, wait=False)
            )
            # Wait until the builder pulled the tx out of the mempool:
            # it is now in neither the pool nor `committed`.
            for _ in range(100):
                if len(server.node.mempool) == 0:
                    break
                await asyncio.sleep(0.01)
            assert server.builder._in_flight == 1
            retry = asyncio.ensure_future(client.call(
                "repro_sendTransaction", send_params(tx)
            ))
            await asyncio.sleep(0.05)
            assert not retry.done()  # attached, not re-admitted
            release.set()
            receipt = await asyncio.wait_for(retry, timeout=5.0)
            stats = await client.call("repro_stats")
            after = server.node.state._accounts[recipient].balance
        finally:
            release.set()
            await client.close()
            await server.shutdown()
        return receipt, stats, after - before

    receipt, stats, delta = asyncio.run(run())
    assert receipt["success"] is True
    # Executed exactly once: one block, one commit, value applied once.
    assert stats["txsCommitted"] == 1
    assert stats["blocksBuilt"] == 1
    assert stats["chainHeight"] == 1
    tx_value = make_transactions(deployment, 1)[0].value
    assert delta == tx_value


def test_slow_subscriber_is_dropped_not_buffered(deployment):
    class FakeTransport:
        def __init__(self, size):
            self.size = size

        def get_write_buffer_size(self):
            return self.size

    class FakeWriter:
        def __init__(self, size):
            self.transport = FakeTransport(size)
            self.frames = []

        def is_closing(self):
            return False

        def write(self, frame):
            self.frames.append(frame)

    config = make_config(max_subscriber_buffer=1024)

    async def run():
        server, client = await booted(deployment, config)
        stalled = FakeWriter(size=4096)   # over the cap: must be dropped
        healthy = FakeWriter(size=0)
        server._subscriptions[101] = stalled
        server._subscriptions[102] = healthy
        tx = make_transactions(deployment, 1)[0]
        try:
            await client.call("repro_sendTransaction", send_params(tx))
            # Captured before shutdown() clears the subscription table.
            still_subscribed = set(server._subscriptions)
        finally:
            await client.close()
            await server.shutdown()
        return server, stalled, healthy, still_subscribed

    server, stalled, healthy, still_subscribed = asyncio.run(run())
    assert stalled.frames == []
    assert len(healthy.frames) == 1
    assert still_subscribed == {102}
    assert server.subscription_drops == 1


def test_subscribe_new_heads(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        tx = make_transactions(deployment, 1)[0]
        try:
            sub = await client.call(
                "repro_subscribe", {"topic": "newHeads"}
            )
            await client.call("repro_sendTransaction", send_params(tx))
            note = await client.next_notification(timeout=5.0)
        finally:
            await client.close()
            await server.shutdown()
        return sub, note

    sub, note = asyncio.run(run())
    assert sub["subscription"] == 1
    assert note["method"] == "repro_subscription"
    head = note["params"]["result"]
    assert head["height"] == 1 and head["transactions"] == 1


def test_protocol_errors_are_typed(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        try:
            errors = {}
            for name, method, params in [
                ("unknown", "repro_noSuchMethod", {}),
                ("bad_address", "repro_getBalance", {"address": "zz"}),
                ("bad_hash", "repro_getReceipt", {"txHash": 7}),
                ("bad_topic", "repro_subscribe", {"topic": "logs"}),
            ]:
                with pytest.raises(RpcClientError) as err:
                    await client.call(method, params)
                errors[name] = err.value.code
        finally:
            await client.close()
            await server.shutdown()
        return errors

    errors = asyncio.run(run())
    assert errors["unknown"] == METHOD_NOT_FOUND
    assert errors["bad_address"] == INVALID_PARAMS
    assert errors["bad_hash"] == INVALID_PARAMS
    assert errors["bad_topic"] == INVALID_PARAMS
