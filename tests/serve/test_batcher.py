"""BlockBuilder: cut triggers, fallback degradation, drain semantics."""

import asyncio

import pytest

from repro.chain.node import Node
from repro.serve.batcher import BlockBuilder
from repro.serve.config import ServeConfig
from repro.serve.loadgen import make_transactions


def build(deployment, **overrides):
    defaults = dict(
        block_size_target=4,
        gas_target=None,
        block_interval_ms=10_000.0,  # effectively "never" unless tested
        executor="sequential",
    )
    defaults.update(overrides)
    config = ServeConfig(**defaults)
    node = Node(state=deployment.state.copy(),
                per_sender_cap=config.per_sender_cap)
    return BlockBuilder(node, config)


def test_size_target_cuts_without_waiting_window(deployment):
    async def run():
        builder = build(deployment, block_size_target=4)
        builder.start()
        futures = [
            builder.submit(tx)
            for tx in make_transactions(deployment, 4)
        ]
        # The 10s window must NOT gate this: size target is hit.
        committed = await asyncio.wait_for(
            asyncio.gather(*futures), timeout=5.0
        )
        await builder.drain_and_stop()
        return builder, committed

    builder, committed = asyncio.run(run())
    assert builder.blocks_built == 1
    assert builder.txs_committed == 4
    assert [c.tx_index for c in committed] == [0, 1, 2, 3]
    assert all(c.block_height == 1 for c in committed)
    assert builder.depth == 0


def test_time_window_cuts_partial_block(deployment):
    async def run():
        builder = build(
            deployment, block_size_target=100, block_interval_ms=25.0
        )
        builder.start()
        futures = [
            builder.submit(tx)
            for tx in make_transactions(deployment, 2)
        ]
        committed = await asyncio.wait_for(
            asyncio.gather(*futures), timeout=5.0
        )
        await builder.drain_and_stop()
        return builder, committed

    builder, committed = asyncio.run(run())
    # Neither size nor gas target was reachable; only the window fired.
    assert builder.blocks_built == 1
    assert len(committed) == 2


def test_gas_target_cuts_and_drain_flushes_rest(deployment):
    async def run():
        builder = build(
            deployment, block_size_target=100, gas_target=100_000
        )
        builder.start()
        txs = make_transactions(deployment, 3)  # 50k gas limit each
        futures = [builder.submit(tx) for tx in txs]
        # Two transactions reach the 100k gas target; the third waits.
        first_two = await asyncio.wait_for(
            asyncio.gather(*futures[:2]), timeout=5.0
        )
        assert not futures[2].done()
        # Drain must flush the leftover instead of waiting out the
        # 10-second window.
        await asyncio.wait_for(builder.drain_and_stop(), timeout=5.0)
        return builder, first_two, futures[2].result()

    builder, first_two, last = asyncio.run(run())
    assert {c.block_height for c in first_two} == {1}
    assert last.block_height == 2
    assert builder.blocks_built == 2
    assert len(builder.node.mempool) == 0


def test_executor_failure_degrades_to_sequential(deployment):
    async def run():
        builder = build(deployment, block_size_target=4)

        def explode(block):
            raise RuntimeError("all PUs dead")

        builder._execute = explode
        builder.start()
        futures = [
            builder.submit(tx)
            for tx in make_transactions(deployment, 4)
        ]
        committed = await asyncio.wait_for(
            asyncio.gather(*futures), timeout=5.0
        )
        await builder.drain_and_stop()
        return builder, committed

    builder, committed = asyncio.run(run())
    # Degraded, not wedged: every future resolved sequentially.
    assert builder.sequential_fallbacks == 1
    assert builder.blocks_built == 1
    assert all(c.receipt.success for c in committed)


def test_fallback_state_matches_clean_sequential(deployment):
    txs = make_transactions(deployment, 4)

    async def run(sabotage: bool):
        builder = build(deployment, block_size_target=4)
        if sabotage:
            real = builder._execute
            calls = {"n": 0}

            def flaky(block):
                calls["n"] += 1
                if calls["n"] == 1:
                    # Dirty the state first: the revert must erase this.
                    builder.node.state.set_balance(0xDEAD, 123)
                    raise RuntimeError("mid-block executor death")
                return real(block)

            builder._execute = flaky
        builder.start()
        futures = [builder.submit(tx) for tx in txs]
        await asyncio.wait_for(asyncio.gather(*futures), timeout=5.0)
        await builder.drain_and_stop()
        return builder.node.state.state_digest()

    clean = asyncio.run(run(sabotage=False))
    degraded = asyncio.run(run(sabotage=True))
    assert clean == degraded


def test_drain_and_stop_idles_cleanly_when_empty(deployment):
    async def run():
        builder = build(deployment)
        builder.start()
        await asyncio.sleep(0)  # let the loop park on the wake event
        await asyncio.wait_for(builder.drain_and_stop(), timeout=5.0)
        return builder

    builder = asyncio.run(run())
    assert builder.blocks_built == 0


def test_submit_rejection_propagates(deployment):
    from repro.chain.mempool import DuplicateTransactionError

    async def run():
        builder = build(deployment, block_size_target=100)
        builder.start()
        tx = make_transactions(deployment, 1)[0]
        builder.submit(tx)
        with pytest.raises(DuplicateTransactionError):
            builder.submit(tx)
        await builder.drain_and_stop()

    asyncio.run(run())


def test_in_flight_hash_is_refused_even_after_take(deployment):
    # Once take() pulls a tx into a block the mempool forgets its hash,
    # but the builder must still refuse a resubmission: re-admitting
    # would orphan the original waiter's future and execute twice.
    from repro.chain.mempool import DuplicateTransactionError

    async def run():
        builder = build(deployment, block_size_target=100)
        tx = make_transactions(deployment, 1)[0]
        original = builder.submit(tx)
        taken = builder.node.mempool.take(10)  # simulate the block cut
        assert [t.hash() for t in taken] == [tx.hash()]
        with pytest.raises(DuplicateTransactionError):
            builder.submit(tx)
        # The original future survived the refused resubmission.
        assert builder.future_for(tx.hash()) is original

    asyncio.run(run())


def test_total_execution_failure_fails_futures_not_loop(deployment):
    from repro.serve.errors import ExecutionFailedError

    async def run():
        builder = build(deployment, block_size_target=2)

        def explode(block):
            raise RuntimeError("executor dead")

        def explode_seq(block):
            raise RuntimeError("fallback dead too")

        real_seq = builder.node.execute_block
        builder._execute = explode
        builder.node.execute_block = explode_seq
        builder.start()
        digest_before = builder.node.state.state_digest()
        doomed = [
            builder.submit(tx)
            for tx in make_transactions(deployment, 2)
        ]
        with pytest.raises(ExecutionFailedError):
            await asyncio.wait_for(
                asyncio.gather(*doomed), timeout=5.0
            )
        # State untouched, queue drained, loop still alive: a fresh
        # submission (with the fallback healed) commits normally.
        assert builder.node.state.state_digest() == digest_before
        assert builder.depth == 0
        builder.node.execute_block = real_seq
        fresh = [
            builder.submit(tx)
            for tx in make_transactions(deployment, 2, seed=1)
        ]
        committed = await asyncio.wait_for(
            asyncio.gather(*fresh), timeout=5.0
        )
        await builder.drain_and_stop()
        return builder, committed

    builder, committed = asyncio.run(run())
    assert builder.execution_failures == 1
    assert builder.blocks_built == 1
    assert all(c.receipt.success for c in committed)


def test_receipt_history_is_bounded(deployment):
    async def run():
        builder = build(
            deployment, block_size_target=1, receipt_history_blocks=2
        )
        builder.start()
        txs = make_transactions(deployment, 3)
        for tx in txs:  # one block each: size target is 1
            await asyncio.wait_for(builder.submit(tx), timeout=5.0)
        await builder.drain_and_stop()
        return builder, txs

    builder, txs = asyncio.run(run())
    assert builder.blocks_built == 3
    # Only the two most recent blocks' receipts are retained, in the
    # server map and the node alike.
    assert builder.committed.get(txs[0].hash()) is None
    assert builder.committed.get(txs[1].hash()) is not None
    assert builder.committed.get(txs[2].hash()) is not None
    assert len(builder.node.receipts) == 2
    assert len(builder.node.chain) == 3
