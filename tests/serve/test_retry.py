"""Client-side resilience: typed-backoff retries and reconnects.

Uses small scripted asyncio servers so every retry path is
deterministic: which responses come back, when connections drop, and
how many connections were ever made.
"""

import asyncio
import json
import random
import time

import pytest

from repro.serve import (
    BUSY,
    LoadResult,
    RetryPolicy,
    RpcClient,
    RpcClientError,
)


def test_retry_policy_honors_server_hint():
    policy = RetryPolicy(base_delay_s=0.01, jitter=0.0)
    rng = random.Random(0)
    # The hint is a floor, never undercut...
    assert policy.delay(0, 0.5, rng) == 0.5
    # ...and exponential backoff takes over past it.
    assert policy.delay(0, None, rng) == 0.01
    assert policy.delay(3, None, rng) == 0.08
    # The cap bounds runaway exponents.
    assert policy.delay(50, None, rng) == policy.max_delay_s


async def _scripted_server(handler):
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def _reply(obj, result):
    return (
        json.dumps(
            {"jsonrpc": "2.0", "id": obj["id"], "result": result}
        ).encode()
        + b"\n"
    )


def _error(obj, code, message, data=None):
    err = {"code": code, "message": message}
    if data is not None:
        err["data"] = data
    return (
        json.dumps(
            {"jsonrpc": "2.0", "id": obj["id"], "error": err}
        ).encode()
        + b"\n"
    )


def test_busy_retried_with_backoff_honoring_hint():
    request_times: list[float] = []

    async def handle(reader, writer):
        while True:
            line = await reader.readline()
            if not line:
                return
            obj = json.loads(line)
            request_times.append(time.monotonic())
            if len(request_times) == 1:
                writer.write(_error(
                    obj, BUSY, "busy", {"retry_after_s": 0.2}
                ))
            else:
                writer.write(_reply(obj, "ok"))
            await writer.drain()

    async def run():
        server, port = await _scripted_server(handle)
        client = await RpcClient.connect(
            "127.0.0.1", port,
            retry_policy=RetryPolicy(base_delay_s=0.01, jitter=0.0),
        )
        try:
            return await client.call("repro_stats"), client.retries
        finally:
            await client.close()
            server.close()
            await server.wait_closed()

    result, retries = asyncio.run(run())
    assert result == "ok"
    assert retries == 1
    assert len(request_times) == 2
    # The server asked for 0.2s; the client's own base backoff is 10ms,
    # so honoring the hint is observable on the wire.
    assert request_times[1] - request_times[0] >= 0.2


def test_busy_gives_up_after_max_attempts():
    requests = 0

    async def handle(reader, writer):
        nonlocal requests
        while True:
            line = await reader.readline()
            if not line:
                return
            obj = json.loads(line)
            requests += 1
            writer.write(_error(obj, BUSY, "busy"))
            await writer.drain()

    async def run():
        server, port = await _scripted_server(handle)
        client = await RpcClient.connect(
            "127.0.0.1", port,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.005, jitter=0.0
            ),
        )
        try:
            with pytest.raises(RpcClientError) as err:
                await client.call("repro_stats")
            return err.value, client.retries
        finally:
            await client.close()
            server.close()
            await server.wait_closed()

    err, retries = asyncio.run(run())
    assert err.code == BUSY
    assert retries == 2
    assert requests == 3  # the original try plus two retries


def test_idempotent_read_survives_dropped_connection():
    connections = 0

    async def handle(reader, writer):
        nonlocal connections
        connections += 1
        if connections == 1:
            await reader.readline()
            writer.close()  # slam the door mid-request
            return
        while True:
            line = await reader.readline()
            if not line:
                return
            obj = json.loads(line)
            writer.write(_reply(obj, 42))
            await writer.drain()

    async def run():
        server, port = await _scripted_server(handle)
        client = await RpcClient.connect(
            "127.0.0.1", port,
            retry_policy=RetryPolicy(base_delay_s=0.01, jitter=0.0),
        )
        try:
            return await client.call(
                "repro_getBalance",
                {"address": "0x1"},
                idempotent=True,
            ), client.retries
        finally:
            await client.close()
            server.close()
            await server.wait_closed()

    result, retries = asyncio.run(run())
    assert result == 42
    assert retries >= 1
    assert connections == 2


def test_non_idempotent_request_not_retried_on_drop():
    connections = 0

    async def handle(reader, writer):
        nonlocal connections
        connections += 1
        await reader.readline()
        writer.close()

    async def run():
        server, port = await _scripted_server(handle)
        client = await RpcClient.connect(
            "127.0.0.1", port,
            retry_policy=RetryPolicy(base_delay_s=0.01, jitter=0.0),
        )
        try:
            with pytest.raises(ConnectionError):
                await client.call(
                    "repro_sendTransaction", {"tx": "00"}
                )
            return client.retries
        finally:
            await client.close()
            server.close()
            await server.wait_closed()

    retries = asyncio.run(run())
    # A sendTransaction interrupted mid-flight may have committed:
    # reconnect-and-resend is not safe, so the drop surfaces instead.
    assert retries == 0
    assert connections == 1


def test_load_result_counts_retries_separately():
    result = LoadResult(mode="closed", requested=10, ok=10, retries=3)
    encoded = result.to_dict()
    assert encoded["retries"] == 3
    assert encoded["ok"] == 10
    assert encoded["unanswered"] == 0
