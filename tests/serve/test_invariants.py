"""E2E invariant: the serve path is bit-identical to offline execution.

The acceptance property for the serving layer: receipts and
``state_digest()`` produced by the continuous batcher — under any
executor backend, injected PU faults, or a forced sequential fallback —
match offline sequential execution of the same blocks exactly.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.node import Node
from repro.faults import PU_DEAD, FaultInjector, FaultPlan, PUFault
from repro.serve.batcher import BlockBuilder
from repro.serve.config import ServeConfig
from repro.serve.loadgen import make_transactions


def run_serve_path(
    deployment,
    txs,
    executor="sequential",
    block_size_target=4,
    num_workers=4,
    fault_injector=None,
    sabotage=False,
    packing="fifo",
    packing_lane_depth=None,
    packing_aging_bound=8,
):
    """Push *txs* through a BlockBuilder; returns (node, committed, builder)."""

    async def go():
        config = ServeConfig(
            port=0,
            block_size_target=block_size_target,
            gas_target=None,
            block_interval_ms=5.0,
            executor=executor,
            num_workers=num_workers,
            packing=packing,
            packing_lane_depth=packing_lane_depth,
            packing_aging_bound=packing_aging_bound,
        )
        node = Node(state=deployment.state.copy(),
                    per_sender_cap=config.per_sender_cap)
        builder = BlockBuilder(node, config,
                               fault_injector=fault_injector)
        if sabotage:
            def explode(block):
                raise RuntimeError("forced executor failure")

            builder._execute = explode
        builder.start()
        futures = [builder.submit(tx) for tx in txs]
        committed = await asyncio.wait_for(
            asyncio.gather(*futures), timeout=60.0
        )
        await builder.drain_and_stop()
        return node, committed, builder

    return asyncio.run(go())


def assert_matches_offline(deployment, node, committed, txs):
    """Replay the serve chain sequentially; everything must be identical."""
    assert len(committed) == len(txs)  # zero dropped receipts
    reference = Node(state=deployment.state.copy())
    offline = {}
    for block in node.chain:
        receipts = reference.execute_block(block)
        for tx, receipt in zip(block.transactions, receipts):
            offline[tx.hash()] = receipt
    for tx, entry in zip(txs, committed):
        assert entry.receipt == offline[tx.hash()]
    assert (node.state.state_digest()
            == reference.state.state_digest())


@settings(max_examples=12, deadline=None)
@given(
    executor=st.sampled_from(["sequential", "mtpu", "parallel"]),
    workload=st.sampled_from(["transfer", "erc20", "mixed"]),
    seed=st.integers(0, 2**16),
    count=st.integers(1, 12),
    block_size=st.integers(1, 5),
)
def test_serve_path_matches_offline_sequential(
    deployment, executor, workload, seed, count, block_size
):
    txs = make_transactions(
        deployment, count, workload=workload, seed=seed
    )
    node, committed, _ = run_serve_path(
        deployment, txs,
        executor=executor, block_size_target=block_size,
    )
    assert_matches_offline(deployment, node, committed, txs)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 1000),
    dead=st.lists(
        st.integers(0, 3), min_size=1, max_size=4, unique=True
    ),
    at_cycle=st.integers(0, 2_000),
)
def test_serve_path_survives_pu_faults(deployment, seed, dead, at_cycle):
    """Injected PU deaths degrade throughput, never the state digest."""
    plan = FaultPlan(
        seed=seed,
        pu_faults=tuple(
            PUFault(pu_id=p, kind=PU_DEAD, at_cycle=at_cycle)
            for p in dead
        ),
    )
    txs = make_transactions(deployment, 8, seed=seed)
    node, committed, builder = run_serve_path(
        deployment, txs,
        executor="mtpu", block_size_target=4,
        fault_injector=FaultInjector(plan),
    )
    assert_matches_offline(deployment, node, committed, txs)
    # Whether the scheduler drained onto survivors or the builder fell
    # back to sequential, every transaction still committed exactly once.
    assert builder.txs_committed == len(txs)


def assert_matches_fifo_replay(deployment, node, txs, block_size):
    """The pack-equivalence property, end to end: the packed serve
    chain's final state equals a FIFO replay of the *submission* order
    (``run_serve_path`` submits serially, so arrival order = txs)."""
    fifo = Node(state=deployment.state.copy())
    remaining = list(txs)
    while remaining:
        chunk, remaining = (remaining[:block_size],
                            remaining[block_size:])
        fifo.execute_block(fifo.propose_block(transactions=chunk))
    assert node.state.state_digest() == fifo.state.state_digest()


@settings(max_examples=10, deadline=None)
@given(
    executor=st.sampled_from(["sequential", "mtpu", "parallel"]),
    workload=st.sampled_from(["transfer", "mixed", "hotburst"]),
    seed=st.integers(0, 2**16),
    count=st.integers(1, 12),
    block_size=st.integers(1, 5),
    lane_depth=st.one_of(st.none(), st.integers(1, 3)),
)
def test_packed_serve_path_matches_offline_and_fifo(
    deployment, executor, workload, seed, count, block_size, lane_depth
):
    txs = make_transactions(
        deployment, count, workload=workload, seed=seed
    )
    node, committed, builder = run_serve_path(
        deployment, txs,
        executor=executor, block_size_target=block_size,
        packing="conflict_aware", packing_lane_depth=lane_depth,
    )
    assert_matches_offline(deployment, node, committed, txs)
    assert_matches_fifo_replay(deployment, node, txs, block_size)
    assert builder.packing_policy is not None


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 1000),
    dead=st.lists(
        st.integers(0, 3), min_size=1, max_size=4, unique=True
    ),
    at_cycle=st.integers(0, 2_000),
)
def test_packed_serve_path_survives_pu_faults(
    deployment, seed, dead, at_cycle
):
    """Conflict-aware packing composed with PU deaths: still FIFO-exact."""
    plan = FaultPlan(
        seed=seed,
        pu_faults=tuple(
            PUFault(pu_id=p, kind=PU_DEAD, at_cycle=at_cycle)
            for p in dead
        ),
    )
    txs = make_transactions(deployment, 10, workload="hotburst",
                            seed=seed)
    node, committed, builder = run_serve_path(
        deployment, txs,
        executor="mtpu", block_size_target=4,
        fault_injector=FaultInjector(plan),
        packing="conflict_aware", packing_lane_depth=2,
    )
    assert_matches_offline(deployment, node, committed, txs)
    assert_matches_fifo_replay(deployment, node, txs, 4)
    assert builder.txs_committed == len(txs)


def test_drain_flushes_deferred_transactions(deployment):
    """A drain must commit every admitted transaction even when packing
    keeps deferring most of them: lane_depth=1 with a hot conflicting
    workload forces a deferral on every cut."""
    txs = make_transactions(deployment, 16, workload="hotburst", seed=3)
    node, committed, builder = run_serve_path(
        deployment, txs,
        block_size_target=4,
        packing="conflict_aware", packing_lane_depth=1,
        packing_aging_bound=100,  # aging never forces inclusion here
    )
    assert len(committed) == len(txs)
    assert len(node.mempool) == 0
    assert builder.txs_committed == len(txs)
    assert_matches_offline(deployment, node, committed, txs)
    assert_matches_fifo_replay(deployment, node, txs, 4)


@settings(max_examples=6, deadline=None)
@given(
    workload=st.sampled_from(["transfer", "erc20"]),
    seed=st.integers(0, 1000),
    count=st.integers(1, 10),
)
def test_forced_sequential_fallback_matches_offline(
    deployment, workload, seed, count
):
    """Every block's executor dies; the fallback must be invisible."""
    txs = make_transactions(
        deployment, count, workload=workload, seed=seed
    )
    node, committed, builder = run_serve_path(
        deployment, txs, sabotage=True
    )
    assert builder.sequential_fallbacks == builder.blocks_built > 0
    assert_matches_offline(deployment, node, committed, txs)
