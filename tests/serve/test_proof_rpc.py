"""Authenticated-state RPC: repro_getProof / getStorageProof / getBlock."""

import asyncio

import pytest

from repro.chain.node import Node
from repro.serve import RpcClient, RpcClientError, RpcServer, ServeConfig
from repro.serve import protocol
from repro.serve.errors import PROOF_UNAVAILABLE
from repro.serve.loadgen import make_transactions
from repro.trie import verify_proof_blob


def make_config(**overrides):
    defaults = dict(
        host="127.0.0.1",
        port=0,
        block_size_target=4,
        gas_target=None,
        block_interval_ms=25.0,
        executor="sequential",
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def booted(deployment, config, **node_kwargs):
    node = Node(state=deployment.state.copy(),
                per_sender_cap=config.per_sender_cap, **node_kwargs)
    server = RpcServer(node=node, config=config)
    await server.start()
    client = await RpcClient.connect(config.host, config.port)
    return server, client


def test_account_proof_verifies_against_served_root(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        tx = make_transactions(deployment, 1)[0]
        try:
            await client.call(
                "repro_sendTransaction", {"tx": protocol.tx_to_wire(tx)}
            )
            proof = await client.call(
                "repro_getProof", {"address": hex(tx.sender)}
            )
            balance = await client.call(
                "repro_getBalance", {"address": hex(tx.sender)}
            )
            block = await client.call(
                "repro_getBlock", {"height": "latest"}
            )
        finally:
            await client.close()
            await server.shutdown()
        return proof, balance, block

    proof, balance, block = asyncio.run(run())
    root = bytes.fromhex(proof["stateRoot"])
    decoded, ok = verify_proof_blob(bytes.fromhex(proof["proof"]), root)
    assert ok
    assert decoded.balance == balance == proof["balance"]
    # The proof's anchor is the served tip's sealed header root.
    assert block["stateRoot"] == proof["stateRoot"]
    assert block["height"] == 1
    assert not verify_proof_blob(
        bytes.fromhex(proof["proof"]), bytes(32)
    )[1]


def test_storage_proof_verifies_and_binds_value(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        try:
            # Pick a contract account with nonzero storage from genesis.
            target = None
            with server.builder.state_lock:
                for address, account in server.node.state._accounts.items():
                    slots = {s: v for s, v in account.storage.items() if v}
                    if not account.is_empty and slots:
                        target = (address, *next(iter(slots.items())))
                        break
            assert target is not None, "deployment has no storage"
            address, slot, value = target
            proof = await client.call(
                "repro_getStorageProof",
                {"address": hex(address), "slot": hex(slot)},
            )
        finally:
            await client.close()
            await server.shutdown()
        return proof, value

    proof, value = asyncio.run(run())
    assert proof["value"] == value
    root = bytes.fromhex(proof["stateRoot"])
    decoded, ok = verify_proof_blob(bytes.fromhex(proof["proof"]), root)
    assert ok
    assert decoded.value == value


def test_absent_account_is_typed_proof_unavailable(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        try:
            with pytest.raises(RpcClientError) as err:
                await client.call(
                    "repro_getProof", {"address": hex(0xDEAD_BEEF_0042)}
                )
        finally:
            await client.close()
            await server.shutdown()
        return err.value

    err = asyncio.run(run())
    assert err.code == PROOF_UNAVAILABLE
    assert err.data["reason"] == "absent"


def test_unmerkleized_server_refuses_proofs(deployment):
    config = make_config(merkleize=False)

    async def run():
        server, client = await booted(deployment, config, merkleize=False)
        try:
            with pytest.raises(RpcClientError) as err:
                await client.call("repro_getProof", {"address": "0x1"})
            health = await client.call("repro_health")
            block = await client.call("repro_getBlock", {"height": 0})
        finally:
            await client.close()
            await server.shutdown()
        return err.value, health, block

    err, health, block = asyncio.run(run())
    assert err.code == PROOF_UNAVAILABLE
    assert err.data["reason"] == "not_merkleizing"
    assert health["stateRoot"] == ""
    assert block is None or block.get("stateRoot") == ""


def test_get_block_unknown_height_is_null(deployment):
    async def run():
        server, client = await booted(deployment, make_config())
        try:
            return await client.call("repro_getBlock", {"height": 999})
        finally:
            await client.close()
            await server.shutdown()

    assert asyncio.run(run()) is None
