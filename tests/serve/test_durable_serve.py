"""Durable serving: acked-means-durable, restart resume, drain spill."""

import asyncio
import os

from repro.chain.node import Node
from repro.serve import RpcClient, RpcServer, ServeConfig
from repro.serve import protocol
from repro.serve.loadgen import make_transactions
from repro.storage import verify_store
from repro.storage.wal import scan_wal


def make_config(data_dir, **overrides):
    defaults = dict(
        host="127.0.0.1",
        port=0,
        block_size_target=4,
        block_interval_ms=25.0,
        executor="sequential",
        data_dir=str(data_dir),
        fsync="never",
        snapshot_interval_blocks=2,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def make_server(deployment, config):
    node = Node(state=deployment.state.copy(),
                per_sender_cap=config.per_sender_cap)
    return RpcServer(node=node, config=config)


async def send_all(client, txs):
    receipts = []
    for tx in txs:
        receipts.append(await client.call(
            "repro_sendTransaction", {"tx": protocol.tx_to_wire(tx)}
        ))
    return receipts


def test_durable_serve_round_trip(deployment, tmp_path):
    async def run():
        server = make_server(deployment, make_config(tmp_path))
        await server.start()
        client = await RpcClient.connect(server.config.host,
                                         server.config.port)
        try:
            txs = make_transactions(deployment, 6, seed=3)
            receipts = await send_all(client, txs)
            stats = await client.call("repro_stats")
        finally:
            await client.close()
            await server.shutdown()
        return receipts, stats

    receipts, stats = asyncio.run(run())
    assert all(r["success"] for r in receipts)
    assert stats["durable"] is True
    assert stats["walRecords"] == stats["chainHeight"] >= 1
    # Every committed block is on disk, and the store audits clean.
    scan = scan_wal(str(tmp_path / "wal.log"))
    assert scan.clean
    assert len(scan.records) == stats["chainHeight"]
    assert verify_store(str(tmp_path)).ok


def test_restart_resumes_and_serves_old_receipts(deployment, tmp_path):
    config = make_config(tmp_path)

    async def first_run():
        server = make_server(deployment, config)
        await server.start()
        client = await RpcClient.connect(config.host, config.port)
        try:
            txs = make_transactions(deployment, 5, seed=7)
            await send_all(client, txs)
            stats = await client.call("repro_stats")
        finally:
            await client.close()
            await server.shutdown()
        return txs, stats

    txs, stats = asyncio.run(first_run())
    height = stats["chainHeight"]

    async def second_run():
        server = make_server(deployment, make_config(tmp_path))
        await server.start()
        client = await RpcClient.connect(server.config.host,
                                         server.config.port)
        try:
            fetched = [
                await client.call(
                    "repro_getReceipt", {"txHash": tx.hash().hex()}
                )
                for tx in txs
            ]
            # Resubmitting a committed transaction stays idempotent
            # across the restart: seed_committed() restored the dedup
            # index, so the original receipt comes back unre-executed.
            resubmitted = await client.call(
                "repro_sendTransaction",
                {"tx": protocol.tx_to_wire(txs[0])},
            )
            assert resubmitted == fetched[0]
            stats = await client.call("repro_stats")
        finally:
            await client.close()
            await server.shutdown()
        return fetched, stats, server.recovery

    fetched, stats2, recovery = asyncio.run(second_run())
    assert recovery is not None and recovery.height == height
    assert stats2["recoveredHeight"] == height
    assert all(r is not None and r["success"] for r in fetched)
    # New blocks appended after restart extend, not rewrite, the WAL.
    assert stats2["chainHeight"] == height


def test_shutdown_spills_pending_and_restart_readmits(
    deployment, tmp_path
):
    config = make_config(tmp_path)

    async def run_spill():
        server = make_server(deployment, config)
        # Never started: the builder loop is not running, so hears stay
        # pending — exactly the shape of a drain that could not finish.
        txs = make_transactions(deployment, 3, seed=9)
        for tx in txs:
            server.node.hear(tx)
        await server.shutdown()
        return txs

    txs = asyncio.run(run_spill())
    assert os.path.exists(tmp_path / "mempool.rlp")

    async def run_restart():
        server = make_server(deployment, make_config(tmp_path))
        await server.start()
        try:
            # The respilled transactions are in the mempool before any
            # new traffic arrives.
            pending = {
                tx.hash() for tx in server.node.mempool.pending()
            }
        finally:
            await server.shutdown()
        return pending

    pending = asyncio.run(run_restart())
    assert {tx.hash() for tx in txs} <= pending
    assert not os.path.exists(tmp_path / "mempool.rlp")
