"""End-to-end integration: the full three-stage pipeline through every
execution path the paper evaluates."""

import random

from repro.chain.node import Node
from repro.chain.receipt import receipts_root
from repro.core.hotspot import HotspotOptimizer
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import (
    run_sequential,
    run_spatial_temporal,
    run_synchronous,
)
from repro.workload import (
    ActionLibrary,
    all_entry_function_calls,
    generate_block,
    generate_dependency_block,
)


class TestFullPipeline:
    """Dissemination -> consensus (DAG in block) -> parallel execution."""

    def test_block_through_all_executors(self, deployment):
        node = Node(state=deployment.state.copy())
        library = ActionLibrary(deployment, random.Random(71))
        for _ in range(24):
            node.hear(library.to_transaction(library.plan("Dai")))
        block = node.propose_block()

        # Reference: the node's own sequential execution stage.
        reference = node.execute_block(block)
        reference_root = receipts_root(reference)

        # An accelerated validator replays the same block on the MTPU
        # under each scheduler and must verify the same receipts.
        for runner, pus in (
            (run_sequential, 1),
            (run_synchronous, 4),
            (run_spatial_temporal, 4),
        ):
            executor = MTPUExecutor(
                deployment.state.copy(), num_pus=pus,
                pu_config=PUConfig(),
            )
            if runner is run_sequential:
                result = runner(executor, block.transactions)
            else:
                result = runner(
                    executor, block.transactions, block.dag_edges
                )
            assert receipts_root(
                result.receipts_in_block_order(block.transactions)
            ) == reference_root

    def test_multi_block_chain_stays_consistent(self, deployment):
        node = Node(state=deployment.state.copy())
        peer = Node(state=deployment.state.copy())
        library = ActionLibrary(deployment, random.Random(72))
        for height in range(3):
            for _ in range(8):
                node.hear(library.to_transaction(library.plan("WETH9")))
            block = node.propose_block()
            receipts = node.execute_block(block)
            assert peer.verify_block(block, receipts_root(receipts))
        assert node.state.state_digest() == peer.state.state_digest()


class TestHeadlineSpeedup:
    """The abstract's claim: 3.53x-16.19x over existing schemes."""

    def test_full_design_speedup_in_band(self):
        block = generate_dependency_block(
            num_transactions=64, target_ratio=0.2, seed=73
        )
        deployment = block.deployment

        optimizer = HotspotOptimizer(deployment.state)
        for name in ("Dai", "TokenA", "TokenB", "LinkToken",
                     "FiatTokenProxy", "WETH9"):
            samples = all_entry_function_calls(deployment, name, seed=74)
            optimizer.optimize_contract(
                deployment.address_of(name), samples
            )

        baseline = run_sequential(
            MTPUExecutor(
                deployment.state.copy(), num_pus=1,
                pu_config=PUConfig(enable_db_cache=False,
                                   redundancy_reuse=False),
            ),
            block.transactions,
        )
        full = run_spatial_temporal(
            MTPUExecutor(
                deployment.state.copy(), num_pus=4,
                pu_config=PUConfig(),
                hotspot_optimizer=optimizer,
            ),
            block.transactions,
            block.dag_edges,
        )
        speedup = full.speedup_over(baseline)
        assert 3.0 < speedup < 20.0
        # Correctness never traded away.
        assert receipts_root(
            baseline.receipts_in_block_order(block.transactions)
        ) == receipts_root(
            full.receipts_in_block_order(block.transactions)
        )


class TestMixedWorkloadRobustness:
    def test_realistic_block_parallel_execution(self, deployment):
        block = generate_block(deployment, num_transactions=50, seed=75)
        seq = run_sequential(
            MTPUExecutor(deployment.state.copy(), num_pus=1),
            block.transactions,
        )
        par = run_spatial_temporal(
            MTPUExecutor(deployment.state.copy(), num_pus=4),
            block.transactions, block.dag_edges,
        )
        assert receipts_root(
            seq.receipts_in_block_order(block.transactions)
        ) == receipts_root(par.receipts_in_block_order(block.transactions))
        # Realistic blocks have real dependencies, so gains are modest
        # but must exist relative to critical-path limits.
        assert par.makespan_cycles <= seq.makespan_cycles

    def test_value_transfer_only_block(self, deployment):
        block = generate_block(
            deployment, num_transactions=20, seed=76, sct_fraction=0.0
        )
        par = run_spatial_temporal(
            MTPUExecutor(deployment.state.copy(), num_pus=4),
            block.transactions, block.dag_edges,
        )
        assert len(par.executions) == 20


class TestMultiBlockSoak:
    """A longer soak: five 60-transaction blocks through the accelerated
    validator, cross-checked against a plain node each block."""

    def test_five_block_soak(self, deployment):
        import random

        from repro.core.validator import AcceleratedValidator
        from repro.workload import ActionLibrary

        validator = AcceleratedValidator(
            state=deployment.state.copy(), num_pus=4,
            deployment=deployment,
        )
        plain = Node(state=deployment.state.copy())
        library = ActionLibrary(deployment, random.Random(777))
        mixes = [
            ["TetherToken", "Dai"],
            ["UniswapV2Router02", "Dai", "WETH9"],
            ["OpenSea", "TetherToken"],
            ["CryptoCat", "Dai", "LinkToken"],
            ["MainchainGatewayProxy", "TetherToken", "Ballot"],
        ]
        total_cycles = 0
        for mix in mixes:
            for i in range(60):
                tx = library.to_transaction(
                    library.plan(mix[i % len(mix)])
                )
                validator.hear(tx)
                plain.hear(tx)
            block = validator.propose_block()
            reference = plain.execute_block(block)
            outcome = validator.execute_block(
                block, claimed_root=receipts_root(reference)
            )
            assert outcome.verified is True
            total_cycles += outcome.makespan_cycles
        assert len(validator.chain) == 5
        assert (
            validator.state.state_digest() == plain.state.state_digest()
        )
        assert total_cycles > 0
