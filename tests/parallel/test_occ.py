"""Optimistic (OCC) block executor: determinism and cost accounting.

The packing benchmark leans on two facts proved here: OCC commits are
bit-identical to sequential execution (so the speedup it measures is
never bought with divergence), and its abort count is exactly the
intra-block conflict structure (so conflict chains cost Θ(L²/2) — the
quantity conflict-aware packing removes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.node import Node
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.parallel.occ import OptimisticBlockExecutor

ACCOUNTS = [0x700 + i for i in range(6)]

transfer_specs = st.lists(
    st.tuples(
        st.integers(0, len(ACCOUNTS) - 1),
        st.integers(0, len(ACCOUNTS) - 1),
        st.integers(1, 30),  # values can exceed tight balances → failures
    ),
    min_size=1,
    max_size=16,
)


def seed_state(balances) -> WorldState:
    state = WorldState()
    for account, balance in zip(ACCOUNTS, balances):
        state.set_balance(account, balance)
    state.clear_journal()
    return state


def make_txs(specs) -> list[Transaction]:
    nonces: dict[int, int] = {}
    txs = []
    for sender_idx, recipient_idx, value in specs:
        sender = ACCOUNTS[sender_idx]
        nonces[sender] = nonces.get(sender, 0) + 1
        txs.append(Transaction(
            sender=sender, to=ACCOUNTS[recipient_idx], value=value,
            nonce=nonces[sender], gas_limit=50_000,
        ))
    return txs


@settings(max_examples=50, deadline=None)
@given(
    balances=st.lists(
        st.integers(1, 40),
        min_size=len(ACCOUNTS), max_size=len(ACCOUNTS),
    ),
    specs=transfer_specs,
)
def test_occ_is_bit_identical_to_sequential(balances, specs):
    """Order-sensitive workload (tight balances → order decides which
    transfers fail): OCC must land on the sequential digest anyway."""
    txs = make_txs(specs)
    node = Node(state=seed_state(balances))
    for tx in txs:
        node.hear(tx)
    block = node.propose_block(max_transactions=len(txs))
    sequential = node.execute_block(block)

    occ_state = seed_state(balances)
    occ = OptimisticBlockExecutor(
        occ_state, block=Node(state=seed_state(balances)).block_context()
    )
    result = occ.execute_block(txs)
    assert result.receipts == sequential
    assert occ_state.state_digest() == node.state.state_digest()
    # Cost accounting sanity: work = commits + aborts, bounded rounds.
    assert result.executions == len(txs) + result.aborts
    assert 1 <= result.rounds <= len(txs)


def test_disjoint_block_costs_one_round_and_no_aborts():
    state = WorldState()
    for i in range(8):
        state.set_balance(0x900 + i, 10**9)
    state.clear_journal()
    txs = [
        Transaction(sender=0x900 + i, to=0xA00 + i, value=1, nonce=1,
                    gas_limit=50_000)
        for i in range(8)
    ]
    result = OptimisticBlockExecutor(state).execute_block(txs)
    assert result.aborts == 0 and result.rounds == 1
    assert result.executions == len(txs)


def test_hot_chain_of_length_n_costs_quadratic_aborts():
    """A length-L serial conflict chain aborts L(L-1)/2 times over L
    rounds — the FIFO cost that packing's speedup comes from."""
    length = 6
    state = WorldState()
    for i in range(length):
        state.set_balance(0x900 + i, 10**9)
    state.clear_journal()
    hot = 0xAB00
    txs = [
        Transaction(sender=0x900 + i, to=hot, value=1, nonce=1,
                    gas_limit=50_000)
        for i in range(length)
    ]
    result = OptimisticBlockExecutor(state).execute_block(txs)
    assert result.rounds == length
    assert result.aborts == length * (length - 1) // 2
    assert result.executions == length + result.aborts


def test_executor_accumulates_cost_across_blocks():
    state = WorldState()
    for i in range(4):
        state.set_balance(0x900 + i, 10**9)
    state.clear_journal()
    occ = OptimisticBlockExecutor(state)
    hot = 0xAB00
    block = [
        Transaction(sender=0x900 + i, to=hot, value=1, nonce=1,
                    gas_limit=50_000)
        for i in range(4)
    ]
    first = occ.execute_block(block)
    cold = [
        Transaction(sender=0x900 + i, to=0xA00 + i, value=1, nonce=2,
                    gas_limit=50_000)
        for i in range(4)
    ]
    second = occ.execute_block(cold)
    assert occ.executions == first.executions + second.executions
    assert occ.aborts == first.aborts + second.aborts
