"""Speculative (Block-STM-shaped) executor: equivalence under adversity.

The engine's contract is unconditional: whatever the interleaving of
speculation, aborts, injected PU faults, and retry exhaustion, the
committed receipts, logs, and ``state_digest()`` are bit-identical to
in-order sequential execution. The properties here drive the engine
through order-sensitive tight-balance workloads (order decides which
transfers fail), force mid-block aborts and worker faults through the
test hooks, and check the cost accounting the benchmark quotes —
including the Θ(L²/2) bound: a conflict chain of length L can cost at
most L(L-1)/2 aborts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.evm import EVM
from repro.evm.context import BlockContext
from repro.parallel.speculate import (
    ESTIMATE,
    MultiVersionStore,
    SpeculativeBlockExecutor,
)

ACCOUNTS = [0x900 + i for i in range(6)]

transfer_specs = st.lists(
    st.tuples(
        st.integers(0, len(ACCOUNTS) - 1),
        st.integers(0, len(ACCOUNTS) - 1),
        st.integers(1, 30),  # values can exceed tight balances → failures
    ),
    min_size=1,
    max_size=16,
)


def seed_state(balances) -> WorldState:
    state = WorldState()
    for account, balance in zip(ACCOUNTS, balances):
        state.set_balance(account, balance)
    state.clear_journal()
    return state


def make_txs(specs) -> list[Transaction]:
    nonces: dict[int, int] = {}
    txs = []
    for sender_idx, recipient_idx, value in specs:
        sender = ACCOUNTS[sender_idx]
        nonces[sender] = nonces.get(sender, 0) + 1
        txs.append(Transaction(
            sender=sender, to=ACCOUNTS[recipient_idx], value=value,
            nonce=nonces[sender], gas_limit=50_000,
        ))
    return txs


def sequential_reference(balances, txs):
    state = seed_state(balances)
    evm = EVM(state, block=BlockContext(height=1))
    receipts = [evm.execute_transaction(tx) for tx in txs]
    return receipts, state.state_digest()


def assert_identical(receipts, digest, result, state):
    assert [r.to_rlp() for r in receipts] == [
        r.to_rlp() for r in result.receipts
    ]
    assert [r.logs for r in receipts] == [r.logs for r in result.receipts]
    assert digest == state.state_digest()


class TestMultiVersionStore:
    def test_highest_lower_writer_wins(self):
        store = MultiVersionStore()
        store.record(1, {("a", 0): 10})
        store.record(3, {("a", 0): 30})
        assert store.view_below(2) == {("a", 0): 10}
        assert store.view_below(5) == {("a", 0): 30}
        assert store.view_below(1) == {}

    def test_estimates_shadow_but_never_surface(self):
        store = MultiVersionStore()
        store.record(1, {("a", 0): 10})
        store.record(2, {("a", 0): 20})
        store.mark_estimates(2)
        # The estimate hides tx2's value; readers above fall through to
        # the highest non-estimate writer below.
        assert store.view_below(4) == {("a", 0): 10}
        assert store.estimate_writers({("a", 0)}, 4) == {2}
        # A reader below the estimate writer is unaffected.
        assert store.estimate_writers({("a", 0)}, 2) == set()

    def test_re_record_clears_previous_keys(self):
        store = MultiVersionStore()
        store.record(1, {("a", 0): 10, ("b", 0): 1})
        store.record(1, {("a", 0): 11})
        assert store.view_below(2) == {("a", 0): 11}

    def test_clear_removes_a_writer_entirely(self):
        store = MultiVersionStore()
        store.record(1, {("a", 0): 10})
        store.clear(1)
        assert store.view_below(9) == {}
        assert store.estimate_writers({("a", 0)}, 9) == set()

    def test_estimate_sentinel_is_private(self):
        assert ESTIMATE is not None


@settings(max_examples=50, deadline=None)
@given(
    balances=st.lists(
        st.integers(1, 40),
        min_size=len(ACCOUNTS), max_size=len(ACCOUNTS),
    ),
    specs=transfer_specs,
)
def test_speculation_is_bit_identical_to_sequential(balances, specs):
    txs = make_txs(specs)
    receipts, digest = sequential_reference(balances, txs)
    state = seed_state(balances)
    with SpeculativeBlockExecutor(
        state, block=BlockContext(height=1), backend="serial"
    ) as executor:
        result = executor.execute_block(txs)
    assert_identical(receipts, digest, result, state)
    # Work accounting: every commit is one execution plus its aborts,
    # and a conflict chain of length L costs at most L(L-1)/2 aborts.
    count = len(txs)
    assert result.executions == count + result.aborts
    assert result.aborts <= count * (count - 1) // 2
    assert all(r is not None for r in result.artifacts)


@settings(max_examples=25, deadline=None)
@given(
    balances=st.lists(
        st.integers(1, 40),
        min_size=len(ACCOUNTS), max_size=len(ACCOUNTS),
    ),
    specs=transfer_specs,
    abort_index=st.integers(0, 15),
)
def test_forced_mid_block_aborts_never_diverge(
    balances, specs, abort_index
):
    """An adversarial validator that force-aborts one transaction's
    first two attempts changes cost, never output."""
    txs = make_txs(specs)
    receipts, digest = sequential_reference(balances, txs)
    state = seed_state(balances)
    with SpeculativeBlockExecutor(
        state, block=BlockContext(height=1), backend="serial",
        abort_hook=lambda i, attempts: i == abort_index and attempts < 2,
    ) as executor:
        result = executor.execute_block(txs)
    assert_identical(receipts, digest, result, state)
    if abort_index < len(txs):
        assert result.abort_counts[abort_index] >= 2


@settings(max_examples=25, deadline=None)
@given(
    balances=st.lists(
        st.integers(1, 40),
        min_size=len(ACCOUNTS), max_size=len(ACCOUNTS),
    ),
    specs=transfer_specs,
    fault_index=st.integers(0, 15),
)
def test_pu_faults_lose_work_not_correctness(balances, specs, fault_index):
    """A PU that dies mid-speculation (result discarded, attempt spent)
    is retried and the block still commits bit-identically."""
    txs = make_txs(specs)
    receipts, digest = sequential_reference(balances, txs)
    state = seed_state(balances)
    with SpeculativeBlockExecutor(
        state, block=BlockContext(height=1), backend="serial",
        fault_hook=lambda i, attempts: i == fault_index and attempts < 2,
    ) as executor:
        result = executor.execute_block(txs)
    assert_identical(receipts, digest, result, state)


@settings(max_examples=15, deadline=None)
@given(
    balances=st.lists(
        st.integers(1, 40),
        min_size=len(ACCOUNTS), max_size=len(ACCOUNTS),
    ),
    specs=transfer_specs,
)
def test_retry_exhaustion_falls_back_to_sequential(balances, specs):
    """A transaction aborted past ``max_retries`` trips the guaranteed
    fallback: plain in-order execution, same outputs, artifacts kept."""
    txs = make_txs(specs)
    receipts, digest = sequential_reference(balances, txs)
    state = seed_state(balances)
    with SpeculativeBlockExecutor(
        state, block=BlockContext(height=1), backend="serial",
        max_retries=2, abort_hook=lambda i, attempts: i == 0,
    ) as executor:
        result = executor.execute_block(txs)
    assert result.fell_back
    assert_identical(receipts, digest, result, state)
    # Estimator feedback survives the fallback path.
    assert all(r is not None for r in result.artifacts)


def test_process_backend_matches_serial_accounting():
    """The pool backend must produce byte-identical outputs *and*
    identical abort/retry accounting — the engine's decisions may not
    depend on where speculation physically ran."""
    from repro.workload.generator import generate_block

    gen = generate_block(num_transactions=24, seed=3)
    txs = gen.transactions
    base = gen.deployment.state
    receipts, digest = None, None
    accounting = {}
    for backend in ("serial", "process"):
        state = base.copy()
        with SpeculativeBlockExecutor(
            state, block=BlockContext(height=1), num_workers=2,
            backend=backend,
        ) as executor:
            result = executor.execute_block(txs)
        accounting[backend] = (
            result.executions, result.aborts, result.rounds,
            result.validations,
        )
        if receipts is None:
            receipts, digest = result.receipts, state.state_digest()
        else:
            assert [r.to_rlp() for r in receipts] == [
                r.to_rlp() for r in result.receipts
            ]
            assert digest == state.state_digest()
    assert accounting["serial"] == accounting["process"]


def test_dynamic_block_without_declared_sets_commits_identically():
    """The headline path: calldata-derived storage keys, no access sets
    anywhere, bit-identical commit."""
    from repro.workload import generate_dynamic_block

    block = generate_dynamic_block(num_transactions=24, seed=11)
    state = block.deployment.state.copy()
    evm = EVM(state, block=BlockContext(height=1))
    receipts = [evm.execute_transaction(tx) for tx in block.transactions]
    digest = state.state_digest()

    occ_state = block.deployment.state.copy()
    with SpeculativeBlockExecutor(
        occ_state, block=BlockContext(height=1), backend="serial"
    ) as executor:
        result = executor.execute_block(block.transactions)
    assert_identical(receipts, digest, result, occ_state)
    assert result.aborts > 0  # the workload genuinely conflicts


def test_node_execute_block_occ_feeds_estimator_and_commits():
    """End-to-end node path: propose without discovery, execute through
    the speculative engine, estimator learns the actual access sets."""
    from repro.chain.bloom import AccessEstimator
    from repro.chain.node import Node
    from repro.workload import generate_dynamic_block

    block_gen = generate_dynamic_block(num_transactions=12, seed=5)
    node = Node(state=block_gen.deployment.state.copy())
    node.mempool.estimator = AccessEstimator()
    for tx in block_gen.transactions:
        node.hear(tx)
    block = node.propose_block(
        max_transactions=12, executor="occ"
    )
    assert block.artifacts is None  # no discovery ran
    before = len(node.mempool.estimator)
    result = node.execute_block_occ(block, backend="serial")
    assert len(result.receipts) == len(block.transactions)
    assert len(node.mempool.estimator) > before
    assert node.chain[-1] is block


class TestEngineEdges:
    def test_invalid_backend_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SpeculativeBlockExecutor(WorldState(), backend="threads")

    def test_custom_blockhash_degrades_process_to_serial(self):
        context = BlockContext(height=5, blockhash_fn=lambda h: h + 1)
        executor = SpeculativeBlockExecutor(
            WorldState(), block=context, backend="process"
        )
        assert executor.backend == "serial"

    def test_warm_is_a_noop_on_the_serial_backend(self):
        executor = SpeculativeBlockExecutor(WorldState(), backend="serial")
        executor.warm()
        assert executor._pool is None

    def test_empty_block_commits_nothing(self):
        state = seed_state([10] * len(ACCOUNTS))
        with SpeculativeBlockExecutor(state, backend="serial") as executor:
            result = executor.execute_block([])
        assert result.receipts == []
        assert result.executions == 0
        assert result.tx_per_second == 0.0

    def test_selfdestruct_switches_off_the_pool_base(self):
        """A committed SELFDESTRUCT invalidates the workers' pristine
        base (overlays cannot express deletion): the engine finishes
        the block inline and marks the pool dirty — outputs still
        bit-identical to sequential."""
        from repro.contracts.asm import assemble

        destructor = 0xDEAD
        balances = [50] * len(ACCOUNTS)

        def build_state():
            state = seed_state(balances)
            state.set_code(
                destructor, assemble("PUSH 0xb0b\nSELFDESTRUCT")
            )
            state.clear_journal()
            return state

        txs = [
            Transaction(sender=ACCOUNTS[0], to=destructor, value=3,
                        nonce=1, gas_limit=100_000),
            Transaction(sender=ACCOUNTS[1], to=ACCOUNTS[2], value=5,
                        nonce=1, gas_limit=50_000),
        ]
        ref_state = build_state()
        evm = EVM(ref_state, block=BlockContext(height=1))
        receipts = [evm.execute_transaction(tx) for tx in txs]
        digest = ref_state.state_digest()

        state = build_state()
        with SpeculativeBlockExecutor(
            state, block=BlockContext(height=1), num_workers=2,
            backend="process",
        ) as executor:
            result = executor.execute_block(txs)
            assert executor._pool_dirty
        assert_identical(receipts, digest, result, state)

    def test_metrics_flow_through_the_registry(self):
        from repro.obs import use_registry

        balances = [30] * len(ACCOUNTS)
        txs = make_txs([(0, 1, 5), (1, 2, 5), (2, 3, 5)])
        state = seed_state(balances)
        with use_registry() as registry:
            with SpeculativeBlockExecutor(
                state, backend="serial"
            ) as executor:
                result = executor.execute_block(txs)
            counters = registry.counters_flat()
        assert counters["speculate.executions"] == result.executions
        assert counters["speculate.validations"] == result.validations
        # Wall-clock series are gauges: excluded from the deterministic
        # counter snapshot (the golden fixture depends on this).
        assert "speculate.wall_tps" not in counters
        assert registry.gauge("speculate.workers").value >= 1
        assert result.tx_per_second > 0.0
