"""The multicore parallel backend against its sequential contract.

Every test pins the same invariant from a different angle: whatever mix
of artifact replay, inline execution, worker dispatch and fallback the
coordinator picks, the resulting receipts and ``state_digest()`` must be
bit-identical to plain block-order sequential execution.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.dag import build_dag_edges, discover_access_sets
from repro.chain.state import AccessSet
from repro.evm.interpreter import EVM
from repro.obs import use_registry
from repro.parallel import ParallelBlockExecutor
from repro.workload.generator import (
    generate_block,
    generate_dependency_block,
)


def sequential_reference(deployment, transactions):
    state = deployment.state.copy()
    evm = EVM(state)
    receipts = [evm.execute_transaction(tx) for tx in transactions]
    return receipts, state.state_digest()


def discover(deployment, transactions):
    state = deployment.state.copy()
    artifacts = discover_access_sets(transactions, state)
    edges = build_dag_edges(transactions, artifacts)
    return state, artifacts, edges


class TestSerialBackend:
    def test_matches_sequential(self, deployment):
        block = generate_dependency_block(
            deployment, num_transactions=24, target_ratio=0.5, seed=11
        )
        receipts, digest = sequential_reference(
            deployment, block.transactions
        )
        state, artifacts, edges = discover(deployment, block.transactions)
        executor = ParallelBlockExecutor(state, backend="serial")
        result = executor.execute_block(
            block.transactions, edges, artifacts
        )
        assert result.receipts == receipts
        assert state.state_digest() == digest
        assert result.executed_inline == len(block.transactions)
        assert not result.fell_back

    def test_pipeline_replays_fresh_artifacts(self, deployment):
        block = generate_dependency_block(
            deployment, num_transactions=24, target_ratio=0.25, seed=12
        )
        receipts, digest = sequential_reference(
            deployment, block.transactions
        )
        state, artifacts, edges = discover(deployment, block.transactions)
        executor = ParallelBlockExecutor(state, backend="serial")
        result = executor.execute_block(
            block.transactions, edges, artifacts, artifacts=artifacts
        )
        assert result.receipts == receipts
        assert state.state_digest() == digest
        # Discovery ran sequentially in block order, the DAG respects
        # every conflict, so every artifact replays fresh.
        assert result.replayed == len(block.transactions)
        assert result.stale_artifacts == 0

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=255),
        ratio=st.sampled_from([0.0, 0.25, 0.5, 0.75]),
        use_artifacts=st.booleans(),
    )
    def test_generator_blocks_property(
        self, deployment, seed, ratio, use_artifacts
    ):
        block = generate_dependency_block(
            deployment, num_transactions=16, target_ratio=ratio, seed=seed
        )
        receipts, digest = sequential_reference(
            deployment, block.transactions
        )
        state, artifacts, edges = discover(deployment, block.transactions)
        executor = ParallelBlockExecutor(state, backend="serial")
        result = executor.execute_block(
            block.transactions, edges, artifacts,
            artifacts=artifacts if use_artifacts else None,
        )
        assert result.receipts == receipts
        assert state.state_digest() == digest

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=255))
    def test_mixed_traffic_blocks_property(self, deployment, seed):
        # Realistic Zipf traffic: repeated contracts, repeated senders,
        # native transfers — the hostile case for journal merging.
        block = generate_block(deployment, num_transactions=12, seed=seed)
        receipts, digest = sequential_reference(
            deployment, block.transactions
        )
        state, artifacts, edges = discover(deployment, block.transactions)
        executor = ParallelBlockExecutor(state, backend="serial")
        result = executor.execute_block(
            block.transactions, edges, artifacts, artifacts=artifacts
        )
        assert result.receipts == receipts
        assert state.state_digest() == digest


class TestProcessBackend:
    def test_matches_sequential(self, deployment):
        block = generate_dependency_block(
            deployment, num_transactions=16, target_ratio=0.25, seed=13
        )
        receipts, digest = sequential_reference(
            deployment, block.transactions
        )
        state, artifacts, edges = discover(deployment, block.transactions)
        with ParallelBlockExecutor(
            state, num_workers=2, backend="process"
        ) as executor:
            result = executor.execute_block(
                block.transactions, edges, artifacts
            )
        assert result.backend == "process"
        assert result.receipts == receipts
        assert state.state_digest() == digest
        assert result.dispatched == len(block.transactions)
        assert not result.fell_back

    def test_pool_survives_across_blocks(self, deployment):
        first = generate_dependency_block(
            deployment, num_transactions=8, target_ratio=0.0, seed=14
        )
        second = generate_dependency_block(
            deployment, num_transactions=8, target_ratio=0.0, seed=15
        )
        # Sequential reference: both blocks applied in order.
        state_ref = deployment.state.copy()
        evm = EVM(state_ref)
        for tx in first.transactions + second.transactions:
            evm.execute_transaction(tx)

        state = deployment.state.copy()
        with ParallelBlockExecutor(
            state, num_workers=2, backend="process"
        ) as executor:
            for block in (first, second):
                artifacts = discover_access_sets(block.transactions, state)
                edges = build_dag_edges(block.transactions, artifacts)
                result = executor.execute_block(
                    block.transactions, edges, artifacts
                )
                assert not result.fell_back
        assert state.state_digest() == state_ref.state_digest()


class TestAccessMismatchFallback:
    def _corrupt(self, artifacts, index):
        """Declared sets with *index*'s writes understated."""
        declared = [
            AccessSet(reads=set(a.reads), writes=set(a.writes))
            for a in artifacts
        ]
        victim = declared[index]
        assert victim.writes, "need a writing transaction to corrupt"
        victim.writes.pop()
        return declared

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_fallback_restores_sequential_result(
        self, deployment, backend
    ):
        block = generate_dependency_block(
            deployment, num_transactions=10, target_ratio=0.5, seed=16
        )
        receipts, digest = sequential_reference(
            deployment, block.transactions
        )
        state, artifacts, edges = discover(deployment, block.transactions)
        declared = self._corrupt(artifacts, index=0)
        with ParallelBlockExecutor(
            state, num_workers=2, backend=backend
        ) as executor:
            result = executor.execute_block(
                block.transactions, edges, declared
            )
        assert result.fell_back
        assert result.mismatches
        assert result.receipts == receipts
        assert state.state_digest() == digest

    def test_fallback_counter_published(self, deployment):
        block = generate_dependency_block(
            deployment, num_transactions=8, target_ratio=0.5, seed=17
        )
        state, artifacts, edges = discover(deployment, block.transactions)
        declared = self._corrupt(artifacts, index=0)
        with use_registry() as registry:
            executor = ParallelBlockExecutor(state, backend="serial")
            executor.execute_block(block.transactions, edges, declared)
            counters = registry.counters_flat()
        assert counters.get("parallel.fallbacks") == 1

    def test_clean_run_publishes_worker_metrics(self, deployment):
        block = generate_dependency_block(
            deployment, num_transactions=8, target_ratio=0.0, seed=18
        )
        state, artifacts, edges = discover(deployment, block.transactions)
        with use_registry() as registry:
            executor = ParallelBlockExecutor(
                state, num_workers=3, backend="serial"
            )
            executor.execute_block(
                block.transactions, edges, artifacts, artifacts=artifacts
            )
            counters = registry.counters_flat()
        assert counters.get("parallel.replayed") == len(block.transactions)
        assert "parallel.fallbacks" not in counters
