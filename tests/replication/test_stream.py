"""Wire-codec tests: framing, CRC, torn streams, hostile payloads."""

import asyncio

import pytest

from repro.chain import rlp
from repro.replication import StreamProtocolError
from repro.replication import stream
from repro.storage.wal import RECORD_HEADER


def reader_for(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def read_one(data: bytes, timeout=None):
    async def run():
        return await stream.read_message(
            reader_for(data), timeout=timeout
        )

    return asyncio.run(run())


def test_hello_round_trip():
    digest = bytes(range(32))
    frame = stream.encode_hello(17, digest, need_snapshot=True)
    msg_type, fields = read_one(frame)
    assert msg_type == stream.MSG_HELLO
    assert fields == (17, digest, True, b"")


def test_snapshot_round_trip_with_recent_hashes():
    recent = [(3, b"\x03" * 32), (4, b"\x04" * 32)]
    frame = stream.encode_snapshot(b"snapshot-payload", recent)
    msg_type, (payload, hashes) = read_one(frame)
    assert msg_type == stream.MSG_SNAPSHOT
    assert payload == b"snapshot-payload"
    assert hashes == recent


def test_block_round_trip():
    frame = stream.encode_block(123_456_789, 42, b"wal-record-bytes")
    msg_type, (sent_at, writer_height, payload) = read_one(frame)
    assert msg_type == stream.MSG_BLOCK
    assert sent_at == 123_456_789
    assert writer_height == 42
    assert payload == b"wal-record-bytes"


def test_crc_damage_is_a_protocol_error():
    frame = bytearray(stream.encode_block(1, 1, b"payload"))
    frame[-1] ^= 0xFF
    with pytest.raises(StreamProtocolError):
        read_one(bytes(frame))


def test_truncated_frame_is_a_torn_stream():
    frame = stream.encode_block(1, 1, b"payload")
    with pytest.raises(ConnectionError):
        read_one(frame[: len(frame) - 3])


def test_eof_is_a_torn_stream():
    with pytest.raises(ConnectionError):
        read_one(b"")


def test_silence_times_out():
    async def run():
        reader = asyncio.StreamReader()  # never fed
        with pytest.raises(asyncio.TimeoutError):
            await stream.read_message(reader, timeout=0.05)

    asyncio.run(run())


def test_implausible_length_is_a_protocol_error():
    header = RECORD_HEADER.pack(stream.MAX_MESSAGE_BYTES + 1, 0)
    with pytest.raises(StreamProtocolError):
        read_one(header + b"x" * 16)


def test_unknown_message_type_rejected():
    from repro.storage.wal import frame_record

    frame = frame_record(rlp.encode([rlp.encode_int(9)]))
    with pytest.raises(StreamProtocolError):
        read_one(frame)


def test_garbage_payload_rejected():
    from repro.storage.wal import frame_record

    frame = frame_record(b"\xff\xfe\xfd")
    with pytest.raises(StreamProtocolError):
        read_one(frame)
