"""Read-proxy behaviour: routing, ejection, failover, subscriptions."""

import asyncio

from repro.replication import ReadProxy
from repro.serve.loadgen import RpcClient

from .conftest import (
    eventually,
    fast_replication,
    send_transfers,
    start_replica,
    start_writer,
    stop_replica,
)


async def start_proxy(writer, replica_servers) -> ReadProxy:
    proxy = ReadProxy(
        writer_addr=("127.0.0.1", writer.config.port),
        replica_addrs=[
            ("127.0.0.1", server.config.port)
            for server in replica_servers
        ],
        config=fast_replication(),
    )
    await proxy.start()
    return proxy


def test_proxy_round_robins_reads_across_replicas(
    deployment, tmp_path
):
    async def run():
        writer = await start_writer(deployment, tmp_path)
        server_a, replica_a = await start_replica(deployment, writer)
        server_b, replica_b = await start_replica(deployment, writer)
        proxy = await start_proxy(writer, [server_a, server_b])
        try:
            txs = await send_transfers(
                deployment, writer.config.port, 8, seed=31
            )
            await eventually(
                lambda: replica_a.height == len(writer.node.chain)
                and replica_b.height == len(writer.node.chain),
                desc="both replicas caught up",
            )
            served_before = (
                server_a.requests_served + server_b.requests_served
            )
            client = await RpcClient.connect(
                "127.0.0.1", proxy.port
            )
            try:
                for tx in txs[:6]:
                    balance = await client.call(
                        "repro_getBalance",
                        {"address": hex(tx.sender)},
                    )
                    assert isinstance(balance, int)
                receipt = await client.call(
                    "repro_getReceipt",
                    {"txHash": txs[0].hash().hex()},
                )
                stats = await client.call("repro_stats")
            finally:
                await client.close()
            assert receipt is not None
            assert stats["readsProxied"] == 7
            assert stats["writerFallbackReads"] == 0
            assert stats["healthyReplicas"] == 2
            # The reads actually landed on the replicas (round-robin),
            # not the writer.
            assert (
                server_a.requests_served + server_b.requests_served
                > served_before
            )
        finally:
            await proxy.stop()
            await stop_replica(server_a, replica_a)
            await stop_replica(server_b, replica_b)
            await writer.shutdown()

    asyncio.run(run())


def test_proxy_ejects_dead_replica_and_falls_back_to_writer(
    deployment, tmp_path
):
    async def run():
        writer = await start_writer(deployment, tmp_path)
        server_a, replica_a = await start_replica(deployment, writer)
        proxy = await start_proxy(writer, [server_a])
        try:
            txs = await send_transfers(
                deployment, writer.config.port, 4, seed=32
            )
            await eventually(
                lambda: replica_a.height == len(writer.node.chain),
                desc="replica caught up",
            )
            client = await RpcClient.connect(
                "127.0.0.1", proxy.port
            )
            try:
                await client.call(
                    "repro_getBalance",
                    {"address": hex(txs[0].sender)},
                )
                # Kill the only replica; reads must keep answering.
                await stop_replica(server_a, replica_a)
                for tx in txs:
                    balance = await client.call(
                        "repro_getBalance",
                        {"address": hex(tx.sender)},
                    )
                    assert isinstance(balance, int)
                await eventually(
                    lambda: not proxy.replicas[0].healthy,
                    desc="dead replica ejected",
                )
                stats = await client.call("repro_stats")
            finally:
                await client.close()
            assert stats["healthyReplicas"] == 0
            assert stats["writerFallbackReads"] > 0
            assert stats["ejects"] + stats["failovers"] >= 1
        finally:
            await proxy.stop()
            await writer.shutdown()

    asyncio.run(run())


def test_proxy_forwards_writes_to_the_writer(deployment, tmp_path):
    async def run():
        from repro.serve import protocol
        from repro.serve.loadgen import make_transactions

        writer = await start_writer(deployment, tmp_path)
        server_a, replica_a = await start_replica(deployment, writer)
        proxy = await start_proxy(writer, [server_a])
        try:
            tx = make_transactions(deployment, 1, seed=33)[0]
            client = await RpcClient.connect(
                "127.0.0.1", proxy.port
            )
            try:
                receipt = await client.call(
                    "repro_sendTransaction",
                    {"tx": protocol.tx_to_wire(tx)},
                )
            finally:
                await client.close()
            assert receipt["success"] is True
            assert proxy.writes_forwarded == 1
            assert writer.builder.txs_committed == 1
        finally:
            await proxy.stop()
            await stop_replica(server_a, replica_a)
            await writer.shutdown()

    asyncio.run(run())


def test_proxy_subscription_survives_replica_death(
    deployment, tmp_path
):
    """newHeads keep flowing, deduped by height, across a failover."""

    async def run():
        writer = await start_writer(deployment, tmp_path)
        server_a, replica_a = await start_replica(deployment, writer)
        proxy = await start_proxy(writer, [server_a])
        heads: list[int] = []
        try:
            client = await RpcClient.connect(
                "127.0.0.1", proxy.port
            )
            try:
                sub = await client.call(
                    "repro_subscribe", {"topic": "newHeads"}
                )
                assert "subscription" in sub

                async def collect() -> None:
                    while True:
                        try:
                            note = await client.next_notification(
                                timeout=0.25
                            )
                        except asyncio.TimeoutError:
                            continue
                        params = note.get("params") or {}
                        heads.append(
                            int(params["result"]["height"])
                        )

                collector = asyncio.ensure_future(collect())
                await send_transfers(
                    deployment, writer.config.port, 8, seed=34
                )
                await eventually(
                    lambda: len(heads) >= 1,
                    desc="heads before the kill",
                )
                seen_before = len(heads)
                await stop_replica(server_a, replica_a)
                # The pump needs a moment to notice the dead upstream
                # and re-subscribe; keep committing blocks so there is
                # always a head to push once it has failed over.
                deadline = asyncio.get_running_loop().time() + 15.0
                seed = 35
                while len(heads) <= seen_before:
                    assert (
                        asyncio.get_running_loop().time() < deadline
                    ), "no heads after failing over to the writer"
                    await send_transfers(
                        deployment, writer.config.port, 2, seed=seed
                    )
                    seed += 1
                    await asyncio.sleep(0.1)
                collector.cancel()
                await asyncio.gather(
                    collector, return_exceptions=True
                )
            finally:
                await client.close()
        finally:
            await proxy.stop()
            await writer.shutdown()
        # Strictly increasing: failover never replayed or skipped
        # around a head the client already saw.
        assert heads == sorted(set(heads))

    asyncio.run(run())
