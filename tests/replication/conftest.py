"""In-process replication harness: writer + replicas + proxy, no subprocesses.

The chaos smoke (``python -m repro.replication.smoke``) covers the
real-process SIGKILL drill; these fixtures wire the same components
inside one event loop so the tier-1 suite can exercise streaming,
divergence, resync, and proxy routing deterministically and fast.
"""

from __future__ import annotations

import asyncio
import time

from repro.chain.node import Node
from repro.replication import BackoffPolicy, Replica, ReplicationConfig
from repro.serve import RpcServer, ServeConfig


def fast_replication(**overrides) -> ReplicationConfig:
    defaults = dict(
        poll_interval_s=0.01,
        seed=1,
        backoff=BackoffPolicy(
            base_delay_s=0.02, max_delay_s=0.2, jitter=0.25
        ),
        stream_read_timeout_s=5.0,
        health_interval_s=0.05,
        backend_timeout_s=2.0,
    )
    defaults.update(overrides)
    return ReplicationConfig(**defaults)


async def start_writer(
    deployment, tmp_path, fault_injector=None, **overrides
) -> RpcServer:
    defaults = dict(
        host="127.0.0.1",
        port=0,
        block_size_target=4,
        gas_target=None,
        block_interval_ms=25.0,
        data_dir=str(tmp_path / "writer"),
        fsync="never",
        snapshot_interval_blocks=4,
        replication_port=0,
    )
    defaults.update(overrides)
    config = ServeConfig(**defaults)
    node = Node(
        state=deployment.state.copy(),
        per_sender_cap=config.per_sender_cap,
    )
    server = RpcServer(
        node=node, config=config, fault_injector=fault_injector
    )
    await server.start()
    return server


async def start_replica(
    deployment, writer: RpcServer, fault_injector=None, **overrides
) -> tuple[RpcServer, Replica]:
    config = ServeConfig(host="127.0.0.1", port=0, role="replica")
    node = Node(state=deployment.state.copy())
    server = RpcServer(node=node, config=config)
    replica = Replica(
        node=node,
        builder=server.builder,
        writer_host="127.0.0.1",
        writer_stream_port=writer.config.replication_port,
        config=fast_replication(**overrides),
        fault_injector=fault_injector,
    )
    server.replication = replica
    await server.start()
    replica.start()
    return server, replica


async def stop_replica(server: RpcServer, replica: Replica) -> None:
    await replica.stop()
    await server.shutdown()


async def send_transfers(deployment, port: int, count: int, seed=0):
    """Commit *count* transfer transactions through the writer's RPC."""
    from repro.serve import protocol
    from repro.serve.loadgen import RpcClient, make_transactions

    txs = make_transactions(deployment, count, seed=seed)
    client = await RpcClient.connect("127.0.0.1", port)
    try:
        for tx in txs:
            await client.call(
                "repro_sendTransaction",
                {"tx": protocol.tx_to_wire(tx)},
            )
    finally:
        await client.close()
    return txs


async def eventually(
    predicate, timeout=15.0, interval=0.02, desc="condition"
) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(interval)
    raise AssertionError(f"timed out waiting for {desc}")


def digest_of(server: RpcServer) -> bytes:
    from repro.storage import codec

    with server.builder.state_lock:
        return codec.state_digest_bytes(server.node.state)
