"""Replica behaviour: follow, verify, diverge, resync, reconnect."""

import asyncio

import pytest

from repro.chain.node import Node
from repro.faults import FaultInjector, FaultPlan, NetworkFault
from repro.replication import Replica, ReplicaDivergenceError
from repro.serve import READ_ONLY, RpcClientError, ServeConfig
from repro.serve.batcher import BlockBuilder
from repro.serve.loadgen import RpcClient
from repro.storage import codec

from .conftest import (
    digest_of,
    eventually,
    send_transfers,
    start_replica,
    start_writer,
    stop_replica,
)


def test_replica_follows_writer_bit_identical(deployment, tmp_path):
    async def run():
        writer = await start_writer(deployment, tmp_path)
        replica_server, replica = await start_replica(
            deployment, writer
        )
        try:
            txs = await send_transfers(
                deployment, writer.config.port, 12, seed=21
            )
            await eventually(
                lambda: replica.height == len(writer.node.chain)
                and len(writer.node.chain) > 0,
                desc="replica caught up",
            )
            assert digest_of(replica_server) == digest_of(writer)
            # The replica's serve layer is fed: reads and receipts work.
            client = await RpcClient.connect(
                "127.0.0.1", replica_server.config.port
            )
            try:
                balance = await client.call(
                    "repro_getBalance",
                    {"address": hex(txs[0].sender)},
                )
                receipt = await client.call(
                    "repro_getReceipt",
                    {"txHash": txs[0].hash().hex()},
                )
                health = await client.call("repro_health")
            finally:
                await client.close()
            with writer.builder.state_lock, \
                    writer.node.state.untracked():
                writer_balance = writer.node.state.get_balance(
                    txs[0].sender
                )
            assert balance == writer_balance
            assert receipt is not None and receipt["success"] is True
            assert health["role"] == "replica"
            assert health["height"] == replica.height
            assert (
                health["stateDigest"] == digest_of(writer).hex()
            )
            assert health["replication"]["blocksApplied"] > 0
        finally:
            await stop_replica(replica_server, replica)
            await writer.shutdown()

    asyncio.run(run())


def test_replica_rejects_writes_with_typed_error(deployment, tmp_path):
    async def run():
        writer = await start_writer(deployment, tmp_path)
        replica_server, replica = await start_replica(
            deployment, writer
        )
        try:
            from repro.serve import protocol
            from repro.serve.loadgen import make_transactions

            tx = make_transactions(deployment, 1, seed=3)[0]
            client = await RpcClient.connect(
                "127.0.0.1", replica_server.config.port
            )
            try:
                with pytest.raises(RpcClientError) as err:
                    await client.call(
                        "repro_sendTransaction",
                        {"tx": protocol.tx_to_wire(tx)},
                    )
            finally:
                await client.close()
            assert err.value.code == READ_ONLY
            assert replica_server.read_only_rejects == 1
        finally:
            await stop_replica(replica_server, replica)
            await writer.shutdown()

    asyncio.run(run())


def test_injected_divergence_detected_and_healed(deployment, tmp_path):
    """Silent state corruption must trip the digest assertion, then heal."""
    injector = FaultInjector(FaultPlan(
        seed=3, network=NetworkFault(corrupt_at_height=2)
    ))

    async def run():
        writer = await start_writer(deployment, tmp_path)
        replica_server, replica = await start_replica(
            deployment, writer, fault_injector=injector
        )
        try:
            await send_transfers(
                deployment, writer.config.port, 16, seed=22
            )
            await eventually(
                lambda: replica.divergences >= 1,
                desc="divergence detected",
            )
            await eventually(
                lambda: replica.resyncs >= 1
                and replica.height == len(writer.node.chain)
                and digest_of(replica_server) == digest_of(writer),
                desc="snapshot resync reconverged",
            )
        finally:
            await stop_replica(replica_server, replica)
            await writer.shutdown()

    asyncio.run(run())
    assert injector.injected["replica_state_corrupted"] == 1


def test_torn_stream_reconnects_with_backoff(deployment, tmp_path):
    injector = FaultInjector(FaultPlan(
        seed=5,
        network=NetworkFault(tear_after_blocks=2, tear_count=1),
    ))

    async def run():
        writer = await start_writer(
            deployment, tmp_path, fault_injector=injector
        )
        replica_server, replica = await start_replica(
            deployment, writer
        )
        try:
            await send_transfers(
                deployment, writer.config.port, 16, seed=23
            )
            await eventually(
                lambda: replica.reconnects >= 1,
                desc="reconnect after the injected tear",
            )
            await eventually(
                lambda: replica.height == len(writer.node.chain)
                and digest_of(replica_server) == digest_of(writer),
                desc="post-reconnect reconvergence",
            )
        finally:
            await stop_replica(replica_server, replica)
            await writer.shutdown()

    asyncio.run(run())
    assert injector.injected["stream_torn"] == 1


def test_far_behind_replica_catches_up_from_snapshot(
    deployment, tmp_path
):
    async def run():
        writer = await start_writer(
            deployment, tmp_path, snapshot_interval_blocks=2
        )
        # The snapshot-vs-stream call is the WRITER's: its streamer
        # compares the HELLO gap against its own catch-up threshold.
        writer.streamer.config.snapshot_catchup_blocks = 2
        try:
            await send_transfers(
                deployment, writer.config.port, 24, seed=24
            )
            height = len(writer.node.chain)
            assert height >= 6
            # Joins with a gap larger than snapshot_catchup_blocks, so
            # the writer must ship a snapshot, not the whole WAL.
            replica_server, replica = await start_replica(
                deployment, writer, snapshot_catchup_blocks=2
            )
            try:
                await eventually(
                    lambda: replica.height == len(writer.node.chain)
                    and digest_of(replica_server)
                    == digest_of(writer),
                    desc="snapshot catch-up",
                )
                assert replica.resyncs >= 1
                # The pre-snapshot prefix was never replayed.
                assert len(replica.node.chain) < replica.height
            finally:
                await stop_replica(replica_server, replica)
        finally:
            await writer.shutdown()

    asyncio.run(run())


def test_apply_block_rolls_back_on_divergence(deployment):
    """Unit-level: a wrong digest never commits, never leaks to reads."""
    writer_node = Node(state=deployment.state.copy())
    from repro.serve.loadgen import make_transactions

    for tx in make_transactions(deployment, 4, seed=9):
        writer_node.hear(tx)
    block = writer_node.propose_block(max_transactions=4)
    writer_node.execute_block(block)
    good_digest = codec.state_digest_bytes(writer_node.state)

    replica_node = Node(state=deployment.state.copy())
    builder = BlockBuilder(
        replica_node,
        ServeConfig(port=0, role="replica"),
    )
    replica = Replica(
        node=replica_node,
        builder=builder,
        writer_host="127.0.0.1",
        writer_stream_port=1,
    )
    before = codec.state_digest_bytes(replica_node.state)
    with pytest.raises(ReplicaDivergenceError) as err:
        replica._apply_block(codec.WalRecord(block, b"\x00" * 32))
    assert err.value.height == 1
    # Rolled back completely: nothing committed, nothing served.
    assert codec.state_digest_bytes(replica_node.state) == before
    assert replica_node.chain == []
    assert replica.height == 0
    assert replica.blocks_applied == 0

    # The same block with the honest digest applies cleanly.
    receipts = replica._apply_block(codec.WalRecord(block, good_digest))
    assert len(receipts) == len(block.transactions)
    assert replica.height == 1
    assert (
        codec.state_digest_bytes(replica_node.state) == good_digest
    )
