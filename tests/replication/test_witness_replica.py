"""Witness-mode replicas: stateless validation of the streamed chain."""

import asyncio

import pytest

from repro.chain.node import Node
from repro.replication import (
    Replica,
    ReplicaDivergenceError,
    StreamProtocolError,
)
from repro.serve import ServeConfig
from repro.serve.batcher import BlockBuilder
from repro.serve.loadgen import RpcClient
from repro.serve.server import RpcServer
from repro.storage import codec

from .conftest import (
    eventually,
    fast_replication,
    send_transfers,
    stop_replica,
)


async def _start_witness_writer(deployment, tmp_path) -> RpcServer:
    # conftest.start_writer builds the node itself (no emit_witness),
    # so a witness-emitting writer has to be booted by hand.
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        block_size_target=4,
        gas_target=None,
        block_interval_ms=25.0,
        data_dir=str(tmp_path / "writer"),
        fsync="never",
        snapshot_interval_blocks=4,
        replication_port=0,
        emit_witness=True,
    )
    node = Node(
        state=deployment.state.copy(),
        per_sender_cap=config.per_sender_cap,
        emit_witness=True,
    )
    server = RpcServer(node=node, config=config)
    await server.start()
    return server


def _witness_replica(deployment):
    node = Node(state=deployment.state.copy())
    builder = BlockBuilder(node, ServeConfig(port=0, role="replica"))
    return Replica(
        node=node,
        builder=builder,
        writer_host="127.0.0.1",
        writer_stream_port=1,
        mode="witness",
    )


def _committed_record(deployment, count=4):
    writer = Node(state=deployment.state.copy(), emit_witness=True)
    from repro.serve.loadgen import make_transactions

    for tx in make_transactions(deployment, count, seed=3):
        writer.hear(tx)
    block = writer.propose_block(max_transactions=count)
    writer.execute_block(block)
    return writer, codec.WalRecord(
        block,
        codec.state_digest_bytes(writer.state),
        state_root=block.header.state_root,
        witness=writer.witnesses[block.header.height],
    )


def test_witness_apply_advances_root_chain_without_state(deployment):
    writer, record = _committed_record(deployment)
    replica = _witness_replica(deployment)
    untouched = codec.state_digest_bytes(replica.node.state)
    receipts = replica._apply_block_witness(record)
    assert len(receipts) == len(record.block.transactions)
    assert replica.height == 1
    assert replica._last_root == writer.state_root
    assert replica._last_digest == record.digest
    assert replica.node.receipts[record.block.hash()] == receipts
    # The replica's resident state was never executed against.
    assert codec.state_digest_bytes(replica.node.state) == untouched


def test_witness_mode_demands_a_witness(deployment):
    writer, record = _committed_record(deployment)
    replica = _witness_replica(deployment)
    bare = codec.WalRecord(record.block, record.digest)
    with pytest.raises(StreamProtocolError) as err:
        replica._apply_block_witness(bare)
    assert "--emit-witness" in str(err.value)


def test_corrupted_witness_is_divergence(deployment):
    writer, record = _committed_record(deployment)
    replica = _witness_replica(deployment)
    mutated = bytearray(record.witness)
    mutated[len(mutated) // 2] ^= 0xFF
    bad = codec.WalRecord(
        record.block,
        record.digest,
        state_root=record.state_root,
        witness=bytes(mutated),
    )
    with pytest.raises(ReplicaDivergenceError) as err:
        replica._apply_block_witness(bad)
    assert err.value.height == 1
    assert replica.height == 0  # nothing committed


def test_witness_replica_follows_writer_end_to_end(
    deployment, tmp_path
):
    async def run():
        writer = await _start_witness_writer(deployment, tmp_path)
        config = ServeConfig(host="127.0.0.1", port=0, role="replica")
        node = Node(state=deployment.state.copy())
        server = RpcServer(node=node, config=config)
        replica = Replica(
            node=node,
            builder=server.builder,
            writer_host="127.0.0.1",
            writer_stream_port=writer.config.replication_port,
            config=fast_replication(),
            mode="witness",
        )
        server.replication = replica
        await server.start()
        replica.start()
        try:
            txs = await send_transfers(
                deployment, writer.config.port, 8, seed=5
            )
            await eventually(
                lambda: replica.height == len(writer.node.chain)
                and len(writer.node.chain) > 0,
                desc="witness replica caught up",
            )
            assert replica._last_root == writer.node.state_root
            client = await RpcClient.connect(
                "127.0.0.1", server.config.port
            )
            try:
                receipt = await client.call(
                    "repro_getReceipt",
                    {"txHash": txs[0].hash().hex()},
                )
            finally:
                await client.close()
            assert receipt is not None and receipt["success"] is True
        finally:
            await stop_replica(server, replica)
            await writer.shutdown()

    asyncio.run(run())
