"""Unit tests for the metrics registry, tracing and helpers."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_REGISTRY,
    LogicalClock,
    MetricsRegistry,
    SpanTracer,
    count,
    delta,
    flat_key,
    get_registry,
    get_tracer,
    observe,
    percentile,
    timed,
    use_registry,
    use_tracing,
)


class TestCounters:
    def test_counter_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        a = reg.counter("evm.instructions")
        b = reg.counter("evm.instructions")
        assert a is b
        a.inc()
        b.inc(4)
        assert reg.value("evm.instructions") == 5

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("db_cache.hits", pu=0).inc(3)
        reg.counter("db_cache.hits", pu=1).inc(2)
        assert reg.value("db_cache.hits", pu=0) == 3
        assert reg.value("db_cache.hits", pu=1) == 2
        assert reg.total("db_cache.hits") == 5

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", a=1, b=2)
        b = reg.counter("x", b=2, a=1)
        assert a is b

    def test_missing_series_reads_zero(self):
        reg = MetricsRegistry()
        assert reg.value("nope") == 0
        assert reg.total("nope") == 0
        assert reg.series("nope") == []


class TestGaugesAndHistograms:
    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("mempool.size")
        g.set(10)
        g.inc(-3)
        assert reg.value("mempool.size") == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("tx.cycles")
        for v in [10, 20, 30, 40]:
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["total"] == 100
        assert summary["min"] == 10
        assert summary["max"] == 40
        assert summary["p50"] == 20

    def test_empty_histogram_summary(self):
        reg = MetricsRegistry()
        assert reg.histogram("empty").summary()["count"] == 0


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_single_value(self):
        assert percentile([7], 50) == 7
        assert percentile([], 99) == 0.0


class TestSnapshots:
    def test_flat_key_rendering(self):
        assert flat_key("a.b", ()) == "a.b"
        assert flat_key("a.b", (("pu", "0"),)) == "a.b{pu=0}"

    def test_snapshot_is_json_serializable_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", pu=1).inc(2)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(5)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a{pu=1}", "b"]
        assert snap["gauges"]["g"] == 3
        assert snap["histograms"]["h"]["count"] == 1

    def test_delta(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        before = reg.counters_flat()
        reg.counter("x").inc(3)
        reg.counter("y").inc(1)
        diff = delta(before, reg.counters_flat())
        assert diff == {"x": 3, "y": 1}

    def test_reset_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.counters_flat() == {}


class TestNullRegistry:
    def test_default_registry_is_disabled(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_null_metrics_record_nothing(self):
        NULL_REGISTRY.counter("x").inc(5)
        NULL_REGISTRY.gauge("y").set(5)
        NULL_REGISTRY.histogram("z").observe(5)
        assert NULL_REGISTRY.counters_flat() == {}
        assert NULL_REGISTRY.snapshot()["histograms"] == {}

    def test_use_registry_scopes_and_restores(self):
        with use_registry() as reg:
            assert get_registry() is reg
            assert reg.enabled
            reg.counter("x").inc()
        assert get_registry() is NULL_REGISTRY


class TestInstrumentHelpers:
    def test_count_and_observe(self):
        with use_registry() as reg:
            count("events")
            count("events", 2, kind="a")
            observe("sizes", 10)
        assert reg.total("events") == 3
        assert reg.histogram("sizes").count == 1

    def test_count_is_noop_when_disabled(self):
        count("events")  # must not raise nor record
        assert NULL_REGISTRY.counters_flat() == {}

    def test_timed_decorator(self):
        @timed("work")
        def work(x):
            return x * 2

        with use_registry() as reg:
            assert work(21) == 42
        assert reg.value("work.calls") == 1
        assert reg.histogram("work.seconds").count == 1

    def test_timed_bare_derives_metric_from_function(self):
        @timed
        def named():
            return 1

        base = f"{named.__module__}.{named.__qualname__}"
        with use_registry() as reg:
            named()
        assert reg.value(base + ".calls") == 1

    def test_timed_skips_clock_when_disabled(self):
        @timed("work")
        def work():
            return 7

        assert work() == 7  # default registry: nothing recorded


class TestTracing:
    def test_default_tracer_is_noop(self):
        tracer = get_tracer()
        assert not tracer.enabled
        with tracer.span("anything") as span:
            span.set(ignored=True)
        assert tracer.current() is None

    def test_span_nesting(self):
        with use_tracing() as tracer:
            with tracer.span("outer", a=1) as outer:
                with tracer.span("inner") as inner:
                    inner.set(b=2)
                assert tracer.current() is outer
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.attributes == {"a": 1}
        assert root.children[0].attributes == {"b": 2}
        assert root.end >= root.start

    def test_logical_clock_spans_are_deterministic(self):
        def trace_once():
            with use_tracing(SpanTracer(clock=LogicalClock())) as t:
                with t.span("a"):
                    with t.span("b"):
                        pass
            return t.to_dicts()

        assert trace_once() == trace_once()
        root = trace_once()[0]
        assert root["start"] == 1
        assert root["children"][0]["start"] == 2

    def test_span_closes_on_exception(self):
        with use_tracing() as tracer:
            with pytest.raises(ValueError):
                with tracer.span("fails"):
                    raise ValueError("boom")
        assert tracer.roots[0].end is not None
        assert tracer.current() is None
