"""Metric invariants: instrumentation must agree with ground truth.

Every counter the observability layer publishes is redundant with some
piece of ground truth (component stats, receipts, scheduler bookkeeping).
This suite pins the cross-checks:

* DB cache: ``db_cache.lookups == db_cache.hits + db_cache.misses``,
  per PU and in total, and the registry series equal the cache's own
  :class:`~repro.core.mtpu.db_cache.CacheStats`.
* Scheduler: every admitted transaction either commits or aborts.
* Per-PU issued instructions sum to the interpreter's executed
  instructions (both sides count every executed trace step).
* :class:`~repro.obs.BlockPerfReport` round-trips exactly through JSON.

Each invariant runs with instrumentation enabled and the block's results
are asserted identical with it disabled — the null registry really is
free *and* inert.
"""

from __future__ import annotations

import pytest

from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import run_spatial_temporal
from repro.faults import PU_DEAD, FaultInjector, FaultPlan, PUFault
from repro.obs import NULL_REGISTRY, BlockPerfReport, get_registry, use_registry
from repro.workload import generate_dependency_block


@pytest.fixture(scope="module")
def block():
    # Generated outside any registry scope: access discovery runs the
    # EVM and must not pollute the counters under test.
    return generate_dependency_block(
        num_transactions=24, target_ratio=0.4, seed=31
    )


def run_instrumented(block, num_pus=4, fault_injector=None):
    """Run *block* spatio-temporally inside a fresh registry scope."""
    with use_registry() as registry:
        executor = MTPUExecutor(
            block.deployment.state.copy(), num_pus=num_pus,
            pu_config=PUConfig(),
        )
        schedule = run_spatial_temporal(
            executor, block.transactions, block.dag_edges,
            fault_injector=fault_injector,
        )
    return registry, executor, schedule


class TestCacheInvariants:
    def test_lookups_split_into_hits_and_misses(self, block):
        registry, executor, _ = run_instrumented(block)
        lookups = registry.total("db_cache.lookups")
        assert lookups > 0
        assert lookups == (
            registry.total("db_cache.hits")
            + registry.total("db_cache.misses")
        )

    def test_per_pu_series_match_cache_stats(self, block):
        registry, executor, _ = run_instrumented(block)
        for pu in executor.pus:
            stats = pu.db_cache.stats
            label = {"pu": pu.pu_id}
            assert registry.value("db_cache.hits", **label) == stats.hits
            assert (
                registry.value("db_cache.misses", **label) == stats.misses
            )
            assert (
                registry.value("db_cache.lookups", **label)
                == stats.accesses
                == stats.hits + stats.misses
            )


class TestSchedulerInvariants:
    def test_admitted_equals_commits_plus_aborts(self, block):
        registry, _, schedule = run_instrumented(block)
        stats = schedule.scheduler_stats
        assert stats["admitted"] == len(block.transactions)
        assert stats["admitted"] == stats["commits"] + stats["aborts"]
        assert registry.value("sched.admitted") == stats["admitted"]
        assert registry.value("sched.commits") == stats["commits"]
        assert registry.value("sched.aborts") == stats["aborts"]

    def test_holds_under_pu_faults(self, block):
        injector = FaultInjector(FaultPlan(
            pu_faults=(PUFault(pu_id=1, kind=PU_DEAD, at_cycle=50),),
        ))
        registry, _, schedule = run_instrumented(
            block, fault_injector=injector
        )
        stats = schedule.scheduler_stats
        # The aborted attempt re-runs on a survivor, so admissions
        # exceed the block size by exactly the abort count.
        assert stats["admitted"] == stats["commits"] + stats["aborts"]
        assert stats["commits"] == len(block.transactions)
        assert registry.value("sched.aborts") == stats["aborts"]


class TestInstructionInvariants:
    def test_pu_issued_equals_interpreter_executed(self, block):
        registry, executor, schedule = run_instrumented(block)
        per_pu = sum(
            registry.value("pu.instructions", pu=pu.pu_id)
            for pu in executor.pus
        )
        assert per_pu == registry.value("evm.instructions")
        assert per_pu == schedule.total_instructions

    def test_gas_matches_receipts(self, block):
        registry, _, schedule = run_instrumented(block)
        receipt_gas = sum(e.receipt.gas_used for e in schedule.executions)
        assert registry.value("evm.gas_used") == receipt_gas
        assert registry.value("evm.transactions") == len(
            schedule.executions
        )


class TestReportRoundTrip:
    def test_json_round_trip_is_exact(self, block):
        with use_registry() as registry:
            before = registry.counters_flat()
            executor = MTPUExecutor(
                block.deployment.state.copy(), num_pus=4,
                pu_config=PUConfig(),
            )
            schedule = run_spatial_temporal(
                executor, block.transactions, block.dag_edges,
            )
            report = BlockPerfReport.from_execution(
                label="round-trip", schedule=schedule, executor=executor,
                counters_before=before,
            )
        restored = BlockPerfReport.from_json(report.to_json())
        assert restored == report
        assert restored.headline_speedup == report.headline_speedup
        assert restored.cache_hit_rate == report.cache_hit_rate
        assert report.num_transactions == len(block.transactions)
        assert report.opcode_categories  # the opcode mix made it in

    def test_report_defaults_round_trip(self):
        empty = BlockPerfReport()
        assert BlockPerfReport.from_json(empty.to_json()) == empty
        assert empty.headline_speedup == 0.0
        assert empty.p99_tx_cycles == 0.0


class TestDisabledInstrumentation:
    def test_disabled_run_records_nothing_and_matches(self, block):
        registry, _, instrumented = run_instrumented(block)

        assert get_registry() is NULL_REGISTRY
        executor = MTPUExecutor(
            block.deployment.state.copy(), num_pus=4,
            pu_config=PUConfig(),
        )
        plain = run_spatial_temporal(
            executor, block.transactions, block.dag_edges,
        )

        # The null registry stayed empty...
        assert NULL_REGISTRY.counters_flat() == {}
        # ...and instrumentation changed no simulated result.
        assert plain.makespan_cycles == instrumented.makespan_cycles
        assert plain.total_instructions == instrumented.total_instructions
        assert [
            e.receipt for e in plain.executions
        ] == [e.receipt for e in instrumented.executions]

    def test_degradation_counters_shared_with_registry(self, block):
        from repro.faults import DegradationReport

        injector = FaultInjector(FaultPlan(
            pu_faults=(PUFault(pu_id=0, kind=PU_DEAD, at_cycle=50),),
        ))
        report = DegradationReport()
        with use_registry() as registry:
            executor = MTPUExecutor(
                block.deployment.state.copy(), num_pus=4,
                pu_config=PUConfig(),
            )
            run_spatial_temporal(
                executor, block.transactions, block.dag_edges,
                fault_injector=injector, report=report,
            )
        assert report.pu_failures_detected == 1
        # One source of truth: the report's fields equal the faults.*
        # series it published through DegradationReport.count().
        assert DegradationReport.from_registry(registry) == report
