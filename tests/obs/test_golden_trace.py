"""Golden-trace regression: a small ERC-20 block's metrics and spans.

One seeded ERC-20 block runs through the full accelerated-validator
pipeline with a :class:`~repro.obs.LogicalClock`-driven tracer, and the
resulting counters + span forest are compared byte-for-byte against the
committed fixture. Every value is deterministic — model cycles, logical
timestamps, seeded workloads — so any diff is a real behaviour change in
the interpreter, cache, scheduler or tracer, not noise.

To refresh after an intentional change::

    PYTHONPATH=src python -m pytest tests/obs/test_golden_trace.py \\
        --update-golden

then review the fixture diff before committing it.
"""

from __future__ import annotations

import json
import pathlib
import random

import pytest

from repro.core.validator import AcceleratedValidator
from repro.evm.context import BlockContext
from repro.evm.decoded import DECODE_CACHE
from repro.obs import LogicalClock, SpanTracer, use_registry, use_tracing
from repro.parallel import SpeculativeBlockExecutor
from repro.workload import ActionLibrary

GOLDEN = pathlib.Path(__file__).parent / "golden" / "erc20_block.json"

#: Wall-clock metric suffixes are excluded by construction (only
#: counters are snapshotted; ``*.seconds`` series are histograms).
NUM_TRANSACTIONS = 10
NUM_PUS = 2
SEED = 11


def run_erc20_block(deployment) -> dict:
    """Deterministic instrumented run; returns the golden payload."""
    # The decoded-program cache is process-global; start cold so the
    # evm.decode_cache_* counters don't depend on which tests ran before.
    DECODE_CACHE.clear()
    tracer = SpanTracer(clock=LogicalClock())
    with use_registry() as registry, use_tracing(tracer):
        validator = AcceleratedValidator(
            state=deployment.state.copy(), num_pus=NUM_PUS,
            deployment=deployment,
        )
        library = ActionLibrary(deployment, random.Random(SEED))
        for i in range(NUM_TRANSACTIONS):
            contract = ("Dai", "TetherToken")[i % 2]
            validator.hear(library.to_transaction(library.plan(contract)))
        block = validator.propose_block()
        outcome = validator.validate(block)
        # Speculative (OCC) lane: the same deterministic library drives
        # a small block through the Block-STM-shaped engine so the
        # speculate.* counters are pinned by the fixture too. Serial
        # backend — identical accounting to the pool, no nondeterminism.
        occ_state = deployment.state.copy()
        occ_txs = [
            library.to_transaction(
                library.plan(("Dai", "TetherToken")[i % 2])
            )
            for i in range(NUM_TRANSACTIONS)
        ]
        with SpeculativeBlockExecutor(
            occ_state, block=BlockContext(height=1), backend="serial"
        ) as speculator:
            occ_result = speculator.execute_block(occ_txs)
    assert outcome.committed
    assert len(occ_result.receipts) == NUM_TRANSACTIONS
    return {
        "config": {
            "transactions": NUM_TRANSACTIONS,
            "pus": NUM_PUS,
            "seed": SEED,
        },
        "counters": registry.counters_flat(),
        "spans": tracer.to_dicts(),
    }


def test_erc20_block_matches_golden_trace(deployment, request):
    payload = run_erc20_block(deployment)
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"

    if request.config.getoption("--update-golden"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(rendered)
        pytest.skip(f"golden fixture rewritten: {GOLDEN}")

    assert GOLDEN.exists(), (
        f"missing {GOLDEN}; generate it with --update-golden"
    )
    golden = json.loads(GOLDEN.read_text())
    assert payload["counters"] == golden["counters"]
    assert payload["spans"] == golden["spans"]
    assert payload["config"] == golden["config"]


def test_speculation_is_metered(deployment):
    """The OCC lane publishes its cost accounting: executions cover the
    block, and every validation/abort/retry series is present."""
    counters = run_erc20_block(deployment)["counters"]
    assert counters["speculate.executions"] >= NUM_TRANSACTIONS
    assert counters["speculate.validations"] >= NUM_TRANSACTIONS
    assert counters["speculate.executions"] == (
        NUM_TRANSACTIONS + counters["speculate.aborts"]
    )
    for name in ("speculate.aborts", "speculate.retries",
                 "speculate.deferrals"):
        assert name in counters


def test_merkleization_is_metered(deployment):
    """Committing a block Merkleizes: trie.* counters must appear."""
    counters = run_erc20_block(deployment)["counters"]
    assert counters["trie.root_updates"] == 1
    assert counters["trie.nodes_rehashed"] > 0


def test_run_is_reproducible(deployment):
    """The golden payload is identical across back-to-back runs."""
    assert run_erc20_block(deployment) == run_erc20_block(deployment)
