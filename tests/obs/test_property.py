"""Property: the metrics a parallel MTPU run publishes are consistent
with a sequential run of the same block.

The observability layer measures execution — it must not depend on *how*
the block was scheduled. For any generated block, a spatio-temporal run
on k PUs and a sequential run on one PU publish the same total gas and
the same opcode-category histogram; and even with a PU failing
mid-schedule (recovery re-executes the aborted transaction), the
committed receipts and committed-gas totals still agree, with the
registry counting the aborted attempt on top.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import run_sequential, run_spatial_temporal
from repro.faults import PU_DEAD, FaultInjector, FaultPlan, PUFault
from repro.obs import use_registry
from repro.workload import generate_dependency_block


def _ops_histogram(registry) -> dict:
    return {
        (m.name, m.labels): m.value
        for m in registry.series("evm.ops")
    }


def _run(block, driver, num_pus, fault_injector=None):
    """Execute *block* under a fresh registry; returns (registry, result)."""
    with use_registry() as registry:
        executor = MTPUExecutor(
            block.deployment.state.copy(), num_pus=num_pus,
            pu_config=PUConfig(),
        )
        if driver == "sequential":
            result = run_sequential(executor, block.transactions)
        else:
            result = run_spatial_temporal(
                executor, block.transactions, block.dag_edges,
                fault_injector=fault_injector,
            )
    return registry, result


class TestParallelMetricsMatchSequential:
    @settings(max_examples=15, deadline=None)
    @given(
        num_transactions=st.integers(min_value=4, max_value=10),
        ratio=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
        seed=st.integers(min_value=0, max_value=255),
        num_pus=st.integers(min_value=2, max_value=4),
    )
    def test_gas_and_opcode_mix_are_schedule_invariant(
        self, deployment, num_transactions, ratio, seed, num_pus
    ):
        block = generate_dependency_block(
            deployment, num_transactions=num_transactions,
            target_ratio=ratio, seed=seed,
        )
        seq_reg, seq = _run(block, "sequential", num_pus=1)
        par_reg, par = _run(block, "spatial_temporal", num_pus=num_pus)

        assert par_reg.value("evm.gas_used") == seq_reg.value(
            "evm.gas_used"
        )
        assert par_reg.value("evm.instructions") == seq_reg.value(
            "evm.instructions"
        )
        assert _ops_histogram(par_reg) == _ops_histogram(seq_reg)
        assert par.receipts_in_block_order(
            block.transactions
        ) == seq.receipts_in_block_order(block.transactions)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=255),
        num_pus=st.integers(min_value=2, max_value=4),
        fault_pu=st.integers(min_value=0, max_value=3),
        at_cycle=st.integers(min_value=0, max_value=4_000),
    )
    def test_committed_metrics_consistent_under_pu_fault(
        self, deployment, seed, num_pus, fault_pu, at_cycle
    ):
        block = generate_dependency_block(
            deployment, num_transactions=8, target_ratio=0.5, seed=seed,
        )
        pu_faults = ()
        if fault_pu < num_pus:
            pu_faults = (PUFault(
                pu_id=fault_pu, kind=PU_DEAD, at_cycle=at_cycle,
            ),)
        injector = FaultInjector(FaultPlan(seed=seed, pu_faults=pu_faults))

        seq_reg, seq = _run(block, "sequential", num_pus=1)
        par_reg, par = _run(
            block, "spatial_temporal", num_pus=num_pus,
            fault_injector=injector,
        )

        # Committed results are schedule- and fault-invariant.
        assert par.receipts_in_block_order(
            block.transactions
        ) == seq.receipts_in_block_order(block.transactions)
        committed_gas = sum(
            e.receipt.gas_used for e in par.executions
        )
        assert committed_gas == seq_reg.value("evm.gas_used")

        # The registry additionally counted any aborted attempt, so it
        # can only exceed the committed totals, and the scheduler's
        # admission accounting explains the difference exactly.
        assert par_reg.value("evm.gas_used") >= committed_gas
        stats = par.scheduler_stats
        assert stats["admitted"] == stats["commits"] + stats["aborts"]
        assert stats["commits"] == len(block.transactions)
        assert par_reg.value("evm.transactions") == stats["admitted"]
