"""Property-based EVM tests: randomized programs vs a Python reference,
and global gas determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Transaction, WorldState
from repro.contracts.asm import assemble
from repro.evm import EVM, abi
from repro.evm.interpreter import _ARITH_FN, _LOGIC_FN

ALICE = 0xA1
CONTRACT = 0xC0

#: Binary ops safe for random composition (total functions on words).
BINARY_OPS = ["ADD", "SUB", "MUL", "DIV", "MOD", "AND", "OR", "XOR",
              "LT", "GT", "EQ"]

RETURN_TOP = "PUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"

word = st.integers(0, (1 << 256) - 1)


@st.composite
def straight_line_programs(draw):
    """A random arithmetic expression in postfix form.

    Returns (assembly source, expected top-of-stack value).
    """
    # Start with one operand; each step pushes a value and applies an op.
    initial = draw(word)
    source_lines = [f"PUSH32 {initial:#066x}"]
    value = initial
    for _ in range(draw(st.integers(0, 12))):
        operand = draw(word)
        op = draw(st.sampled_from(BINARY_OPS))
        source_lines.append(f"PUSH32 {operand:#066x}")
        source_lines.append(op)
        # Stack is [value, operand]; binary ops take top as first arg.
        fn = _ARITH_FN.get(op) or _LOGIC_FN[op]
        value = fn(operand, value)
    return "\n".join(source_lines) + "\n" + RETURN_TOP, value


def execute(source, gas_limit=2_000_000):
    state = WorldState()
    state.set_balance(ALICE, 10**24)
    state.set_code(CONTRACT, assemble(source))
    evm = EVM(state)
    return evm.execute_transaction(
        Transaction(sender=ALICE, to=CONTRACT, gas_limit=gas_limit)
    )


class TestRandomPrograms:
    @settings(max_examples=60, deadline=None)
    @given(straight_line_programs())
    def test_matches_python_reference(self, program):
        source, expected = program
        receipt = execute(source)
        assert receipt.success
        assert abi.decode_uint(receipt.output) == expected

    @settings(max_examples=25, deadline=None)
    @given(straight_line_programs())
    def test_gas_is_deterministic(self, program):
        source, _ = program
        first = execute(source)
        second = execute(source)
        assert first.gas_used == second.gas_used

    @settings(max_examples=25, deadline=None)
    @given(straight_line_programs(), st.integers(21_000, 40_000))
    def test_tight_gas_never_commits_partially(self, program, gas_limit):
        """Whatever the gas limit, the outcome is all-or-nothing."""
        source, expected = program
        state = WorldState()
        state.set_balance(ALICE, 10**24)
        code = assemble(
            "PUSH 1\nPUSH 0\nSSTORE\n" + source
        )
        state.set_code(CONTRACT, code)
        receipt = EVM(state).execute_transaction(
            Transaction(sender=ALICE, to=CONTRACT, gas_limit=gas_limit)
        )
        stored = state.get_storage(CONTRACT, 0)
        if receipt.success:
            assert stored == 1
        else:
            assert stored == 0

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=64))
    def test_arbitrary_bytecode_never_crashes_interpreter(self, code):
        """Garbage bytecode must fail gracefully, never raise out of the
        transaction boundary."""
        state = WorldState()
        state.set_balance(ALICE, 10**24)
        state.set_code(CONTRACT, bytes(code))
        receipt = EVM(state).execute_transaction(
            Transaction(sender=ALICE, to=CONTRACT, gas_limit=200_000)
        )
        assert isinstance(receipt.success, bool)
        assert receipt.gas_used <= 200_000

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=64))
    def test_arbitrary_bytecode_state_atomicity(self, code):
        """Failed garbage execution leaves the world digest untouched
        except for fee accounting and the sender nonce."""
        state = WorldState()
        state.set_balance(ALICE, 10**24)
        state.set_code(CONTRACT, bytes(code))
        storage_before = dict(state.account(CONTRACT).storage)
        receipt = EVM(state).execute_transaction(
            Transaction(sender=ALICE, to=CONTRACT, gas_limit=200_000)
        )
        if not receipt.success:
            assert state.account(CONTRACT).storage == storage_before
