"""Differential harness: decoded fast path ≡ legacy traced path, bit for bit.

The fast path (`repro.evm.decoded`) is only admissible because it is
observationally identical to the reference interpreter: same receipts
(including the *exception class name* in ``error``), same gas, same
logs, same post-state digest. This suite proves it three ways:

* hypothesis-generated workload blocks (dependency chains, varied seeds)
  executed by both paths;
* crafted edge-case programs — revert, OOG at every gas limit up to the
  success threshold (which probes failure *inside* fused patterns),
  invalid jumps, call-depth recursion, static-context violations,
  CREATE/CREATE2/SELFDESTRUCT, stack depth at the 1024 boundary;
* MTPU replay under PU-fault injection: the committed receipts of a
  faulted spatio-temporal run still match the fast sequential path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Transaction, WorldState
from repro.contracts.asm import assemble
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import run_spatial_temporal
from repro.evm import EVM, Tracer
from repro.evm.context import BlockContext
from repro.faults import PU_DEAD, FaultInjector, FaultPlan, PUFault
from repro.storage.codec import state_digest_bytes
from repro.workload import generate_dependency_block

ALICE = 0xA11CE
BOB = 0xB0B
CONTRACT = 0xC0DE


def _both_paths(state, txs, block=None):
    """Execute *txs* on copies of *state* via both paths.

    Returns ``(fast_receipts, legacy_receipts, fast_digest, legacy_digest)``.
    The legacy run attaches a full :class:`Tracer` — the exact
    configuration discovery/timing/profiling use — so this also proves
    the fast path against the *traced* interpreter, not merely the
    legacy loop.
    """
    results = []
    for mode in ("fast", "legacy"):
        world = state.copy()
        if mode == "fast":
            evm = EVM(world, block=block)
            assert evm._fast, "NullTracer run must engage the fast path"
        else:
            evm = EVM(world, block=block, tracer=Tracer())
            assert not evm._fast
        receipts = [evm.execute_transaction(tx) for tx in txs]
        results.append((receipts, state_digest_bytes(world)))
    (fast, fast_digest), (legacy, legacy_digest) = results
    return fast, legacy, fast_digest, legacy_digest


def _assert_identical(state, txs, block=None):
    fast, legacy, fast_digest, legacy_digest = _both_paths(
        state, txs, block=block
    )
    for fast_receipt, legacy_receipt in zip(fast, legacy):
        assert fast_receipt == legacy_receipt
        assert fast_receipt.gas_used == legacy_receipt.gas_used
        assert fast_receipt.error == legacy_receipt.error
        assert fast_receipt.logs == legacy_receipt.logs
    assert fast_digest == legacy_digest


# ---------------------------------------------------------------------------
# Random workload blocks
# ---------------------------------------------------------------------------


class TestWorkloadBlocks:
    @settings(max_examples=12, deadline=None)
    @given(
        num_transactions=st.integers(min_value=2, max_value=12),
        ratio=st.sampled_from([0.0, 0.4, 1.0]),
        seed=st.integers(min_value=0, max_value=511),
    )
    def test_generated_blocks_bit_identical(
        self, deployment, num_transactions, ratio, seed
    ):
        block = generate_dependency_block(
            deployment, num_transactions=num_transactions,
            target_ratio=ratio, seed=seed,
        )
        _assert_identical(block.deployment.state, block.transactions)


# ---------------------------------------------------------------------------
# Crafted edge cases
# ---------------------------------------------------------------------------

#: name -> assembly exercising one failure mode or fused pattern.
EDGE_PROGRAMS = {
    "revert_with_data": (
        "PUSH 0xdead\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nREVERT"
    ),
    "invalid_jump_fused": "PUSH 7\nJUMP",  # fused PUSH+JUMP, bad target
    "invalid_jump_dynamic": "PUSH 0\nCALLDATALOAD\nJUMP",
    "invalid_jumpi_taken": "PUSH 1\nPUSH 9\nSWAP1\nJUMPI",
    "invalid_opcode": "PUSH 1\nINVALID",
    "underflow_add": "PUSH 1\nADD\nSTOP",
    "underflow_pop": "POP",
    "underflow_swap1_pop": "PUSH 1\nSWAP1\nPOP\nSTOP",
    "static_violation": (
        # STATICCALL into self at @store, which SSTOREs.
        "PUSH 0\nCALLDATALOAD\nPUSH @store\nJUMPI\n"
        "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 1\nADDRESS\nGAS\n"
        "STATICCALL\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN\n"
        "store:\nPUSH 1\nPUSH 0\nSSTORE\nSTOP"
    ),
    "sstore_and_refund": (
        "PUSH 5\nPUSH 1\nSSTORE\nPUSH 0\nPUSH 1\nSSTORE\nSTOP"
    ),
    "logs_two_topics": (
        "PUSH 0xbeef\nPUSH 0\nMSTORE\n"
        "PUSH 2\nPUSH 1\nPUSH 32\nPUSH 0\nLOG2\nSTOP"
    ),
    "sha3_and_exp": (
        "PUSH 0xff\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nSHA3\n"
        "PUSH 3\nEXP\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"
    ),
    "const_chain_mix": (
        "PUSH 2\nPUSH 3\nMUL\nPUSH 10\nADD\nDUP1\nSUB\n"
        "PUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"
    ),
    "call_depth_recursion": (
        # Self-call with all forwardable gas until depth/gas exhaustion.
        "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nADDRESS\nGAS\nCALL\n"
        "PUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"
    ),
    "selfdestruct": "PUSH 0xb0b\nSELFDESTRUCT",
    "create_child": (
        # CREATE an empty-code child, return its address.
        "PUSH 0\nPUSH 0\nPUSH 0\nCREATE\n"
        "PUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"
    ),
    "returndatacopy_oob": (
        "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nADDRESS\nGAS\nSTATICCALL\nPOP\n"
        "PUSH 32\nPUSH 0\nPUSH 0\nRETURNDATACOPY\nSTOP"
    ),
}


def _fresh_state(code: bytes) -> WorldState:
    state = WorldState()
    state.set_balance(ALICE, 10**24)
    state.set_balance(BOB, 10**21)
    state.set_code(CONTRACT, code)
    state.clear_journal()
    return state


class TestEdgePrograms:
    @pytest.mark.parametrize("name", sorted(EDGE_PROGRAMS))
    def test_ample_gas(self, name):
        state = _fresh_state(assemble(EDGE_PROGRAMS[name]))
        txs = [Transaction(sender=ALICE, to=CONTRACT, data=b"\x00" * 32,
                           gas_limit=5_000_000)]
        _assert_identical(state, txs)

    @pytest.mark.parametrize("name", sorted(EDGE_PROGRAMS))
    def test_every_gas_limit_to_success(self, name):
        """Sweep the gas limit from intrinsic cost to success.

        Each limit moves the OutOfGas point one instruction (or one
        fused stage) earlier — if a fused handler charged gas in the
        wrong order relative to its checks, some limit in this sweep
        would produce a different error class or gas_used.
        """
        code = assemble(EDGE_PROGRAMS[name])
        state = _fresh_state(code)
        data = b"\x00" * 32
        probe = EVM(state.copy())
        ample = probe.execute_transaction(Transaction(
            sender=ALICE, to=CONTRACT, data=data, gas_limit=5_000_000
        ))
        # Cap the sweep (call-depth recursion burns millions of gas).
        ceiling = min(ample.gas_used + 2, 60_000)
        for gas_limit in range(20_000, ceiling, 7):
            txs = [Transaction(sender=ALICE, to=CONTRACT, data=data,
                               gas_limit=gas_limit)]
            _assert_identical(state, txs)


class TestStackDepthBoundary:
    def _deep_code(self, fill: int, tail: str) -> bytes:
        return assemble("\n".join(["PUSH 1"] * fill) + "\n" + tail)

    @pytest.mark.parametrize("tail", [
        "PUSH 2\nSTOP",            # fused-const overflow staging
        "DUP1\nSTOP",
        "PUSH 2\nADD\nSTOP",       # push+bin at the boundary
        "DUP1\nMUL\nSTOP",
        "PUSH 0\nCALLDATALOAD\nSTOP",
    ])
    @pytest.mark.parametrize("fill", [1022, 1023, 1024])
    def test_overflow_at_1024(self, fill, tail):
        state = _fresh_state(self._deep_code(fill, tail))
        txs = [Transaction(sender=ALICE, to=CONTRACT, data=b"\x00" * 32,
                           gas_limit=5_000_000)]
        _assert_identical(state, txs)


class TestCodeMutationCoherence:
    def test_create2_redeploy_cycle(self, deployment):
        """Deploy → selfdestruct → redeploy different code at the same
        CREATE2 address; both paths agree at every step."""
        v1 = assemble("PUSH 1\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN")
        v2 = assemble("PUSH 2\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN")
        state = WorldState()
        state.set_balance(ALICE, 10**24)
        state.clear_journal()
        for code in (v1, v2, v1):
            world = state.copy()
            address = 0xCAFE
            world.set_code(address, code)
            txs = [
                Transaction(sender=ALICE, to=address, gas_limit=200_000),
            ]
            _assert_identical(world, txs)
            # Destroy between rounds on the shared base.
            state.delete_account(address)


# ---------------------------------------------------------------------------
# Fault injection: MTPU replay vs fast sequential path
# ---------------------------------------------------------------------------


class TestFaultInjection:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=255),
        num_pus=st.integers(min_value=2, max_value=4),
        fault_pu=st.integers(min_value=0, max_value=3),
        at_cycle=st.integers(min_value=0, max_value=4_000),
    )
    def test_faulted_mtpu_matches_fast_path(
        self, deployment, seed, num_pus, fault_pu, at_cycle
    ):
        block = generate_dependency_block(
            deployment, num_transactions=8, target_ratio=0.5, seed=seed,
        )
        pu_faults = ()
        if fault_pu < num_pus:
            pu_faults = (PUFault(
                pu_id=fault_pu, kind=PU_DEAD, at_cycle=at_cycle,
            ),)
        injector = FaultInjector(FaultPlan(seed=seed, pu_faults=pu_faults))

        executor = MTPUExecutor(
            block.deployment.state.copy(), num_pus=num_pus,
            pu_config=PUConfig(),
        )
        result = run_spatial_temporal(
            executor, block.transactions, block.dag_edges,
            fault_injector=injector,
        )

        world = block.deployment.state.copy()
        evm = EVM(world, block=BlockContext())
        assert evm._fast
        fast_receipts = [
            evm.execute_transaction(tx) for tx in block.transactions
        ]
        assert result.receipts_in_block_order(
            block.transactions
        ) == fast_receipts
