"""Interpreter semantics: control flow, storage, environment, failures,
and the deterministic-gas invariant."""

from repro.chain import Transaction, WorldState
from repro.evm import EVM, abi
from repro.evm.context import BlockContext
from tests.conftest import ALICE, BOB, CONTRACT, run_code

RETURN_TOP = "PUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"


def returned(receipt) -> int:
    return abi.decode_uint(receipt.output)


class TestBasicExecution:
    def test_empty_code_succeeds(self, state):
        receipt, _ = run_code(state, "STOP")
        assert receipt.success

    def test_implicit_stop_at_code_end(self, state):
        receipt, _ = run_code(state, "PUSH 1\nPUSH 2\nADD")
        assert receipt.success

    def test_return_value(self, state):
        receipt, _ = run_code(state, f"PUSH 2\nPUSH 40\nMUL\n{RETURN_TOP}")
        assert returned(receipt) == 80

    def test_sload_sstore(self, state):
        receipt, _ = run_code(
            state, f"PUSH 0xAB\nPUSH 7\nSSTORE\nPUSH 7\nSLOAD\n{RETURN_TOP}"
        )
        assert returned(receipt) == 0xAB
        assert state.get_storage(CONTRACT, 7) == 0xAB

    def test_mstore8(self, state):
        receipt, _ = run_code(
            state,
            f"PUSH 0x1234\nPUSH 31\nMSTORE8\nPUSH 0\nMLOAD\n{RETURN_TOP}",
        )
        assert returned(receipt) == 0x34

    def test_msize_tracks_high_water(self, state):
        receipt, _ = run_code(
            state, f"PUSH 1\nPUSH 100\nMSTORE\nMSIZE\n{RETURN_TOP}"
        )
        assert returned(receipt) == 160  # ceil(132/32)*32


class TestControlFlow:
    def test_jump(self, state):
        source = """
        PUSH @target
        JUMP
        PUSH 0xBAD
        target:
        PUSH 0x60D
        """ + RETURN_TOP
        receipt, _ = run_code(state, source)
        assert returned(receipt) == 0x60D

    def test_jumpi_taken(self, state):
        source = """
        PUSH 1
        PUSH @yes
        JUMPI
        PUSH 0
        """ + RETURN_TOP + """
        yes:
        PUSH 1
        """ + RETURN_TOP
        receipt, _ = run_code(state, source.replace("        ", ""))
        assert returned(receipt) == 1

    def test_jumpi_not_taken(self, state):
        source = (
            "PUSH 0\nPUSH @yes\nJUMPI\nPUSH 7\n" + RETURN_TOP
            + "\nyes:\nPUSH 9\n" + RETURN_TOP
        )
        receipt, _ = run_code(state, source)
        assert returned(receipt) == 7

    def test_jump_to_non_jumpdest_halts(self, state):
        receipt, _ = run_code(state, "PUSH 3\nJUMP\nSTOP")
        assert not receipt.success
        assert receipt.error == "InvalidJump"

    def test_jump_into_push_immediate_halts(self, state):
        # The 0x5b inside the PUSH2 immediate is not a valid target.
        receipt, _ = run_code(state, "PUSH2 0x5b5b\nPUSH 1\nJUMP")
        assert not receipt.success

    def test_loop_runs_out_of_gas_eventually(self, state):
        receipt, _ = run_code(
            state, "top:\nPUSH @top\nJUMP", gas_limit=100_000
        )
        assert not receipt.success
        assert receipt.error == "OutOfGas"
        assert receipt.gas_used == 100_000  # everything burned


class TestEnvironment:
    def test_caller_and_address(self, state):
        receipt, _ = run_code(state, f"CALLER\n{RETURN_TOP}")
        assert returned(receipt) == ALICE
        receipt, _ = run_code(state, f"ADDRESS\n{RETURN_TOP}")
        assert returned(receipt) == CONTRACT

    def test_callvalue(self, state):
        receipt, _ = run_code(state, f"CALLVALUE\n{RETURN_TOP}", value=55)
        assert receipt.success
        assert returned(receipt) == 55

    def test_calldataload_and_size(self, state):
        data = (7).to_bytes(32, "big") + (9).to_bytes(32, "big")
        receipt, _ = run_code(
            state, f"PUSH 32\nCALLDATALOAD\n{RETURN_TOP}", data=data
        )
        assert returned(receipt) == 9
        receipt, _ = run_code(state, f"CALLDATASIZE\n{RETURN_TOP}", data=data)
        assert returned(receipt) == 64

    def test_calldataload_past_end_zero_pads(self, state):
        receipt, _ = run_code(
            state, f"PUSH 100\nCALLDATALOAD\n{RETURN_TOP}", data=b"\x01"
        )
        assert returned(receipt) == 0

    def test_block_attributes(self, state):
        from repro.contracts.asm import assemble

        state.set_code(CONTRACT, assemble(f"NUMBER\n{RETURN_TOP}"))
        block = BlockContext(height=123, timestamp=999, coinbase=0xC0)
        evm = EVM(state, block=block)
        receipt = evm.execute_transaction(
            Transaction(sender=ALICE, to=CONTRACT, gas_limit=100_000)
        )
        assert returned(receipt) == 123

    def test_balance_query(self, state):
        receipt, _ = run_code(
            state, f"PUSH {BOB:#x}\nBALANCE\n{RETURN_TOP}"
        )
        assert returned(receipt) == 10**21

    def test_codesize(self, state):
        from repro.contracts.asm import assemble

        source = f"CODESIZE\n{RETURN_TOP}"
        receipt, _ = run_code(state, source)
        assert returned(receipt) == len(assemble(source))

    def test_sha3_matches_crypto(self, state):
        from repro.crypto import keccak256_int

        receipt, _ = run_code(
            state,
            f"PUSH 0xAA\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nSHA3\n{RETURN_TOP}",
        )
        assert returned(receipt) == keccak256_int(
            (0xAA).to_bytes(32, "big")
        )


class TestFailureAtomicity:
    def test_revert_rolls_back_storage(self, state):
        source = (
            "PUSH 1\nPUSH 0\nSSTORE\nPUSH 0\nPUSH 0\nREVERT"
        )
        receipt, _ = run_code(state, source)
        assert not receipt.success
        assert receipt.error == "revert"
        assert state.get_storage(CONTRACT, 0) == 0

    def test_out_of_gas_rolls_back_storage(self, state):
        source = "PUSH 1\nPUSH 0\nSSTORE\ntop:\nPUSH @top\nJUMP"
        receipt, _ = run_code(state, source, gas_limit=80_000)
        assert not receipt.success
        assert state.get_storage(CONTRACT, 0) == 0

    def test_stack_underflow_halts(self, state):
        receipt, _ = run_code(state, "ADD")
        assert not receipt.success
        assert receipt.error == "StackUnderflow"

    def test_invalid_opcode_halts(self, state):
        state.set_code(CONTRACT, bytes([0x0C]))
        evm = EVM(state)
        receipt = evm.execute_transaction(
            Transaction(sender=ALICE, to=CONTRACT, gas_limit=100_000)
        )
        assert not receipt.success
        assert receipt.error == "InvalidOpcode"

    def test_failed_tx_still_increments_nonce_and_pays_fee(self, state):
        balance_before = state.get_balance(ALICE)
        receipt, _ = run_code(state, "ADD")  # underflow
        assert state.get_nonce(ALICE) == 1
        assert state.get_balance(ALICE) < balance_before

    def test_insufficient_value_fails_fast(self, state):
        state.set_code(CONTRACT, b"\x00")
        evm = EVM(state)
        receipt = evm.execute_transaction(
            Transaction(sender=ALICE, to=CONTRACT, value=10**30,
                        gas_limit=100_000)
        )
        assert not receipt.success
        assert "balance" in receipt.error


class TestGasDeterminism:
    def test_same_tx_same_gas(self, state):
        source = (
            "PUSH 5\nPUSH 0\nSSTORE\nPUSH 0\nSLOAD\nPUSH 1\nADD\n"
            "PUSH 0\nSSTORE"
        )
        r1, _ = run_code(state, source)
        fresh = WorldState()
        fresh.set_balance(ALICE, 10**21)
        r2, _ = run_code(fresh, source)
        assert r1.success and r2.success
        assert r1.gas_used == r2.gas_used

    def test_gas_used_includes_intrinsic(self, state):
        receipt, _ = run_code(state, "STOP")
        assert receipt.gas_used == 21000

    def test_value_transfer_moves_balance(self, state):
        state.set_code(CONTRACT, b"\x00")  # STOP
        evm = EVM(state)
        evm.execute_transaction(
            Transaction(sender=ALICE, to=CONTRACT, value=500,
                        gas_limit=100_000)
        )
        assert state.get_balance(CONTRACT) == 500

    def test_fee_goes_to_coinbase(self, state):
        state.set_code(CONTRACT, b"\x00")
        block = BlockContext(coinbase=0xFEE)
        evm = EVM(state, block=block)
        receipt = evm.execute_transaction(
            Transaction(sender=ALICE, to=CONTRACT, gas_limit=100_000,
                        gas_price=2)
        )
        assert state.get_balance(0xFEE) == receipt.gas_used * 2

    def test_sstore_clear_refund_capped(self, state):
        state.set_storage(CONTRACT, 0, 1)
        state.clear_journal()
        receipt, _ = run_code(state, "PUSH 0\nPUSH 0\nSSTORE")
        # Clearing refunds at most half the gas used.
        no_refund_receipt, _ = run_code(state, "PUSH 1\nPUSH 0\nSSTORE")
        assert receipt.gas_used < no_refund_receipt.gas_used


class TestLogs:
    def test_log_topics_and_data(self, state):
        source = (
            "PUSH 0xDD\nPUSH 0\nMSTORE\n"  # data word
            "PUSH 0x77\n"  # topic
            "PUSH 32\nPUSH 0\nLOG1"
        )
        receipt, _ = run_code(state, source)
        assert receipt.success
        assert len(receipt.logs) == 1
        log = receipt.logs[0]
        assert log.address == CONTRACT
        assert log.topics == (0x77,)
        assert log.data == (0xDD).to_bytes(32, "big")

    def test_reverted_tx_emits_no_logs(self, state):
        source = (
            "PUSH 0\nPUSH 0\nLOG0\nPUSH 0\nPUSH 0\nREVERT"
        )
        receipt, _ = run_code(state, source)
        assert not receipt.success
        assert receipt.logs == ()
