"""Static bytecode decoding and jump-destination analysis."""

from hypothesis import given
from hypothesis import strategies as st

from repro.contracts.asm import assemble
from repro.evm.code import decode, instruction_at, valid_jumpdests


class TestDecode:
    def test_simple_program(self):
        code = assemble("PUSH 1\nPUSH 2\nADD\nSTOP")
        names = [i.op.name for i in decode(code)]
        assert names == ["PUSH1", "PUSH1", "ADD", "STOP"]

    def test_push_immediate_value(self):
        code = assemble("PUSH4 0xcc80f6f3")
        instr = decode(code)[0]
        assert instr.op.name == "PUSH4"
        assert instr.immediate == 0xCC80F6F3
        assert instr.size == 5

    def test_truncated_push_zero_pads(self):
        code = bytes([0x62, 0xAA])  # PUSH3 with only 1 immediate byte
        instr = decode(code)[0]
        assert instr.immediate == 0xAA0000

    def test_undefined_byte_decodes_invalid(self):
        instrs = decode(bytes([0x0C]))
        assert instrs[0].op.name == "INVALID"

    def test_pcs_are_byte_offsets(self):
        code = assemble("PUSH2 0x1234\nADD")
        instrs = decode(code)
        assert instrs[0].pc == 0
        assert instrs[1].pc == 3
        assert instrs[0].next_pc == 3

    def test_instruction_at(self):
        code = assemble("PUSH 1\nADD")
        assert instruction_at(code, 2).op.name == "ADD"
        assert instruction_at(code, 99).op.name == "STOP"

    @given(st.binary(max_size=200))
    def test_decode_covers_every_byte_once(self, code):
        instrs = decode(bytes(code))
        pos = 0
        for instr in instrs:
            assert instr.pc == pos
            pos += instr.size
        assert pos >= len(code)


class TestJumpdests:
    def test_jumpdest_found(self):
        code = assemble("STOP\nlab:\nSTOP")
        assert valid_jumpdests(code) == frozenset({1})

    def test_jumpdest_inside_push_is_invalid(self):
        # PUSH2 0x5b5b embeds the JUMPDEST byte in an immediate.
        code = bytes([0x61, 0x5B, 0x5B, 0x00])
        assert valid_jumpdests(code) == frozenset()

    def test_every_label_is_a_jumpdest(self):
        source = "a:\nPUSH @b\nJUMP\nb:\nSTOP"
        code = assemble(source)
        dests = valid_jumpdests(code)
        assert 0 in dests  # label a
        assert len(dests) == 2

    @given(st.binary(max_size=120))
    def test_dests_are_actual_jumpdest_bytes(self, code):
        code = bytes(code)
        for dest in valid_jumpdests(code):
            assert code[dest] == 0x5B
