"""Dataflow tracing: producer links, call records, histograms."""

from repro.contracts.asm import assemble
from repro.evm.tracer import EXTERNAL_PRODUCER
from tests.conftest import CONTRACT, run_code

CALLEE = 0x77777


def trace_of(state, source, **kwargs):
    _, tracer = run_code(state, source, **kwargs)
    return tracer


class TestProducerLinks:
    def test_push_has_no_operands(self, state):
        tracer = trace_of(state, "PUSH 5\nSTOP")
        step = tracer.steps[0]
        assert step.op.name == "PUSH1"
        assert step.operands == ()
        assert step.results == (5,)
        assert step.immediate == 5

    def test_add_links_to_both_pushes(self, state):
        tracer = trace_of(state, "PUSH 3\nPUSH 4\nADD\nSTOP")
        add = tracer.steps[2]
        assert add.operands == (4, 3)
        assert add.producers == (1, 0)
        assert add.results == (7,)

    def test_chain_through_intermediate(self, state):
        tracer = trace_of(state, "PUSH 1\nPUSH 2\nADD\nPUSH 3\nMUL\nSTOP")
        mul = tracer.steps[4]
        assert mul.producers == (3, 2)  # PUSH 3 and the ADD result

    def test_dup_producer_is_dup_step(self, state):
        tracer = trace_of(state, "PUSH 9\nDUP1\nADD\nSTOP")
        dup = tracer.steps[1]
        add = tracer.steps[2]
        assert dup.producers == (0,)
        # The duplicate on top was produced by the DUP itself; the
        # original below keeps the PUSH as producer.
        assert set(add.producers) == {0, 1}

    def test_swap_exchanges_producers(self, state):
        tracer = trace_of(state, "PUSH 1\nPUSH 2\nSWAP1\nPOP\nSTOP")
        pop = tracer.steps[3]
        assert pop.operands == (1,)
        assert pop.producers == (0,)  # PUSH 1 is now on top

    def test_sload_extra_records_key(self, state):
        tracer = trace_of(state, "PUSH 7\nSLOAD\nSTOP")
        sload = tracer.steps[1]
        assert sload.extra["slot"] == 7
        assert sload.extra["address"] == CONTRACT

    def test_jumpi_extra_records_taken(self, state):
        tracer = trace_of(
            state, "PUSH 0\nPUSH @lab\nJUMPI\nlab:\nSTOP"
        )
        jumpi = [s for s in tracer.steps if s.op.name == "JUMPI"][0]
        assert jumpi.extra["taken"] is False


class TestCallRecords:
    def test_top_level_record(self, state):
        tracer = trace_of(state, "STOP")
        assert len(tracer.calls) == 1
        record = tracer.calls[0]
        assert record.depth == 0
        assert record.code_address == CONTRACT
        assert record.success

    def test_nested_call_record(self, state):
        state.set_code(CALLEE, assemble("STOP"))
        src = (
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\n"
            f"PUSH {CALLEE:#x}\nGAS\nCALL\nSTOP"
        )
        tracer = trace_of(state, src)
        assert len(tracer.calls) == 2
        child = tracer.calls[1]
        assert child.depth == 1
        assert child.code_address == CALLEE
        assert child.success

    def test_failed_child_marked(self, state):
        state.set_code(CALLEE, assemble("PUSH 0\nPUSH 0\nREVERT"))
        src = (
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\n"
            f"PUSH {CALLEE:#x}\nGAS\nCALL\nSTOP"
        )
        tracer = trace_of(state, src)
        assert tracer.calls[1].success is False
        assert tracer.calls[0].success is True

    def test_depth_annotation_on_steps(self, state):
        state.set_code(CALLEE, assemble("PUSH 1\nPOP\nSTOP"))
        src = (
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\n"
            f"PUSH {CALLEE:#x}\nGAS\nCALL\nSTOP"
        )
        tracer = trace_of(state, src)
        child_steps = [s for s in tracer.steps if s.depth == 1]
        assert [s.op.name for s in child_steps] == ["PUSH1", "POP", "STOP"]
        assert all(s.code_address == CALLEE for s in child_steps)


class TestAggregates:
    def test_gas_total_matches_receipt_minus_intrinsic(self, state):
        receipt, tracer = run_code(state, "PUSH 1\nPUSH 2\nADD\nSTOP")
        assert tracer.gas_total() == receipt.gas_used - 21000

    def test_category_histogram(self, state):
        tracer = trace_of(state, "PUSH 1\nPUSH 2\nADD\nPOP\nSTOP")
        histogram = tracer.category_histogram()
        assert histogram["Stack"] == 3
        assert histogram["Arithmetic"] == 1
        assert histogram["Control"] == 1

    def test_external_producer_for_frame_inputs(self):
        # Directly exercise a frame that starts with a non-empty stack.
        assert EXTERNAL_PRODUCER == -1
