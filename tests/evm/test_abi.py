"""ABI encoding: selectors and word layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import selector, selector_int
from repro.evm import abi


class TestEncoding:
    def test_selector_is_4_bytes(self):
        assert len(selector("transfer(address,uint256)")) == 4

    def test_selector_differs_by_signature(self):
        assert selector("transfer(address,uint256)") != selector(
            "approve(address,uint256)"
        )

    def test_encode_call_layout(self):
        data = abi.encode_call("f(uint256,uint256)", 1, 2)
        assert len(data) == 4 + 64
        assert data[:4] == selector("f(uint256,uint256)")
        assert int.from_bytes(data[4:36], "big") == 1
        assert int.from_bytes(data[36:68], "big") == 2

    def test_encode_uint_range(self):
        with pytest.raises(ValueError):
            abi.encode_uint(-1)
        with pytest.raises(ValueError):
            abi.encode_uint(1 << 256)

    def test_decode_uint_empty(self):
        assert abi.decode_uint(b"") == 0

    def test_decode_words_pads_tail(self):
        words = abi.decode_words(b"\x01")
        assert words == [1 << (8 * 31)]

    @given(st.lists(st.integers(0, (1 << 256) - 1), max_size=8))
    def test_words_roundtrip(self, values):
        data = b"".join(abi.encode_uint(v) for v in values)
        assert abi.decode_words(data) == values

    def test_selector_int_matches_bytes(self):
        sig = "balanceOf(address)"
        assert selector_int(sig) == int.from_bytes(selector(sig), "big")
