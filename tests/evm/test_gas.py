"""Gas metering: the paper's deterministic-gas consistency constraint."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evm.errors import OutOfGas
from repro.evm.gas import DEFAULT_SCHEDULE, GasMeter, GasSchedule


class TestGasMeter:
    def test_consume_reduces_remaining(self):
        meter = GasMeter(100)
        meter.consume(30)
        assert meter.remaining == 70
        assert meter.consumed == 30

    def test_consume_beyond_limit_raises(self):
        meter = GasMeter(10)
        with pytest.raises(OutOfGas):
            meter.consume(11)
        # The failed check must not consume anything.
        assert meter.remaining == 10

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            GasMeter(10).consume(-1)

    def test_return_gas_from_child(self):
        meter = GasMeter(100)
        meter.consume(60)
        meter.return_gas(25)
        assert meter.remaining == 65
        assert meter.consumed == 35

    def test_refund_accumulates(self):
        meter = GasMeter(100)
        meter.add_refund(10)
        meter.add_refund(5)
        assert meter.refund == 15

    @given(st.lists(st.integers(0, 50), max_size=30))
    def test_consumed_plus_remaining_invariant(self, amounts):
        meter = GasMeter(1000)
        for amount in amounts:
            try:
                meter.consume(amount)
            except OutOfGas:
                break
        assert meter.consumed + meter.remaining == 1000


class TestSchedule:
    def test_memory_cost_is_quadratic(self):
        schedule = GasSchedule()
        linear = schedule.memory_cost(10)
        assert linear == 3 * 10 + 100 // 512
        big = schedule.memory_cost(1024)
        assert big == 3 * 1024 + 1024 * 1024 // 512

    def test_expansion_cost_is_marginal(self):
        schedule = GasSchedule()
        assert schedule.memory_expansion_cost(10, 10) == 0
        assert schedule.memory_expansion_cost(10, 5) == 0
        marginal = schedule.memory_expansion_cost(0, 4)
        assert marginal == schedule.memory_cost(4)

    @given(st.integers(0, 5000), st.integers(0, 5000))
    def test_expansion_cost_nonnegative(self, a, b):
        assert DEFAULT_SCHEDULE.memory_expansion_cost(a, b) >= 0

    def test_intrinsic_gas_counts_bytes(self):
        schedule = GasSchedule()
        assert schedule.intrinsic_gas(b"") == 21000
        assert schedule.intrinsic_gas(b"\x00") == 21004
        assert schedule.intrinsic_gas(b"\x01") == 21016

    def test_intrinsic_gas_create_surcharge(self):
        schedule = GasSchedule()
        assert schedule.intrinsic_gas(b"", is_create=True) == 53000
