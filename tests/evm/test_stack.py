"""Operand-stack semantics: depth limit, word masking, DUP/SWAP."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evm.errors import StackOverflow, StackUnderflow
from repro.evm.stack import MAX_DEPTH, WORD_MASK, Stack

words = st.integers(min_value=0, max_value=WORD_MASK)


class TestPushPop:
    def test_push_pop_roundtrip(self):
        stack = Stack()
        stack.push(42)
        assert stack.pop() == 42
        assert len(stack) == 0

    def test_push_masks_to_256_bits(self):
        stack = Stack()
        stack.push((1 << 256) + 5)
        assert stack.pop() == 5

    def test_pop_empty_underflows(self):
        with pytest.raises(StackUnderflow):
            Stack().pop()

    def test_pop_n_returns_top_first(self):
        stack = Stack([1, 2, 3])
        assert stack.pop_n(2) == [3, 2]
        assert stack.as_list() == [1]

    def test_pop_n_zero(self):
        stack = Stack([1])
        assert stack.pop_n(0) == []
        assert len(stack) == 1

    def test_pop_n_underflow(self):
        with pytest.raises(StackUnderflow):
            Stack([1]).pop_n(2)

    def test_overflow_at_max_depth(self):
        stack = Stack([0] * MAX_DEPTH)
        with pytest.raises(StackOverflow):
            stack.push(1)

    def test_initial_overflow_rejected(self):
        with pytest.raises(StackOverflow):
            Stack([0] * (MAX_DEPTH + 1))


class TestPeekDupSwap:
    def test_peek_depths(self):
        stack = Stack([10, 20, 30])
        assert stack.peek(0) == 30
        assert stack.peek(2) == 10

    def test_peek_underflow(self):
        with pytest.raises(StackUnderflow):
            Stack([1]).peek(1)

    def test_dup1_duplicates_top(self):
        stack = Stack([7])
        stack.dup(1)
        assert stack.as_list() == [7, 7]

    def test_dup16_reaches_deep(self):
        stack = Stack(list(range(16)))
        stack.dup(16)
        assert stack.peek(0) == 0

    def test_dup_underflow(self):
        with pytest.raises(StackUnderflow):
            Stack([1]).dup(2)

    def test_swap1(self):
        stack = Stack([1, 2])
        stack.swap(1)
        assert stack.as_list() == [2, 1]

    def test_swap16(self):
        stack = Stack(list(range(17)))
        stack.swap(16)
        assert stack.peek(0) == 0
        assert stack.peek(16) == 16

    def test_swap_underflow(self):
        with pytest.raises(StackUnderflow):
            Stack([1]).swap(1)


class TestProperties:
    @given(st.lists(words, max_size=50))
    def test_push_then_pop_lifo(self, values):
        stack = Stack()
        for value in values:
            stack.push(value)
        popped = [stack.pop() for _ in values]
        assert popped == list(reversed(values))

    @given(st.lists(words, min_size=2, max_size=17),
           st.integers(min_value=1, max_value=16))
    def test_swap_is_involution(self, values, n):
        if n + 1 > len(values):
            n = len(values) - 1
        stack = Stack(values)
        before = stack.as_list()
        stack.swap(n)
        stack.swap(n)
        assert stack.as_list() == before

    @given(st.lists(words, min_size=1, max_size=16),
           st.integers(min_value=1, max_value=16))
    def test_dup_preserves_below(self, values, n):
        n = min(n, len(values))
        stack = Stack(values)
        stack.dup(n)
        assert stack.as_list()[:-1] == values
        assert stack.peek(0) == values[-n]
