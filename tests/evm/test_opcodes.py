"""The instruction set matches paper Table 3."""

import pytest

from repro.evm import opcodes
from repro.evm.opcodes import BY_NAME, OPCODES, Category


class TestTableStructure:
    def test_arithmetic_range(self):
        for value in range(0x01, 0x0C):
            assert OPCODES[value].category is Category.ARITHMETIC

    def test_logic_block(self):
        for name in ("LT", "GT", "SLT", "SGT", "EQ", "ISZERO", "AND",
                     "OR", "XOR", "NOT"):
            assert BY_NAME[name].category is Category.LOGIC

    def test_sha3(self):
        assert BY_NAME["SHA3"].value == 0x20
        assert BY_NAME["SHA3"].category is Category.SHA

    def test_state_query_members(self):
        # Paper: BALANCE, EXTCODESIZE, EXTCODECOPY, EXTCODEHASH.
        for name in ("BALANCE", "EXTCODESIZE", "EXTCODECOPY",
                     "EXTCODEHASH"):
            assert BY_NAME[name].category is Category.STATE_QUERY

    def test_storage_unit(self):
        assert BY_NAME["SLOAD"].value == 0x54
        assert BY_NAME["SSTORE"].value == 0x55
        assert BY_NAME["SLOAD"].category is Category.STORAGE

    def test_branch_unit(self):
        for name in ("JUMP", "JUMPI", "JUMPDEST"):
            assert BY_NAME[name].category is Category.BRANCH

    def test_push_family(self):
        for n in range(1, 33):
            info = BY_NAME[f"PUSH{n}"]
            assert info.value == 0x60 + n - 1
            assert info.immediate_size == n
            assert info.category is Category.STACK

    def test_dup_swap_families(self):
        for n in range(1, 17):
            assert BY_NAME[f"DUP{n}"].value == 0x80 + n - 1
            assert BY_NAME[f"SWAP{n}"].value == 0x90 + n - 1

    def test_log_family(self):
        for n in range(5):
            info = BY_NAME[f"LOG{n}"]
            assert info.value == 0xA0 + n
            assert info.pops == 2 + n

    def test_context_switching_members(self):
        # Paper Table 3: CREATE, CALL, CALLCODE, DELEGATECALL, CREATE2,
        # STATICCALL.
        for name in ("CREATE", "CALL", "CALLCODE", "DELEGATECALL",
                     "CREATE2", "STATICCALL"):
            assert BY_NAME[name].category is Category.CONTEXT

    def test_control_terminators(self):
        for name in ("STOP", "RETURN", "REVERT"):
            info = BY_NAME[name]
            assert info.category is Category.CONTROL
            assert info.is_terminator

    def test_eleven_categories_all_used(self):
        used = {info.category for info in OPCODES.values()}
        assert used == set(Category)

    def test_no_duplicate_values(self):
        assert len({info.value for info in OPCODES.values()}) == len(
            OPCODES
        )


class TestArity:
    @pytest.mark.parametrize(
        "name,pops,pushes",
        [
            ("ADD", 2, 1), ("ADDMOD", 3, 1), ("ISZERO", 1, 1),
            ("SHA3", 2, 1), ("MSTORE", 2, 0), ("SLOAD", 1, 1),
            ("SSTORE", 2, 0), ("JUMP", 1, 0), ("JUMPI", 2, 0),
            ("POP", 1, 0), ("CALL", 7, 1), ("DELEGATECALL", 6, 1),
            ("STATICCALL", 6, 1), ("CREATE", 3, 1), ("CREATE2", 4, 1),
            ("RETURN", 2, 0), ("REVERT", 2, 0),
        ],
    )
    def test_pops_pushes(self, name, pops, pushes):
        info = BY_NAME[name]
        assert (info.pops, info.pushes) == (pops, pushes)


class TestPredicates:
    def test_is_push(self):
        assert opcodes.is_push(BY_NAME["PUSH1"])
        assert opcodes.is_push(BY_NAME["PUSH32"])
        assert not opcodes.is_push(BY_NAME["ADD"])

    def test_is_dup_swap(self):
        assert opcodes.is_dup(BY_NAME["DUP16"])
        assert opcodes.is_swap(BY_NAME["SWAP1"])
        assert not opcodes.is_dup(BY_NAME["SWAP1"])

    def test_is_branch(self):
        assert opcodes.is_branch(BY_NAME["JUMP"])
        assert opcodes.is_branch(BY_NAME["JUMPI"])
        assert not opcodes.is_branch(BY_NAME["JUMPDEST"])

    def test_info_lookup(self):
        assert opcodes.info(0x01).name == "ADD"
        assert opcodes.info(0x0C) is None  # gap in the map

    def test_reconfigurable_categories(self):
        # The paper's forwarding applies between simple half-cycle units.
        assert Category.ARITHMETIC in opcodes.RECONFIGURABLE_CATEGORIES
        assert Category.STORAGE not in opcodes.RECONFIGURABLE_CATEGORIES
