"""Arithmetic/logic instruction semantics, checked against Python
references (including hypothesis comparisons on 256-bit corner values)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.evm.interpreter import _ARITH_FN, _LOGIC_FN, _to_signed

WORD = (1 << 256) - 1
words = st.integers(min_value=0, max_value=WORD)
edge_words = st.sampled_from(
    [0, 1, 2, WORD, WORD - 1, 1 << 255, (1 << 255) - 1, 1 << 128]
)
mixed = st.one_of(words, edge_words)


class TestUnsignedArithmetic:
    @given(mixed, mixed)
    def test_add_wraps(self, a, b):
        assert _ARITH_FN["ADD"](a, b) == (a + b) % (1 << 256)

    @given(mixed, mixed)
    def test_sub_wraps(self, a, b):
        assert _ARITH_FN["SUB"](a, b) == (a - b) % (1 << 256)

    @given(mixed, mixed)
    def test_mul_wraps(self, a, b):
        assert _ARITH_FN["MUL"](a, b) == (a * b) % (1 << 256)

    @given(mixed, mixed)
    def test_div(self, a, b):
        expected = 0 if b == 0 else a // b
        assert _ARITH_FN["DIV"](a, b) == expected

    def test_div_by_zero_is_zero(self):
        assert _ARITH_FN["DIV"](123, 0) == 0

    @given(mixed, mixed)
    def test_mod(self, a, b):
        expected = 0 if b == 0 else a % b
        assert _ARITH_FN["MOD"](a, b) == expected

    @given(mixed, mixed, mixed)
    def test_addmod_full_precision(self, a, b, n):
        expected = 0 if n == 0 else (a + b) % n
        assert _ARITH_FN["ADDMOD"](a, b, n) == expected

    @given(mixed, mixed, mixed)
    def test_mulmod_full_precision(self, a, b, n):
        expected = 0 if n == 0 else (a * b) % n
        assert _ARITH_FN["MULMOD"](a, b, n) == expected

    @given(mixed, st.integers(0, 300))
    def test_exp(self, base, exponent):
        assert _ARITH_FN["EXP"](base, exponent) == pow(
            base, exponent, 1 << 256
        )


class TestSignedArithmetic:
    def test_sdiv_signs(self):
        minus_one = WORD
        assert _ARITH_FN["SDIV"](minus_one, 1) == minus_one  # -1/1 = -1
        two = 2
        minus_two = WORD - 1
        assert _to_signed(_ARITH_FN["SDIV"](minus_two, two)) == -1

    def test_sdiv_truncates_toward_zero(self):
        minus_seven = (1 << 256) - 7
        assert _to_signed(_ARITH_FN["SDIV"](minus_seven, 2)) == -3

    def test_sdiv_by_zero(self):
        assert _ARITH_FN["SDIV"](5, 0) == 0

    def test_smod_sign_follows_dividend(self):
        minus_seven = (1 << 256) - 7
        assert _to_signed(_ARITH_FN["SMOD"](minus_seven, 3)) == -1
        assert _ARITH_FN["SMOD"](7, (1 << 256) - 3) == 1

    @given(st.integers(-(10**20), 10**20), st.integers(-(10**10), 10**10))
    def test_sdiv_matches_c_semantics(self, a, b):
        ua, ub = a % (1 << 256), b % (1 << 256)
        result = _to_signed(_ARITH_FN["SDIV"](ua, ub))
        if b == 0:
            assert result == 0
        else:
            expected = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                expected = -expected
            assert result == expected

    def test_signextend(self):
        # Sign-extend a one-byte value.
        assert _ARITH_FN["SIGNEXTEND"](0, 0xFF) == WORD  # -1
        assert _ARITH_FN["SIGNEXTEND"](0, 0x7F) == 0x7F
        assert _ARITH_FN["SIGNEXTEND"](31, 0xFF) == 0xFF

    @given(mixed)
    def test_signextend_31_is_identity(self, value):
        assert _ARITH_FN["SIGNEXTEND"](31, value) == value


class TestLogic:
    @given(mixed, mixed)
    def test_comparisons(self, a, b):
        assert _LOGIC_FN["LT"](a, b) == (1 if a < b else 0)
        assert _LOGIC_FN["GT"](a, b) == (1 if a > b else 0)
        assert _LOGIC_FN["EQ"](a, b) == (1 if a == b else 0)

    @given(mixed, mixed)
    def test_signed_comparisons(self, a, b):
        assert _LOGIC_FN["SLT"](a, b) == (
            1 if _to_signed(a) < _to_signed(b) else 0
        )
        assert _LOGIC_FN["SGT"](a, b) == (
            1 if _to_signed(a) > _to_signed(b) else 0
        )

    def test_slt_extremes(self):
        most_negative = 1 << 255
        assert _LOGIC_FN["SLT"](most_negative, 0) == 1
        assert _LOGIC_FN["SGT"](0, most_negative) == 1

    @given(mixed)
    def test_iszero(self, a):
        assert _LOGIC_FN["ISZERO"](a) == (1 if a == 0 else 0)

    @given(mixed, mixed)
    def test_bitwise(self, a, b):
        assert _LOGIC_FN["AND"](a, b) == a & b
        assert _LOGIC_FN["OR"](a, b) == a | b
        assert _LOGIC_FN["XOR"](a, b) == a ^ b

    @given(mixed)
    def test_not_is_involution(self, a):
        assert _LOGIC_FN["NOT"](_LOGIC_FN["NOT"](a)) == a

    def test_byte(self):
        value = int.from_bytes(bytes(range(32)), "big")
        assert _LOGIC_FN["BYTE"](0, value) == 0
        assert _LOGIC_FN["BYTE"](31, value) == 31
        assert _LOGIC_FN["BYTE"](32, value) == 0  # out of range

    @given(st.integers(0, 300), mixed)
    def test_shl_shr(self, shift, value):
        if shift >= 256:
            assert _LOGIC_FN["SHL"](shift, value) == 0
            assert _LOGIC_FN["SHR"](shift, value) == 0
        else:
            assert _LOGIC_FN["SHL"](shift, value) == (
                (value << shift) & WORD
            )
            assert _LOGIC_FN["SHR"](shift, value) == value >> shift

    def test_sar_sign_fill(self):
        minus_four = (1 << 256) - 4
        assert _to_signed(_LOGIC_FN["SAR"](1, minus_four)) == -2
        assert _LOGIC_FN["SAR"](300, minus_four) == WORD  # -1
        assert _LOGIC_FN["SAR"](300, 4) == 0
