"""The decoded-program cache: fusion shapes, LRU bounds, coherence.

Unit coverage of :mod:`repro.evm.decoded` (the equivalence suite in
``test_decoded_equivalence.py`` covers bit-identity): the folding pass
produces the expected superinstruction entries, the program and
jumpdest caches are content-keyed LRUs, redeploying different code at a
reused address never serves a stale program, and the ``evm.*`` counters
publish.
"""

from __future__ import annotations

import pytest

from repro.chain import Transaction, WorldState
from repro.contracts.asm import assemble
from repro.evm import EVM, opcodes
from repro.evm.code import (
    clear_jumpdest_cache,
    jumpdest_cache_stats,
    set_jumpdest_cache_limit,
    valid_jumpdests,
)
from repro.evm.decoded import (
    DECODE_CACHE,
    DEEP_CHAIN_LIMIT,
    DecodeCache,
    _h_const,
    _h_dup_bin,
    _h_push_bin,
    _h_push_jump,
    _h_push_jumpi,
    _h_swap1_pop,
    build_program,
)
from repro.evm.opcodes import OPCODES
from repro.obs import use_registry

ALICE = 0xA11CE
CONTRACT = 0xC0DE


def _fresh_state():
    state = WorldState()
    state.set_balance(ALICE, 10**21)
    state.clear_journal()
    return state


def _run_tx(state, address=CONTRACT, fast_path=None, data=b""):
    evm = EVM(state, fast_path=fast_path)
    tx = Transaction(sender=ALICE, to=address, data=data,
                     gas_limit=5_000_000)
    return evm.execute_transaction(tx)


class TestDispatchTable:
    def test_info_by_byte_matches_opcode_table(self):
        for value in range(256):
            assert opcodes.INFO_BY_BYTE[value] is OPCODES.get(value)

    def test_info_function_unchanged(self):
        assert opcodes.info(0x01).name == "ADD"
        assert opcodes.info(0x0C) is None
        assert opcodes.info(-1) is None
        assert opcodes.info(999) is None


class TestFolding:
    def _entry(self, source, pc=0):
        program = build_program(assemble(source))
        return program, program.entries[pc]

    def test_push_jump_fuses(self):
        program, entry = self._entry("PUSH @target\nJUMP\ntarget:\nSTOP")
        assert entry[0] is _h_push_jump
        assert entry[2] is True  # statically validated target
        assert program.fused_count == 1

    def test_push_jump_to_invalid_target_still_fuses(self):
        _, entry = self._entry("PUSH 0\nJUMP")
        assert entry[0] is _h_push_jump
        assert entry[2] is False  # raises InvalidJump at run time

    def test_push_jumpi_fuses(self):
        _, entry = self._entry("PUSH @target\nJUMPI\ntarget:\nSTOP")
        assert entry[0] is _h_push_jumpi

    def test_push_binop_fuses(self):
        # The PUSH's operand partner comes from outside (CALLDATALOAD),
        # so this is pair fusion, not a constant chain.
        program = build_program(
            assemble("PUSH 0\nCALLDATALOAD\nPUSH 7\nADD\nSTOP")
        )
        entry = program.entries[3]
        assert entry[0] is _h_push_bin
        assert entry[2] == 7

    def test_dup_binop_fuses(self):
        program = build_program(
            assemble("PUSH 0\nCALLDATALOAD\nDUP1\nMUL\nSTOP")
        )
        assert program.entries[3][0] is _h_dup_bin

    def test_swap1_pop_fuses(self):
        program = build_program(
            assemble("PUSH 0\nCALLDATALOAD\nPUSH 1\nSWAP1\nPOP\nSTOP")
        )
        assert program.entries[5][0] is _h_swap1_pop

    def test_constant_chain_folds_to_values(self):
        program = build_program(assemble("PUSH 2\nPUSH 3\nADD\nSTOP"))
        entry = program.entries[0]
        assert entry[0] is _h_const
        assert entry[3] == (5,)  # folded at decode time
        assert program.folded_instructions == 2

    def test_interior_pcs_have_no_entries(self):
        program = build_program(assemble("PUSH 2\nPUSH 3\nADD\nSTOP"))
        # pcs 2 and 4 are the interior PUSH/ADD of the fused chain; pcs
        # 1 and 3 are immediates. None are reachable.
        assert program.entries[2] is None
        assert program.entries[4] is None

    def test_jumpdest_never_fused_interior(self):
        source = "PUSH 2\ntarget:\nPUSH 3\nADD\nPUSH @target\nJUMP"
        program = build_program(assemble(source))
        code = assemble(source)
        for pc in valid_jumpdests(code):
            assert program.entries[pc] is not None

    def test_deep_limit_folds_longer_chains(self):
        lines = [f"PUSH {i}\nADD" for i in range(1, 20)]
        source = "PUSH 0\n" + "\n".join(lines) + "\nSTOP"
        base = build_program(assemble(source))
        deep = build_program(assemble(source), chain_limit=DEEP_CHAIN_LIMIT)
        assert deep.folded_instructions > base.folded_instructions
        assert deep.entries[0][3] == (sum(range(20)),)


class TestDecodeCacheLRU:
    def test_content_keyed_hit(self):
        cache = DecodeCache(max_programs=4)
        code = assemble("PUSH 1\nSTOP")
        first = cache.get(code)
        assert cache.get(bytes(code)) is first  # content, not identity
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_evicts_oldest(self):
        cache = DecodeCache(max_programs=2)
        codes = [assemble(f"PUSH {i}\nSTOP") for i in range(3)]
        for code in codes:
            cache.get(code)
        assert len(cache) == 2
        cache.get(codes[0])  # evicted: decodes again
        assert cache.stats()["misses"] == 4

    def test_get_refreshes_recency(self):
        cache = DecodeCache(max_programs=2)
        a, b, c = (assemble(f"PUSH {i}\nSTOP") for i in range(3))
        cache.get(a)
        cache.get(b)
        cache.get(a)  # a is now most-recent; b should evict next
        cache.get(c)
        assert cache.get(a) and cache.stats()["misses"] == 3

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            DecodeCache(max_programs=0)


class TestJumpdestMemo:
    def test_hits_and_misses_counted(self):
        clear_jumpdest_cache()
        code = assemble("lab:\nPUSH @lab\nJUMP")
        valid_jumpdests(code)
        valid_jumpdests(code)
        stats = jumpdest_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["size"] == 1

    def test_limit_bounds_and_evicts(self):
        clear_jumpdest_cache()
        set_jumpdest_cache_limit(2)
        try:
            for i in range(4):
                valid_jumpdests(assemble(f"PUSH {i}\nSTOP"))
            assert jumpdest_cache_stats()["size"] == 2
        finally:
            set_jumpdest_cache_limit(4096)
            clear_jumpdest_cache()

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            set_jumpdest_cache_limit(0)


class TestCacheCoherence:
    def test_redeploy_at_same_address_uses_new_code(self):
        """SELFDESTRUCT + redeploy regression: programs are keyed by code
        content, so a new blob at a reused address can never alias."""
        state = _fresh_state()
        code_v1 = assemble("PUSH 1\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN")
        code_v2 = assemble("PUSH 2\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN")
        state.set_code(CONTRACT, code_v1)
        assert _run_tx(state).output == (1).to_bytes(32, "big")
        # Simulate destroy + redeploy of different code at the address.
        state.delete_account(CONTRACT)
        state.set_balance(ALICE, 10**21)
        state.set_code(CONTRACT, code_v2)
        assert _run_tx(state).output == (2).to_bytes(32, "big")
        # And back: the v1 program is a (correct) cache hit, not stale.
        state.set_code(CONTRACT, code_v1)
        assert _run_tx(state).output == (1).to_bytes(32, "big")

    def test_specialized_program_is_equivalent(self):
        state = _fresh_state()
        source = (
            "PUSH 0\nCALLDATALOAD\n"
            + "PUSH 3\nMUL\nPUSH 5\nADD\n" * 6
            + "PUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"
        )
        code = assemble(source)
        state.set_code(CONTRACT, code)
        data = (41).to_bytes(32, "big")
        legacy = _run_tx(state, fast_path=False, data=data)
        base = _run_tx(state, data=data)
        DECODE_CACHE.specialize(code, {0})
        specialized = _run_tx(state, data=data)
        assert base.output == legacy.output
        assert specialized.output == legacy.output
        assert specialized.gas_used == legacy.gas_used


class TestMetrics:
    def test_counters_publish(self):
        state = _fresh_state()
        code = assemble("PUSH 2\nPUSH 3\nADD\nPUSH 0\nMSTORE\n"
                        "PUSH 32\nPUSH 0\nRETURN")
        state.set_code(CONTRACT, code)
        DECODE_CACHE.clear()
        with use_registry() as registry:
            _run_tx(state)
            _run_tx(state)
        flat = registry.counters_flat()
        assert flat["evm.decode_cache_misses"] == 1
        assert flat["evm.decode_cache_hits"] == 1
        assert flat["evm.fast_path_txs"] == 2
        assert flat["evm.fused_instructions"] >= 1

    def test_traced_path_never_counts_fast_txs(self):
        from repro.evm import Tracer

        state = _fresh_state()
        state.set_code(CONTRACT, assemble("STOP"))
        with use_registry() as registry:
            evm = EVM(state, tracer=Tracer())
            evm.execute_transaction(
                Transaction(sender=ALICE, to=CONTRACT, gas_limit=100_000)
            )
        assert registry.counters_flat().get("evm.fast_path_txs", 0) == 0
