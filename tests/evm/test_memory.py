"""EVM memory: word addressing, expansion, zero-fill semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.evm.memory import Memory


class TestBasics:
    def test_starts_empty(self):
        assert len(Memory()) == 0
        assert Memory().size_words == 0

    def test_write_read_word(self):
        mem = Memory()
        mem.write_word(0, 0xDEADBEEF)
        assert mem.read_word(0) == 0xDEADBEEF

    def test_word_is_big_endian(self):
        mem = Memory()
        mem.write_word(0, 1)
        assert mem.read(31, 1) == b"\x01"
        assert mem.read(0, 1) == b"\x00"

    def test_write_byte(self):
        mem = Memory()
        mem.write_byte(5, 0x1FF)  # masks to low byte
        assert mem.read(5, 1) == b"\xff"

    def test_unaligned_word(self):
        mem = Memory()
        mem.write_word(10, (1 << 256) - 1)
        assert mem.read_word(10) == (1 << 256) - 1

    def test_read_extends_with_zeros(self):
        mem = Memory()
        assert mem.read(100, 4) == b"\x00" * 4
        assert len(mem) == 128  # rounded to 32-byte words

    def test_expansion_rounds_to_words(self):
        mem = Memory()
        mem.extend(0, 1)
        assert len(mem) == 32
        mem.extend(32, 1)
        assert len(mem) == 64

    def test_extend_zero_length_is_noop(self):
        mem = Memory()
        mem.extend(1000, 0)
        assert len(mem) == 0

    def test_overlapping_writes(self):
        mem = Memory()
        mem.write_word(0, (1 << 256) - 1)
        mem.write_byte(16, 0)
        word = mem.read_word(0)
        assert (word >> (8 * 15)) & 0xFF == 0


class TestProperties:
    @given(st.integers(0, 500), st.binary(max_size=64))
    def test_write_read_roundtrip(self, offset, data):
        mem = Memory()
        mem.write(offset, data)
        assert mem.read(offset, len(data)) == data

    @given(st.integers(0, 200), st.integers(0, (1 << 256) - 1))
    def test_word_roundtrip(self, offset, value):
        mem = Memory()
        mem.write_word(offset, value)
        assert mem.read_word(offset) == value

    @given(st.integers(0, 300), st.integers(1, 64))
    def test_fresh_memory_is_zero(self, offset, length):
        assert Memory().read(offset, length) == b"\x00" * length
