"""Message-call machinery: CALL family, CREATE, static contexts, depth."""

from repro.chain import Transaction
from repro.evm import EVM, abi
from repro.contracts.asm import assemble
from tests.conftest import ALICE, CONTRACT, run_code

CALLEE = 0xCA11EE
RETURN_TOP = "PUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"

#: Callee: returns 42 and writes 1 to its storage slot 0.
CALLEE_SRC = f"PUSH 1\nPUSH 0\nSSTORE\nPUSH 42\n{RETURN_TOP}"

#: Caller: CALL the callee with no data, forward its return word.
def call_and_return(kind: str = "CALL") -> str:
    value_push = "PUSH 0\n" if kind in ("CALL", "CALLCODE") else ""
    return (
        "PUSH 32\nPUSH 0\n"  # out
        "PUSH 0\nPUSH 0\n"  # in
        + value_push
        + f"PUSH {CALLEE:#x}\nGAS\n{kind}\nPOP\n"
        "PUSH 0\nMLOAD\n" + RETURN_TOP
    )


class TestCall:
    def test_call_returns_callee_output(self, state):
        state.set_code(CALLEE, assemble(CALLEE_SRC))
        receipt, _ = run_code(state, call_and_return("CALL"))
        assert receipt.success
        assert abi.decode_uint(receipt.output) == 42

    def test_call_writes_callee_storage(self, state):
        state.set_code(CALLEE, assemble(CALLEE_SRC))
        run_code(state, call_and_return("CALL"))
        assert state.get_storage(CALLEE, 0) == 1
        assert state.get_storage(CONTRACT, 0) == 0

    def test_callcode_writes_caller_storage(self, state):
        state.set_code(CALLEE, assemble(CALLEE_SRC))
        run_code(state, call_and_return("CALLCODE"))
        assert state.get_storage(CONTRACT, 0) == 1
        assert state.get_storage(CALLEE, 0) == 0

    def test_delegatecall_preserves_caller_and_storage(self, state):
        # Callee stores CALLER; under DELEGATECALL that is the original
        # transaction sender, and storage goes to the proxy.
        src = f"CALLER\nPUSH 0\nSSTORE\nPUSH 1\n{RETURN_TOP}"
        state.set_code(CALLEE, assemble(src))
        run_code(state, call_and_return("DELEGATECALL"))
        assert state.get_storage(CONTRACT, 0) == ALICE
        assert state.get_storage(CALLEE, 0) == 0

    def test_staticcall_blocks_writes(self, state):
        state.set_code(CALLEE, assemble(CALLEE_SRC))  # does SSTORE
        receipt, _ = run_code(state, call_and_return("STATICCALL"))
        # Caller survives; the child failed and pushed 0.
        assert receipt.success
        assert state.get_storage(CALLEE, 0) == 0

    def test_call_with_value_transfers(self, state):
        state.set_code(CALLEE, b"\x00")  # STOP
        src = (
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\n"
            f"PUSH 77\nPUSH {CALLEE:#x}\nGAS\nCALL\n" + RETURN_TOP
        )
        receipt, _ = run_code(state, src, value=100)
        assert abi.decode_uint(receipt.output) == 1
        assert state.get_balance(CALLEE) == 77

    def test_call_to_empty_account_succeeds(self, state):
        receipt, _ = run_code(state, call_and_return("CALL"))
        assert receipt.success
        assert abi.decode_uint(receipt.output) == 0

    def test_failed_child_reverts_only_child(self, state):
        state.set_code(
            CALLEE, assemble("PUSH 1\nPUSH 0\nSSTORE\nPUSH 0\nPUSH 0\nREVERT")
        )
        src = (
            "PUSH 5\nPUSH 9\nSSTORE\n"  # caller write survives
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\n"
            f"PUSH {CALLEE:#x}\nGAS\nCALL\n" + RETURN_TOP
        )
        receipt, _ = run_code(state, src)
        assert receipt.success
        assert abi.decode_uint(receipt.output) == 0  # child failed
        assert state.get_storage(CONTRACT, 9) == 5
        assert state.get_storage(CALLEE, 0) == 0

    def test_returndata_instructions(self, state):
        state.set_code(CALLEE, assemble(CALLEE_SRC))
        src = (
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\n"
            f"PUSH {CALLEE:#x}\nGAS\nCALL\nPOP\n"
            "RETURNDATASIZE\n" + RETURN_TOP
        )
        receipt, _ = run_code(state, src)
        assert abi.decode_uint(receipt.output) == 32

    def test_child_gas_capped_at_63_64(self, state):
        # Callee burns everything it gets; caller still completes.
        state.set_code(CALLEE, assemble("top:\nPUSH @top\nJUMP"))
        src = (
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\n"
            f"PUSH {CALLEE:#x}\nGAS\nCALL\n" + RETURN_TOP
        )
        receipt, _ = run_code(state, src, gas_limit=200_000)
        assert receipt.success
        assert abi.decode_uint(receipt.output) == 0  # child OOG

    def test_call_depth_limit(self, state):
        # Contract calls itself recursively; depth must cap at 1024
        # without blowing the Python stack (63/64 rule exhausts gas
        # first, but the recursion must terminate cleanly either way).
        src = (
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\n"
            f"PUSH {CONTRACT:#x}\nGAS\nCALL\n" + RETURN_TOP
        )
        receipt, _ = run_code(state, src, gas_limit=3_000_000)
        assert receipt.success


class TestCreate:
    def test_create_deploys_returned_code(self, state):
        # Init code returns 2 bytes of runtime code (0x00 0x00).
        init = "PUSH 2\nPUSH 0\nRETURN"
        init_code = assemble(init)
        evm = EVM(state)
        tx = Transaction(sender=ALICE, to=None, data=init_code,
                         gas_limit=500_000)
        receipt = evm.execute_transaction(tx)
        assert receipt.success
        assert receipt.contract_address is not None
        assert state.get_code(receipt.contract_address) == b"\x00\x00"

    def test_create_addresses_unique_per_nonce(self, state):
        evm = EVM(state)
        init_code = assemble("PUSH 1\nPUSH 0\nRETURN")
        r1 = evm.execute_transaction(
            Transaction(sender=ALICE, to=None, data=init_code,
                        gas_limit=500_000, nonce=0)
        )
        r2 = evm.execute_transaction(
            Transaction(sender=ALICE, to=None, data=init_code,
                        gas_limit=500_000, nonce=1)
        )
        assert r1.contract_address != r2.contract_address

    def test_create_opcode_from_contract(self, state):
        # Store init code (PUSH1 1 PUSH1 0 RETURN = 6 bytes) in memory
        # and CREATE; push the new address as the result.
        init_bytes = assemble("PUSH 1\nPUSH 0\nRETURN")
        init_word = int.from_bytes(
            init_bytes + b"\x00" * (32 - len(init_bytes)), "big"
        )
        src = (
            f"PUSH32 {init_word:#066x}\nPUSH 0\nMSTORE\n"
            f"PUSH {len(init_bytes)}\nPUSH 0\nPUSH 0\nCREATE\n"
            + RETURN_TOP
        )
        receipt, _ = run_code(state, src, gas_limit=1_000_000)
        assert receipt.success
        created = abi.decode_uint(receipt.output)
        assert created != 0
        assert state.get_code(created) == b"\x00"

    def test_create_value_endowment(self, state):
        evm = EVM(state)
        receipt = evm.execute_transaction(
            Transaction(sender=ALICE, to=None, data=b"", value=123,
                        gas_limit=500_000)
        )
        assert receipt.success
        assert state.get_balance(receipt.contract_address) == 123


class TestSelfdestruct:
    def test_selfdestruct_moves_balance_and_deletes(self, state):
        state.set_balance(CONTRACT, 900)
        receipt, _ = run_code(
            state, f"PUSH {ALICE:#x}\nSELFDESTRUCT"
        )
        assert receipt.success
        assert state.get_balance(CONTRACT) == 0
        assert state.get_code(CONTRACT) == b""


class TestMessagePlumbing:
    def test_origin_vs_caller_nested(self, state):
        # Callee stores ORIGIN and CALLER.
        src = "ORIGIN\nPUSH 0\nSSTORE\nCALLER\nPUSH 1\nSSTORE"
        state.set_code(CALLEE, assemble(src))
        run_code(state, call_and_return("CALL"))
        assert state.get_storage(CALLEE, 0) == ALICE
        assert state.get_storage(CALLEE, 1) == CONTRACT
