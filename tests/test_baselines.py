"""BPU comparator model: Table 8 calibration and parallel composition."""

import pytest

from repro.baselines import BPUModel, measure_gsc_costs
from repro.workload import generate_erc20_block

#: Paper Table 8, BPU row: ERC20 proportion -> single-core speedup.
PAPER_TABLE8_BPU = {
    1.0: 12.82,
    0.8: 3.40,
    0.6: 2.23,
    0.4: 1.63,
    0.2: 1.33,
    0.0: 1.0,
}


class TestAnalyticCalibration:
    @pytest.mark.parametrize("fraction,expected",
                             sorted(PAPER_TABLE8_BPU.items()))
    def test_matches_paper_within_13_percent(self, fraction, expected):
        # The paper's own BPU row deviates slightly from pure Amdahl
        # behavior (it was measured, not modeled); 13% covers every point.
        speedup = BPUModel.analytic_single_core_speedup(fraction)
        assert speedup == pytest.approx(expected, rel=0.13)

    def test_alpha_exact_at_full_erc20(self):
        assert BPUModel.analytic_single_core_speedup(1.0) == pytest.approx(
            12.82
        )

    def test_monotone_in_fraction(self):
        values = [
            BPUModel.analytic_single_core_speedup(f / 10)
            for f in range(11)
        ]
        assert values == sorted(values)


class TestSimulatedModel:
    @pytest.fixture(scope="class")
    def block(self, deployment):
        return generate_erc20_block(
            deployment, num_transactions=32, erc20_fraction=0.5, seed=41
        )

    @pytest.fixture(scope="class")
    def costs(self, deployment, block):
        return measure_gsc_costs(deployment.state, block.transactions)

    def test_single_core_between_bounds(self, block, costs):
        model = BPUModel()
        accelerated = model.run_single_core(block.transactions, costs)
        plain = sum(costs)
        assert accelerated < plain
        # Amdahl bound for ~50% ERC20.
        assert plain / accelerated < 2.2

    def test_erc20_txs_get_alpha(self, block, costs):
        model = BPUModel()
        for tx, cost in zip(block.transactions, costs):
            cycles = model.tx_cycles(tx, cost)
            if tx.tags.get("is_erc20"):
                assert cycles == pytest.approx(cost / 12.82)
            else:
                assert cycles == cost

    def test_parallel_not_slower_than_single(self, block, costs):
        model = BPUModel()
        single = model.run_single_core(block.transactions, costs)
        quad = model.run_parallel(
            block.transactions, costs, block.dag_edges, cores=4
        )
        assert quad <= single

    def test_parallel_respects_dependencies(self, deployment):
        from repro.workload import generate_dependency_block

        block = generate_dependency_block(
            num_transactions=24, target_ratio=1.0, seed=42
        )
        costs = measure_gsc_costs(
            block.deployment.state, block.transactions
        )
        model = BPUModel()
        single = model.run_single_core(block.transactions, costs)
        quad = model.run_parallel(
            block.transactions, costs, block.dag_edges, cores=4
        )
        # A full chain leaves no room for barrier-round parallelism.
        assert quad == pytest.approx(single, rel=0.05)

    def test_gsc_costs_positive(self, costs):
        assert all(c > 0 for c in costs)
