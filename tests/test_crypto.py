"""Hashing/address utilities."""

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import (
    ADDRESS_MASK,
    contract_address,
    create2_address,
    keccak256,
    keccak256_int,
    selector,
    selector_int,
)


class TestDigests:
    def test_digest_is_32_bytes(self):
        assert len(keccak256(b"abc")) == 32

    def test_int_matches_bytes(self):
        data = b"hello"
        assert keccak256_int(data) == int.from_bytes(
            keccak256(data), "big"
        )

    @given(st.binary(max_size=100), st.binary(max_size=100))
    def test_collision_free_in_practice(self, a, b):
        if a != b:
            assert keccak256(a) != keccak256(b)

    def test_deterministic(self):
        assert keccak256(b"x") == keccak256(b"x")


class TestSelectors:
    def test_selector_width(self):
        assert len(selector("transfer(address,uint256)")) == 4

    def test_selector_int_range(self):
        assert 0 <= selector_int("f()") < 1 << 32

    def test_known_signatures_distinct(self):
        signatures = [
            "transfer(address,uint256)",
            "transferFrom(address,address,uint256)",
            "approve(address,uint256)",
            "balanceOf(address)",
        ]
        assert len({selector(s) for s in signatures}) == len(signatures)


class TestAddresses:
    @given(st.integers(0, ADDRESS_MASK), st.integers(0, 1 << 32))
    def test_contract_address_in_range(self, sender, nonce):
        assert 0 <= contract_address(sender, nonce) <= ADDRESS_MASK

    @given(st.integers(0, ADDRESS_MASK))
    def test_nonce_changes_address(self, sender):
        assert contract_address(sender, 0) != contract_address(sender, 1)

    def test_create2_depends_on_all_inputs(self):
        base = create2_address(1, 2, b"code")
        assert create2_address(2, 2, b"code") != base
        assert create2_address(1, 3, b"code") != base
        assert create2_address(1, 2, b"other") != base
