"""Failure injection: blocks containing reverting and out-of-gas
transactions must stay consistent under every execution path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Transaction
from repro.chain.dag import (
    build_dag_edges,
    discover_access_sets,
    transitive_reduction,
    verify_dag,
)
from repro.chain.receipt import receipts_root
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import (
    run_sequential,
    run_spatial_temporal,
    run_synchronous,
)
from repro.evm import abi
from repro.faults import (
    PU_DEAD,
    PU_STALL,
    DagCorruption,
    DegradationReport,
    FaultInjector,
    FaultPlan,
    PUFault,
)
from repro.workload import generate_block


def inject_failures(deployment, seed=90):
    """A block mixing healthy traffic with guaranteed failures."""
    block = generate_block(deployment, num_transactions=20, seed=seed)
    txs = list(block.transactions)
    accounts = deployment.accounts
    dai = deployment.address_of("Dai")

    # 1. A transfer that reverts (unfunded sender).
    broke = 0xDEADD00D
    deployment.state.set_balance(broke, 10**18)
    deployment.state.clear_journal()
    txs.append(Transaction(
        sender=broke, to=dai, gas_limit=1_000_000,
        data=abi.encode_call("transfer(address,uint256)", accounts[0], 1),
        tags={"contract": "Dai", "is_erc20": True},
    ))
    # 2. An out-of-gas transaction (limit below the work required).
    txs.append(Transaction(
        sender=accounts[1], to=dai, gas_limit=22_000,
        data=abi.encode_call("transfer(address,uint256)", accounts[2], 1),
        tags={"contract": "Dai", "is_erc20": True},
    ))
    # 3. A call to a selector that does not exist (dispatch falls through
    # to revert).
    txs.append(Transaction(
        sender=accounts[3], to=dai, gas_limit=1_000_000,
        data=abi.encode_call("nonexistent()"),
        tags={"contract": "Dai", "is_erc20": True},
    ))
    # 4. A call to a codeless address (succeeds as a plain transfer).
    txs.append(Transaction(
        sender=accounts[4], to=0xEEEE, gas_limit=100_000, value=5,
        tags={"contract": None, "is_erc20": False},
    ))

    access = discover_access_sets(txs, deployment.state)
    edges = transitive_reduction(len(txs), build_dag_edges(txs, access))
    return txs, edges


@pytest.fixture(scope="module")
def failing_block(deployment):
    return inject_failures(deployment)


def executor(deployment, num_pus, **kwargs):
    return MTPUExecutor(
        deployment.state.copy(), num_pus=num_pus,
        pu_config=PUConfig(**kwargs),
    )


class TestFailureSemantics:
    def test_failures_fail_and_healthy_succeed(self, deployment,
                                               failing_block):
        txs, edges = failing_block
        result = run_sequential(executor(deployment, 1), txs)
        receipts = result.receipts_in_block_order(txs)
        # The three injected failures are the 3rd/2nd/1st from the end -1.
        assert not receipts[-4].success  # broke sender
        assert not receipts[-3].success  # out of gas
        assert not receipts[-2].success  # bad selector
        assert receipts[-1].success  # plain transfer to codeless account
        healthy = receipts[:-4]
        assert all(r.success for r in healthy)

    def test_oog_burns_the_whole_limit(self, deployment, failing_block):
        txs, edges = failing_block
        result = run_sequential(executor(deployment, 1), txs)
        receipts = result.receipts_in_block_order(txs)
        assert receipts[-3].gas_used == 22_000
        assert receipts[-3].error == "OutOfGas"

    @pytest.mark.parametrize("num_pus", [2, 4])
    def test_parallel_execution_agrees_despite_failures(
        self, deployment, failing_block, num_pus
    ):
        txs, edges = failing_block
        seq = run_sequential(executor(deployment, 1), txs)
        root = receipts_root(seq.receipts_in_block_order(txs))
        for runner in (run_synchronous, run_spatial_temporal):
            par = runner(executor(deployment, num_pus), txs, edges)
            assert receipts_root(
                par.receipts_in_block_order(txs)
            ) == root

    def test_final_state_identical(self, deployment, failing_block):
        txs, edges = failing_block
        seq_ex = executor(deployment, 1)
        run_sequential(seq_ex, txs)
        par_ex = executor(deployment, 4)
        run_spatial_temporal(par_ex, txs, edges)
        assert seq_ex.state.state_digest() == par_ex.state.state_digest()

    def test_failed_txs_still_timed(self, deployment, failing_block):
        """A reverting transaction consumes PU cycles — failures are not
        free in the timing model."""
        txs, edges = failing_block
        ex = executor(deployment, 1)
        result = run_sequential(ex, txs)
        failed = [e for e in result.executions if not e.receipt.success]
        assert failed
        assert all(e.cycles > 0 for e in failed)

    def test_hotspot_optimizer_with_failures(self, deployment,
                                             failing_block):
        """Hotspot plans must not change outcomes even for failing txs."""
        from repro.core.hotspot import HotspotOptimizer
        from repro.workload import all_entry_function_calls

        txs, edges = failing_block
        optimizer = HotspotOptimizer(deployment.state)
        optimizer.optimize_contract(
            deployment.address_of("Dai"),
            all_entry_function_calls(deployment, "Dai", seed=9),
        )
        plain = run_sequential(executor(deployment, 1), txs)
        hot_ex = MTPUExecutor(
            deployment.state.copy(), num_pus=1,
            pu_config=PUConfig(), hotspot_optimizer=optimizer,
        )
        hot = run_sequential(hot_ex, txs)
        assert receipts_root(
            plain.receipts_in_block_order(txs)
        ) == receipts_root(hot.receipts_in_block_order(txs))


class TestInjectedFaultsPropertyBased:
    """Property: under arbitrary seeded DAG corruption plus an arbitrary
    PU failure, spatio-temporal scheduling (with its detection and
    recovery paths engaged) still produces final state and receipts
    identical to sequential execution."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1023),
        num_pus=st.integers(min_value=2, max_value=5),
        drop=st.integers(min_value=0, max_value=2),
        bogus=st.integers(min_value=0, max_value=2),
        cycle=st.booleans(),
        fault_kind=st.sampled_from(["none", PU_DEAD, PU_STALL]),
        fault_pu=st.integers(min_value=0, max_value=4),
        at_cycle=st.integers(min_value=0, max_value=6_000),
    )
    def test_state_equals_sequential_under_faults(
        self, deployment, seed, num_pus, drop, bogus, cycle,
        fault_kind, fault_pu, at_cycle,
    ):
        block = generate_block(deployment, num_transactions=10, seed=seed)
        txs = block.transactions
        access = discover_access_sets(txs, deployment.state.copy())
        required = set(build_dag_edges(txs, access))
        honest = transitive_reduction(len(txs), sorted(required))

        pu_faults = ()
        if fault_kind != "none" and fault_pu < num_pus:
            pu_faults = (PUFault(
                pu_id=fault_pu, kind=fault_kind, at_cycle=at_cycle,
                stall_cycles=2_000 if fault_kind == PU_STALL else 0,
            ),)
        plan = FaultPlan(
            seed=seed,
            dag=DagCorruption(
                drop_edges=drop, bogus_edges=bogus, make_cycle=cycle
            ),
            pu_faults=pu_faults,
        )
        injector = FaultInjector(plan)

        # The adversary half: ship a corrupted DAG; the defender half:
        # verify it and rebuild locally when it cannot be trusted.
        corrupted = injector.corrupt_dag(len(txs), honest)
        verdict = verify_dag(len(txs), corrupted, required)
        edges = corrupted if verdict.ok else transitive_reduction(
            len(txs), sorted(required)
        )

        report = DegradationReport()
        par_ex = executor(deployment, num_pus)
        par = run_spatial_temporal(
            par_ex, txs, edges, fault_injector=injector, report=report
        )
        seq_ex = executor(deployment, 1)
        seq = run_sequential(seq_ex, txs)

        assert par_ex.state.state_digest() == seq_ex.state.state_digest()
        assert receipts_root(
            par.receipts_in_block_order(txs)
        ) == receipts_root(seq.receipts_in_block_order(txs))
        # A cycle injection is always caught; a dropped reduced edge
        # always breaks conflict coverage.
        if injector.injected["dag_cycle"]:
            assert verdict.cyclic
        if injector.injected["dag_edge_dropped"]:
            assert not verdict.ok
        # PU faults can only fire if the plan scheduled them (a fault
        # past the makespan never manifests).
        assert (report.pu_failures_detected
                + report.pu_stalls_detected) <= len(pu_faults)
        assert report.pu_failures_detected == 0 or fault_kind == PU_DEAD
        assert report.pu_stalls_detected == 0 or fault_kind == PU_STALL
