"""CLI: listing, selection, output files, error handling."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.experiments import ExperimentResult


@pytest.fixture()
def fake_experiments(monkeypatch):
    calls = []

    def make(name):
        def fn():
            calls.append(name)
            return ExperimentResult(
                experiment_id=name, title="t",
                headers=["a"], rows=[[1]],
            )
        fn.__doc__ = f"{name} docstring."
        return fn

    fakes = {name: make(name) for name in ("fig12", "table7")}
    monkeypatch.setattr("repro.cli.EXPERIMENTS", fakes)
    return calls


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_names(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_all_experiments_registered(self):
        # Every paper table/figure plus the five ablations.
        assert len(EXPERIMENTS) == 19
        assert "headline" in EXPERIMENTS
        assert "ablation-window" in EXPERIMENTS


class TestMain:
    def test_list_exits_zero(self, fake_experiments, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out

    def test_run_selected(self, fake_experiments, capsys):
        assert main(["run", "fig12"]) == 0
        assert fake_experiments == ["fig12"]
        assert "fig12" in capsys.readouterr().out

    def test_run_all(self, fake_experiments):
        assert main(["run", "all"]) == 0
        assert sorted(fake_experiments) == ["fig12", "table7"]

    def test_unknown_experiment_errors(self, fake_experiments, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_out_directory_written(self, fake_experiments, tmp_path):
        out = tmp_path / "results"
        assert main(["run", "fig12", "--out", str(out)]) == 0
        assert (out / "fig12.txt").exists()
        assert "fig12" in (out / "fig12.txt").read_text()
