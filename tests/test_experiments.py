"""The experiments layer: structure, helpers, and the cheap experiments'
qualitative claims (the expensive sweeps are exercised by benchmarks/)."""

import pytest

from repro.experiments import (
    ExperimentResult,
    fig2_consensus,
    table1_ethereum_stats,
    table2_bytecode_share,
    table5_area,
    table6_instruction_mix,
)
from repro.experiments.common import (
    CONTRACT_ABBREVIATIONS,
    TABLE7_ORDER,
    shared_deployment,
)


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="T", title="demo",
            headers=["name", "value"],
            rows=[["a", 1.5], ["b", 2]],
            notes="note",
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "T: demo" in text
        assert "1.50" in text
        assert "note" in text

    def test_column_extraction(self):
        assert self.make().column("value") == [1.5, 2]

    def test_column_unknown_header(self):
        with pytest.raises(ValueError):
            self.make().column("ghost")

    def test_row_by_label(self):
        assert self.make().row_by_label("b") == ["b", 2]
        with pytest.raises(KeyError):
            self.make().row_by_label("c")


class TestCommon:
    def test_shared_deployment_is_cached(self):
        assert shared_deployment() is shared_deployment()

    def test_abbreviations_cover_top8(self):
        from repro.contracts import TOP8_NAMES

        assert set(CONTRACT_ABBREVIATIONS) == set(TOP8_NAMES)
        assert set(TABLE7_ORDER) == set(TOP8_NAMES)


class TestCheapExperiments:
    def test_table1_monotone_overhead(self):
        result = table1_ethereum_stats()
        ours = [float(r[3].rstrip("%")) for r in result.rows]
        assert ours == sorted(ours)
        assert all(50 < v < 100 for v in ours)

    def test_fig2_interval_near_target(self):
        result = fig2_consensus(blocks=1200)
        quarters = [
            float(r[1].rstrip("s"))
            for r in result.rows
            if str(r[0]).startswith("interval (quarter")
        ]
        for mean in quarters:
            assert abs(mean - 13.0) < 2.0

    def test_table2_bytecode_dominates(self):
        result = table2_bytecode_share()
        for row in result.rows:
            assert float(row[4].rstrip("%")) > 55.0

    def test_table5_matches_synthesis(self):
        result = table5_area()
        assert float(result.row_by_label("Total")[1]) == pytest.approx(
            79.623, abs=0.5
        )

    def test_table6_has_paper_row(self):
        result = table6_instruction_mix(per_function=1)
        labels = [row[0] for row in result.rows]
        assert "Avg (ours)" in labels
        assert "Avg (paper)" in labels
        assert len(result.rows) == len(CONTRACT_ABBREVIATIONS) + 2
