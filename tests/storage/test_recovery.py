"""Store + recovery semantics: replay identity, truncation, crash drills."""

import os

import pytest

from repro.chain.node import Node
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.faults import (
    FaultInjector,
    FaultPlan,
    SimulatedCrashError,
    StorageCorruption,
)
from repro.obs import use_registry
from repro.storage import (
    ChainStore,
    CorruptWalError,
    RecoveryError,
    StorageConfig,
    StoreLockedError,
    attach,
    codec,
    has_store,
    recover,
    verify_store,
)
from repro.storage.wal import RECORD_HEADER, scan_wal

ACCOUNTS = [0x1000 + i for i in range(8)]


def fresh_node() -> Node:
    state = WorldState()
    for account in ACCOUNTS:
        state.set_balance(account, 10**18)
    state.clear_journal()
    return Node(state=state)


_NONCES: dict = {}


def transfer_txs(count: int, key: object) -> list[Transaction]:
    nonces = _NONCES.setdefault(key, {})
    txs = []
    for i in range(count):
        sender = ACCOUNTS[i % len(ACCOUNTS)]
        nonces[sender] = nonces.get(sender, 0) + 1
        txs.append(Transaction(
            sender=sender,
            to=ACCOUNTS[(i + 3) % len(ACCOUNTS)],
            value=1 + i,
            nonce=nonces[sender],
            gas_limit=50_000,
        ))
    return txs


def commit_blocks(node: Node, blocks: int, txs_per_block: int = 3) -> None:
    for _ in range(blocks):
        for tx in transfer_txs(txs_per_block, id(node)):
            node.hear(tx)
        node.execute_block(
            node.propose_block(max_transactions=txs_per_block)
        )


def build_store(tmp_path, blocks=7, snapshot_interval=3, close=True):
    node = fresh_node()
    attach(node, str(tmp_path), StorageConfig(
        fsync="never", snapshot_interval_blocks=snapshot_interval,
    ))
    commit_blocks(node, blocks)
    digest = codec.state_digest_bytes(node.state)
    if close:
        node.store.close()
    return node, digest


def test_recover_rebuilds_bit_identical_state(tmp_path):
    node, digest = build_store(tmp_path)
    result = recover(str(tmp_path))
    assert result.height == 7
    assert result.state_digest == digest
    assert result.corruption is None
    assert [b.hash() for b in result.node.chain] == [
        b.hash() for b in node.chain
    ]
    assert len(result.node.receipts) == 7
    # The hotspot tracker re-observed every block (plain transfers
    # never cross the hotness threshold, so scores stay empty).
    assert result.tracker.blocks_observed == 7


def test_recover_bounded_by_retention_window(tmp_path):
    _, digest = build_store(tmp_path)
    result = recover(str(tmp_path), receipt_history_blocks=2)
    # Newest snapshot at or below 7-2=5 is height 3.
    assert result.snapshot_height == 3
    assert result.replayed_blocks == 4
    assert result.state_digest == digest
    # Receipts cover exactly the retention window.
    assert len(result.node.receipts) == 2


def test_recover_archival_replays_everything(tmp_path):
    """``receipt_history_blocks=None`` anchors at genesis, keeps it all."""
    node, digest = build_store(tmp_path, blocks=9, snapshot_interval=3)
    result = recover(str(tmp_path), receipt_history_blocks=None)
    assert result.height == 9
    assert result.snapshot_height == 0  # genesis anchor, full replay
    assert result.replayed_blocks == 9
    assert result.state_digest == digest
    # Every block's receipts survive — no retention eviction at all.
    assert len(result.node.receipts) == 9
    assert {b.hash() for b in result.node.chain} == {
        b.hash() for b in node.chain
    }


def test_recover_survives_sigkill_no_close(tmp_path):
    node, digest = build_store(tmp_path, close=False)
    # Lock file still claims our live pid — same-process takeover works,
    # exactly like a restart after SIGKILL (dead pid) does.
    result = recover(str(tmp_path))
    assert result.state_digest == digest
    node.store.close()


def test_recover_truncates_torn_tail_and_counts(tmp_path):
    build_store(tmp_path)
    wal = os.path.join(str(tmp_path), "wal.log")
    size = os.path.getsize(wal)
    with open(wal, "r+b") as fh:
        fh.truncate(size - 4)
    with use_registry() as registry:
        result = recover(str(tmp_path))
    assert result.height == 6
    assert result.truncated_records == 1
    assert result.truncated_bytes > 0
    assert result.warnings
    assert registry.value("storage.wal_truncated_records") == 1
    # The file itself was repaired: a second scan is clean.
    assert scan_wal(wal).clean


def test_recover_refuses_mid_log_corruption(tmp_path):
    build_store(tmp_path)
    wal = os.path.join(str(tmp_path), "wal.log")
    scan = scan_wal(wal)
    offset = sum(
        len(r) + RECORD_HEADER.size for r in scan.records[:2]
    ) + RECORD_HEADER.size + 5
    with open(wal, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(CorruptWalError, match="mid-log"):
        recover(str(tmp_path))
    report = verify_store(str(tmp_path))
    assert not report.ok
    assert report.mid_log


def test_recover_raises_on_replay_divergence(tmp_path):
    # Re-frame the final record with a lying digest: CRC and structure
    # are valid, so only the replay assertion can catch it.
    from repro.chain import rlp
    from repro.storage.wal import frame_record

    build_store(tmp_path)
    wal = os.path.join(str(tmp_path), "wal.log")
    scan = scan_wal(wal)
    block, _stamp = codec.decode_wal_payload(scan.records[-1])
    forged = rlp.encode([block.to_rlp(), bytes(32)])
    prefix = sum(
        len(r) + RECORD_HEADER.size for r in scan.records[:-1]
    )
    with open(wal, "r+b") as fh:
        fh.truncate(prefix)
        fh.seek(prefix)
        fh.write(frame_record(forged))
    with pytest.raises(RecoveryError, match="diverged"):
        recover(str(tmp_path))


def test_recover_falls_back_past_damaged_snapshot(tmp_path):
    _, digest = build_store(tmp_path)
    latest = str(tmp_path / "snapshot-000000000006.rlp")
    assert os.path.exists(latest)
    with open(latest, "r+b") as fh:
        fh.truncate(12)
    result = recover(str(tmp_path), receipt_history_blocks=1)
    assert result.snapshot_height == 3  # skipped the damaged 6
    assert latest in result.skipped_snapshots
    assert result.state_digest == digest


def test_verify_store_clean_and_tail_tear(tmp_path):
    build_store(tmp_path)
    report = verify_store(str(tmp_path))
    assert report.ok
    assert report.chain_height == 7
    assert 0 in [h for h, _ in report.snapshots]
    wal = os.path.join(str(tmp_path), "wal.log")
    with open(wal, "r+b") as fh:
        fh.truncate(os.path.getsize(wal) - 2)
    report = verify_store(str(tmp_path))
    assert report.ok  # a tear is recoverable, not a failure
    assert report.corruption is not None
    assert report.chain_height == 6


def test_attach_fresh_then_reattach(tmp_path):
    node = fresh_node()
    genesis_digest = codec.state_digest_bytes(node.state)
    assert not has_store(str(tmp_path))
    result = attach(node, str(tmp_path), StorageConfig(fsync="never"))
    assert result is None  # nothing to recover
    assert has_store(str(tmp_path))
    commit_blocks(node, 2)
    node.store.close()

    node2 = fresh_node()
    result = attach(node2, str(tmp_path), StorageConfig(fsync="never"))
    assert result is not None and result.height == 2
    assert codec.state_digest_bytes(node2.state) == codec.state_digest_bytes(
        node.state
    )
    assert codec.state_digest_bytes(node2.state) != genesis_digest
    node2.store.close()


def test_attach_respills_mempool_once(tmp_path):
    node, _ = build_store(tmp_path, blocks=2, close=False)
    pending = transfer_txs(3, id(node))
    node.store.spill_mempool(pending)
    node.store.close()

    node2 = fresh_node()
    with use_registry() as registry:
        attach(node2, str(tmp_path), StorageConfig(fsync="never"))
        assert registry.value("storage.mempool_respilled") == 3
    assert len(node2.mempool) == 3
    assert not os.path.exists(tmp_path / "mempool.rlp")
    node2.store.close()

    # A second restart must not re-admit them again (the file is gone).
    node3 = fresh_node()
    attach(node3, str(tmp_path), StorageConfig(fsync="never"))
    assert len(node3.mempool) == 0
    node3.store.close()


def test_store_lock_refuses_live_owner(tmp_path):
    with open(tmp_path / "LOCK", "w") as fh:
        fh.write("1")  # pid 1 is always alive and never ours
    with pytest.raises(StoreLockedError):
        ChainStore(str(tmp_path))


def test_store_lock_takes_over_dead_owner(tmp_path):
    with open(tmp_path / "LOCK", "w") as fh:
        fh.write("999999999")  # beyond pid_max: guaranteed dead
    store = ChainStore(str(tmp_path))
    assert open(tmp_path / "LOCK").read() == str(os.getpid())
    store.close()
    assert not os.path.exists(tmp_path / "LOCK")


def test_fsync_interval_policy_counts_fsyncs(tmp_path):
    node = fresh_node()
    attach(node, str(tmp_path), StorageConfig(
        fsync="interval", fsync_interval_blocks=2,
        snapshot_interval_blocks=100,
    ))
    with use_registry() as registry:
        commit_blocks(node, 4)
        fsyncs = registry.series("storage.fsync_latency_ms")
    node.store.close()
    # 4 appends at interval 2 → exactly 2 policy fsyncs.
    assert sum(h.count for h in fsyncs) == 2


def test_crash_between_wal_and_snapshot_drill(tmp_path):
    plan = FaultPlan(storage=StorageCorruption(
        crash_between_wal_and_snapshot=True
    ))
    assert not plan.empty
    injector = FaultInjector(plan)
    node = fresh_node()
    attach(
        node, str(tmp_path),
        StorageConfig(fsync="never", snapshot_interval_blocks=2),
        fault_injector=injector,
    )
    commit_blocks(node, 1)
    with pytest.raises(SimulatedCrashError):
        commit_blocks(node, 1)  # height 2 hits the crash point
    assert injector.injected["crash_between_wal_and_snapshot"] == 1
    # The block IS durable in the WAL; its snapshot never landed.
    assert not os.path.exists(tmp_path / "snapshot-000000000002.rlp")
    node.store.close()

    result = recover(str(tmp_path))
    assert result.height == 2
    assert result.snapshot_height == 0
    # Recovered state == the state the node reached before "crashing".
    assert result.state_digest == codec.state_digest_bytes(node.state)


def test_injector_corrupt_wal_torn_tail(tmp_path):
    build_store(tmp_path)
    injector = FaultInjector(FaultPlan(
        seed=5, storage=StorageCorruption(torn_tail=True),
    ))
    applied = injector.corrupt_wal(str(tmp_path))
    assert injector.injected["wal_torn_tail"] == 1
    assert applied
    result = recover(str(tmp_path))
    assert result.height == 6
    assert result.corruption is not None


def test_injector_corrupt_wal_mid_log(tmp_path):
    build_store(tmp_path)
    injector = FaultInjector(FaultPlan(
        seed=5, storage=StorageCorruption(corrupt_record=1),
    ))
    injector.corrupt_wal(str(tmp_path))
    assert injector.injected["wal_crc_corrupted"] == 1
    with pytest.raises(CorruptWalError):
        recover(str(tmp_path))
    assert not verify_store(str(tmp_path)).ok
