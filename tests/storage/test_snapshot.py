"""Snapshot codec and file protocol: canonical bytes, atomicity, damage."""

import os

import pytest

from repro.chain import rlp
from repro.chain.state import WorldState
from repro.storage import codec
from repro.storage.errors import CorruptSnapshotError
from repro.storage.snapshot import (
    list_snapshots,
    load_latest_snapshot,
    prune_snapshots,
    read_snapshot,
    snapshot_name,
    write_snapshot,
)


def sample_state() -> WorldState:
    state = WorldState()
    state.set_balance(0xA11CE, 10**18)
    state.set_balance(0xB0B, 5)
    state.set_code(0xC0DE, b"\x60\x00\x60\x00")
    state.set_storage(0xC0DE, 0, 42)
    state.set_storage(0xC0DE, 7, 9)
    state.set_nonce(0xA11CE, 3)
    state.clear_journal()
    return state


def test_state_codec_round_trip():
    state = sample_state()
    blob = codec.state_to_rlp(state)
    restored = codec.state_from_rlp(blob)
    assert restored.state_digest() == state.state_digest()
    # Canonical: re-encoding the restored state is bit-identical.
    assert codec.state_to_rlp(restored) == blob
    assert codec.state_digest_bytes(restored) == codec.state_digest_bytes(
        state
    )


def test_state_codec_skips_empty_accounts():
    state = sample_state()
    state.set_balance(0xDEAD, 0)  # touched but empty
    state.clear_journal()
    assert codec.state_to_rlp(state) == codec.state_to_rlp(sample_state())


def test_state_from_rlp_rejects_garbage():
    with pytest.raises(rlp.RLPDecodingError):
        codec.state_from_rlp(b"\xf0\x01\x02")
    with pytest.raises(rlp.RLPDecodingError):
        codec.state_from_rlp(rlp.encode([b"not-an-account"]))


def test_write_read_snapshot(tmp_path):
    state = sample_state()
    path = write_snapshot(str(tmp_path), 5, state)
    assert os.path.basename(path) == snapshot_name(5)
    height, digest, restored = read_snapshot(path)
    assert height == 5
    assert digest == codec.state_digest_bytes(state)
    assert restored.state_digest() == state.state_digest()
    assert not os.path.exists(path + ".tmp")  # rename consumed the tmp


def test_read_snapshot_rejects_truncation(tmp_path):
    path = write_snapshot(str(tmp_path), 1, sample_state())
    blob = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(blob[:-3])
    with pytest.raises(CorruptSnapshotError):
        read_snapshot(path)


def test_read_snapshot_rejects_digest_mismatch(tmp_path):
    # Re-frame a snapshot whose stamped digest lies about the state:
    # the CRC is valid, the structure decodes, but the commitment fails.
    from repro.storage.wal import frame_record

    state = sample_state()
    payload = rlp.encode([
        rlp.encode_int(1),
        b"\xab" * 32,
        codec.state_to_rlp(state),
    ])
    path = tmp_path / snapshot_name(1)
    path.write_bytes(frame_record(payload))
    with pytest.raises(CorruptSnapshotError, match="digest"):
        read_snapshot(str(path))


def test_list_and_prune_keep_genesis(tmp_path):
    state = sample_state()
    for height in (0, 4, 8, 12):
        write_snapshot(str(tmp_path), height, state)
    assert [h for h, _ in list_snapshots(str(tmp_path))] == [12, 8, 4, 0]
    removed = prune_snapshots(str(tmp_path), retain=2)
    assert [os.path.basename(p) for p in removed] == [snapshot_name(4)]
    assert [h for h, _ in list_snapshots(str(tmp_path))] == [12, 8, 0]


def test_load_latest_skips_damaged(tmp_path):
    state = sample_state()
    write_snapshot(str(tmp_path), 4, state)
    newest = write_snapshot(str(tmp_path), 8, state)
    with open(newest, "r+b") as fh:
        fh.truncate(10)
    height, digest, restored, skipped = load_latest_snapshot(
        str(tmp_path)
    )
    assert height == 4
    assert skipped == [newest]
    assert restored.state_digest() == state.state_digest()


def test_load_latest_respects_max_height(tmp_path):
    state = sample_state()
    write_snapshot(str(tmp_path), 4, state)
    write_snapshot(str(tmp_path), 8, state)
    height, _, _, _ = load_latest_snapshot(str(tmp_path), max_height=7)
    assert height == 4


def test_load_latest_raises_when_nothing_loadable(tmp_path):
    with pytest.raises(CorruptSnapshotError):
        load_latest_snapshot(str(tmp_path))


def test_wal_payload_round_trip():
    from repro.chain.block import Block, BlockHeader
    from repro.chain.transaction import Transaction

    block = Block(
        header=BlockHeader(
            height=3, timestamp=1_600_000_039, coinbase=0xC0FFEE,
            difficulty=1, gas_limit=30_000_000, parent_hash=b"\x11" * 32,
        ),
        transactions=[
            Transaction(sender=0xA11CE, to=0xB0B, value=5, nonce=1)
        ],
        dag_edges=[],
    )
    digest = b"\x22" * 32
    block2, digest2 = codec.decode_wal_payload(
        codec.encode_wal_payload(block, digest)
    )
    assert digest2 == digest
    assert block2.header == block.header
    assert block2.transactions == block.transactions
    assert block2.hash() == block.hash()


def test_wal_payload_rejects_short_digest():
    from repro.chain.block import Block, BlockHeader

    block = Block(header=BlockHeader(
        height=1, timestamp=0, coinbase=0, difficulty=1, gas_limit=1,
    ))
    payload = rlp.encode([block.to_rlp(), b"\x01" * 31])
    with pytest.raises(rlp.RLPDecodingError):
        codec.decode_wal_payload(payload)


def test_mempool_codec_round_trip():
    from repro.chain.transaction import Transaction

    txs = [
        Transaction(sender=0xA11CE, to=0xB0B, value=7, nonce=n)
        for n in range(3)
    ]
    # Bare transactions (legacy spill shape) decode as (tx, None) pairs;
    # the re-admitting mempool rebuilds blooms for None entries.
    restored = codec.mempool_from_rlp(codec.mempool_to_rlp(txs))
    assert restored == [(tx, None) for tx in txs]

    blob = b"\x00" * 16
    paired = codec.mempool_from_rlp(
        codec.mempool_to_rlp([(tx, blob) for tx in txs])
    )
    assert paired == [(tx, blob) for tx in txs]
