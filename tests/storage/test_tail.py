"""Tail-follow WAL reading: live appends, torn tails, mid-log damage."""

import pytest

from repro.storage import CorruptWalError, WalTailReader
from repro.storage.wal import RECORD_HEADER, WalWriter, frame_record


def test_records_appended_after_open_are_seen(tmp_path):
    path = str(tmp_path / "wal.log")
    writer = WalWriter(path)
    writer.append(b"one")
    reader = WalTailReader(path)
    assert reader.poll() == [b"one"]
    assert reader.poll() == []  # parked at EOF, no spin

    writer.append(b"two")
    writer.append(b"three")
    assert reader.poll() == [b"two", b"three"]
    assert reader.records_read == 3
    writer.close()


def test_torn_tail_is_retried_not_fatal(tmp_path):
    path = str(tmp_path / "wal.log")
    writer = WalWriter(path)
    writer.append(b"committed")
    writer.close()

    reader = WalTailReader(path)
    assert reader.poll() == [b"committed"]

    # An append lands in two halves — exactly what a concurrent writer
    # (or a crash) looks like from the reader's side.
    frame = frame_record(b"late-record")
    with open(path, "ab") as fh:
        fh.write(frame[: RECORD_HEADER.size + 3])
    assert reader.poll() == []  # not there *yet*: parked, no error
    with open(path, "ab") as fh:
        fh.write(frame[RECORD_HEADER.size + 3:])
    assert reader.poll() == [b"late-record"]


def test_start_record_skips_already_applied_prefix(tmp_path):
    path = str(tmp_path / "wal.log")
    writer = WalWriter(path)
    for payload in (b"a", b"b", b"c"):
        writer.append(payload)
    writer.close()

    reader = WalTailReader(path, start_record=2)
    assert reader.poll() == [b"c"]
    assert reader.records_read == 1


def test_midlog_corruption_raises_instead_of_skipping(tmp_path):
    path = str(tmp_path / "wal.log")
    writer = WalWriter(path)
    writer.append(b"first-record")
    writer.append(b"second-record")
    writer.close()

    # Flip a payload byte of the *first* record: valid data exists
    # beyond the damage, so no amount of waiting repairs it.
    with open(path, "r+b") as fh:
        fh.seek(RECORD_HEADER.size)
        byte = fh.read(1)
        fh.seek(RECORD_HEADER.size)
        fh.write(bytes([byte[0] ^ 0xFF]))

    reader = WalTailReader(path)
    with pytest.raises(CorruptWalError):
        reader.poll()


def test_missing_file_polls_empty(tmp_path):
    reader = WalTailReader(str(tmp_path / "absent.log"))
    assert reader.poll() == []
