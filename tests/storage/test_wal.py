"""WAL framing and scanning: torn tails, CRC damage, mid-log detection."""

import zlib

import pytest

from repro.storage.errors import CorruptWalError
from repro.storage.wal import (
    MAX_RECORD_BYTES,
    RECORD_HEADER,
    WalWriter,
    frame_record,
    scan_wal,
    truncate_wal,
    unframe_record,
)

PAYLOADS = [b"alpha", b"", b"x" * 300, bytes(range(256))]


def write_wal(path, payloads):
    writer = WalWriter(str(path))
    for payload in payloads:
        writer.append(payload)
    writer.sync()
    writer.close()
    return str(path)


def test_frame_unframe_round_trip():
    for payload in PAYLOADS:
        assert unframe_record(frame_record(payload)) == payload


def test_unframe_rejects_damage():
    record = frame_record(b"hello world")
    with pytest.raises(CorruptWalError):
        unframe_record(record[:-1])  # torn payload
    with pytest.raises(CorruptWalError):
        unframe_record(record[:3])  # torn header
    mutated = bytearray(record)
    mutated[-1] ^= 0xFF
    with pytest.raises(CorruptWalError):
        unframe_record(bytes(mutated))  # CRC mismatch


def test_frame_rejects_oversized_payload():
    with pytest.raises(ValueError):
        frame_record(b"\x00" * (MAX_RECORD_BYTES + 1))


def test_scan_missing_file_is_empty(tmp_path):
    scan = scan_wal(str(tmp_path / "absent.log"))
    assert scan.clean
    assert scan.records == []
    assert scan.file_bytes == 0


def test_scan_clean_log(tmp_path):
    path = write_wal(tmp_path / "wal.log", PAYLOADS)
    scan = scan_wal(path)
    assert scan.clean
    assert scan.records == PAYLOADS
    assert scan.valid_bytes == scan.file_bytes
    assert not scan.mid_log_corruption


@pytest.mark.parametrize("cut", [1, 3, 100])
def test_scan_torn_tail(tmp_path, cut):
    path = write_wal(tmp_path / "wal.log", PAYLOADS)
    size = (tmp_path / "wal.log").stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(size - cut)
    scan = scan_wal(path)
    assert not scan.clean
    assert scan.records == PAYLOADS[:-1]
    assert scan.truncated_bytes > 0
    assert not scan.mid_log_corruption  # a tear is recoverable


def test_scan_crc_damage_on_final_record_is_tail(tmp_path):
    path = write_wal(tmp_path / "wal.log", PAYLOADS)
    offset = sum(
        len(p) + RECORD_HEADER.size for p in PAYLOADS[:-1]
    ) + RECORD_HEADER.size
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
    scan = scan_wal(path)
    assert scan.records == PAYLOADS[:-1]
    assert "CRC" in scan.corruption
    assert not scan.mid_log_corruption


def test_scan_mid_log_corruption_counts_suffix(tmp_path):
    path = write_wal(tmp_path / "wal.log", PAYLOADS)
    # Flip a byte inside record 2's payload: record 3 survives beyond
    # the damage, which is exactly what mid-log corruption means.
    payload_start = sum(
        len(p) + RECORD_HEADER.size for p in PAYLOADS[:2]
    ) + RECORD_HEADER.size
    with open(path, "r+b") as fh:
        fh.seek(payload_start + 10)
        byte = fh.read(1)
        fh.seek(payload_start + 10)
        fh.write(bytes([byte[0] ^ 0xFF]))
    scan = scan_wal(path)
    assert scan.records == PAYLOADS[:2]
    assert "CRC" in scan.corruption
    assert scan.suffix_records == 1
    assert scan.mid_log_corruption


def test_scan_implausible_length_is_framing_noise(tmp_path):
    path = tmp_path / "wal.log"
    garbage = RECORD_HEADER.pack(MAX_RECORD_BYTES + 5, 0) + b"zz"
    path.write_bytes(frame_record(b"ok") + garbage)
    scan = scan_wal(str(path))
    assert scan.records == [b"ok"]
    assert "implausible" in scan.corruption
    assert not scan.mid_log_corruption


def test_fake_suffix_does_not_mask_tail_tear(tmp_path):
    # A torn final record whose claimed extent reaches past EOF has no
    # probe window — still a plain tear.
    path = write_wal(tmp_path / "wal.log", [b"first"])
    with open(path, "ab") as fh:
        fh.write(RECORD_HEADER.pack(1000, zlib.crc32(b"never")))
        fh.write(b"part")
    scan = scan_wal(path)
    assert scan.records == [b"first"]
    assert not scan.mid_log_corruption


def test_truncate_wal_repairs_to_valid_prefix(tmp_path):
    path = write_wal(tmp_path / "wal.log", PAYLOADS)
    size = (tmp_path / "wal.log").stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(size - 2)
    scan = scan_wal(path)
    truncate_wal(path, scan.valid_bytes)
    repaired = scan_wal(path)
    assert repaired.clean
    assert repaired.records == PAYLOADS[:-1]


def test_writer_appends_are_scannable_without_sync(tmp_path):
    path = tmp_path / "wal.log"
    writer = WalWriter(str(path))
    writer.append(b"one")
    writer.append(b"two")
    # flush() puts bytes in the page cache; same-process readers see them.
    assert scan_wal(str(path)).records == [b"one", b"two"]
    writer.close()
