"""Dynamic-storage-key workloads: the blocks declared access sets miss.

The speculative (OCC) executor exists for transactions whose storage
keys derive from *calldata* — a path router whose reserve slots depend
on which token pair the caller names, a batch airdrop whose recipient
loop count rides in an argument, and a delegatecall proxy whose hot
path lands in proxy-local storage. These tests pin three facts the
benchmark leans on: the contracts execute successfully, their access
sets genuinely vary with calldata (so no static declaration covers
them), and :func:`generate_dynamic_block` emits the blocks *without*
declared access sets or DAG edges.
"""

import pytest

from repro.chain.dag import discover_access_sets
from repro.contracts.registry import (
    AIRDROP,
    DAI,
    PATH_ROUTER,
    ROUTER_PROXY,
    TOKEN_A,
    TOKEN_B,
    build_deployment,
)
from repro.evm import EVM
from repro.workload import ActionLibrary, generate_dynamic_block
from repro.workload.actions import PlannedCall

import random


@pytest.fixture(scope="module")
def dyn_deployment():
    return build_deployment(num_accounts=32)


def run_one(deployment, call):
    state = deployment.state.copy()
    library = ActionLibrary(deployment, random.Random(0))
    tx = library.to_transaction(call)
    receipt = EVM(state).execute_transaction(tx)
    return receipt, state


class TestDynamicContracts:
    def test_path_router_two_hop_swap_succeeds(self, dyn_deployment):
        accounts = dyn_deployment.accounts
        call = PlannedCall(
            contract="PathRouter", sender=accounts[0],
            signature="swapExactPath(uint256,uint256,address,address,"
                      "address)",
            args=(10_000, 1, TOKEN_A, DAI, TOKEN_B),
        )
        receipt, state = run_one(dyn_deployment, call)
        assert receipt.success
        assert receipt.logs  # PATH_SWAP event

    def test_router_proxy_delegates_to_path_router(self, dyn_deployment):
        accounts = dyn_deployment.accounts
        call = PlannedCall(
            contract="RouterProxy", sender=accounts[1],
            signature="swapExactPath(uint256,uint256,address,address,"
                      "address)",
            args=(10_000, 1, TOKEN_A, DAI, TOKEN_B),
        )
        receipt, state = run_one(dyn_deployment, call)
        assert receipt.success
        # Delegatecall semantics: the reserve mutation lands in the
        # *proxy's* storage, never the implementation's.
        library = ActionLibrary(dyn_deployment, random.Random(0))
        tx = library.to_transaction(call)
        artifact = discover_access_sets([tx],
                                        dyn_deployment.state.copy())[0]
        touched = {addr for addr, _slot in artifact.writes}
        assert ROUTER_PROXY in touched
        assert PATH_ROUTER not in touched

    def test_airdrop_fans_out_per_count_argument(self, dyn_deployment):
        accounts = dyn_deployment.accounts
        first = 0xA0_0000

        def writes_for(count):
            call = PlannedCall(
                contract="AirdropDistributor", sender=accounts[2],
                signature="airdrop(address,address,uint256,uint256)",
                args=(DAI, first, count, 5),
            )
            library = ActionLibrary(dyn_deployment, random.Random(0))
            tx = library.to_transaction(call)
            artifact = discover_access_sets(
                [tx], dyn_deployment.state.copy()
            )[0]
            return artifact.writes

        # The write set scales with the loop bound carried in calldata —
        # the signature static declaration cannot express.
        assert len(writes_for(8)) > len(writes_for(3))

    def test_access_sets_vary_with_calldata(self, dyn_deployment):
        """Same (to, selector) shape, different arguments → different
        storage keys: the case static per-shape estimates miss."""
        accounts = dyn_deployment.accounts
        library = ActionLibrary(dyn_deployment, random.Random(0))
        sig = "swapExactPath(uint256,uint256,address,address,address)"

        def keys(path):
            call = PlannedCall(
                contract="PathRouter", sender=accounts[0],
                signature=sig, args=(10_000, 1, *path),
            )
            tx = library.to_transaction(call)
            artifact = discover_access_sets(
                [tx], dyn_deployment.state.copy()
            )[0]
            return {
                (addr, slot) for addr, slot in artifact.writes
                if addr == PATH_ROUTER
            }

        assert keys((TOKEN_A, DAI, TOKEN_B)) != keys(
            (TOKEN_B, TOKEN_A, DAI)
        )

    def test_planners_emit_successful_calls(self, dyn_deployment):
        library = ActionLibrary(dyn_deployment, random.Random(7))
        state = dyn_deployment.state.copy()
        evm = EVM(state)
        ok = 0
        total = 45
        for index in range(total):
            name = ("PathRouter", "RouterProxy",
                    "AirdropDistributor")[index % 3]
            call = library.plan(name)
            receipt = evm.execute_transaction(library.to_transaction(call))
            ok += bool(receipt.success)
            state.clear_journal()
        assert ok == total


class TestGenerateDynamicBlock:
    def test_block_ships_no_declared_access_sets(self):
        block = generate_dynamic_block(num_transactions=24, seed=3)
        assert block.access_sets == []
        assert block.dag_edges == []
        assert len(block.transactions) == 24

    def test_deterministic_by_seed(self):
        a = generate_dynamic_block(num_transactions=16, seed=5)
        b = generate_dynamic_block(
            deployment=a.deployment, num_transactions=16, seed=5
        )
        assert [t.hash() for t in a.transactions] == [
            t.hash() for t in b.transactions
        ]

    def test_transactions_execute_successfully(self):
        block = generate_dynamic_block(num_transactions=32, seed=9)
        state = block.deployment.state.copy()
        evm = EVM(state)
        receipts = [
            evm.execute_transaction(tx) for tx in block.transactions
        ]
        assert all(r.success for r in receipts)

    def test_targets_only_dynamic_contracts(self):
        block = generate_dynamic_block(num_transactions=40, seed=2)
        targets = {tx.to for tx in block.transactions}
        assert targets <= {PATH_ROUTER, AIRDROP, ROUTER_PROXY}
        assert AIRDROP in targets  # the majority archetype

    def test_declared_variant_still_finalizes(self):
        block = generate_dynamic_block(
            num_transactions=12, seed=4, declare=True
        )
        assert len(block.access_sets) == 12


def test_loadgen_dynamic_workload_round_trips():
    from repro.serve.loadgen import make_transactions

    deployment = build_deployment(num_accounts=16)
    txs = make_transactions(deployment, 12, workload="dynamic", seed=3)
    state = deployment.state.copy()
    evm = EVM(state)
    receipts = [evm.execute_transaction(tx) for tx in txs]
    assert all(r.success for r in receipts)
