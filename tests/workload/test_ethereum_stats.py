"""Ethereum statistics models (Table 1 / Fig. 2 substrate)."""

from repro.workload.ethereum_stats import (
    CONSENSUS_THROUGHPUT_TPS,
    PAPER_TABLE1,
    BlockIntervalModel,
    derive_table1,
    sct_execution_overhead,
)


class TestOverheadModel:
    def test_zero_scts_zero_overhead(self):
        assert sct_execution_overhead(0.0, 1000, 10) == 0.0

    def test_all_scts_full_overhead(self):
        assert sct_execution_overhead(1.0, 1000, 10) == 1.0

    def test_overhead_increases_with_share(self):
        low = sct_execution_overhead(0.3, 1000, 10)
        high = sct_execution_overhead(0.7, 1000, 10)
        assert high > low

    def test_paper_shape_with_papers_implied_cost_ratio(self):
        # Inverting the paper's own Table 1 rows gives an average
        # SCT:transfer execution-cost ratio of ~4.5 (e.g. 2017:
        # 0.37c/(0.37c+0.63)=0.7244 => c≈4.5); with that ratio the model
        # reproduces the whole overhead column.
        derived = derive_table1(sct_cost=4.5, transfer_cost=1)
        for year, (_, _, overhead) in derived.items():
            paper_overhead = PAPER_TABLE1[year][2]
            assert abs(overhead - paper_overhead) < 0.03

    def test_overhead_monotone_across_years(self):
        derived = derive_table1(sct_cost=50, transfer_cost=1)
        overheads = [derived[y][2] for y in sorted(derived)]
        assert overheads == sorted(overheads)


class TestBlockInterval:
    def test_mean_tracks_target(self):
        model = BlockIntervalModel(target_interval=13.0)
        assert abs(model.mean_interval(3000, seed=1) - 13.0) < 1.0

    def test_interval_stable_over_time(self):
        model = BlockIntervalModel()
        intervals = model.simulate(4000, seed=2)
        first = sum(intervals[:2000]) / 2000
        second = sum(intervals[2000:]) / 2000
        assert abs(first - second) < 1.0

    def test_custom_target(self):
        model = BlockIntervalModel(target_interval=2.0)
        assert abs(model.mean_interval(3000, seed=3) - 2.0) < 0.4


class TestConsensusData:
    def test_decentralized_slower_than_permissioned(self):
        # Fig. 2(b)'s point: higher-throughput consensus is less
        # decentralized.
        assert (
            CONSENSUS_THROUGHPUT_TPS["PoW (Bitcoin)"]
            < CONSENSUS_THROUGHPUT_TPS["DPoS (EOS)"]
            < CONSENSUS_THROUGHPUT_TPS["Raft (permissioned)"]
        )
