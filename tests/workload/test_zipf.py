"""Zipf sampler: distribution shape and head mass."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload.zipf import ZipfSampler


class TestDistribution:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(10)
        total = sum(sampler.probability(r) for r in range(10))
        assert abs(total - 1.0) < 1e-9

    def test_monotone_decreasing(self):
        sampler = ZipfSampler(20, exponent=1.0)
        probs = [sampler.probability(r) for r in range(20)]
        assert probs == sorted(probs, reverse=True)

    def test_head_mass_matches_paper_shape(self):
        # The paper: TOP5 contracts get ~37% of transactions. A Zipf over
        # a realistic contract universe concentrates comparable mass.
        sampler = ZipfSampler(100, exponent=1.0)
        head = sampler.head_mass(5)
        assert 0.3 < head < 0.6

    def test_single_item(self):
        sampler = ZipfSampler(1)
        assert sampler.sample(random.Random(0)) == 0
        assert sampler.head_mass(1) == 1.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_empirical_matches_analytic(self):
        sampler = ZipfSampler(8, exponent=1.0)
        rng = random.Random(42)
        counts = [0] * 8
        n = 20_000
        for _ in range(n):
            counts[sampler.sample(rng)] += 1
        for rank in range(8):
            assert abs(counts[rank] / n - sampler.probability(rank)) < 0.02

    @given(st.integers(1, 50), st.integers(0, 2**31))
    def test_samples_in_range(self, n, seed):
        sampler = ZipfSampler(n)
        rng = random.Random(seed)
        for _ in range(20):
            assert 0 <= sampler.sample(rng) < n

    def test_higher_exponent_more_skew(self):
        flat = ZipfSampler(20, exponent=0.5)
        steep = ZipfSampler(20, exponent=2.0)
        assert steep.head_mass(3) > flat.head_mass(3)
