"""Workload generation: success rates, knob fidelity, determinism."""

import random

import pytest

from repro.chain.dag import critical_path_length
from repro.evm import EVM
from repro.workload import (
    ActionLibrary,
    all_entry_function_calls,
    generate_block,
    generate_dependency_block,
    generate_erc20_block,
)
from repro.contracts.registry import TOP8_NAMES


def execute_all(deployment, transactions):
    state = deployment.state.copy()
    evm = EVM(state)
    receipts = []
    for tx in transactions:
        receipts.append(evm.execute_transaction(tx))
        state.clear_journal()
    return receipts


class TestGenerateBlock:
    def test_deterministic_by_seed(self, deployment):
        a = generate_block(deployment, num_transactions=20, seed=5)
        b = generate_block(deployment, num_transactions=20, seed=5)
        assert [t.hash() for t in a.transactions] == [
            t.hash() for t in b.transactions
        ]

    def test_different_seeds_differ(self, deployment):
        a = generate_block(deployment, num_transactions=20, seed=5)
        b = generate_block(deployment, num_transactions=20, seed=6)
        assert [t.hash() for t in a.transactions] != [
            t.hash() for t in b.transactions
        ]

    def test_transactions_succeed(self, deployment):
        block = generate_block(deployment, num_transactions=60, seed=1)
        receipts = execute_all(deployment, block.transactions)
        success = sum(1 for r in receipts if r.success)
        assert success == len(receipts)

    def test_zipf_head_concentration(self, deployment):
        block = generate_block(deployment, num_transactions=200, seed=2)
        # The paper observes TOP5 share ~37%; Zipf over 8 contracts gives
        # a strong head.
        assert block.top_k_share(5) > 0.5
        assert block.top_k_share(1) < 1.0

    def test_sct_fraction_mixes_plain_transfers(self, deployment):
        block = generate_block(deployment, num_transactions=100, seed=3,
                               sct_fraction=0.5)
        plain = [t for t in block.transactions
                 if t.tags.get("contract") is None]
        assert 30 <= len(plain) <= 70

    def test_dag_edges_well_formed(self, deployment):
        block = generate_block(deployment, num_transactions=30, seed=4)
        n = len(block.transactions)
        for i, j in block.dag_edges:
            assert 0 <= i < j < n


class TestDependencyBlock:
    @pytest.mark.parametrize("ratio", [0.0, 0.3, 0.6, 1.0])
    def test_ratio_tracks_target(self, ratio):
        block = generate_dependency_block(
            num_transactions=50, target_ratio=ratio, seed=7
        )
        assert abs(block.measured_dependency_ratio - ratio) < 0.15

    def test_zero_ratio_is_conflict_free(self):
        block = generate_dependency_block(
            num_transactions=40, target_ratio=0.0, seed=8
        )
        assert block.dag_edges == []

    def test_full_ratio_forms_long_chain(self):
        block = generate_dependency_block(
            num_transactions=40, target_ratio=1.0, seed=9
        )
        path = critical_path_length(
            len(block.transactions), block.dag_edges
        )
        assert path >= 35

    def test_chains_shorten_critical_path(self):
        single = generate_dependency_block(
            num_transactions=40, target_ratio=1.0, seed=9,
            num_conflict_chains=1,
        )
        quad = generate_dependency_block(
            num_transactions=40, target_ratio=1.0, seed=9,
            num_conflict_chains=4,
        )
        assert critical_path_length(
            40, quad.dag_edges
        ) < critical_path_length(40, single.dag_edges)

    def test_transactions_succeed(self):
        block = generate_dependency_block(
            num_transactions=30, target_ratio=0.5, seed=10
        )
        receipts = execute_all(block.deployment, block.transactions)
        assert all(r.success for r in receipts)

    def test_requires_enough_accounts(self, deployment):
        with pytest.raises(ValueError):
            generate_dependency_block(
                deployment, num_transactions=1000, target_ratio=0.0
            )


class TestERC20Block:
    @pytest.mark.parametrize("fraction", [0.0, 0.4, 1.0])
    def test_fraction_is_exact(self, deployment, fraction):
        block = generate_erc20_block(
            deployment, num_transactions=50, erc20_fraction=fraction,
            seed=11,
        )
        assert abs(block.erc20_fraction - fraction) < 0.021

    def test_transactions_succeed(self, deployment):
        block = generate_erc20_block(
            deployment, num_transactions=40, erc20_fraction=0.5, seed=12
        )
        receipts = execute_all(deployment, block.transactions)
        assert all(r.success for r in receipts)


class TestEntryFunctionCoverage:
    @pytest.mark.parametrize("name", TOP8_NAMES)
    def test_covers_every_function_and_succeeds(self, deployment, name):
        txs = all_entry_function_calls(deployment, name, seed=13)
        dispatch = deployment.contracts[name].storage_artifact
        covered = {tx.tags["signature"] for tx in txs}
        assert covered == {fn.signature for fn in dispatch.functions}
        receipts = execute_all(deployment, txs)
        assert all(r.success for r in receipts)


class TestActionLibrary:
    def test_every_contract_plannable(self, deployment):
        rng = random.Random(0)
        library = ActionLibrary(deployment, rng)
        for name in TOP8_NAMES + ["WETH9", "Ballot", "CryptoCat"]:
            call = library.plan(name)
            assert call.contract == name

    def test_unknown_contract_raises(self, deployment):
        library = ActionLibrary(deployment, random.Random(0))
        with pytest.raises(KeyError):
            library.plan("NoSuchContract")

    def test_to_transaction_tags(self, deployment):
        library = ActionLibrary(deployment, random.Random(0))
        tx = library.to_transaction(library.plan("Dai"))
        assert tx.tags["contract"] == "Dai"
        assert tx.tags["is_erc20"] is True
        assert tx.to == deployment.address_of("Dai")
