"""Paper Table 4 conformance: the main-memory data layout.

Table 4 enumerates the data a PU reads from main memory — block-header
fields, the fixed/variable transaction record, and the account state
record. These tests pin our structures to that layout.
"""

from repro.chain import Account, BlockHeader, Transaction
from repro.chain.block import BLOCKHASH_WINDOW


class TestBlockHeaderFields:
    def test_table4_block_header(self):
        header = BlockHeader(height=1, timestamp=2, coinbase=3,
                             difficulty=4, gas_limit=5)
        # Height, Timestamp, Coinbase, Difficulty, GasLimit.
        assert header.height == 1
        assert header.timestamp == 2
        assert header.coinbase == 3
        assert header.difficulty == 4
        assert header.gas_limit == 5

    def test_hash_window_is_256(self):
        # Table 4: Hash[256] — hashes of the first 256 blocks.
        assert BLOCKHASH_WINDOW == 256


class TestTransactionFields:
    def test_table4_transaction_record(self):
        tx = Transaction(sender=1, to=2, nonce=3, gas_limit=4,
                         gas_price=5, value=6, data=b"\x07")
        # Nonce, gaslimit, gasPrice, From, To, CallValue are fixed-length;
        # DataLen + Data[] are the variable part.
        assert tx.nonce == 3
        assert tx.gas_limit == 4
        assert tx.gas_price == 5
        assert tx.sender == 1
        assert tx.to == 2
        assert tx.value == 6
        assert len(tx.data) == 1

    def test_fixed_fields_have_fixed_wire_width(self):
        # Addresses serialize at a fixed 20 bytes so fixed-length fields
        # can be read in a single burst (Table 4's design point).
        short = Transaction(sender=1, to=2)
        long = Transaction(sender=(1 << 159) + 1, to=(1 << 159) + 2)
        from repro.chain import rlp

        def address_field_len(tx):
            item = rlp.decode(tx.to_rlp())
            return len(item[3]), len(item[4])

        assert address_field_len(short) == (20, 20)
        assert address_field_len(long) == (20, 20)


class TestStateRecord:
    def test_table4_account_record(self):
        account = Account(nonce=1, balance=2, code=b"\x60\x00",
                          storage={5: 6})
        # Address is the key; nonce, Balance, CodeLen, CodeHash, Code,
        # Storage are the record.
        assert account.nonce == 1
        assert account.balance == 2
        assert len(account.code) == 2  # CodeLen
        assert len(account.code_hash) == 32  # CodeHash
        assert account.storage[5] == 6

    def test_code_hash_of_empty_account(self):
        from repro.chain.account import EMPTY_CODE_HASH

        assert Account().code_hash == EMPTY_CODE_HASH
        assert not Account().is_contract
