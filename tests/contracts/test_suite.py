"""Semantics of the TOP8 contract suite against the genesis deployment."""

import pytest

from repro.chain import Transaction
from repro.contracts import registry
from repro.evm import EVM, abi


@pytest.fixture()
def world(deployment):
    """A mutable copy of the genesis deployment."""
    state = deployment.state.copy()
    return deployment, state


def call(state, sender, to, signature, *args, value=0):
    evm = EVM(state)
    receipt = evm.execute_transaction(
        Transaction(sender=sender, to=to, value=value,
                    data=abi.encode_call(signature, *args),
                    gas_limit=5_000_000)
    )
    state.clear_journal()
    return receipt


def balance_of(deployment, state, token_name, holder):
    deployed = deployment.contracts[token_name]
    slot = deployed.storage_artifact.mapping_value_slot("balances", holder)
    return state.get_storage(deployed.address, slot)


class TestTether:
    def test_transfer_charges_fee_to_owner(self, world):
        d, state = world
        alice, bob = d.accounts[0], d.accounts[1]
        before = balance_of(d, state, "TetherToken", bob)
        receipt = call(
            state, alice, registry.TETHER,
            "transfer(address,uint256)", bob, 10_000,
        )
        assert receipt.success
        # 10 basis points fee -> 10 units to the owner.
        assert balance_of(d, state, "TetherToken", bob) == before + 9_990
        assert balance_of(d, state, "TetherToken", d.admin) >= 10

    def test_transfer_insufficient_reverts(self, world):
        d, state = world
        poor = 0xFFFF17  # unfunded account
        state.set_balance(poor, 10**18)
        receipt = call(
            state, poor, registry.TETHER,
            "transfer(address,uint256)", d.accounts[0], 1,
        )
        assert not receipt.success

    def test_issue_owner_only(self, world):
        d, state = world
        receipt = call(state, d.accounts[0], registry.TETHER,
                       "issue(uint256)", 100)
        assert not receipt.success
        receipt = call(state, d.admin, registry.TETHER,
                       "issue(uint256)", 100)
        assert receipt.success

    def test_paused_blocks_transfers(self, world):
        d, state = world
        paused_slot = d.contracts["TetherToken"].artifact.scalar_slots[
            "paused"
        ]
        state.set_storage(registry.TETHER, paused_slot, 1)
        receipt = call(
            state, d.accounts[0], registry.TETHER,
            "transfer(address,uint256)", d.accounts[1], 1,
        )
        assert not receipt.success


class TestDai:
    def test_transfer_no_fee(self, world):
        d, state = world
        alice, bob = d.accounts[0], d.accounts[1]
        before = balance_of(d, state, "Dai", bob)
        receipt = call(state, alice, registry.DAI,
                       "transfer(address,uint256)", bob, 5_000)
        assert receipt.success
        assert balance_of(d, state, "Dai", bob) == before + 5_000

    def test_mint_requires_ward(self, world):
        d, state = world
        receipt = call(state, d.accounts[0], registry.DAI,
                       "mint(address,uint256)", d.accounts[1], 10)
        assert not receipt.success
        receipt = call(state, d.admin, registry.DAI,
                       "mint(address,uint256)", d.accounts[1], 10)
        assert receipt.success

    def test_burn_only_own_balance(self, world):
        d, state = world
        alice, bob = d.accounts[0], d.accounts[1]
        receipt = call(state, alice, registry.DAI,
                       "burn(address,uint256)", bob, 1)
        assert not receipt.success

    def test_transfer_from_spends_allowance(self, world):
        d, state = world
        owner, spender, dest = d.accounts[0], d.accounts[1], d.accounts[2]
        assert call(state, owner, registry.DAI,
                    "approve(address,uint256)", spender, 500).success
        receipt = call(state, spender, registry.DAI,
                       "transferFrom(address,address,uint256)",
                       owner, dest, 400)
        assert receipt.success
        receipt = call(state, spender, registry.DAI,
                       "transferFrom(address,address,uint256)",
                       owner, dest, 400)
        assert not receipt.success  # allowance exhausted


class TestLinkToken:
    def test_transfer_and_call_notifies_receiver(self, world):
        d, state = world
        alice = d.accounts[0]
        receipt = call(
            state, alice, registry.LINK_TOKEN,
            "transferAndCall(address,uint256,uint256)",
            registry.ORACLE_RECEIVER, 100, 42,
        )
        assert receipt.success
        receiver = d.contracts["OracleReceiver"]
        count_slot = receiver.artifact.scalar_slots["request_count"]
        assert state.get_storage(registry.ORACLE_RECEIVER, count_slot) == 1


class TestWETH:
    def test_deposit_withdraw_roundtrip(self, world):
        d, state = world
        alice = d.accounts[0]
        wrapped_before = balance_of(d, state, "WETH9", alice)
        assert call(state, alice, registry.WETH, "deposit()",
                    value=1_000).success
        assert balance_of(d, state, "WETH9", alice) == wrapped_before + 1_000
        native_before = state.get_balance(alice)
        receipt = call(state, alice, registry.WETH, "withdraw(uint256)",
                       500)
        assert receipt.success
        assert balance_of(d, state, "WETH9", alice) == wrapped_before + 500
        # Got the 500 native back, minus the gas fee (gas price 1).
        assert state.get_balance(alice) == (
            native_before + 500 - receipt.gas_used
        )

    def test_withdraw_beyond_balance_reverts(self, world):
        d, state = world
        receipt = call(state, d.accounts[0], registry.WETH,
                       "withdraw(uint256)", 10**30)
        assert not receipt.success


class TestRouters:
    def test_swap_moves_both_legs(self, world):
        d, state = world
        alice = d.accounts[0]
        a_before = balance_of(d, state, "TokenA", alice)
        b_before = balance_of(d, state, "TokenB", alice)
        receipt = call(
            state, alice, registry.UNISWAP_ROUTER,
            "swapExactTokensForTokens(uint256,uint256,address,address)",
            10_000, 1, registry.TOKEN_A, registry.TOKEN_B,
        )
        assert receipt.success
        out = abi.decode_uint(receipt.output)
        assert out > 0
        assert balance_of(d, state, "TokenA", alice) == a_before - 10_000
        assert balance_of(d, state, "TokenB", alice) == b_before + out

    def test_swap_respects_min_out(self, world):
        d, state = world
        receipt = call(
            state, d.accounts[0], registry.UNISWAP_ROUTER,
            "swapExactTokensForTokens(uint256,uint256,address,address)",
            10_000, 10**18, registry.TOKEN_A, registry.TOKEN_B,
        )
        assert not receipt.success

    def test_constant_product_math(self, world):
        d, state = world
        receipt = call(
            state, d.accounts[0], registry.UNISWAP_ROUTER,
            "getAmountOut(uint256,address,address)",
            10_000, registry.TOKEN_A, registry.TOKEN_B,
        )
        out = abi.decode_uint(receipt.output)
        reserve = 10**13
        fee_in = 10_000 * 997
        expected = fee_in * reserve // (reserve * 1000 + fee_in)
        assert out == expected

    def test_exact_output_single(self, world):
        d, state = world
        alice = d.accounts[0]
        b_before = balance_of(d, state, "TokenB", alice)
        receipt = call(
            state, alice, registry.SWAP_ROUTER,
            "exactOutputSingle(uint256,uint256,address,address)",
            5_000, 10**18, registry.TOKEN_A, registry.TOKEN_B,
        )
        assert receipt.success
        assert balance_of(d, state, "TokenB", alice) == b_before + 5_000


class TestMarketplace:
    def test_full_order_lifecycle(self, world):
        d, state = world
        seller, buyer = d.accounts[0], d.accounts[1]
        token_id = 999_999
        assert call(state, seller, registry.OPENSEA,
                    "mintToken(uint256)", token_id).success
        receipt = call(state, seller, registry.OPENSEA,
                       "createOrder(uint256,uint256)", token_id, 10**9)
        assert receipt.success
        order_id = abi.decode_uint(receipt.output)
        seller_native = state.get_balance(seller)
        assert call(state, buyer, registry.OPENSEA,
                    "atomicMatch(uint256)", order_id,
                    value=10**9).success
        # NFT changed hands; seller got paid (minus 2.5% protocol fee).
        owner = call(state, buyer, registry.OPENSEA,
                     "ownerOf(uint256)", token_id)
        assert abi.decode_uint(owner.output) == buyer
        assert state.get_balance(seller) > seller_native

    def test_match_cancelled_order_fails(self, world):
        d, state = world
        seller, buyer = d.accounts[0], d.accounts[1]
        token_id = 888_888
        call(state, seller, registry.OPENSEA, "mintToken(uint256)",
             token_id)
        receipt = call(state, seller, registry.OPENSEA,
                       "createOrder(uint256,uint256)", token_id, 100)
        order_id = abi.decode_uint(receipt.output)
        assert call(state, seller, registry.OPENSEA,
                    "cancelOrder(uint256)", order_id).success
        receipt = call(state, buyer, registry.OPENSEA,
                       "atomicMatch(uint256)", order_id, value=100)
        assert not receipt.success

    def test_create_order_requires_ownership(self, world):
        d, state = world
        receipt = call(state, d.accounts[0], registry.OPENSEA,
                       "createOrder(uint256,uint256)", 123456789, 100)
        assert not receipt.success


class TestProxies:
    def test_fiat_token_transfer_through_proxy(self, world):
        d, state = world
        alice, bob = d.accounts[0], d.accounts[1]
        before = balance_of(d, state, "FiatTokenProxy", bob)
        receipt = call(state, alice, registry.FIAT_TOKEN_PROXY,
                       "transfer(address,uint256)", bob, 777)
        assert receipt.success
        assert balance_of(d, state, "FiatTokenProxy", bob) == before + 777
        # Implementation's own storage is untouched.
        impl = d.contracts["FiatTokenV2"].artifact
        slot = impl.mapping_value_slot("balances", bob)
        assert state.get_storage(registry.FIAT_TOKEN_IMPL, slot) == 0

    def test_upgrade_to_admin_only(self, world):
        d, state = world
        receipt = call(state, d.accounts[0], registry.FIAT_TOKEN_PROXY,
                       "upgradeTo(address)", 0xDEAD)
        assert not receipt.success
        receipt = call(state, d.admin, registry.FIAT_TOKEN_PROXY,
                       "upgradeTo(address)", registry.FIAT_TOKEN_IMPL)
        assert receipt.success

    def test_gateway_deposit_withdraw(self, world):
        d, state = world
        alice = d.accounts[0]
        receipt = call(state, alice, registry.GATEWAY_PROXY,
                       "depositERC20(address,uint256)",
                       registry.TETHER, 5_000)
        assert receipt.success
        deposit_id = abi.decode_uint(receipt.output)
        assert deposit_id == 0
        # Gateway now holds the tokens.
        assert balance_of(d, state, "TetherToken", registry.GATEWAY_PROXY) > 0
        receipt = call(state, alice, registry.GATEWAY_PROXY,
                       "withdrawERC20(uint256,address,uint256)",
                       7, registry.DAI, 1_000)
        assert receipt.success
        # Replay of the same withdrawal id must fail.
        receipt = call(state, alice, registry.GATEWAY_PROXY,
                       "withdrawERC20(uint256,address,uint256)",
                       7, registry.DAI, 1_000)
        assert not receipt.success


class TestBallotAndCryptoCat:
    def test_vote_once(self, world):
        d, state = world
        voter = d.accounts[0]
        assert call(state, voter, registry.BALLOT, "vote(uint256)",
                    3).success
        receipt = call(state, voter, registry.BALLOT, "vote(uint256)", 3)
        assert not receipt.success  # already voted

    def test_winning_proposal_scan(self, world):
        d, state = world
        for i, voter in enumerate(d.accounts[:5]):
            call(state, voter, registry.BALLOT, "vote(uint256)",
                 7 if i < 4 else 2)
        receipt = call(state, d.accounts[10], registry.BALLOT,
                       "winningProposal()")
        assert abi.decode_uint(receipt.output) == 7

    def test_cryptocat_auction_lifecycle(self, world):
        d, state = world
        seller, buyer = d.accounts[0], d.accounts[1]
        receipt = call(state, seller, registry.CRYPTOCAT,
                       "createCat(uint256)", 0xFEED)
        cat_id = abi.decode_uint(receipt.output)
        assert call(state, seller, registry.CRYPTOCAT,
                    "createSaleAuction(uint256,uint256,uint256)",
                    cat_id, 10**10, 10**8).success
        assert call(state, buyer, registry.CRYPTOCAT, "bid(uint256)",
                    cat_id, value=10**10).success
        owner = call(state, buyer, registry.CRYPTOCAT,
                     "ownerOf(uint256)", cat_id)
        assert abi.decode_uint(owner.output) == buyer

    def test_bid_without_auction_fails(self, world):
        d, state = world
        receipt = call(state, d.accounts[0], registry.CRYPTOCAT,
                       "bid(uint256)", 10**7, value=10**12)
        assert not receipt.success
