"""The contract-language compiler: dispatch, control flow, storage
layout, events, external calls."""

import pytest

from repro.chain import Transaction, WorldState
from repro.contracts.lang import (
    Arg,
    Assign,
    Caller,
    Const,
    ContractDef,
    DelegateAll,
    Emit,
    ExtCall,
    FunctionDef,
    If,
    Local,
    MapStore,
    Require,
    Return,
    SLoad,
    SStore,
    Stop,
    While,
    compile_contract,
)
from repro.contracts.lang.compiler import CompileError
from repro.crypto import keccak256_int, selector
from repro.evm import EVM, abi

ALICE = 0xA1
ADDRESS = 0xC0


def deploy_and_call(definition, signature, *args, value=0, sender=ALICE,
                    state=None, address=ADDRESS):
    compiled = (
        definition
        if hasattr(definition, "bytecode")
        else compile_contract(definition)
    )
    if state is None:
        state = WorldState()
        state.set_balance(sender, 10**20)
    compiled.deploy(state, address)
    evm = EVM(state)
    receipt = evm.execute_transaction(
        Transaction(sender=sender, to=address, value=value,
                    data=abi.encode_call(signature, *args),
                    gas_limit=5_000_000)
    )
    return compiled, state, receipt


def single_fn(name, body, payable=False, scalars=None, mappings=None):
    return ContractDef(
        name="T",
        scalars=scalars or [],
        mappings=mappings or [],
        functions=[FunctionDef(name, body, payable=payable)],
    )


class TestDispatch:
    def test_selector_routes_to_function(self):
        definition = ContractDef(
            name="T",
            functions=[
                FunctionDef("one()", [Return(Const(1))]),
                FunctionDef("two()", [Return(Const(2))]),
            ],
        )
        _, _, r1 = deploy_and_call(definition, "one()")
        _, _, r2 = deploy_and_call(definition, "two()")
        assert abi.decode_uint(r1.output) == 1
        assert abi.decode_uint(r2.output) == 2

    def test_unknown_selector_reverts(self):
        definition = single_fn("f()", [Return(Const(1))])
        _, _, receipt = deploy_and_call(definition, "nope()")
        assert not receipt.success

    def test_nonpayable_rejects_value(self):
        definition = single_fn("f()", [Return(Const(1))])
        _, _, receipt = deploy_and_call(definition, "f()", value=5)
        assert not receipt.success

    def test_payable_accepts_value(self):
        from repro.contracts.lang import CallValue

        definition = single_fn("f()", [Return(CallValue())], payable=True)
        _, _, receipt = deploy_and_call(definition, "f()", value=5)
        assert abi.decode_uint(receipt.output) == 5

    def test_compiled_metadata(self):
        definition = single_fn("f(uint256,uint256)", [Stop()])
        compiled = compile_contract(definition)
        fn = compiled.function("f")
        assert fn.selector == selector("f(uint256,uint256)")
        assert fn.arg_count == 2
        assert compiled.labels[fn.entry_label] < len(compiled.bytecode)
        assert compiled.compare_chunk_end > 0


class TestStorageLayout:
    def test_scalar_slots_in_declaration_order(self):
        definition = ContractDef(
            name="T", scalars=["a", "b"], mappings=["m"],
            functions=[FunctionDef("f()", [
                SStore("a", Const(1)),
                SStore("b", Const(2)),
                MapStore("m", Const(5), Const(3)),
                Stop(),
            ])],
        )
        compiled, state, receipt = deploy_and_call(definition, "f()")
        assert receipt.success
        assert state.get_storage(ADDRESS, 0) == 1
        assert state.get_storage(ADDRESS, 1) == 2

    def test_mapping_uses_solidity_layout(self):
        definition = ContractDef(
            name="T", mappings=["m"],
            functions=[FunctionDef(
                "set(uint256,uint256)",
                [MapStore("m", Arg(0), Arg(1)), Stop()],
            )],
        )
        compiled, state, receipt = deploy_and_call(
            definition, "set(uint256,uint256)", 77, 99
        )
        assert receipt.success
        expected_slot = keccak256_int(
            (77).to_bytes(32, "big") + (0).to_bytes(32, "big")
        )
        assert state.get_storage(ADDRESS, expected_slot) == 99
        assert compiled.mapping_value_slot("m", 77) == expected_slot

    def test_nested_mapping_layout(self):
        from repro.contracts.lang import Map2Store

        definition = ContractDef(
            name="T", mappings=["m"],
            functions=[FunctionDef(
                "set(uint256,uint256,uint256)",
                [Map2Store("m", Arg(0), Arg(1), Arg(2)), Stop()],
            )],
        )
        compiled, state, receipt = deploy_and_call(
            definition, "set(uint256,uint256,uint256)", 7, 8, 55
        )
        assert receipt.success
        slot = compiled.mapping2_value_slot("m", 7, 8)
        assert state.get_storage(ADDRESS, slot) == 55

    def test_undefined_scalar_rejected(self):
        definition = single_fn("f()", [SStore("ghost", Const(1))])
        with pytest.raises(CompileError):
            compile_contract(definition)


class TestControlFlow:
    def test_require_passing(self):
        definition = single_fn(
            "f(uint256)", [Require(Arg(0).gt(5)), Return(Const(1))]
        )
        _, _, ok = deploy_and_call(definition, "f(uint256)", 6)
        assert ok.success
        _, _, bad = deploy_and_call(definition, "f(uint256)", 5)
        assert not bad.success

    def test_if_else(self):
        definition = single_fn(
            "f(uint256)",
            [
                If(
                    Arg(0).ge(10),
                    [Return(Const(100))],
                    [Return(Const(200))],
                )
            ],
        )
        _, _, hi = deploy_and_call(definition, "f(uint256)", 15)
        _, _, lo = deploy_and_call(definition, "f(uint256)", 5)
        assert abi.decode_uint(hi.output) == 100
        assert abi.decode_uint(lo.output) == 200

    def test_if_without_else(self):
        definition = single_fn(
            "f(uint256)",
            [
                Assign("x", Const(1)),
                If(Arg(0).gt(0), [Assign("x", Const(2))]),
                Return(Local("x")),
            ],
        )
        _, _, receipt = deploy_and_call(definition, "f(uint256)", 0)
        assert abi.decode_uint(receipt.output) == 1

    def test_while_loop_sums(self):
        definition = single_fn(
            "f(uint256)",
            [
                Assign("total", Const(0)),
                Assign("i", Const(0)),
                While(
                    Local("i").lt(Arg(0)),
                    [
                        Assign("total", Local("total") + Local("i")),
                        Assign("i", Local("i") + 1),
                    ],
                ),
                Return(Local("total")),
            ],
        )
        _, _, receipt = deploy_and_call(definition, "f(uint256)", 10)
        assert abi.decode_uint(receipt.output) == 45

    def test_implicit_stop_falls_through(self):
        definition = single_fn("f()", [Assign("x", Const(1))])
        _, _, receipt = deploy_and_call(definition, "f()")
        assert receipt.success
        assert receipt.output == b""


class TestExpressions:
    def test_arithmetic_chain(self):
        definition = single_fn(
            "f(uint256,uint256)",
            [Return((Arg(0) + Arg(1)) * 3 - 1)],
        )
        _, _, receipt = deploy_and_call(definition, "f(uint256,uint256)", 4, 5)
        assert abi.decode_uint(receipt.output) == 26

    def test_comparison_operators(self):
        definition = single_fn(
            "f(uint256,uint256)",
            [Return(Arg(0).le(Arg(1)))],
        )
        _, _, r1 = deploy_and_call(definition, "f(uint256,uint256)", 3, 3)
        _, _, r2 = deploy_and_call(definition, "f(uint256,uint256)", 4, 3)
        assert abi.decode_uint(r1.output) == 1
        assert abi.decode_uint(r2.output) == 0

    def test_caller_expression(self):
        definition = single_fn("f()", [Return(Caller())])
        _, _, receipt = deploy_and_call(definition, "f()")
        assert abi.decode_uint(receipt.output) == ALICE

    def test_sload_expression(self):
        definition = single_fn(
            "f()", [Return(SLoad("x") + 1)], scalars=["x"]
        )
        compiled = compile_contract(definition)
        state = WorldState()
        state.set_balance(ALICE, 10**20)
        state.set_storage(ADDRESS, 0, 41)
        _, _, receipt = deploy_and_call(
            compiled, "f()", state=state
        )
        assert abi.decode_uint(receipt.output) == 42


class TestEventsAndCalls:
    def test_emit_event(self):
        definition = single_fn(
            "f()",
            [Emit("Ping(uint256)", topics=[Const(7)], data=[Const(9)]),
             Stop()],
        )
        _, _, receipt = deploy_and_call(definition, "f()")
        assert len(receipt.logs) == 1
        log = receipt.logs[0]
        assert log.topics[0] == keccak256_int(b"Ping(uint256)")
        assert log.topics[1] == 7
        assert abi.decode_uint(log.data) == 9

    def test_ext_call_roundtrip(self):
        callee_def = single_fn("double(uint256)", [Return(Arg(0) * 2)])
        callee = compile_contract(callee_def)
        state = WorldState()
        state.set_balance(ALICE, 10**20)
        callee.deploy(state, 0xCA11)

        caller_def = single_fn(
            "f(uint256)",
            [
                ExtCall(
                    target=Const(0xCA11),
                    signature="double(uint256)",
                    args=[Arg(0)],
                    result="doubled",
                ),
                Return(Local("doubled") + 1),
            ],
        )
        _, _, receipt = deploy_and_call(
            caller_def, "f(uint256)", 21, state=state
        )
        assert abi.decode_uint(receipt.output) == 43

    def test_failed_ext_call_reverts_caller(self):
        callee = compile_contract(
            single_fn("boom()", [Require(Const(0))])
        )
        state = WorldState()
        state.set_balance(ALICE, 10**20)
        callee.deploy(state, 0xCA11)
        caller_def = single_fn(
            "f()",
            [
                SStore("x", Const(9)),
                ExtCall(target=Const(0xCA11), signature="boom()"),
                Stop(),
            ],
        )
        caller_def.scalars = ["x"]
        _, state, receipt = deploy_and_call(caller_def, "f()", state=state)
        assert not receipt.success
        assert state.get_storage(ADDRESS, 0) == 0

    def test_delegate_all_fallback(self):
        impl = compile_contract(
            single_fn("g()", [SStore("v", Const(123)), Return(Const(1))],
                      scalars=["v"])
        )
        state = WorldState()
        state.set_balance(ALICE, 10**20)
        impl.deploy(state, 0x1234)
        proxy_def = ContractDef(
            name="P", scalars=["v"],
            functions=[],
            fallback=[DelegateAll(Const(0x1234))],
        )
        _, state, receipt = deploy_and_call(proxy_def, "g()", state=state)
        assert receipt.success
        assert abi.decode_uint(receipt.output) == 1
        # Storage lands in the proxy, not the implementation.
        assert state.get_storage(ADDRESS, 0) == 123
        assert state.get_storage(0x1234, 0) == 0


class TestCompilerErrors:
    def test_too_many_locals(self):
        body = [Assign(f"v{i}", Const(i)) for i in range(40)]
        definition = single_fn("f()", body)
        with pytest.raises(CompileError):
            compile_contract(definition)

    def test_too_many_topics(self):
        definition = single_fn(
            "f()",
            [Emit("E(uint256,uint256,uint256,uint256)",
                  topics=[Const(1), Const(2), Const(3), Const(4)])],
        )
        with pytest.raises(CompileError):
            compile_contract(definition)

    def test_undefined_local_read(self):
        definition = single_fn("f()", [Return(Local("ghost"))])
        with pytest.raises(CompileError):
            compile_contract(definition)

    def test_undefined_mapping(self):
        from repro.contracts.lang import MapStore

        definition = single_fn(
            "f()", [MapStore("ghost", Const(1), Const(2))]
        )
        with pytest.raises(CompileError):
            compile_contract(definition)

    def test_unsupported_operator(self):
        from repro.contracts.lang import Bin

        definition = single_fn(
            "f()", [Return(Bin("<<", Const(1), Const(2)))]
        )
        with pytest.raises(CompileError):
            compile_contract(definition)


class TestArgumentMasking:
    def test_address_args_masked(self):
        # A dirty high-bit address argument is cleaned before use, like
        # solc's calldata sanitization.
        definition = single_fn(
            "f(address)", [Return(Arg(0))]
        )
        compiled = compile_contract(definition)
        state = WorldState()
        state.set_balance(ALICE, 10**20)
        compiled.deploy(state, ADDRESS)
        from repro.chain import Transaction
        from repro.crypto import selector

        dirty = ((0xFF << 160) | 0x1234).to_bytes(32, "big")
        evm = EVM(state)
        receipt = evm.execute_transaction(
            Transaction(sender=ALICE, to=ADDRESS,
                        data=selector("f(address)") + dirty,
                        gas_limit=1_000_000)
        )
        assert abi.decode_uint(receipt.output) == 0x1234

    def test_uint_args_not_masked(self):
        definition = single_fn("f(uint256)", [Return(Arg(0))])
        _, _, receipt = deploy_and_call(
            definition, "f(uint256)", (1 << 255) + 7
        )
        assert abi.decode_uint(receipt.output) == (1 << 255) + 7
