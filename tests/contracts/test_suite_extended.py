"""Semantics of the enriched contract surfaces: Tether administration,
WETH9 ERC20 paths, Ballot delegation, CryptoCat breeding."""

import pytest

from repro.chain import Transaction
from repro.contracts import registry
from repro.evm import EVM, abi


@pytest.fixture()
def world(deployment):
    return deployment, deployment.state.copy()


def call(state, sender, to, signature, *args, value=0):
    evm = EVM(state)
    receipt = evm.execute_transaction(
        Transaction(sender=sender, to=to, value=value,
                    data=abi.encode_call(signature, *args),
                    gas_limit=5_000_000)
    )
    state.clear_journal()
    return receipt


def token_balance(d, state, name, holder):
    deployed = d.contracts[name]
    slot = deployed.storage_artifact.mapping_value_slot("balances", holder)
    return state.get_storage(deployed.address, slot)


class TestTetherAdministration:
    def test_blacklist_blocks_transfers(self, world):
        d, state = world
        victim = d.accounts[5]
        assert call(state, d.admin, registry.TETHER,
                    "addBlackList(address)", victim).success
        receipt = call(state, victim, registry.TETHER,
                       "transfer(address,uint256)", d.accounts[0], 1)
        assert not receipt.success
        assert call(state, d.admin, registry.TETHER,
                    "removeBlackList(address)", victim).success
        receipt = call(state, victim, registry.TETHER,
                       "transfer(address,uint256)", d.accounts[0], 1)
        assert receipt.success

    def test_destroy_black_funds(self, world):
        d, state = world
        victim = d.accounts[6]
        before_supply = state.get_storage(
            registry.TETHER,
            d.contracts["TetherToken"].artifact.scalar_slots[
                "total_supply"
            ],
        )
        victim_funds = token_balance(d, state, "TetherToken", victim)
        assert victim_funds > 0
        call(state, d.admin, registry.TETHER,
             "addBlackList(address)", victim)
        assert call(state, d.admin, registry.TETHER,
                    "destroyBlackFunds(address)", victim).success
        assert token_balance(d, state, "TetherToken", victim) == 0
        after_supply = state.get_storage(
            registry.TETHER,
            d.contracts["TetherToken"].artifact.scalar_slots[
                "total_supply"
            ],
        )
        assert after_supply == before_supply - victim_funds

    def test_destroy_requires_blacklisting(self, world):
        d, state = world
        receipt = call(state, d.admin, registry.TETHER,
                       "destroyBlackFunds(address)", d.accounts[7])
        assert not receipt.success

    def test_pause_unpause_cycle(self, world):
        d, state = world
        assert call(state, d.admin, registry.TETHER, "pause()").success
        assert not call(state, d.accounts[0], registry.TETHER,
                        "transfer(address,uint256)",
                        d.accounts[1], 1).success
        assert call(state, d.admin, registry.TETHER, "unpause()").success
        assert call(state, d.accounts[0], registry.TETHER,
                    "transfer(address,uint256)",
                    d.accounts[1], 1).success

    def test_redeem_burns_owner_balance(self, world):
        d, state = world
        call(state, d.admin, registry.TETHER, "issue(uint256)", 1000)
        owner_before = token_balance(d, state, "TetherToken", d.admin)
        assert call(state, d.admin, registry.TETHER,
                    "redeem(uint256)", 400).success
        assert token_balance(
            d, state, "TetherToken", d.admin
        ) == owner_before - 400

    def test_ownership_transfer_gates_admin(self, world):
        d, state = world
        new_owner = d.accounts[8]
        assert call(state, d.admin, registry.TETHER,
                    "transferOwnership(address)", new_owner).success
        # Old owner lost admin powers; new owner has them.
        assert not call(state, d.admin, registry.TETHER,
                        "pause()").success
        assert call(state, new_owner, registry.TETHER, "pause()").success

    def test_admin_functions_gated(self, world):
        d, state = world
        outsider = d.accounts[9]
        for signature, args in (
            ("addBlackList(address)", (d.accounts[1],)),
            ("redeem(uint256)", (1,)),
            ("pause()", ()),
        ):
            assert not call(state, outsider, registry.TETHER,
                            signature, *args).success


class TestWETHExtendedSurface:
    def test_owner_transfer_from_skips_allowance(self, world):
        d, state = world
        alice, bob = d.accounts[0], d.accounts[1]
        # Alice moving her own wrapped funds needs no allowance.
        receipt = call(state, alice, registry.WETH,
                       "transferFrom(address,address,uint256)",
                       alice, bob, 100)
        assert receipt.success

    def test_third_party_needs_allowance(self, world):
        d, state = world
        owner, spender, dest = d.accounts[2], d.accounts[10], d.accounts[3]
        receipt = call(state, spender, registry.WETH,
                       "transferFrom(address,address,uint256)",
                       owner, dest, 100)
        assert not receipt.success
        assert call(state, owner, registry.WETH,
                    "approve(address,uint256)", spender, 100).success
        assert call(state, spender, registry.WETH,
                    "transferFrom(address,address,uint256)",
                    owner, dest, 100).success

    def test_total_supply_is_native_escrow(self, world):
        d, state = world
        escrow = state.get_balance(registry.WETH)
        receipt = call(state, d.accounts[0], registry.WETH,
                       "totalSupply()")
        assert abi.decode_uint(receipt.output) == escrow
        call(state, d.accounts[0], registry.WETH, "deposit()", value=500)
        receipt = call(state, d.accounts[0], registry.WETH,
                       "totalSupply()")
        assert abi.decode_uint(receipt.output) == escrow + 500


class TestBallotDelegation:
    def test_delegate_to_voted_adds_to_choice(self, world):
        d, state = world
        voter, delegate = d.accounts[0], d.accounts[1]
        assert call(state, delegate, registry.BALLOT,
                    "vote(uint256)", 4).success
        assert call(state, voter, registry.BALLOT,
                    "delegate(address)", delegate).success
        counts_slot = d.contracts["Ballot"].artifact.mapping_value_slot(
            "vote_counts", 4
        )
        assert state.get_storage(registry.BALLOT, counts_slot) == 2

    def test_delegate_to_unvoted_moves_weight(self, world):
        d, state = world
        voter, delegate = d.accounts[2], d.accounts[3]
        assert call(state, voter, registry.BALLOT,
                    "delegate(address)", delegate).success
        weight_slot = d.contracts["Ballot"].artifact.mapping_value_slot(
            "voter_weight", delegate
        )
        assert state.get_storage(registry.BALLOT, weight_slot) == 2
        # When the delegate votes, both weights count.
        assert call(state, delegate, registry.BALLOT,
                    "vote(uint256)", 6).success
        counts_slot = d.contracts["Ballot"].artifact.mapping_value_slot(
            "vote_counts", 6
        )
        assert state.get_storage(registry.BALLOT, counts_slot) == 2

    def test_delegation_chain_followed(self, world):
        d, state = world
        a, b, c = d.accounts[4], d.accounts[5], d.accounts[6]
        assert call(state, b, registry.BALLOT,
                    "delegate(address)", c).success
        assert call(state, a, registry.BALLOT,
                    "delegate(address)", b).success
        # A's weight must land with C, the end of the chain.
        weight_slot = d.contracts["Ballot"].artifact.mapping_value_slot(
            "voter_weight", c
        )
        assert state.get_storage(registry.BALLOT, weight_slot) == 3

    def test_self_delegation_rejected(self, world):
        d, state = world
        voter = d.accounts[7]
        assert not call(state, voter, registry.BALLOT,
                        "delegate(address)", voter).success

    def test_voted_cannot_delegate(self, world):
        d, state = world
        voter = d.accounts[8]
        call(state, voter, registry.BALLOT, "vote(uint256)", 1)
        assert not call(state, voter, registry.BALLOT,
                        "delegate(address)", d.accounts[9]).success


class TestCryptoCatBreeding:
    def make_parents(self, d, state, owner):
        matron = abi.decode_uint(
            call(state, owner, registry.CRYPTOCAT, "createCat(uint256)",
                 0xAAAA_BBBB_CCCC_DDDD).output
        )
        sire = abi.decode_uint(
            call(state, owner, registry.CRYPTOCAT, "createCat(uint256)",
                 0x1111_2222_3333_4444).output
        )
        return matron, sire

    def test_give_birth_creates_owned_kitten(self, world):
        d, state = world
        owner = d.accounts[0]
        matron, sire = self.make_parents(d, state, owner)
        receipt = call(state, owner, registry.CRYPTOCAT,
                       "giveBirth(uint256,uint256)", matron, sire)
        assert receipt.success
        kitten = abi.decode_uint(receipt.output)
        owner_receipt = call(state, owner, registry.CRYPTOCAT,
                             "ownerOf(uint256)", kitten)
        assert abi.decode_uint(owner_receipt.output) == owner

    def test_child_genes_are_mixed(self, world):
        d, state = world
        owner = d.accounts[1]
        matron, sire = self.make_parents(d, state, owner)
        receipt = call(state, owner, registry.CRYPTOCAT,
                       "giveBirth(uint256,uint256)", matron, sire)
        kitten = abi.decode_uint(receipt.output)
        genes = abi.decode_uint(
            call(state, owner, registry.CRYPTOCAT,
                 "getGenes(uint256)", kitten).output
        )
        matron_genes = abi.decode_uint(
            call(state, owner, registry.CRYPTOCAT,
                 "getGenes(uint256)", matron).output
        )
        sire_genes = abi.decode_uint(
            call(state, owner, registry.CRYPTOCAT,
                 "getGenes(uint256)", sire).output
        )
        assert genes not in (0, matron_genes, sire_genes)
        # Every 32-bit segment comes from a parent or a mutation; at
        # least one must match a parent outright.
        matches = 0
        for i in range(8):
            segment = (genes >> (32 * i)) & 0xFFFFFFFF
            if segment in (
                (matron_genes >> (32 * i)) & 0xFFFFFFFF,
                (sire_genes >> (32 * i)) & 0xFFFFFFFF,
            ):
                matches += 1
        assert matches >= 4

    def test_breeding_requires_matron_ownership(self, world):
        d, state = world
        owner, stranger = d.accounts[2], d.accounts[3]
        matron, sire = self.make_parents(d, state, owner)
        receipt = call(state, stranger, registry.CRYPTOCAT,
                       "giveBirth(uint256,uint256)", matron, sire)
        assert not receipt.success

    def test_cannot_breed_cat_with_itself(self, world):
        d, state = world
        owner = d.accounts[4]
        matron, _ = self.make_parents(d, state, owner)
        receipt = call(state, owner, registry.CRYPTOCAT,
                       "giveBirth(uint256,uint256)", matron, matron)
        assert not receipt.success

    def test_cancel_auction_returns_cat(self, world):
        d, state = world
        owner = d.accounts[5]
        cat, _ = self.make_parents(d, state, owner)
        assert call(state, owner, registry.CRYPTOCAT,
                    "createSaleAuction(uint256,uint256,uint256)",
                    cat, 100, 10).success
        assert call(state, owner, registry.CRYPTOCAT,
                    "cancelAuction(uint256)", cat).success
        receipt = call(state, owner, registry.CRYPTOCAT,
                       "ownerOf(uint256)", cat)
        assert abi.decode_uint(receipt.output) == owner

    def test_collectible_transfer(self, world):
        d, state = world
        owner, friend = d.accounts[6], d.accounts[7]
        cat, _ = self.make_parents(d, state, owner)
        assert call(state, owner, registry.CRYPTOCAT,
                    "transfer(address,uint256)", friend, cat).success
        receipt = call(state, friend, registry.CRYPTOCAT,
                       "ownerOf(uint256)", cat)
        assert abi.decode_uint(receipt.output) == friend
