"""Deployment/registry invariants."""

from repro.contracts import TOP8_NAMES, compile_suite, registry


class TestSuiteCompilation:
    def test_all_contracts_compile(self):
        artifacts = compile_suite()
        # TOP8 + WETH9/Ballot/CryptoCat/... + the three dynamic-key
        # archetypes (PathRouter, AirdropDistributor, RouterProxy).
        assert len(artifacts) == 19
        for artifact in artifacts.values():
            assert len(artifact.bytecode) > 0

    def test_top8_matches_paper_order(self):
        assert TOP8_NAMES == [
            "TetherToken", "UniswapV2Router02", "FiatTokenProxy",
            "OpenSea", "LinkToken", "SwapRouter", "Dai",
            "MainchainGatewayProxy",
        ]

    def test_selectors_unique_within_contract(self):
        for artifact in compile_suite().values():
            selectors = artifact.selectors()
            assert len(set(selectors)) == len(selectors)


class TestGenesis:
    def test_contracts_deployed(self, deployment):
        for name in TOP8_NAMES:
            deployed = deployment.contracts[name]
            assert deployment.state.get_code(deployed.address) != b""

    def test_accounts_funded(self, deployment):
        for account in deployment.accounts:
            assert deployment.state.get_balance(account) > 0
            assert deployment.token_balance("Dai", account) > 0

    def test_proxy_wiring(self, deployment):
        impl_slot = deployment.contracts[
            "FiatTokenProxy"
        ].artifact.scalar_slots["implementation"]
        assert (
            deployment.state.get_storage(
                registry.FIAT_TOKEN_PROXY, impl_slot
            )
            == registry.FIAT_TOKEN_IMPL
        )

    def test_proxy_storage_artifact_is_impl(self, deployment):
        proxy = deployment.contracts["FiatTokenProxy"]
        assert proxy.storage_artifact.name == "FiatTokenV2"

    def test_router_reserves_seeded(self, deployment):
        router = deployment.contracts["UniswapV2Router02"]
        slot = router.artifact.mapping2_value_slot(
            "reserves", registry.TOKEN_A, registry.TOKEN_B
        )
        assert deployment.state.get_storage(
            registry.UNISWAP_ROUTER, slot
        ) == 10**13

    def test_erc20_classification(self, deployment):
        assert deployment.contracts["TetherToken"].is_erc20
        assert deployment.contracts["Dai"].is_erc20
        assert not deployment.contracts["UniswapV2Router02"].is_erc20
        assert not deployment.contracts["OpenSea"].is_erc20

    def test_by_address_lookup(self, deployment):
        assert deployment.by_address(registry.TETHER).name == "TetherToken"
        assert deployment.by_address(0xDEADBEEF) is None

    def test_unique_addresses(self, deployment):
        addresses = [c.address for c in deployment.contracts.values()]
        assert len(set(addresses)) == len(addresses)

    def test_bytecode_sizes_realistic(self, deployment):
        # Paper Table 2 has WETH9 ~1.6KB, Tether ~5.7KB, CryptoCat 12.5KB;
        # our archetypes should land within an order of magnitude.
        for name in TOP8_NAMES:
            size = len(
                deployment.state.get_code(deployment.address_of(name))
            )
            assert 100 < size < 20_000
