"""Assembler: syntax, label resolution, roundtrip with the disassembler."""

import pytest

from repro.contracts.asm import AssemblyError, assemble, label_addresses
from repro.contracts.disasm import disassemble
from repro.evm.code import decode


class TestBasics:
    def test_single_ops(self):
        assert assemble("STOP") == b"\x00"
        assert assemble("ADD\nMUL") == b"\x01\x02"

    def test_comments_and_blank_lines(self):
        source = """
        ; a comment
        ADD  ; trailing
        // c++ style

        MUL
        """
        assert assemble(source) == b"\x01\x02"

    def test_push_auto_width(self):
        assert assemble("PUSH 0") == b"\x60\x00"
        assert assemble("PUSH 255") == b"\x60\xff"
        assert assemble("PUSH 256") == b"\x61\x01\x00"

    def test_push_explicit_width(self):
        assert assemble("PUSH4 0xcc80f6f3") == b"\x63\xcc\x80\xf6\xf3"
        assert assemble("PUSH4 1") == b"\x63\x00\x00\x00\x01"

    def test_push32(self):
        code = assemble(f"PUSH32 {(1 << 255):#x}")
        assert code[0] == 0x7F
        assert len(code) == 33

    def test_hex_and_decimal_operands(self):
        assert assemble("PUSH 0x10") == assemble("PUSH 16")


class TestLabels:
    def test_label_emits_jumpdest(self):
        code = assemble("here:\nSTOP")
        assert code == b"\x5b\x00"

    def test_label_reference_resolves(self):
        code = assemble("PUSH @end\nJUMP\nend:\nSTOP")
        # PUSH2 0x0004, JUMP, JUMPDEST, STOP
        assert code == b"\x61\x00\x04\x56\x5b\x00"

    def test_forward_and_backward_references(self):
        source = "top:\nPUSH @top\nPUSH @bottom\nJUMP\nbottom:\nSTOP"
        addresses = label_addresses(source)
        assert addresses["top"] == 0
        code = assemble(source)
        assert code[addresses["bottom"]] == 0x5B

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\na:\nSTOP")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("PUSH @nowhere")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("FROBNICATE")

    def test_push_without_operand(self):
        with pytest.raises(AssemblyError):
            assemble("PUSH")

    def test_operand_on_plain_op(self):
        with pytest.raises(AssemblyError):
            assemble("ADD 1")

    def test_operand_too_wide(self):
        with pytest.raises(AssemblyError):
            assemble("PUSH1 0x100")

    def test_bad_push_width(self):
        with pytest.raises(AssemblyError):
            assemble("PUSH33 0x0")

    def test_bad_integer(self):
        with pytest.raises(AssemblyError):
            assemble("PUSH zz")


class TestRoundtrip:
    def test_disassemble_readable(self):
        listing = disassemble(assemble("PUSH 5\nADD\nSTOP"))
        assert "PUSH1 0x5" in listing
        assert "ADD" in listing

    def test_reassemble_disassembly(self):
        source = "PUSH 1\nPUSH 2\nADD\nlab:\nPUSH @lab\nJUMP"
        code = assemble(source)
        # Disassembly mnemonics re-decode to the same instruction stream.
        names = [i.op.name for i in decode(code)]
        listing = disassemble(code)
        for name in names:
            assert name in listing
