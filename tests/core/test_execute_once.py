"""The execute-once block pipeline through the accelerated validator.

The validator's DAG-verification pass is a full speculative execution of
the block; its artifacts are handed to the MTPU, which replays fresh
ones instead of re-running the EVM. The headline invariant: on a happy
ERC-20 block every transaction executes functionally exactly once
(``evm.tx_executions == len(block.transactions)``), and the replay path
never changes what the block commits — even under injected PU faults.
"""

import random

import pytest

from repro.chain.node import Node
from repro.chain.receipt import receipts_root
from repro.core.validator import AcceleratedValidator
from repro.faults import PU_DEAD, PU_STALL, FaultInjector, FaultPlan, PUFault
from repro.obs import use_registry
from repro.workload import ActionLibrary


@pytest.fixture()
def validator(deployment):
    # hotspot_top_k=0 keeps idle-slice profiling (its own EVM runs) out
    # of the counters under test.
    return AcceleratedValidator(
        state=deployment.state.copy(), num_pus=4, deployment=deployment,
        hotspot_top_k=0,
    )


def feed_erc20(validator, deployment, count, seed=21):
    library = ActionLibrary(deployment, random.Random(seed))
    for _ in range(count):
        validator.hear(library.to_transaction(library.plan("Dai")))


class TestExecuteOnce:
    def test_erc20_block_executes_each_tx_once(self, validator,
                                               deployment):
        feed_erc20(validator, deployment, 12)
        block = validator.propose_block()
        n = len(block.transactions)
        with use_registry() as registry:
            outcome = validator.validate(block)
            counters = registry.counters_flat()
        assert outcome.committed
        # One functional execution per transaction: the speculative
        # DAG-verification pass. The MTPU stage replayed every artifact.
        assert counters["evm.tx_executions"] == n
        assert counters["evm.tx_reuses"] == n
        # Fallback re-execution is counted separately and stayed silent.
        assert counters.get("evm.tx_reexecutions", 0) == 0
        assert outcome.report.sequential_fallbacks == 0
        assert outcome.report.artifact_reexecutions == 0

    def test_replay_commits_same_state_as_plain_node(self, validator,
                                                     deployment):
        feed_erc20(validator, deployment, 16, seed=22)
        block = validator.propose_block()
        reference = Node(state=deployment.state.copy())
        ref_receipts = reference.execute_block(block)
        outcome = validator.validate(
            block, claimed_root=receipts_root(ref_receipts)
        )
        assert outcome.verified is True
        assert (
            validator.state.state_digest()
            == reference.state.state_digest()
        )

    def test_stale_artifact_reexecutes_functionally(self, validator,
                                                    deployment):
        # Poison the artifacts' recorded read values after discovery:
        # the MTPU must detect staleness and fall back to real execution,
        # still landing on the sequential result.
        feed_erc20(validator, deployment, 8, seed=23)
        block = validator.propose_block()
        reference = Node(state=deployment.state.copy())
        ref_receipts = reference.execute_block(block)

        from repro.chain.dag import discover_access_sets
        from repro.core.mtpu import MTPUExecutor
        from repro.core.scheduler import run_sequential

        state = deployment.state.copy()
        context = validator.node.block_context(block.header.height)
        artifacts = discover_access_sets(
            block.transactions, state, context, trace=True
        )
        by_hash = {a.tx.hash(): a for a in artifacts}
        # Corrupt every artifact's read values: none may replay.
        for artifact in artifacts:
            for key in artifact.read_values:
                artifact.read_values[key] = object()
        mtpu = MTPUExecutor(state, block=context, artifacts=by_hash)
        schedule = run_sequential(mtpu, block.transactions)
        assert mtpu.artifact_reuses == 0
        assert mtpu.artifact_reexecutions == len(block.transactions)
        assert receipts_root(
            schedule.receipts_in_block_order(block.transactions)
        ) == receipts_root(ref_receipts)
        assert state.state_digest() == reference.state.state_digest()


class TestReplayUnderPUFaults:
    @pytest.mark.parametrize("kind", [PU_DEAD, PU_STALL])
    def test_digest_matches_sequential_under_pu_fault(
        self, deployment, kind
    ):
        injector = FaultInjector(FaultPlan(
            seed=5,
            pu_faults=(PUFault(
                pu_id=1, kind=kind, at_cycle=50,
                stall_cycles=2_000 if kind == PU_STALL else 0,
            ),),
        ))
        validator = AcceleratedValidator(
            state=deployment.state.copy(), num_pus=3,
            deployment=deployment, hotspot_top_k=0,
            fault_injector=injector,
        )
        feed_erc20(validator, deployment, 14, seed=24)
        block = validator.propose_block()
        reference = Node(state=deployment.state.copy())
        ref_receipts = reference.execute_block(block)
        outcome = validator.validate(
            block, claimed_root=receipts_root(ref_receipts)
        )
        assert outcome.verified is True
        assert outcome.report.sequential_fallbacks == 0
        assert (
            validator.state.state_digest()
            == reference.state.state_digest()
        )
