"""The hotspot optimizer end to end: plans shrink cycles, never change
results."""

import pytest

from repro.chain.receipt import receipts_root
from repro.core.hotspot import HotspotOptimizer
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.workload import all_entry_function_calls


@pytest.fixture(scope="module")
def optimizer(deployment):
    optimizer = HotspotOptimizer(deployment.state)
    for name in ("TetherToken", "Dai"):
        samples = all_entry_function_calls(deployment, name, seed=31)
        optimizer.optimize_contract(deployment.address_of(name), samples)
    return optimizer


@pytest.fixture(scope="module")
def workload(deployment):
    return all_entry_function_calls(
        deployment, "TetherToken", seed=32, per_function=3
    )


def run_all(deployment, txs, hotspot=None, **config_kwargs):
    executor = MTPUExecutor(
        deployment.state.copy(), num_pus=1,
        pu_config=PUConfig(**config_kwargs),
        hotspot_optimizer=hotspot,
    )
    pu = executor.pus[0]
    executions = [executor.execute_on(pu, tx) for tx in txs]
    return executor, executions


class TestContractTable:
    def test_profiles_keyed_by_selector(self, deployment, optimizer):
        address = deployment.address_of("TetherToken")
        artifact = deployment.contracts["TetherToken"].artifact
        for fn in artifact.functions:
            profile = optimizer.contract_table.get(address, fn.selector)
            assert profile is not None, fn.signature
            assert profile.samples >= 1

    def test_on_path_fractions_small(self, deployment, optimizer):
        # Paper: Tether.transfer loads 8.2% after chunking+pre-execution.
        address = deployment.address_of("TetherToken")
        fractions = [
            p.on_path_fraction
            for p in optimizer.contract_table.entries()
            if p.address == address
        ]
        assert fractions
        assert min(fractions) < 0.25
        assert all(f <= 1.0 for f in fractions)

    def test_profiling_does_not_mutate_state(self, deployment):
        digest = deployment.state.state_digest()
        optimizer = HotspotOptimizer(deployment.state)
        samples = all_entry_function_calls(deployment, "Dai", seed=33)
        optimizer.optimize_contract(
            deployment.address_of("Dai"), samples
        )
        assert deployment.state.state_digest() == digest


class TestPlans:
    def test_plan_for_profiled_contract(self, deployment, optimizer,
                                        workload):
        plan = optimizer.plan_for(workload[0])
        assert plan is not None
        assert plan.on_path_fraction < 1.0
        assert plan.eliminated_pcs

    def test_no_plan_for_unprofiled(self, deployment, optimizer):
        txs = all_entry_function_calls(deployment, "OpenSea", seed=34)
        assert optimizer.plan_for(txs[0]) is None

    def test_skip_indices_cover_preexec_prefix(self, deployment,
                                               optimizer, workload):
        from repro.evm import EVM, Tracer

        tx = workload[0]
        plan = optimizer.plan_for(tx)
        state = deployment.state.copy()
        tracer = Tracer()
        EVM(state, tracer=tracer).execute_transaction(tx)
        skip = plan.skip_indices(tracer.steps)
        if plan.preexecute:
            assert 0 in skip  # the dispatch prefix is skipped

    def test_disabled_features_shrink_plan(self, deployment, workload):
        optimizer = HotspotOptimizer(
            deployment.state,
            enable_elimination=False,
            enable_prefetch=False,
            enable_chunk_loading=False,
        )
        samples = all_entry_function_calls(
            deployment, "TetherToken", seed=35
        )
        optimizer.optimize_contract(
            deployment.address_of("TetherToken"), samples
        )
        plan = optimizer.plan_for(workload[0])
        assert plan.eliminated_pcs == frozenset()
        assert plan.prefetch_pcs == frozenset()
        assert plan.on_path_fraction == 1.0


class TestEndToEnd:
    def test_hotspot_reduces_cycles(self, deployment, optimizer,
                                    workload):
        _, plain = run_all(deployment, workload)
        _, optimized = run_all(deployment, workload, hotspot=optimizer)
        assert sum(e.cycles for e in optimized) < sum(
            e.cycles for e in plain
        )

    def test_hotspot_preserves_receipts(self, deployment, optimizer,
                                        workload):
        ex_plain, plain = run_all(deployment, workload)
        ex_hot, optimized = run_all(deployment, workload,
                                    hotspot=optimizer)
        assert receipts_root([e.receipt for e in plain]) == receipts_root(
            [e.receipt for e in optimized]
        )
        assert ex_plain.state.state_digest() == ex_hot.state.state_digest()

    def test_hotspot_applied_flag(self, deployment, optimizer, workload):
        _, optimized = run_all(deployment, workload, hotspot=optimizer)
        assert all(e.hotspot_applied for e in optimized)

    def test_unprofiled_contract_unaffected(self, deployment, optimizer):
        txs = all_entry_function_calls(deployment, "WETH9", seed=36)
        _, executions = run_all(deployment, txs, hotspot=optimizer)
        assert not any(e.hotspot_applied for e in executions)

    def test_known_fraction_zero_disables_preexecution(self, deployment,
                                                       workload):
        optimizer = HotspotOptimizer(deployment.state, known_fraction=0.0)
        samples = all_entry_function_calls(
            deployment, "TetherToken", seed=37
        )
        optimizer.optimize_contract(
            deployment.address_of("TetherToken"), samples
        )
        plan = optimizer.plan_for(workload[0])
        assert plan.preexecute is False
