"""Dynamic hotspot tracking (paper section 2.2.3)."""

from repro.chain import Transaction
from repro.core.hotspot.tracker import HotspotTracker
from repro.crypto import selector


def txs_for(address, count):
    data = selector("f()")
    return [
        Transaction(sender=100 + i, to=address, nonce=i, data=data)
        for i in range(count)
    ]


class TestScoring:
    def test_observation_accumulates(self):
        tracker = HotspotTracker()
        tracker.observe_block(txs_for(0xA, 5))
        assert tracker.score(0xA) == 5.0

    def test_decay_across_blocks(self):
        tracker = HotspotTracker(decay=0.5)
        tracker.observe_block(txs_for(0xA, 8))
        tracker.observe_block([])
        assert tracker.score(0xA) == 4.0

    def test_plain_transfers_ignored(self):
        tracker = HotspotTracker()
        tracker.observe_block(
            [Transaction(sender=1, to=0xB, nonce=0)]  # no selector
        )
        assert tracker.score(0xB) == 0.0

    def test_creations_ignored(self):
        tracker = HotspotTracker()
        tracker.observe_block(
            [Transaction(sender=1, to=None, data=b"\x01" * 8)]
        )
        assert tracker.scores == {}


class TestHotspotSelection:
    def test_top_k_ordering(self):
        tracker = HotspotTracker(min_score=0.5)
        tracker.observe_block(
            txs_for(0xA, 10) + txs_for(0xB, 5) + txs_for(0xC, 1)
        )
        assert tracker.current_hotspots(2) == [0xA, 0xB]
        assert tracker.is_hotspot(0xA)
        assert not tracker.is_hotspot(0xC, k=2)

    def test_min_score_gate(self):
        tracker = HotspotTracker(min_score=3.0)
        tracker.observe_block(txs_for(0xA, 2))
        assert tracker.current_hotspots() == []

    def test_cryptocat_effect(self):
        """A once-hot contract falls out as traffic moves elsewhere."""
        tracker = HotspotTracker(decay=0.6, min_score=1.0)
        tracker.observe_block(txs_for(0xCA7, 20))  # CryptoCat at its peak
        assert tracker.current_hotspots(1) == [0xCA7]
        for _ in range(8):  # fashion moves on to DeFi
            tracker.observe_block(txs_for(0xDEF1, 10))
        assert tracker.current_hotspots(1) == [0xDEF1]
        assert not tracker.is_hotspot(0xCA7, k=1)

    def test_head_share_statistic(self):
        tracker = HotspotTracker()
        tracker.observe_block(txs_for(0xA, 37) + txs_for(0xB, 63))
        assert abs(tracker.head_share(1) - 0.63) < 1e-9
        assert tracker.head_share(2) == 1.0
        assert HotspotTracker().head_share() == 0.0

    def test_stale_scores_garbage_collected(self):
        tracker = HotspotTracker(decay=0.01)
        tracker.observe_block(txs_for(0xA, 1))
        for _ in range(5):
            tracker.observe_block([])
        assert 0xA not in tracker.scores
