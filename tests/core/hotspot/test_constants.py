"""Constant-instruction detection and prefetch analysis backtracking."""

from repro.core.hotspot.constants import analyze_trace, frame_step_groups
from tests.conftest import CONTRACT, run_code


def analyzed(state, source, **kwargs):
    receipt, tracer = run_code(state, source, **kwargs)
    assert receipt.success, receipt.error
    return tracer.steps, analyze_trace(tracer.steps)


class TestConstPropagation:
    def test_push_is_const(self, state):
        steps, result = analyzed(state, "PUSH 5\nPOP\nSTOP")
        assert steps[0].index in result.const_steps
        assert (CONTRACT, 0) in result.eliminable_pcs

    def test_arithmetic_over_consts_is_const(self, state):
        steps, result = analyzed(state, "PUSH 2\nPUSH 3\nADD\nPOP\nSTOP")
        add = [s for s in steps if s.op.name == "ADD"][0]
        assert add.index in result.const_steps

    def test_caller_is_fixed_not_const(self, state):
        steps, result = analyzed(state, "CALLER\nPOP\nSTOP")
        caller = steps[0]
        assert caller.index in result.fixed_steps
        assert caller.index not in result.const_steps
        # Fixed-but-not-const values are not eliminated (the Constants
        # Table holds compile-time constants only).
        assert (CONTRACT, 0) not in result.eliminable_pcs

    def test_mix_of_const_and_fixed_is_fixed(self, state):
        steps, result = analyzed(state, "CALLER\nPUSH 1\nADD\nPOP\nSTOP")
        add = [s for s in steps if s.op.name == "ADD"][0]
        assert add.index in result.fixed_steps
        assert add.index not in result.const_steps

    def test_sload_result_is_not_fixed(self, state):
        steps, result = analyzed(
            state, "PUSH 0\nSLOAD\nPUSH 1\nADD\nPOP\nSTOP"
        )
        add = [s for s in steps if s.op.name == "ADD"][0]
        assert add.index not in result.fixed_steps

    def test_dup_of_const_is_const_and_eliminable(self, state):
        steps, result = analyzed(state, "PUSH 7\nDUP1\nPOP\nPOP\nSTOP")
        dup = [s for s in steps if s.op.name == "DUP1"][0]
        assert dup.index in result.const_steps
        assert (CONTRACT, dup.pc) in result.eliminable_pcs

    def test_constants_table_collects_values(self, state):
        _, result = analyzed(state, "PUSH 123\nPOP\nSTOP")
        assert 123 in result.constants


class TestMemoryTracking:
    def test_sha3_of_const_memory_is_const(self, state):
        # The mapping-slot idiom: keccak(const ‖ const).
        source = (
            "PUSH 5\nPUSH 0\nMSTORE\n"
            "PUSH 1\nPUSH 32\nMSTORE\n"
            "PUSH 64\nPUSH 0\nSHA3\nPOP\nSTOP"
        )
        steps, result = analyzed(state, source)
        sha = [s for s in steps if s.op.name == "SHA3"][0]
        assert sha.index in result.const_steps

    def test_sha3_of_caller_memory_is_fixed_only(self, state):
        # Paper Fig. 11: hash of a constant and the caller's address —
        # fixed (prefetchable) but not a compile-time constant.
        source = (
            "CALLER\nPUSH 0\nMSTORE\n"
            "PUSH 1\nPUSH 32\nMSTORE\n"
            "PUSH 64\nPUSH 0\nSHA3\nPOP\nSTOP"
        )
        steps, result = analyzed(state, source)
        sha = [s for s in steps if s.op.name == "SHA3"][0]
        assert sha.index in result.fixed_steps
        assert sha.index not in result.const_steps

    def test_mload_of_tracked_word(self, state):
        source = (
            "PUSH 9\nPUSH 0\nMSTORE\nPUSH 0\nMLOAD\nPOP\nSTOP"
        )
        steps, result = analyzed(state, source)
        mload = [s for s in steps if s.op.name == "MLOAD"][0]
        assert mload.index in result.const_steps

    def test_overwritten_word_loses_fixedness(self, state):
        source = (
            "PUSH 9\nPUSH 0\nMSTORE\n"
            "PUSH 0\nSLOAD\nPUSH 0\nMSTORE\n"  # overwrite with state value
            "PUSH 0\nMLOAD\nPOP\nSTOP"
        )
        steps, result = analyzed(state, source)
        mload = [s for s in steps if s.op.name == "MLOAD"][-1]
        assert mload.index not in result.fixed_steps


class TestPrefetch:
    def test_const_key_sload_prefetchable(self, state):
        steps, result = analyzed(state, "PUSH 3\nSLOAD\nPOP\nSTOP")
        sload = [s for s in steps if s.op.name == "SLOAD"][0]
        assert (CONTRACT, sload.pc) in result.prefetch_pcs

    def test_caller_derived_key_prefetchable(self, state):
        # The paper's three-steps-back example: SLOAD key = hash of a
        # constant and CALLER.
        source = (
            "CALLER\nPUSH 0\nMSTORE\n"
            "PUSH 1\nPUSH 32\nMSTORE\n"
            "PUSH 64\nPUSH 0\nSHA3\nSLOAD\nPOP\nSTOP"
        )
        steps, result = analyzed(state, source)
        sload = [s for s in steps if s.op.name == "SLOAD"][0]
        assert (CONTRACT, sload.pc) in result.prefetch_pcs

    def test_state_derived_key_not_prefetchable(self, state):
        source = "PUSH 0\nSLOAD\nSLOAD\nPOP\nSTOP"
        steps, result = analyzed(state, source)
        second = [s for s in steps if s.op.name == "SLOAD"][1]
        assert (CONTRACT, second.pc) not in result.prefetch_pcs
        assert (CONTRACT, second.pc) in result.unprefetchable_pcs

    def test_balance_of_fixed_address_prefetchable(self, state):
        steps, result = analyzed(
            state, "PUSH 0x1234\nBALANCE\nPOP\nSTOP"
        )
        balance = [s for s in steps if s.op.name == "BALANCE"][0]
        assert (CONTRACT, balance.pc) in result.prefetch_pcs


class TestFrameGrouping:
    def test_single_frame(self, state):
        receipt, tracer = run_code(state, "PUSH 1\nPOP\nSTOP")
        groups = frame_step_groups(tracer.steps)
        assert len(groups) == 1
        assert groups[0] == [0, 1, 2]

    def test_nested_frames_partition_indices(self, state):
        from repro.contracts.asm import assemble

        state.set_code(0xCA11, assemble("PUSH 1\nPOP\nSTOP"))
        source = (
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\n"
            "PUSH 0xCA11\nGAS\nCALL\nPOP\nSTOP"
        )
        receipt, tracer = run_code(state, source)
        groups = frame_step_groups(tracer.steps)
        assert len(groups) == 2
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(len(tracer.steps)))
        # Child group steps are all at depth 1.
        child = groups[1]
        assert all(tracer.steps[i].depth == 1 for i in child)
