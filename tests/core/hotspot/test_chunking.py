"""Bytecode chunking: Compare/Check boundaries, on-path fractions."""

import random

from repro.core.hotspot.chunking import (
    find_chunks,
    on_path_fraction,
    visited_code_bytes,
)
from repro.evm import EVM, Tracer
from repro.workload import ActionLibrary


def traced(deployment, contract, signature=None, seed=0):
    library = ActionLibrary(deployment, random.Random(seed))
    if signature is None:
        call = library.plan(contract)
    else:
        call = library.plan_signature(contract, signature)
    tx = library.to_transaction(call)
    state = deployment.state.copy()
    tracer = Tracer()
    receipt = EVM(state, tracer=tracer).execute_transaction(tx)
    assert receipt.success, receipt.error
    return tx, tracer.steps


class TestFindChunks:
    def test_nonpayable_has_compare_and_check(self, deployment):
        tx, steps = traced(
            deployment, "Dai", "transfer(address,uint256)"
        )
        spans = find_chunks(steps, tx.to)
        assert spans.compare_end >= 0
        assert spans.check_end > spans.compare_end
        # The compare chunk ends at a taken dispatch JUMPI.
        dispatch = steps[spans.compare_end]
        assert dispatch.op.name == "JUMPI"
        assert dispatch.extra["taken"]
        # The check chunk ends at the taken CALLVALUE-guard JUMPI.
        guard = steps[spans.check_end]
        assert guard.op.name == "JUMPI"
        assert guard.extra["taken"]
        assert any(
            steps[i].op.name == "CALLVALUE"
            for i in range(spans.compare_end, spans.check_end)
        )

    def test_payable_has_no_check_chunk(self, deployment):
        tx, steps = traced(deployment, "WETH9", "deposit()")
        spans = find_chunks(steps, tx.to)
        assert spans.compare_end >= 0
        assert spans.check_end == -1
        assert spans.preexec_end == spans.compare_end

    def test_proxy_fallback_compare_only(self, deployment):
        # A FiatTokenProxy call misses the proxy's own ladder and falls
        # through; only the ladder's (not-taken) JUMPIs are pre-executable.
        tx, steps = traced(
            deployment, "FiatTokenProxy", "transfer(address,uint256)"
        )
        spans = find_chunks(steps, tx.to)
        assert spans.check_end == -1
        if spans.compare_end >= 0:
            dispatch = steps[spans.compare_end]
            assert dispatch.op.name == "JUMPI"
            assert not dispatch.extra["taken"]

    def test_preexec_prefix_is_attribute_only(self, deployment):
        # Every pre-executed step must depend only on transaction
        # attributes — no storage or external state reads.
        forbidden = {"SLOAD", "SSTORE", "BALANCE", "CALL", "DELEGATECALL"}
        for contract in ("Dai", "TetherToken", "OpenSea", "CryptoCat"):
            tx, steps = traced(deployment, contract, seed=5)
            spans = find_chunks(steps, tx.to)
            for step in steps[: spans.preexec_end + 1]:
                assert step.op.name not in forbidden

    def test_empty_trace(self):
        spans = find_chunks([], 0x1)
        assert spans.compare_end == -1
        assert spans.preexec_end == -1


class TestOnPathFraction:
    def test_visited_bytes_per_code(self, deployment):
        tx, steps = traced(deployment, "Dai", "transfer(address,uint256)")
        visited = visited_code_bytes(steps, tx.to)
        assert visited
        assert all(isinstance(pc, int) for pc in visited)

    def test_fraction_bounds(self):
        sizes = {0: 2, 2: 2, 4: 1}
        assert on_path_fraction(set(), sizes, 100) == 0.0
        assert on_path_fraction({0, 2, 4}, sizes, 5) == 1.0
        assert on_path_fraction({0}, sizes, 10) == 0.2

    def test_single_function_loads_small_fraction(self, deployment):
        # Paper: Tether.transfer loads only 8.2% after chunking; a single
        # entry function of a multi-function contract should load well
        # under half the bytecode.
        tx, steps = traced(
            deployment, "TetherToken", "transfer(address,uint256)"
        )
        code = deployment.state.get_code(tx.to)
        from repro.evm.code import decode

        sizes = {i.pc: i.size for i in decode(code)}
        fraction = on_path_fraction(
            visited_code_bytes(steps, tx.to), sizes, len(code)
        )
        assert fraction < 0.5
