"""The accelerated validator: full lifecycle with dynamic hotspots."""

import random

import pytest

from repro.chain.node import Node
from repro.chain.receipt import receipts_root
from repro.core.validator import AcceleratedValidator
from repro.workload import ActionLibrary


@pytest.fixture()
def validator(deployment):
    return AcceleratedValidator(
        state=deployment.state.copy(), num_pus=4, deployment=deployment
    )


def feed(validator, deployment, contracts, count, seed=0):
    library = ActionLibrary(deployment, random.Random(seed))
    for i in range(count):
        contract = contracts[i % len(contracts)]
        validator.hear(library.to_transaction(library.plan(contract)))


class TestLifecycle:
    def test_block_executes_and_chain_advances(self, validator,
                                               deployment):
        feed(validator, deployment, ["Dai"], 12)
        block = validator.propose_block()
        outcome = validator.execute_block(block)
        assert len(validator.chain) == 1
        assert all(r.success for r in outcome.receipts)
        assert outcome.makespan_cycles > 0

    def test_matches_plain_node(self, validator, deployment):
        feed(validator, deployment, ["Dai", "TetherToken"], 16, seed=3)
        block = validator.propose_block()

        reference_node = Node(state=deployment.state.copy())
        reference = reference_node.execute_block(block)
        outcome = validator.execute_block(
            block, claimed_root=receipts_root(reference)
        )
        assert outcome.verified is True
        assert (
            validator.state.state_digest()
            == reference_node.state.state_digest()
        )

    def test_wrong_claimed_root_rejected(self, validator, deployment):
        feed(validator, deployment, ["Dai"], 6, seed=4)
        block = validator.propose_block()
        outcome = validator.execute_block(block, claimed_root=b"\x00" * 32)
        assert outcome.verified is False

    def test_no_claimed_root_unverified(self, validator, deployment):
        feed(validator, deployment, ["Dai"], 4, seed=5)
        outcome = validator.execute_block(validator.propose_block())
        assert outcome.verified is None


class TestDynamicHotspots:
    def test_hotspots_emerge_from_traffic(self, validator, deployment):
        # Block 1: heavy Dai traffic -> Dai becomes a hotspot and gets
        # optimized in the following idle slice.
        feed(validator, deployment, ["Dai"], 16, seed=6)
        outcome = validator.execute_block(validator.propose_block())
        assert deployment.address_of("Dai") in outcome.hotspots_optimized

        # Block 2: Dai transactions now carry hotspot plans.
        feed(validator, deployment, ["Dai"], 10, seed=7)
        outcome2 = validator.execute_block(validator.propose_block())
        applied = [
            e for e in outcome2.schedule.executions if e.hotspot_applied
        ]
        assert applied

    def test_hotspot_reoptimization_is_idempotent(self, validator,
                                                  deployment):
        feed(validator, deployment, ["Dai"], 12, seed=8)
        first = validator.execute_block(validator.propose_block())
        feed(validator, deployment, ["Dai"], 12, seed=9)
        second = validator.execute_block(validator.propose_block())
        # Already-optimized contracts are not re-profiled.
        assert deployment.address_of("Dai") in first.hotspots_optimized
        assert (
            deployment.address_of("Dai")
            not in second.hotspots_optimized
        )

    def test_traffic_shift_retargets_optimizer(self, validator,
                                               deployment):
        feed(validator, deployment, ["Dai"], 12, seed=10)
        validator.execute_block(validator.propose_block())
        # Traffic moves to WETH9 for several blocks.
        optimized = []
        for i in range(3):
            feed(validator, deployment, ["WETH9"], 12, seed=11 + i)
            outcome = validator.execute_block(validator.propose_block())
            optimized.extend(outcome.hotspots_optimized)
        assert deployment.address_of("WETH9") in optimized

    def test_hotspot_acceleration_measurable(self, deployment):
        # The same traffic on a hotspot-optimizing validator beats a
        # cold one (second block, after the optimizer has warmed up).
        results = {}
        for label, top_k in (("hot", 8), ("cold", 0)):
            validator = AcceleratedValidator(
                state=deployment.state.copy(), num_pus=4,
                deployment=deployment, hotspot_top_k=top_k,
            )
            feed(validator, deployment, ["Dai"], 14, seed=20)
            validator.execute_block(validator.propose_block())
            feed(validator, deployment, ["Dai"], 14, seed=21)
            outcome = validator.execute_block(validator.propose_block())
            results[label] = outcome.makespan_cycles
        assert results["hot"] < results["cold"]


class TestMempoolIntegration:
    def test_unheard_transactions_not_preexecuted(self, validator,
                                                  deployment):
        """Transactions arriving only inside the block (never
        disseminated) skip pre-execution but still execute correctly."""
        feed(validator, deployment, ["Dai"], 10, seed=30)
        block = validator.propose_block()
        # Warm up the optimizer on Dai first.
        validator.execute_block(block)

        # Build a block containing a transaction this node never heard.
        library = ActionLibrary(deployment, random.Random(31))
        stranger_tx = library.to_transaction(library.plan("Dai"))
        feed(validator, deployment, ["Dai"], 5, seed=32)
        block2 = validator.propose_block()
        block2.transactions.append(stranger_tx)
        # Re-derive the DAG for the amended block.
        from repro.chain.dag import (
            build_dag_edges,
            discover_access_sets,
            transitive_reduction,
        )

        access = discover_access_sets(
            block2.transactions, validator.state
        )
        block2.dag_edges = transitive_reduction(
            len(block2.transactions),
            build_dag_edges(block2.transactions, access),
        )
        outcome = validator.execute_block(block2)
        assert all(r.success for r in outcome.receipts)
        by_hash = {
            e.tx.hash(): e for e in outcome.schedule.executions
        }
        stranger = by_hash[stranger_tx.hash()]
        heard = [
            e for e in outcome.schedule.executions
            if e.tx.hash() != stranger_tx.hash() and e.hotspot_applied
        ]
        # The stranger got a plan (it is a hotspot contract) but its plan
        # could not pre-execute; heard transactions could.
        assert heard
        plan = validator.optimizer.plan_for(stranger_tx)
        assert plan is not None
        assert plan.preexecute is False
