"""Scheduling Table and Transaction Table bit-level behavior."""

import pytest

from repro.core.scheduler import SchedulingTable, TransactionTable


class TestSchedulingTable:
    def test_blocked_mask_ors_dependencies(self):
        table = SchedulingTable(num_pus=3, window_size=5)
        table.set_masks(0, 0b00100, 0)
        table.set_masks(1, 0b00001, 0)
        assert table.blocked_mask() == 0b00101

    def test_exclude_pu(self):
        # Paper Fig. 6: PU0 computes allowed candidates from the OTHER
        # PUs' De entries.
        table = SchedulingTable(num_pus=2, window_size=5)
        table.set_masks(0, 0b11100, 0)
        table.set_masks(1, 0b00001, 0)
        assert table.blocked_mask(exclude_pu=0) == 0b00001

    def test_invalid_entry_reads_as_zero(self):
        # The dirty-read guard: invalid dependencies are all-zeros.
        table = SchedulingTable(num_pus=1, window_size=5)
        table.set_masks(0, 0b11111, 0)
        table.invalidate(0)
        assert table.blocked_mask() == 0

    def test_redundancy_mask_per_pu(self):
        table = SchedulingTable(num_pus=2, window_size=5)
        table.set_masks(0, 0, 0b10100)
        assert table.redundancy_mask(0) == 0b10100
        assert table.redundancy_mask(1) == 0


class TestTransactionTable:
    def test_write_and_lock(self):
        table = TransactionTable(window_size=4)
        table.write(0, tx_index=7, value=3)
        assert table.occupied_mask() == 0b0001
        assert table.lock(0) == 7
        # Locked slots are unavailable to other PUs.
        assert table.occupied_mask() == 0

    def test_write_to_occupied_slot_rejected(self):
        table = TransactionTable(window_size=2)
        table.write(0, 1, 0)
        with pytest.raises(ValueError):
            table.write(0, 2, 0)

    def test_double_lock_rejected(self):
        table = TransactionTable(window_size=2)
        table.write(0, 1, 0)
        table.lock(0)
        with pytest.raises(ValueError):
            table.lock(0)

    def test_release_frees_slot(self):
        table = TransactionTable(window_size=2)
        table.write(0, 1, 0)
        table.lock(0)
        table.release(0)
        assert table.free_slots() == [0, 1]
        table.write(0, 9, 1)  # reusable

    def test_slot_of(self):
        table = TransactionTable(window_size=3)
        table.write(1, tx_index=42, value=0)
        assert table.slot_of(42) == 1
        assert table.slot_of(43) is None

    def test_lock_empty_rejected(self):
        table = TransactionTable(window_size=2)
        with pytest.raises(ValueError):
            table.lock(0)
