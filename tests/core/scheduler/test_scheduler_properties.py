"""Property-based scheduler tests over random DAGs.

These drive the spatio-temporal scheduler directly (no executor) with a
randomized completion order, asserting the structural guarantees the
paper's consistency argument rests on: every transaction runs exactly
once, no transaction starts before its predecessors complete, and
conflicting transactions execute in block order.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Transaction
from repro.core.scheduler import CompositeDAG, SpatialTemporalScheduler


@st.composite
def random_dags(draw):
    n = draw(st.integers(2, 24))
    contracts = draw(
        st.lists(st.integers(1, 5), min_size=n, max_size=n)
    )
    all_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(all_edges), unique=True, max_size=2 * n)
    ) if all_edges else []
    num_pus = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 10_000))
    return contracts, edges, num_pus, seed


def drive(contracts, edges, num_pus, seed):
    """Run the scheduler with random completion interleaving; returns
    (start_order, completion_order)."""
    txs = [Transaction(sender=100 + i, to=c, nonce=i)
           for i, c in enumerate(contracts)]
    dag = CompositeDAG(txs, list(edges))
    scheduler = SpatialTemporalScheduler(dag, num_pus=num_pus)
    rng = random.Random(seed)
    running: dict[int, int] = {}
    starts: list[int] = []
    completions: list[int] = []
    stall_guard = 0
    while not dag.done:
        progressed = False
        for pu in range(num_pus):
            if pu in running:
                continue
            outcome = scheduler.select(pu)
            if outcome is not None:
                # Structural check: no predecessor may be outstanding.
                for pred in dag.predecessors[outcome.tx_index]:
                    assert pred in dag.completed, (
                        f"tx {outcome.tx_index} started before "
                        f"predecessor {pred} completed"
                    )
                scheduler.on_start(pu, outcome)
                running[pu] = outcome.tx_index
                starts.append(outcome.tx_index)
                progressed = True
        if running:
            pu = rng.choice(list(running))
            tx_index = running.pop(pu)
            completions.append(tx_index)
            scheduler.on_complete(pu, tx_index)
        elif not progressed:
            stall_guard += 1
            assert stall_guard < 3, "scheduler deadlocked"
    return starts, completions


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_dags())
    def test_every_transaction_runs_exactly_once(self, dag_spec):
        contracts, edges, num_pus, seed = dag_spec
        starts, completions = drive(contracts, edges, num_pus, seed)
        assert sorted(starts) == list(range(len(contracts)))
        assert sorted(completions) == list(range(len(contracts)))

    @settings(max_examples=60, deadline=None)
    @given(random_dags())
    def test_dependencies_complete_before_dependents_start(self, dag_spec):
        contracts, edges, num_pus, seed = dag_spec
        starts, completions = drive(contracts, edges, num_pus, seed)
        completed_at = {tx: i for i, tx in enumerate(completions)}
        started_at = {tx: i for i, tx in enumerate(starts)}
        # For every edge (i, j): i completes before j starts. Start order
        # and completion order interleave, so compare via the driver's
        # own in-loop assertion plus the weaker global ordering here.
        for i, j in edges:
            assert completed_at[i] < completed_at[j] or (
                started_at[j] > started_at[i]
            )

    @settings(max_examples=30, deadline=None)
    @given(random_dags())
    def test_single_pu_fully_serializes(self, dag_spec):
        contracts, edges, _num_pus, seed = dag_spec
        starts, completions = drive(contracts, edges, 1, seed)
        # One PU: start order equals completion order.
        assert starts == completions

    @settings(max_examples=30, deadline=None)
    @given(random_dags())
    def test_redundancy_counter_consistent(self, dag_spec):
        contracts, edges, num_pus, seed = dag_spec
        txs = [Transaction(sender=100 + i, to=c, nonce=i)
               for i, c in enumerate(contracts)]
        dag = CompositeDAG(txs, list(edges))
        scheduler = SpatialTemporalScheduler(dag, num_pus=num_pus)
        drive(contracts, edges, num_pus, seed)
        # A fresh run's stats are bounded sanely.
        assert 0 <= scheduler.redundancy_hit_ratio <= 1.0
