"""The spatio-temporal scheduler's selection rules (paper Fig. 6)."""

import pytest

from repro.chain import Transaction
from repro.core.scheduler import CompositeDAG, SpatialTemporalScheduler


def make_scheduler(contracts, edges=(), num_pus=2, window=None):
    txs = [Transaction(sender=100 + i, to=c, nonce=i)
           for i, c in enumerate(contracts)]
    dag = CompositeDAG(txs, list(edges))
    return SpatialTemporalScheduler(dag, num_pus=num_pus,
                                    window_size=window)


class TestSelection:
    def test_selects_from_window(self):
        scheduler = make_scheduler([1, 2, 3])
        outcome = scheduler.select(0)
        assert outcome is not None
        assert outcome.tx_index in (0, 1, 2)

    def test_dependency_on_running_excluded(self):
        # T1 depends on T0; while T0 runs on PU0, PU1 must not take T1.
        scheduler = make_scheduler([1, 1, 2], edges=[(0, 1)])
        first = scheduler.select(0)
        assert first.tx_index == 0  # highest V (contract 1 appears twice)
        scheduler.on_start(0, first)
        second = scheduler.select(1)
        assert second.tx_index == 2  # T1 blocked by running T0

    def test_redundancy_preferred_after_completion(self):
        # After PU0 runs a contract-7 tx, it prefers another contract-7 tx
        # over a higher-V alternative.
        scheduler = make_scheduler([7, 8, 8, 8, 7])
        first = scheduler.select(0)
        scheduler.on_start(0, first)
        scheduler.on_complete(0, first.tx_index)
        second = scheduler.select(0)
        assert second.redundant
        first_contract = scheduler.dag.contract_of(first.tx_index)
        assert scheduler.dag.contract_of(second.tx_index) == first_contract

    def test_max_value_without_redundancy(self):
        # Fresh PU with no history picks the largest V.
        scheduler = make_scheduler([5, 6, 6, 6])
        outcome = scheduler.select(0)
        assert scheduler.dag.contract_of(outcome.tx_index) == 6

    def test_no_candidates_returns_none(self):
        scheduler = make_scheduler([1, 2], edges=[(0, 1)])
        first = scheduler.select(0)
        scheduler.on_start(0, first)
        # PU1 sees only T1, which depends on the running T0.
        second = scheduler.select(1)
        assert second is None

    def test_selected_tx_locked_from_others(self):
        scheduler = make_scheduler([1, 1])
        a = scheduler.select(0)
        b = scheduler.select(1)
        assert a.tx_index != b.tx_index


class TestLifecycle:
    def test_full_drain(self):
        scheduler = make_scheduler([1, 2, 3, 1, 2], edges=[(0, 3), (1, 4)])
        executed = []
        running = {}
        while not scheduler.dag.done:
            progressed = False
            for pu in range(2):
                if pu in running:
                    continue
                outcome = scheduler.select(pu)
                if outcome:
                    scheduler.on_start(pu, outcome)
                    running[pu] = outcome.tx_index
                    progressed = True
            if running:
                pu, tx = next(iter(running.items()))
                del running[pu]
                executed.append(tx)
                scheduler.on_complete(pu, tx)
            elif not progressed:
                pytest.fail("scheduler deadlocked")
        assert sorted(executed) == [0, 1, 2, 3, 4]

    def test_execution_respects_dag_order(self):
        scheduler = make_scheduler([1, 1, 1], edges=[(0, 1), (1, 2)])
        order = []
        while not scheduler.dag.done:
            outcome = scheduler.select(0)
            assert outcome is not None
            scheduler.on_start(0, outcome)
            scheduler.on_complete(0, outcome.tx_index)
            order.append(outcome.tx_index)
        assert order == [0, 1, 2]

    def test_redundancy_hit_ratio_tracked(self):
        scheduler = make_scheduler([7] * 6)
        for _ in range(6):
            outcome = scheduler.select(0)
            scheduler.on_start(0, outcome)
            scheduler.on_complete(0, outcome.tx_index)
        assert scheduler.redundancy_hit_ratio > 0.5
