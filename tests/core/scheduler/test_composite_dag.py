"""Composite DAG: readiness, admission, redundancy values."""

import pytest

from repro.chain import Transaction
from repro.core.scheduler import CompositeDAG


def make_dag(contracts, edges=()):
    txs = [Transaction(sender=100 + i, to=c, nonce=i)
           for i, c in enumerate(contracts)]
    return CompositeDAG(txs, list(edges))


class TestConstruction:
    def test_rejects_backward_edges(self):
        with pytest.raises(ValueError):
            make_dag([1, 1], edges=[(1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_dag([1], edges=[(0, 5)])

    def test_redundancy_values(self):
        # Paper Fig. 6: V = future invocations of the same contract.
        dag = make_dag([7, 7, 7, 8])
        assert dag.value(0) == 2
        assert dag.value(3) == 0

    def test_values_decay_as_txs_start(self):
        dag = make_dag([7, 7, 7])
        dag.start(0)
        assert dag.value(1) == 1


class TestReadiness:
    def test_roots_ready(self):
        dag = make_dag([1, 2, 3], edges=[(0, 2)])
        assert dag.ready_transactions() == [0, 1]

    def test_completion_unblocks(self):
        dag = make_dag([1, 2], edges=[(0, 1)])
        dag.start(0)
        assert not dag.is_ready(1)
        dag.complete(0)
        assert dag.is_ready(1)

    def test_admissible_while_dep_running(self):
        # Window admission: deps may be running (paper's De mechanism
        # handles the rest).
        dag = make_dag([1, 2], edges=[(0, 1)])
        assert not dag.is_admissible(1)
        dag.start(0)
        assert dag.is_admissible(1)
        assert dag.blocked_by_running(1, {0})
        dag.complete(0)
        assert not dag.blocked_by_running(1, set())

    def test_started_not_ready_again(self):
        dag = make_dag([1])
        dag.start(0)
        assert not dag.is_ready(0)
        assert not dag.is_admissible(0)


class TestLifecycle:
    def test_double_start_rejected(self):
        dag = make_dag([1])
        dag.start(0)
        with pytest.raises(ValueError):
            dag.start(0)

    def test_complete_without_start_rejected(self):
        dag = make_dag([1])
        with pytest.raises(ValueError):
            dag.complete(0)

    def test_done(self):
        dag = make_dag([1, 2])
        assert not dag.done
        for i in (0, 1):
            dag.start(i)
            dag.complete(i)
        assert dag.done

    def test_diamond_dependencies(self):
        dag = make_dag([1, 2, 3, 4],
                       edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
        dag.start(0)
        dag.complete(0)
        assert set(dag.ready_transactions()) == {1, 2}
        for i in (1, 2):
            dag.start(i)
            dag.complete(i)
        assert dag.ready_transactions() == [3]
