"""Schedule drivers: serializability, speedup ordering, utilization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.receipt import receipts_root
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import (
    run_sequential,
    run_spatial_temporal,
    run_synchronous,
)
from repro.workload import generate_dependency_block


def executor_for(block, num_pus, **config_kwargs):
    return MTPUExecutor(
        block.deployment.state.copy(), num_pus=num_pus,
        pu_config=PUConfig(**config_kwargs),
    )


@pytest.fixture(scope="module")
def mid_block():
    return generate_dependency_block(
        num_transactions=32, target_ratio=0.4, seed=21
    )


class TestSerializability:
    """The paper's correctness requirement: scheduling must not violate
    blockchain consistency."""

    def test_spatial_temporal_matches_sequential(self, mid_block):
        seq = run_sequential(executor_for(mid_block, 1),
                             mid_block.transactions)
        par = run_spatial_temporal(
            executor_for(mid_block, 4), mid_block.transactions,
            mid_block.dag_edges,
        )
        assert receipts_root(
            seq.receipts_in_block_order(mid_block.transactions)
        ) == receipts_root(
            par.receipts_in_block_order(mid_block.transactions)
        )

    def test_synchronous_matches_sequential(self, mid_block):
        seq_ex = executor_for(mid_block, 1)
        seq = run_sequential(seq_ex, mid_block.transactions)
        sync_ex = executor_for(mid_block, 4)
        sync = run_synchronous(
            sync_ex, mid_block.transactions, mid_block.dag_edges
        )
        assert receipts_root(
            seq.receipts_in_block_order(mid_block.transactions)
        ) == receipts_root(
            sync.receipts_in_block_order(mid_block.transactions)
        )
        assert seq_ex.state.state_digest() == sync_ex.state.state_digest()

    @settings(max_examples=8, deadline=None)
    @given(
        ratio=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
        num_pus=st.integers(2, 6),
    )
    def test_serializability_randomized(self, ratio, seed, num_pus):
        block = generate_dependency_block(
            num_transactions=16, target_ratio=ratio, seed=seed
        )
        seq_ex = executor_for(block, 1)
        seq = run_sequential(seq_ex, block.transactions)
        par_ex = executor_for(block, num_pus)
        par = run_spatial_temporal(
            par_ex, block.transactions, block.dag_edges
        )
        assert receipts_root(
            seq.receipts_in_block_order(block.transactions)
        ) == receipts_root(par.receipts_in_block_order(block.transactions))
        assert seq_ex.state.state_digest() == par_ex.state.state_digest()

    def test_all_transactions_executed_once(self, mid_block):
        result = run_spatial_temporal(
            executor_for(mid_block, 4), mid_block.transactions,
            mid_block.dag_edges,
        )
        executed = sorted(
            mid_block.transactions.index(e.tx) for e in result.executions
        )
        assert executed == list(range(len(mid_block.transactions)))


class TestPerformanceShape:
    def test_parallel_beats_sequential_on_independent_work(self):
        block = generate_dependency_block(
            num_transactions=32, target_ratio=0.0, seed=22
        )
        seq = run_sequential(executor_for(block, 1), block.transactions)
        par = run_spatial_temporal(
            executor_for(block, 4), block.transactions, block.dag_edges
        )
        assert par.speedup_over(seq) > 2.0

    def test_spatial_temporal_at_least_synchronous(self, mid_block):
        sync = run_synchronous(
            executor_for(mid_block, 4), mid_block.transactions,
            mid_block.dag_edges,
        )
        st_result = run_spatial_temporal(
            executor_for(mid_block, 4), mid_block.transactions,
            mid_block.dag_edges,
        )
        # Asynchronous scheduling should not be materially worse; it is
        # usually better (paper Fig. 14).
        assert st_result.makespan_cycles <= sync.makespan_cycles * 1.1

    def test_speedup_decreases_with_dependency_ratio(self):
        speedups = []
        for ratio in (0.0, 0.5, 1.0):
            block = generate_dependency_block(
                num_transactions=32, target_ratio=ratio, seed=23
            )
            seq = run_sequential(executor_for(block, 1),
                                 block.transactions)
            par = run_spatial_temporal(
                executor_for(block, 4), block.transactions,
                block.dag_edges,
            )
            speedups.append(par.speedup_over(seq))
        assert speedups[0] > speedups[1] > speedups[2]

    def test_utilization_bounds(self, mid_block):
        result = run_spatial_temporal(
            executor_for(mid_block, 4), mid_block.transactions,
            mid_block.dag_edges,
        )
        assert 0.0 < result.utilization <= 1.0

    def test_utilization_falls_with_dependencies(self):
        utils = []
        for ratio in (0.0, 1.0):
            block = generate_dependency_block(
                num_transactions=32, target_ratio=ratio, seed=24
            )
            result = run_spatial_temporal(
                executor_for(block, 4), block.transactions,
                block.dag_edges,
            )
            utils.append(result.utilization)
        assert utils[0] > utils[1]

    def test_more_pus_never_slower_when_independent(self):
        block = generate_dependency_block(
            num_transactions=32, target_ratio=0.0, seed=25
        )
        two = run_spatial_temporal(
            executor_for(block, 2), block.transactions, block.dag_edges
        )
        four = run_spatial_temporal(
            executor_for(block, 4), block.transactions, block.dag_edges
        )
        assert four.makespan_cycles <= two.makespan_cycles

    def test_synchronous_round_count(self, mid_block):
        result = run_synchronous(
            executor_for(mid_block, 4), mid_block.transactions,
            mid_block.dag_edges,
        )
        n = len(mid_block.transactions)
        assert n / 4 <= result.rounds <= n
