"""Edge cases across the core: empty blocks, single transactions,
degenerate configurations."""

from repro.chain import Transaction
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.scheduler import (
    CompositeDAG,
    run_sequential,
    run_spatial_temporal,
    run_synchronous,
)
from repro.workload import generate_block


def executor(deployment, num_pus=1, **kwargs):
    return MTPUExecutor(
        deployment.state.copy(), num_pus=num_pus,
        pu_config=PUConfig(**kwargs),
    )


class TestEmptyAndTiny:
    def test_empty_block_all_drivers(self, deployment):
        seq = run_sequential(executor(deployment), [])
        assert seq.makespan_cycles == 0
        st = run_spatial_temporal(executor(deployment, 4), [], [])
        assert st.makespan_cycles == 0
        assert st.utilization == 0.0
        sync = run_synchronous(executor(deployment, 4), [], [])
        assert sync.rounds == 0

    def test_single_transaction(self, deployment):
        block = generate_block(deployment, num_transactions=1, seed=80)
        st = run_spatial_temporal(
            executor(deployment, 4), block.transactions, block.dag_edges
        )
        assert len(st.executions) == 1
        assert st.makespan_cycles > 0

    def test_single_pu_spatial_temporal(self, deployment):
        block = generate_block(deployment, num_transactions=8, seed=81)
        st = run_spatial_temporal(
            executor(deployment, 1), block.transactions, block.dag_edges
        )
        assert len(st.executions) == 8

    def test_more_pus_than_transactions(self, deployment):
        block = generate_block(deployment, num_transactions=3, seed=82)
        st = run_spatial_temporal(
            executor(deployment, 8), block.transactions, block.dag_edges
        )
        assert len(st.executions) == 3

    def test_empty_dag(self):
        dag = CompositeDAG([], [])
        assert dag.done
        assert dag.ready_transactions() == []


class TestExecutorAccounting:
    def test_totals_accumulate(self, deployment):
        block = generate_block(deployment, num_transactions=5, seed=83)
        ex = executor(deployment)
        pu = ex.pus[0]
        for tx in block.transactions:
            ex.execute_on(pu, tx)
        assert len(ex.executions) == 5
        assert ex.total_instructions() == sum(
            e.instructions for e in ex.executions
        )
        assert ex.total_cycles_sequentialized() == sum(
            e.cycles for e in ex.executions
        )
        assert len(ex.receipts()) == 5

    def test_pu_counters(self, deployment):
        block = generate_block(deployment, num_transactions=4, seed=84)
        ex = executor(deployment)
        pu = ex.pus[0]
        for tx in block.transactions:
            ex.execute_on(pu, tx)
        assert pu.transactions_executed == 4
        assert pu.busy_cycles > 0
        assert pu.current_contract == block.transactions[-1].to

    def test_plain_value_transfer_has_no_instructions(self, deployment):
        ex = executor(deployment)
        tx = Transaction(
            sender=deployment.accounts[0], to=0xE0E0,
            value=1, gas_limit=100_000,
        )
        execution = ex.execute_on(ex.pus[0], tx)
        assert execution.receipt.success
        assert execution.instructions == 0
        assert execution.context_cycles > 0  # context still constructed

    def test_create_transaction_times_init_code(self, deployment):
        from repro.contracts.asm import assemble

        ex = executor(deployment)
        init = assemble("PUSH 1\nPUSH 0\nRETURN")
        tx = Transaction(
            sender=deployment.accounts[0], to=None, data=init,
            gas_limit=500_000,
        )
        execution = ex.execute_on(ex.pus[0], tx)
        assert execution.receipt.success
        assert execution.instructions > 0
        assert execution.context_cycles == 0  # no callee bytecode to load


class TestScheduleResultHelpers:
    def test_speedup_over_zero_makespan(self, deployment):
        empty = run_spatial_temporal(executor(deployment, 2), [], [])
        other = run_spatial_temporal(executor(deployment, 2), [], [])
        assert empty.speedup_over(other) == float("inf")

    def test_receipts_in_block_order_is_block_order(self, deployment):
        block = generate_block(deployment, num_transactions=6, seed=85)
        st = run_spatial_temporal(
            executor(deployment, 4), block.transactions, block.dag_edges
        )
        receipts = st.receipts_in_block_order(block.transactions)
        for tx, receipt in zip(block.transactions, receipts):
            assert receipt.tx_hash == tx.hash()
