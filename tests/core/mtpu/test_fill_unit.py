"""Fill unit: line construction rules and invariants (paper 3.3.3-3.3.4)."""

from repro.contracts.asm import assemble
from repro.contracts.registry import compile_suite
from repro.core.mtpu.fill_unit import (
    CodeIndex,
    FillConfig,
)


def line_for(source, start_pc=0, **config_kwargs):
    index = CodeIndex(0xC0DE, assemble(source))
    return index.line_at(start_pc, FillConfig(**config_kwargs))


class TestTermination:
    def test_branch_ends_line(self):
        line = line_for("PUSH 1\nPUSH @lab\nJUMPI\nADD\nlab:\nSTOP")
        assert line.slots[-1].op.primary.op.name == "JUMPI"
        assert line.ends_with_branch

    def test_terminator_ends_line(self):
        line = line_for("PUSH 1\nPOP\nSTOP\nADD")
        assert line.slots[-1].op.primary.op.name == "STOP"

    def test_context_switch_ends_line(self):
        # A line starting at the CALL itself must not run past it: the
        # context switch hands control to the callee.
        source = (
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 1\nGAS\n"
            "CALL\nPOP\nADD"
        )
        line = line_for(source, start_pc=13)
        assert [s.op.primary.op.name for s in line.slots] == ["CALL"]

    def test_jumpdest_starts_new_line(self):
        line = line_for("PUSH 1\nPOP\nlab:\nPUSH 2\nPOP")
        # Nothing at or past the JUMPDEST (pc 3) joins the first line.
        assert all(pc < 3 for pc in line.pcs)
        # A new line can be built at the JUMPDEST itself.
        line2 = line_for("PUSH 1\nPOP\nlab:\nPUSH 2\nPOP", start_pc=3)
        assert line2.slots[0].op.primary.op.name == "JUMPDEST"

    def test_unit_field_conflict_ends_line(self):
        # Three SLOADs: the storage unit has capacity 1.
        source = "PUSH 0\nSLOAD\nPUSH 1\nSLOAD\nPOP\nPOP"
        line = line_for(source)
        names = [s.op.primary.op.name for s in line.slots]
        assert names.count("SLOAD") == 1

    def test_undecodable_start_returns_none(self):
        index = CodeIndex(0xC0DE, assemble("PUSH2 0x1234"))
        assert index.line_at(1) is None  # inside the immediate

    def test_next_pc_recorded(self):
        line = line_for("PUSH 1\nPUSH 2\nADD\nSTOP")
        # The folded ADD and the STOP terminator both fit; next_pc points
        # past the terminator.
        assert line.next_pc == 6


class TestDependencies:
    def test_raw_without_forwarding_ends_line(self):
        # ADD's result feeds MUL; with forwarding off they cannot share.
        source = "PUSH 1\nPUSH 2\nADD\nPUSH 3\nMUL\nPOP"
        line = line_for(source, forwarding=False, folding=False)
        names = [s.op.primary.op.name for s in line.slots]
        assert "MUL" not in names

    def test_forwarding_allows_one_raw(self):
        source = "PUSH 1\nPUSH 2\nADD\nPUSH 3\nMUL\nPOP"
        line = line_for(source, forwarding=True, folding=True)
        names = [s.op.primary.op.name for s in line.slots]
        assert "ADD" in names and "MUL" in names
        mul_slot = [s for s in line.slots
                    if s.op.primary.op.name == "MUL"][0]
        assert mul_slot.forwarded_from is not None
        assert line.used_forward

    def test_second_raw_ends_line(self):
        # ADD -> MUL -> SUB: two RAWs in a row; only one forward allowed.
        source = (
            "PUSH 1\nPUSH 2\nADD\nPUSH 3\nMUL\nPUSH 4\nSUB\nPOP"
        )
        line = line_for(source)
        names = [s.op.primary.op.name for s in line.slots]
        assert "SUB" not in names

    def test_forwarding_requires_reconfigurable_units(self):
        # SLOAD (storage unit) result feeding ADD is not forwardable.
        source = "PUSH 0\nSLOAD\nPUSH 1\nADD\nPOP"
        line = line_for(source)
        names = [s.op.primary.op.name for s in line.slots]
        assert "ADD" not in names

    def test_folding_avoids_raw_entirely(self):
        # The paper's function-jump logic: PUSH4/EQ + PUSH2/JUMPI in one
        # line via folding plus one forward — "four cycles ... reduced to
        # one".
        source = "PUSH4 0xcc80f6f3\nEQ\nPUSH2 0x00b6\nJUMPI"
        line = line_for(source)
        assert line.orig_count == 4
        assert line.issued_count == 2


class TestLineAccounting:
    def test_gas_is_sum_of_constituents(self):
        source = "PUSH 1\nPUSH 2\nADD\nPUSH 0\nMSTORE"
        line = line_for(source)
        from repro.evm.code import decode

        gas_at = {i.pc: i.op.gas for i in decode(assemble(source))}
        assert line.gas_static == sum(gas_at[pc] for pc in line.pcs)

    def test_pcs_cover_execution_order(self):
        line = line_for("PUSH 1\nPUSH 2\nADD\nPUSH 0\nMSTORE")
        # The folded MSTORE reads ADD's result (a memory-unit RAW that
        # cannot be forwarded), so the line holds the folded ADD only.
        assert line.pcs == (0, 2, 4)

    def test_single_instruction_line_not_cacheable(self):
        line = line_for("JUMPDEST\nSTOP", start_pc=0)
        # JUMPDEST then STOP is 2 instructions; craft a true single:
        single = line_for("STOP")
        assert not single.cacheable
        assert line.cacheable

    def test_unit_capacity_respected(self):
        suite = compile_suite()
        config = FillConfig()
        for artifact in suite.values():
            index = CodeIndex(1, artifact.bytecode)
            for instr in index.instructions[:200]:
                line = index.line_at(instr.pc, config)
                if line is None:
                    continue
                counts = {}
                for slot in line.slots:
                    cat = slot.op.primary.op.category
                    counts[cat] = counts.get(cat, 0) + 1
                for cat, count in counts.items():
                    assert count <= config.capacity(cat)

    def test_at_most_one_forward_per_line(self):
        suite = compile_suite()
        for artifact in suite.values():
            index = CodeIndex(1, artifact.bytecode)
            for instr in index.instructions[:200]:
                line = index.line_at(instr.pc)
                if line is None:
                    continue
                forwards = [
                    s for s in line.slots if s.forwarded_from is not None
                ]
                assert len(forwards) <= 1

    def test_lines_never_span_branches(self):
        suite = compile_suite()
        branch_names = {"JUMP", "JUMPI"}
        for artifact in suite.values():
            index = CodeIndex(1, artifact.bytecode)
            for instr in index.instructions[:200]:
                line = index.line_at(instr.pc)
                if line is None:
                    continue
                for slot in line.slots[:-1]:
                    assert slot.op.primary.op.name not in branch_names

    def test_gas_invariant_over_suite(self):
        from repro.evm.code import decode

        suite = compile_suite()
        for artifact in list(suite.values())[:4]:
            instructions = decode(artifact.bytecode)
            gas_at = {i.pc: i.op.gas for i in instructions}
            index = CodeIndex(1, artifact.bytecode)
            for instr in instructions[:150]:
                line = index.line_at(instr.pc)
                if line is None:
                    continue
                assert line.gas_static == sum(
                    gas_at[pc] for pc in line.pcs
                )


class TestOptimizedViews:
    def test_from_instructions_filters(self):
        from repro.evm.code import decode

        code = assemble("PUSH 1\nPUSH 2\nADD\nSTOP")
        instructions = decode(code)
        filtered = [i for i in instructions if i.op.name != "PUSH1"]
        view = CodeIndex.from_instructions(7, filtered)
        assert 0 not in view.index_of_pc
        line = view.line_at(4)  # the ADD
        assert line is not None
        assert line.pcs[0] == 4
