"""Memory hierarchy models: Call_Contract Stack, State Buffer, context
loads."""

from repro.core.mtpu.memory import (
    CallContractStack,
    ContextLoadModel,
    StateBuffer,
)
from repro.core.mtpu.timing import TimingConfig


class TestCallContractStack:
    def test_first_load_counts(self):
        stack = CallContractStack(capacity_bytes=1000)
        assert stack.load(1, 400) == 400
        assert stack.bytecode_loads == 1

    def test_reuse_is_free(self):
        stack = CallContractStack(capacity_bytes=1000)
        stack.load(1, 400)
        assert stack.load(1, 400) == 0
        assert stack.bytecode_reuses == 1

    def test_lru_eviction_by_bytes(self):
        stack = CallContractStack(capacity_bytes=1000)
        stack.load(1, 600)
        stack.load(2, 300)
        stack.load(3, 600)  # evicts 1 (and 2 if needed)
        assert not stack.resident(1)
        assert stack.resident(3)

    def test_touch_refreshes(self):
        stack = CallContractStack(capacity_bytes=1000)
        stack.load(1, 400)
        stack.load(2, 400)
        stack.load(1, 400)  # refresh
        stack.load(3, 400)  # evicts 2
        assert stack.resident(1)
        assert not stack.resident(2)

    def test_clear(self):
        stack = CallContractStack()
        stack.load(1, 100)
        stack.clear()
        assert not stack.resident(1)


class TestStateBuffer:
    def test_cold_then_warm(self):
        buffer = StateBuffer(entries=8)
        assert buffer.access(1, 0) is False
        assert buffer.access(1, 0) is True
        assert buffer.hits == 1 and buffer.misses == 1

    def test_capacity_eviction(self):
        buffer = StateBuffer(entries=2)
        buffer.access(1, 0)
        buffer.access(1, 1)
        buffer.access(1, 2)
        assert buffer.access(1, 0) is False  # evicted

    def test_warm_installs_without_counting(self):
        buffer = StateBuffer(entries=4)
        buffer.warm(1, 0)
        assert buffer.hits == 0 and buffer.misses == 0
        assert buffer.access(1, 0) is True

    def test_distinct_addresses_distinct_entries(self):
        buffer = StateBuffer(entries=8)
        buffer.access(1, 0)
        assert buffer.access(2, 0) is False


class TestContextLoad:
    def test_bytecode_dominates_cost(self):
        # Paper Table 2: bytecode is ~86-95% of loaded context data.
        model = ContextLoadModel(TimingConfig())
        with_code = model.cycles(
            calldata_bytes=68, bytecode_bytes=5759, bytecode_resident=False
        )
        without_code = model.cycles(
            calldata_bytes=68, bytecode_bytes=5759, bytecode_resident=True
        )
        assert without_code < with_code * 0.15

    def test_on_path_fraction_scales_bytecode(self):
        model = ContextLoadModel(TimingConfig())
        full = model.cycles(0, 6400, False, on_path_fraction=1.0)
        chunked = model.cycles(0, 6400, False, on_path_fraction=0.082)
        assert chunked < full * 0.2

    def test_fixed_fields_always_charged(self):
        model = ContextLoadModel(TimingConfig())
        assert model.cycles(0, 0, True) == TimingConfig().context_fixed_cycles


class TestTimingConfig:
    def test_unit_extra_surcharges(self):
        from repro.evm.opcodes import Category

        config = TimingConfig()
        assert config.unit_extra(Category.ARITHMETIC, "ADD") == 0
        assert config.unit_extra(Category.ARITHMETIC, "MUL") == 2
        assert config.unit_extra(Category.ARITHMETIC, "EXP") == 4
        assert config.unit_extra(Category.MEMORY, "MLOAD") == 1

    def test_context_load_cycles_ceil(self):
        config = TimingConfig(context_load_bus_bytes=32)
        assert config.context_load_cycles(0) == 0
        assert config.context_load_cycles(1) == 1
        assert config.context_load_cycles(32) == 1
        assert config.context_load_cycles(33) == 2
