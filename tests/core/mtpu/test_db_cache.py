"""DB cache: LRU behavior, stats, single-instruction side records."""

import pytest

from repro.contracts.asm import assemble
from repro.core.mtpu.db_cache import DBCache
from repro.core.mtpu.fill_unit import CodeIndex


def make_line(start_pc=0, source="PUSH 1\nPUSH 2\nADD\nSTOP",
              code_address=1):
    return CodeIndex(code_address, assemble(source)).line_at(start_pc)


def single_line(code_address=1):
    return CodeIndex(code_address, assemble("STOP")).line_at(0)


class TestLookup:
    def test_miss_then_hit(self):
        cache = DBCache(entries=4)
        line = make_line()
        assert cache.lookup(1, 0) is None
        cache.insert(line)
        assert cache.lookup(1, 0) is line
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_keyed_by_code_address(self):
        cache = DBCache(entries=4)
        cache.insert(make_line(code_address=1))
        assert cache.lookup(2, 0) is None

    def test_peek_does_not_count(self):
        cache = DBCache(entries=4)
        cache.insert(make_line())
        cache.peek(1, 0)
        assert cache.stats.accesses == 0


class TestLRU:
    def test_eviction_order(self):
        cache = DBCache(entries=2)
        sources = {
            0: "PUSH 1\nPUSH 2\nADD\nSTOP",
        }
        lines = []
        # Three distinct lines at different code addresses.
        for address in (10, 11, 12):
            line = make_line(code_address=address)
            lines.append(line)
            cache.insert(line)
        assert len(cache) == 2
        assert cache.peek(10, 0) is None  # oldest evicted
        assert cache.peek(12, 0) is not None
        assert cache.stats.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = DBCache(entries=2)
        cache.insert(make_line(code_address=1))
        cache.insert(make_line(code_address=2))
        cache.lookup(1, 0)  # refresh 1
        cache.insert(make_line(code_address=3))
        assert cache.peek(1, 0) is not None
        assert cache.peek(2, 0) is None

    def test_reinsert_replaces(self):
        cache = DBCache(entries=4)
        old = make_line()
        cache.insert(old)
        new = make_line()
        cache.insert(new)
        assert cache.peek(1, 0) is new

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DBCache(entries=0)


class TestSingles:
    def test_single_instruction_lines_not_cached(self):
        cache = DBCache(entries=4)
        cache.insert(single_line())
        assert len(cache) == 0
        assert cache.stats.single_instruction_lines == 1
        # But their addresses are recorded for hotspot path tracking.
        assert (1, 0) in cache.single_records


class TestInvalidation:
    def test_invalidate_all(self):
        cache = DBCache(entries=4)
        cache.insert(make_line())
        cache.invalidate()
        assert len(cache) == 0
        assert cache.peek(1, 0) is None

    def test_invalidate_code_is_selective(self):
        cache = DBCache(entries=4)
        cache.insert(make_line(code_address=1))
        cache.insert(make_line(code_address=2))
        cache.invalidate_code(1)
        assert cache.peek(1, 0) is None
        assert cache.peek(2, 0) is not None

    def test_stats_reset(self):
        cache = DBCache(entries=4)
        cache.lookup(1, 0)
        cache.stats.reset()
        assert cache.stats.accesses == 0
