"""PU timing: baseline vs DB-cache paths, reuse, skips, prefetch."""

import pytest

from repro.chain import Transaction
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.workload import all_entry_function_calls


def fresh_executor(deployment, **config_kwargs):
    return MTPUExecutor(
        deployment.state.copy(),
        num_pus=1,
        pu_config=PUConfig(**config_kwargs),
    )


@pytest.fixture(scope="module")
def tether_txs(deployment):
    return all_entry_function_calls(deployment, "TetherToken", seed=3,
                                    per_function=3)


def total_cycles(executor, txs):
    pu = executor.pus[0]
    return sum(executor.execute_on(pu, tx).cycles for tx in txs)


class TestModes:
    def test_ilp_beats_baseline(self, deployment, tether_txs):
        baseline = total_cycles(
            fresh_executor(deployment, enable_db_cache=False), tether_txs
        )
        ilp = total_cycles(
            fresh_executor(deployment, perfect_cache=True), tether_txs
        )
        assert ilp < baseline
        # The ILP upper bound lands in the paper's 1.6x-2.4x band.
        assert 1.4 < baseline / ilp < 2.6

    def test_perfect_cache_bounds_real_cache(self, deployment, tether_txs):
        perfect = total_cycles(
            fresh_executor(deployment, perfect_cache=True), tether_txs
        )
        real = total_cycles(
            fresh_executor(deployment, cache_entries=2048), tether_txs
        )
        assert perfect <= real

    def test_feature_ablation_is_monotone(self, deployment, tether_txs):
        fd = total_cycles(
            fresh_executor(deployment, perfect_cache=True,
                           enable_forwarding=False, enable_folding=False),
            tether_txs,
        )
        df = total_cycles(
            fresh_executor(deployment, perfect_cache=True,
                           enable_folding=False),
            tether_txs,
        )
        all_on = total_cycles(
            fresh_executor(deployment, perfect_cache=True), tether_txs
        )
        assert all_on <= df <= fd

    def test_tiny_cache_behaves_like_bigger_baseline(self, deployment,
                                                     tether_txs):
        tiny = fresh_executor(deployment, cache_entries=4)
        big = fresh_executor(deployment, cache_entries=4096)
        tiny_cycles = total_cycles(tiny, tether_txs)
        big_cycles = total_cycles(big, tether_txs)
        assert big_cycles <= tiny_cycles
        assert (
            big.pus[0].db_cache.stats.hit_ratio
            >= tiny.pus[0].db_cache.stats.hit_ratio
        )

    def test_instruction_count_mode_independent(self, deployment,
                                                tether_txs):
        a = fresh_executor(deployment, enable_db_cache=False)
        b = fresh_executor(deployment, perfect_cache=True)
        total_cycles(a, tether_txs)
        total_cycles(b, tether_txs)
        assert a.total_instructions() == b.total_instructions()


class TestRedundancyReuse:
    def test_repeated_contract_hits_cache(self, deployment, tether_txs):
        executor = fresh_executor(deployment, cache_entries=2048)
        pu = executor.pus[0]
        first = executor.execute_on(pu, tether_txs[0])
        repeat_tx = tether_txs[0]
        # A fresh identical call mostly hits lines filled by the first.
        second = executor.execute_on(
            pu,
            Transaction(
                sender=repeat_tx.sender, to=repeat_tx.to,
                data=repeat_tx.data, gas_limit=repeat_tx.gas_limit,
            ),
        )
        assert second.timing.cycles < first.timing.cycles
        assert second.timing.line_hits > 0

    def test_context_reuse_skips_bytecode_load(self, deployment,
                                               tether_txs):
        executor = fresh_executor(deployment)
        pu = executor.pus[0]
        first = executor.execute_on(pu, tether_txs[0])
        second = executor.execute_on(pu, tether_txs[1])
        assert second.context_cycles < first.context_cycles

    def test_no_reuse_flag_flushes(self, deployment, tether_txs):
        reuse = total_cycles(
            fresh_executor(deployment, redundancy_reuse=True), tether_txs
        )
        no_reuse = total_cycles(
            fresh_executor(deployment, redundancy_reuse=False), tether_txs
        )
        assert reuse < no_reuse


class TestSkipAndPrefetch:
    def test_skipped_steps_cost_nothing(self, deployment, tether_txs):
        from repro.evm import EVM, Tracer

        executor = fresh_executor(deployment, enable_db_cache=False)
        pu = executor.pus[0]
        state = deployment.state.copy()
        tracer = Tracer()
        EVM(state, tracer=tracer).execute_transaction(tether_txs[0])
        full = pu.time_trace(tracer.steps)
        skip = {s.index for s in tracer.steps[:10]}
        partial = pu.time_trace(tracer.steps, skip=skip)
        assert partial.cycles < full.cycles
        assert partial.instructions == full.instructions - 10

    def test_prefetch_removes_storage_stall(self, deployment, tether_txs):
        from repro.evm import EVM, Tracer

        state = deployment.state.copy()
        tracer = Tracer()
        EVM(state, tracer=tracer).execute_transaction(tether_txs[0])

        cold = fresh_executor(deployment, enable_db_cache=False)
        warm = fresh_executor(deployment, enable_db_cache=False)
        no_prefetch = cold.pus[0].time_trace(tracer.steps)
        all_prefetch = warm.pus[0].time_trace(
            tracer.steps,
            prefetched=lambda step: step.op.name == "SLOAD",
        )
        assert all_prefetch.cycles < no_prefetch.cycles


class TestStateBufferSharing:
    def test_state_buffer_shared_across_pus(self, deployment, tether_txs):
        executor = MTPUExecutor(
            deployment.state.copy(), num_pus=2,
            pu_config=PUConfig(enable_db_cache=False),
        )
        tx = tether_txs[0]
        first = executor.execute_on(executor.pus[0], tx)
        again = Transaction(sender=tx.sender, to=tx.to, data=tx.data,
                            gas_limit=tx.gas_limit)
        second = executor.execute_on(executor.pus[1], again)
        # PU1 benefits from state warmed by PU0.
        assert second.timing.cycles < first.timing.cycles


class TestColdSingleTransaction:
    """Paper section 4.2: 'The hit rate of cache is very low (3%-10%)
    when actually processing a single transaction, because ... less
    circular logic'."""

    def test_cold_single_tx_hit_rate_low(self, deployment):
        from repro.workload import all_entry_function_calls

        for name in ("TetherToken", "Dai", "OpenSea"):
            tx = all_entry_function_calls(deployment, name, seed=61)[0]
            executor = fresh_executor(deployment, cache_entries=2048)
            executor.execute_on(executor.pus[0], tx)
            ratio = executor.pus[0].db_cache.stats.hit_ratio
            assert ratio < 0.30, (name, ratio)

    def test_loopy_contract_hits_within_one_tx(self, deployment):
        # Ballot's winningProposal loop revisits its own lines, so even a
        # single cold transaction gets some hits (the paper's "circular
        # logic" caveat).
        from repro.chain import Transaction
        from repro.evm import abi

        tx = Transaction(
            sender=deployment.accounts[0],
            to=deployment.address_of("Ballot"),
            data=abi.encode_call("winningProposal()"),
            gas_limit=2_000_000,
        )
        executor = fresh_executor(deployment, cache_entries=2048)
        executor.execute_on(executor.pus[0], tx)
        assert executor.pus[0].db_cache.stats.hits > 0
