"""Analytical area/power model vs paper Table 5."""

import pytest

from repro.core.mtpu.area import MTPUAreaConfig, estimate_area

#: Paper Table 5 rows (component -> mm^2).
PAPER_TABLE5 = {
    "icache": 0.227,
    "dcache": 0.547,
    "mem": 2.238,
    "stack": 0.337,
    "gas": 0.013,
    "db_cache": 3.006,
    "execution_unit": 0.916,
    "else": 0.097,
}
PAPER_CORE_TOTAL = 7.381
PAPER_TOTAL = 79.623
PAPER_POWER = 8.648


class TestDesignPoint:
    def test_core_components_match(self):
        report = estimate_area()
        for name, expected in PAPER_TABLE5.items():
            assert report.core_components[name] == pytest.approx(
                expected, rel=0.01
            )

    def test_core_total(self):
        assert estimate_area().core_total == pytest.approx(
            PAPER_CORE_TOTAL, rel=0.01
        )

    def test_processor_total(self):
        assert estimate_area().total == pytest.approx(
            PAPER_TOTAL, rel=0.01
        )

    def test_power_at_300mhz(self):
        report = estimate_area()
        assert report.power_watts == pytest.approx(PAPER_POWER, rel=0.01)
        assert report.clock_mhz == 300

    def test_pu_area_breakdown(self):
        report = estimate_area()
        # 4 PUs at (core + call-contract stack) each.
        per_pu = report.pu_total / 4
        assert per_pu == pytest.approx(7.381 + 4.785, rel=0.01)


class TestScaling:
    def test_area_scales_with_pus(self):
        quad = estimate_area(MTPUAreaConfig(num_pus=4))
        octo = estimate_area(MTPUAreaConfig(num_pus=8))
        assert octo.total > quad.total
        # Shared buffers don't double.
        assert octo.total < 2 * quad.total

    def test_db_cache_entries_sizing(self):
        small = estimate_area(MTPUAreaConfig.from_cache_entries(512))
        big = estimate_area(MTPUAreaConfig.from_cache_entries(4096))
        assert small.total < big.total
        default = MTPUAreaConfig.from_cache_entries(2048)
        assert default.db_cache_kb == pytest.approx(234, rel=0.01)

    def test_rows_render(self):
        rows = estimate_area().rows()
        assert rows[-1][0] == "Total"
        assert rows[-1][1] == pytest.approx(PAPER_TOTAL, rel=0.01)


class TestBPUComparison:
    def test_paper_overhead_ratios(self):
        from repro.core.mtpu.area import bpu_equivalents

        report = estimate_area()
        bpu_area, bpu_power = bpu_equivalents(report)
        # Paper section 4.4: +17% area, +10% energy vs BPU.
        assert report.total / bpu_area == pytest.approx(1.17)
        assert report.power_watts / bpu_power == pytest.approx(1.10)
