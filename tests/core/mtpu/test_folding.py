"""Instruction folding: patterns, gas preservation, bookkeeping."""

from repro.contracts.asm import assemble
from repro.core.mtpu.folding import FOLDABLE_CONSUMERS, try_fold
from repro.evm.code import decode


def fold_all(source, enabled=True):
    instructions = decode(assemble(source))
    ops = []
    index = 0
    while index < len(instructions):
        op, index = try_fold(instructions, index, enabled)
        ops.append(op)
    return ops


class TestPatterns:
    def test_papers_dispatch_example(self):
        # PUSH4 0xCC80F6F3; EQ -> one synthetic compare (paper 3.3.4).
        ops = fold_all("PUSH4 0xcc80f6f3\nEQ")
        assert len(ops) == 1
        assert ops[0].primary.op.name == "EQ"
        assert ops[0].absorbed[0].immediate == 0xCC80F6F3

    def test_push_jumpi_folds(self):
        ops = fold_all("PUSH2 0xb6\nJUMPI")
        assert len(ops) == 1
        assert ops[0].primary.op.name == "JUMPI"

    def test_double_push_binary_folds(self):
        ops = fold_all("PUSH 3\nPUSH 4\nADD")
        assert len(ops) == 1
        assert ops[0].orig_count == 3
        assert ops[0].stack_inputs == 0

    def test_push_push_mstore_folds_offset_only(self):
        # MSTORE folds one operand; the value PUSH stays separate.
        ops = fold_all("PUSH 5\nPUSH 0\nMSTORE")
        assert len(ops) == 2
        assert ops[0].primary.op.name == "PUSH1"
        assert ops[1].primary.op.name == "MSTORE"
        assert ops[1].orig_count == 2

    def test_non_foldable_consumer(self):
        ops = fold_all("PUSH 1\nPOP")
        assert len(ops) == 2
        assert all(not op.absorbed for op in ops)

    def test_disabled_folding(self):
        ops = fold_all("PUSH 3\nPUSH 4\nADD", enabled=False)
        assert len(ops) == 3

    def test_lone_push_at_end(self):
        ops = fold_all("PUSH 9")
        assert len(ops) == 1
        assert ops[0].primary.op.name == "PUSH1"


class TestBookkeeping:
    def test_gas_preserved(self):
        source = "PUSH 3\nPUSH 4\nADD"
        folded = fold_all(source)
        unfolded = fold_all(source, enabled=False)
        assert sum(op.static_gas for op in folded) == sum(
            op.static_gas for op in unfolded
        )

    def test_pcs_in_program_order(self):
        op = fold_all("PUSH 3\nPUSH 4\nADD")[0]
        assert op.pcs == (0, 2, 4)
        assert op.pc == 0
        assert op.end_pc == 5

    def test_orig_count_sums(self):
        ops = fold_all("PUSH 1\nPUSH 2\nADD\nPUSH 0\nMSTORE")
        assert sum(op.orig_count for op in ops) == 5

    def test_foldable_table_sanity(self):
        assert FOLDABLE_CONSUMERS["EQ"] == 2
        assert FOLDABLE_CONSUMERS["MSTORE"] == 1
        assert "CALL" not in FOLDABLE_CONSUMERS

    def test_stack_inputs_after_partial_fold(self):
        # EQ with one absorbed PUSH still reads one stack operand.
        ops = fold_all("DUP1\nPUSH4 0x01020304\nEQ")
        eq = ops[-1]
        assert eq.primary.op.name == "EQ"
        assert eq.stack_inputs == 1
