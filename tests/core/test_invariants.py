"""Cross-cutting invariants promised in DESIGN.md."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hotspot import HotspotOptimizer
from repro.core.mtpu import MTPUExecutor, PUConfig
from repro.core.mtpu.fill_unit import CodeIndex
from repro.core.scheduler import run_spatial_temporal
from repro.evm import EVM, Tracer
from repro.workload import all_entry_function_calls, generate_block


class TestConstantEliminationSoundness:
    """A pc classified constant must produce the *same value* on every
    execution — otherwise serving it from the Constants Table would be
    wrong (paper section 3.4.3)."""

    def test_eliminated_pcs_are_value_stable(self, deployment):
        optimizer = HotspotOptimizer(deployment.state)
        samples = all_entry_function_calls(deployment, "Dai", seed=70)
        optimizer.optimize_contract(
            deployment.address_of("Dai"), samples
        )
        eliminated = optimizer._eliminated_by_code.get(  # noqa: SLF001
            deployment.address_of("Dai"), set()
        )
        assert eliminated

        # Execute two *different* transfers and compare the values every
        # eliminated pc produced.
        observed: dict[tuple[int, int], set[int]] = {}
        for seed in (71, 72):
            txs = all_entry_function_calls(deployment, "Dai", seed=seed)
            state = deployment.state.copy()
            for tx in txs:
                tracer = Tracer()
                EVM(state, tracer=tracer).execute_transaction(tx)
                state.clear_journal()
                for step in tracer.steps:
                    key = (step.code_address, step.pc)
                    if key in eliminated and step.results:
                        observed.setdefault(key, set()).add(
                            step.results[0]
                        )
        assert observed
        for key, values in observed.items():
            assert len(values) == 1, (
                f"eliminated pc {key} produced varying values {values}"
            )


class TestDeterminism:
    def test_schedule_is_reproducible(self, deployment):
        block = generate_block(deployment, num_transactions=24, seed=73)
        makespans = []
        for _ in range(2):
            result = run_spatial_temporal(
                MTPUExecutor(deployment.state.copy(), num_pus=4,
                             pu_config=PUConfig()),
                block.transactions, block.dag_edges,
            )
            makespans.append(result.makespan_cycles)
        assert makespans[0] == makespans[1]

    def test_workload_generation_is_pure(self, deployment):
        digest = deployment.state.state_digest()
        generate_block(deployment, num_transactions=16, seed=74)
        assert deployment.state.state_digest() == digest


class TestFillUnitFuzz:
    @settings(max_examples=80, deadline=None)
    @given(st.binary(min_size=1, max_size=150), st.integers(0, 2**31))
    def test_lines_over_random_bytecode(self, code, seed):
        """Line invariants hold for arbitrary byte soup."""
        code = bytes(code)
        index = CodeIndex(1, code)
        rng = random.Random(seed)
        candidates = [i.pc for i in index.instructions]
        if not candidates:
            return
        for pc in rng.sample(candidates, min(8, len(candidates))):
            line = index.line_at(pc)
            if line is None:
                continue
            pcs = line.pcs
            # PCs are strictly increasing and unique.
            assert list(pcs) == sorted(set(pcs))
            # The line starts where it claims to.
            assert line.start_pc == pcs[0] == pc
            # next_pc lies past every covered instruction.
            assert line.next_pc > pcs[-1]
            # Gas is the sum over covered instructions.
            gas_at = {
                i.pc: i.op.gas for i in index.instructions
            }
            assert line.gas_static == sum(gas_at[p] for p in pcs)
            # Issue count never exceeds original count.
            assert line.issued_count <= line.orig_count

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=100))
    def test_folding_toggle_preserves_coverage(self, code):
        """With and without folding, a line covers a prefix of the same
        instruction stream (folding may only extend/pack it)."""
        from repro.core.mtpu.fill_unit import FillConfig

        index = CodeIndex(1, bytes(code))
        if not index.instructions:
            return
        pc = index.instructions[0].pc
        folded = index.line_at(pc, FillConfig(folding=True))
        unfolded = index.line_at(pc, FillConfig(folding=False))
        if folded is None or unfolded is None:
            return
        shorter = min(len(folded.pcs), len(unfolded.pcs))
        assert folded.pcs[:shorter] == unfolded.pcs[:shorter] or (
            # folding can absorb a PUSH the unfolded line stopped before
            set(unfolded.pcs).issubset(set(folded.pcs))
            or set(folded.pcs).issubset(set(unfolded.pcs))
        )
