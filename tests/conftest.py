"""Shared fixtures.

The full deployment is expensive (compiles the contract suite and seeds
genesis), so it is built once per session; tests that mutate state copy
it first (``deployment.state.copy()``).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# Deterministic property tests: a released reproduction must not flake on
# fresh machines without a hypothesis example database.
settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.chain import Transaction, WorldState  # noqa: E402
from repro.contracts import build_deployment  # noqa: E402
from repro.contracts.asm import assemble  # noqa: E402
from repro.evm import EVM, Tracer  # noqa: E402

ALICE = 0xA11CE
BOB = 0xB0B
CONTRACT = 0xC0DE


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite golden fixtures (tests/obs/golden/) instead of "
             "comparing against them; review the diff before committing",
    )


@pytest.fixture(scope="session")
def deployment():
    """The genesis deployment (shared, treat as read-only)."""
    return build_deployment()


@pytest.fixture()
def state():
    """A fresh world state with two funded accounts."""
    world = WorldState()
    world.set_balance(ALICE, 10**21)
    world.set_balance(BOB, 10**21)
    world.clear_journal()
    return world


def run_code(state, source: str, data: bytes = b"", value: int = 0,
             sender: int = ALICE, address: int = CONTRACT,
             gas_limit: int = 5_000_000):
    """Assemble, deploy and execute a program; return (receipt, tracer)."""
    state.set_code(address, assemble(source))
    tracer = Tracer()
    evm = EVM(state, tracer=tracer)
    tx = Transaction(sender=sender, to=address, data=data, value=value,
                     gas_limit=gas_limit)
    receipt = evm.execute_transaction(tx)
    return receipt, tracer


@pytest.fixture()
def run():
    """The run_code helper as a fixture."""
    return run_code
