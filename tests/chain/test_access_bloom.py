"""Access-set bloom filters: the conflict summaries packing trusts.

The load-bearing property is **no false negatives**: whenever two real
access sets conflict, their blooms must report ``may_conflict`` — a
missed conflict would let the packer reorder a dependent pair and fork
the packed chain from FIFO. False positives only cost packing quality,
but the measured pairwise rate must stay small at the default geometry
or conflict-aware packing degenerates to FIFO.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.bloom import (
    DEFAULT_BITS,
    DEFAULT_HASHES,
    AccessBloom,
    AccessEstimator,
    bloom_for_transaction,
)
from repro.chain.dag import discover_access_sets
from repro.chain.state import (
    BALANCE_KEY,
    CODE_KEY,
    NONCE_KEY,
    WorldState,
)
from repro.chain.transaction import Transaction

# A compact strategy over (address, slot) keys: small spaces force both
# real overlaps and near-misses.
keys = st.tuples(st.integers(0, 40), st.integers(0, 10))
key_sets = st.frozensets(keys, max_size=12)


def real_conflict(r1, w1, r2, w2) -> bool:
    return bool((w1 & w2) | (w1 & r2) | (r1 & w2))


@settings(max_examples=300, deadline=None)
@given(r1=key_sets, w1=key_sets, r2=key_sets, w2=key_sets)
def test_no_false_negatives_by_construction(r1, w1, r2, w2):
    """A real access-set conflict is always visible in the blooms —
    at every geometry, including pathologically small ones."""
    for bits, hashes in ((8, 1), (64, 2), (DEFAULT_BITS, DEFAULT_HASHES)):
        a = AccessBloom.from_keys(r1, w1, bits=bits, hashes=hashes)
        b = AccessBloom.from_keys(r2, w2, bits=bits, hashes=hashes)
        if real_conflict(r1, w1, r2, w2):
            assert a.may_conflict(b)
            assert b.may_conflict(a)


@settings(max_examples=100, deadline=None)
@given(reads=key_sets, writes=key_sets)
def test_membership_has_no_false_negatives(reads, writes):
    bloom = AccessBloom.from_keys(reads, writes)
    assert all(bloom.may_read(key) for key in reads)
    assert all(bloom.may_write(key) for key in writes)


def test_measured_false_positive_rate_at_default_geometry():
    """Pairwise FP rate for *disjoint* access sets stays under 2% at the
    default bits/hashes (the packing-quality budget the module docstring
    promises; ~(k·n₁)(k·n₂)/m ≈ 75/8192 ≈ 0.9% for these set sizes)."""
    rng = random.Random(1234)
    trials, false_positives = 2_000, 0
    for trial in range(trials):
        # Two disjoint key sets of typical transaction size (4-10 keys).
        pool = rng.sample(range(1_000_000), 20)
        left = [(addr, BALANCE_KEY) for addr in pool[:10]]
        right = [(addr, BALANCE_KEY) for addr in pool[10:]]
        a = AccessBloom.from_keys(left[:5], left[5:])
        b = AccessBloom.from_keys(right[:5], right[5:])
        if a.may_conflict(b):
            false_positives += 1
    assert false_positives / trials < 0.02


def test_serialization_round_trip_and_stability():
    bloom = AccessBloom.from_keys(
        reads=[(1, BALANCE_KEY), (2, 7)],
        writes=[(1, NONCE_KEY)],
        bits=64,
        hashes=2,
        exact=False,
    )
    blob = bloom.to_bytes()
    assert AccessBloom.from_bytes(blob) == bloom
    # The encoding is the spill-file format: byte-stable across runs
    # (blake2b key hashing, big-endian masks). A change here silently
    # invalidates every spilled mempool — pin it.
    assert blob.hex() == (
        "010200" + "0004000200001100" + "0004000000020000"
    )


def test_serialization_rejects_garbage():
    import pytest

    with pytest.raises(ValueError):
        AccessBloom.from_bytes(b"")
    with pytest.raises(ValueError):
        AccessBloom.from_bytes(b"\x02\x01\x01" + b"\x00" * 16)
    with pytest.raises(ValueError):
        AccessBloom.from_bytes(b"\x01\x01\x01" + b"\x00" * 15)


def test_opaque_conflicts_with_everything_and_survives_serialization():
    opaque = AccessBloom.opaque(bits=64)
    assert opaque.is_opaque and not opaque.exact
    empty = AccessBloom(bits=64)
    assert opaque.may_conflict(opaque)
    assert not opaque.may_conflict(empty)  # nothing writes in `empty`
    touched = AccessBloom.from_keys([], [(1, BALANCE_KEY)], bits=64)
    assert opaque.may_conflict(touched)
    restored = AccessBloom.from_bytes(opaque.to_bytes())
    assert restored.is_opaque and restored == opaque


def test_merge_unions_masks_and_demotes_exactness():
    a = AccessBloom.from_keys([(1, 1)], [(2, 2)], bits=64)
    b = AccessBloom.from_keys([(3, 3)], [(4, 4)], bits=64, exact=False)
    a.merge(b)
    assert a.may_read((1, 1)) and a.may_read((3, 3))
    assert a.may_write((2, 2)) and a.may_write((4, 4))
    assert not a.exact


def test_declared_sets_build_exact_bloom_with_sender_keys():
    tx = Transaction(
        sender=0xAA, to=0xBB, data=b"\x01\x02\x03\x04",
        gas_limit=100_000,
        tags={"reads": [(0xBB, 5)], "writes": [(0xBB, 5)]},
    )
    bloom = bloom_for_transaction(tx)
    assert bloom.exact and not bloom.is_opaque
    assert bloom.may_read((0xBB, 5)) and bloom.may_write((0xBB, 5))
    # Implicit fee/nonce keys: two declared-set txs from one sender must
    # always conflict so their nonce order survives packing.
    sibling = bloom_for_transaction(Transaction(
        sender=0xAA, to=0xCC, nonce=1, data=b"\x05\x06\x07\x08",
        gas_limit=100_000, tags={"reads": [], "writes": []},
    ))
    assert bloom.may_conflict(sibling)


def test_transfer_bloom_covers_discovered_access_set():
    """The closed-form pure-transfer bloom is a superset of what the EVM
    actually touches — checked against discover_access_sets itself."""
    state = WorldState()
    state.set_balance(0xA1, 10**18)
    state.clear_journal()
    tx = Transaction(sender=0xA1, to=0xB2, value=5, gas_limit=50_000)
    bloom = bloom_for_transaction(tx, state=state)
    assert bloom.exact and not bloom.is_opaque
    [artifact] = discover_access_sets([tx], state)
    for key in artifact.access.reads:
        assert bloom.may_read(key), key
    for key in artifact.access.writes:
        assert bloom.may_write(key), key


def test_contract_call_without_declaration_gets_opaque_bloom():
    state = WorldState()
    state.set_balance(0xA1, 10**18)
    state.set_code(0xB2, b"\x00\x01\x02")
    state.clear_journal()
    call = Transaction(
        sender=0xA1, to=0xB2, data=b"\xAA\xBB\xCC\xDD",
        gas_limit=100_000,
    )
    assert bloom_for_transaction(call, state=state).is_opaque
    # Transfers *to* the contract are not pure either (its code runs).
    to_contract = Transaction(sender=0xA1, to=0xB2, value=1,
                              gas_limit=50_000)
    assert bloom_for_transaction(to_contract, state=state).is_opaque


def test_estimator_path_is_opt_in_and_marked_inexact():
    state = WorldState()
    state.set_balance(0xA1, 10**18)
    state.set_code(0xB2, b"\x00\x01\x02")
    state.clear_journal()
    call = Transaction(
        sender=0xA1, to=0xB2, data=b"\xAA\xBB\xCC\xDD",
        gas_limit=100_000,
    )

    class FakeArtifact:
        tx = call
        reads = {(0xB2, 3), (0xB2, CODE_KEY)}
        writes = {(0xB2, 3)}

    estimator = AccessEstimator()
    estimator.observe(FakeArtifact())
    assert len(estimator) == 1
    # Without trust, the estimate is ignored: opaque (never reordered).
    conservative = bloom_for_transaction(
        call, state=state, estimator=estimator
    )
    assert conservative.is_opaque
    trusted = bloom_for_transaction(
        call, state=state, estimator=estimator, trust_estimates=True
    )
    assert not trusted.is_opaque and not trusted.exact
    assert trusted.may_write((0xB2, 3))
    assert trusted.may_read((0xA1, BALANCE_KEY))


def test_estimator_evicts_oldest_shape_at_capacity():
    estimator = AccessEstimator(max_shapes=2)

    def artifact(to, selector):
        class A:
            tx = Transaction(sender=1, to=to, data=selector,
                             gas_limit=100_000)
            reads = {(to, 1)}
            writes = {(to, 1)}
        return A()

    estimator.observe(artifact(0xB1, b"\x01\x01\x01\x01"))
    estimator.observe(artifact(0xB2, b"\x02\x02\x02\x02"))
    estimator.observe(artifact(0xB3, b"\x03\x03\x03\x03"))
    assert len(estimator) == 2
    assert estimator.estimate(
        Transaction(sender=9, to=0xB1, data=b"\x01\x01\x01\x01",
                    gas_limit=100_000)
    ) is None


def _artifact(to, selector, reads, writes, sender=1):
    class A:
        pass
    A.tx = Transaction(sender=sender, to=to, data=selector,
                       gas_limit=100_000)
    A.reads = set(reads)
    A.writes = set(writes)
    return A()


def test_observe_actual_widens_until_decay_then_replaces():
    """Occasional mispredictions widen the union; *decay* consecutive
    ones replace it with the latest actual set (drift correction)."""
    from repro.obs import use_registry

    estimator = AccessEstimator(decay=3)
    sel = b"\xAA\xAA\xAA\xAA"
    estimator.observe(_artifact(0xB1, sel, {(0xB1, 1)}, {(0xB1, 1)}))

    with use_registry() as registry:
        # Two mispredictions in a row: union widens, streak builds.
        for slot in (2, 3):
            estimator.observe_actual(
                _artifact(0xB1, sel, {(0xB1, slot)}, {(0xB1, slot)})
            )
        reads, writes = estimator._shapes[(0xB1, sel)]
        assert (0xB1, 1) in reads and (0xB1, 3) in reads
        # Third consecutive miss hits the decay bound: the stale union
        # is dropped, only the latest actual set survives.
        estimator.observe_actual(
            _artifact(0xB1, sel, {(0xB1, 9)}, {(0xB1, 9)})
        )
        reads, writes = estimator._shapes[(0xB1, sel)]
        assert reads == {(0xB1, 9)} and writes == {(0xB1, 9)}
        corrections = registry.counter("packing.estimate_corrections")
        assert corrections.value == 3


def test_observe_actual_accurate_estimate_resets_streak():
    estimator = AccessEstimator(decay=2)
    sel = b"\xBB\xBB\xBB\xBB"
    estimator.observe(_artifact(0xB1, sel, {(0xB1, 1)}, {(0xB1, 1)}))
    # Miss (streak 1), then an accurate prediction (streak resets), then
    # another miss (streak 1 again) — never reaches decay=2, so the
    # union keeps every key it ever saw.
    estimator.observe_actual(_artifact(0xB1, sel, {(0xB1, 2)}, set()))
    estimator.observe_actual(_artifact(0xB1, sel, {(0xB1, 1)}, set()))
    estimator.observe_actual(_artifact(0xB1, sel, {(0xB1, 3)}, set()))
    reads, _ = estimator._shapes[(0xB1, sel)]
    assert {(0xB1, 1), (0xB1, 2), (0xB1, 3)} <= reads


def test_observe_actual_aborts_alone_count_as_misprediction():
    """A shape whose transactions keep aborting under OCC decays even
    when its access-set estimate was a superset of the actual keys."""
    estimator = AccessEstimator(decay=2)
    sel = b"\xCC\xCC\xCC\xCC"
    estimator.observe(
        _artifact(0xB1, sel, {(0xB1, 1), (0xB1, 2)}, {(0xB1, 1)})
    )
    accurate = _artifact(0xB1, sel, {(0xB1, 1)}, {(0xB1, 1)})
    estimator.observe_actual(accurate, aborts=1)
    estimator.observe_actual(accurate, aborts=2)
    reads, writes = estimator._shapes[(0xB1, sel)]
    assert reads == {(0xB1, 1)} and writes == {(0xB1, 1)}


def test_observe_actual_unknown_shape_falls_back_to_observe():
    estimator = AccessEstimator()
    estimator.observe_actual(
        _artifact(0xB9, b"\xDD\xDD\xDD\xDD", {(0xB9, 1)}, set())
    )
    assert len(estimator) == 1


def test_eviction_drops_the_stale_streak_with_the_shape():
    """Regression: evicting a shape at capacity must also drop its
    misprediction streak, or a re-learned shape would inherit a stale
    streak and decay on its first miss."""
    estimator = AccessEstimator(max_shapes=1, decay=2)
    sel_a, sel_b = b"\x01\x01\x01\x01", b"\x02\x02\x02\x02"
    estimator.observe(_artifact(0xB1, sel_a, {(0xB1, 1)}, set()))
    # Build a streak of 1 on shape A (one short of decay).
    estimator.observe_actual(_artifact(0xB1, sel_a, {(0xB1, 2)}, set()))
    assert estimator._stale.get((0xB1, sel_a)) == 1
    # Shape B evicts shape A — streak must go with it.
    estimator.observe(_artifact(0xB2, sel_b, {(0xB2, 1)}, set()))
    assert (0xB1, sel_a) not in estimator._stale
    # Re-learn shape A: a single miss must widen, not replace.
    estimator.observe(_artifact(0xB1, sel_a, {(0xB1, 1)}, set()))
    estimator.observe_actual(_artifact(0xB1, sel_a, {(0xB1, 5)}, set()))
    reads, _ = estimator._shapes[(0xB1, sel_a)]
    assert {(0xB1, 1), (0xB1, 5)} <= reads


def test_mempool_observe_outcomes_feeds_estimator():
    from repro.chain.mempool import Mempool

    pool = Mempool(estimator=AccessEstimator(decay=2))
    art = _artifact(0xB1, b"\xEE\xEE\xEE\xEE", {(0xB1, 1)}, {(0xB1, 1)})
    pool.observe_outcomes([art])
    assert len(pool.estimator) == 1
    # None slots (faulted / never-executed) are skipped; abort counts
    # line up by index.
    pool.observe_outcomes([None, art], abort_counts=[0, 1])
    assert pool.estimator._stale.get((0xB1, b"\xEE\xEE\xEE\xEE")) == 1
