"""Receipts, logs, and the mempool."""

from repro.chain import LogEntry, Mempool, Receipt, Transaction
from repro.chain.receipt import receipts_root


def make_receipt(i=0, success=True):
    return Receipt(
        tx_hash=bytes([i]) * 32,
        success=success,
        gas_used=21000 + i,
        logs=(LogEntry(address=1, topics=(i,), data=bytes([i])),),
        output=bytes([i]),
    )


class TestReceipts:
    def test_hash_is_stable(self):
        assert make_receipt(1).hash() == make_receipt(1).hash()

    def test_hash_reflects_success(self):
        assert make_receipt(1).hash() != make_receipt(
            1, success=False
        ).hash()

    def test_root_is_order_sensitive(self):
        a, b = make_receipt(1), make_receipt(2)
        assert receipts_root([a, b]) != receipts_root([b, a])

    def test_root_empty(self):
        assert isinstance(receipts_root([]), bytes)


class TestMempool:
    def tx(self, i):
        return Transaction(sender=1, to=2, nonce=i)

    def test_take_is_fifo(self):
        pool = Mempool()
        for i in range(5):
            pool.add(self.tx(i))
        taken = pool.take(3)
        assert [t.nonce for t in taken] == [0, 1, 2]
        assert len(pool) == 2

    def test_explicit_heard_at_orders(self):
        pool = Mempool()
        pool.add(self.tx(0), heard_at=10)
        pool.add(self.tx(1), heard_at=5)
        assert [t.nonce for t in pool.pending()] == [1, 0]

    def test_remove(self):
        pool = Mempool()
        txs = [self.tx(i) for i in range(3)]
        for tx in txs:
            pool.add(tx)
        pool.remove(txs[:2])
        assert len(pool) == 1
        assert not pool.contains(txs[0])

    def test_take_more_than_available(self):
        pool = Mempool()
        pool.add(self.tx(0))
        assert len(pool.take(10)) == 1
