"""Property tests: every wire format round-trips through RLP exactly.

The storage layer persists blocks, receipts, and mempool transactions
as RLP; recovery re-derives node state from those bytes alone. These
properties are what make that safe: for every reachable value,
``decode(encode(x)) == x`` and the encoding is canonical (re-encoding
the decoded value is bit-identical).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.chain import rlp
from repro.chain.block import Block, BlockHeader
from repro.chain.receipt import LogEntry, Receipt
from repro.chain.transaction import Transaction

uint64 = st.integers(min_value=0, max_value=2**64 - 1)
uint256 = st.integers(min_value=0, max_value=2**256 - 1)
address = st.integers(min_value=0, max_value=2**160 - 1)
hash32 = st.binary(min_size=32, max_size=32)

items = st.recursive(
    st.binary(max_size=48),
    lambda children: st.lists(children, max_size=4),
    max_leaves=24,
)

transactions = st.builds(
    Transaction,
    sender=address,
    to=st.one_of(st.none(), address),
    nonce=uint64,
    gas_limit=uint64,
    gas_price=uint64,
    value=uint256,
    data=st.binary(max_size=128),
)

headers = st.builds(
    BlockHeader,
    height=uint64,
    timestamp=uint64,
    coinbase=address,
    difficulty=uint64,
    gas_limit=uint64,
    parent_hash=hash32,
)

blocks = st.builds(
    Block,
    header=headers,
    transactions=st.lists(transactions, max_size=4),
    dag_edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=15),
        ),
        max_size=6,
    ),
)

log_entries = st.builds(
    LogEntry,
    address=address,
    topics=st.lists(uint256, max_size=4).map(tuple),
    data=st.binary(max_size=64),
)

receipts = st.builds(
    Receipt,
    tx_hash=hash32,
    success=st.booleans(),
    gas_used=uint64,
    logs=st.lists(log_entries, max_size=3).map(tuple),
    output=st.binary(max_size=64),
    contract_address=st.one_of(st.none(), address),
    error=st.text(max_size=40),
)


@given(items)
def test_generic_item_round_trip(item):
    encoded = rlp.encode(item)
    assert rlp.decode(encoded) == item
    # Canonical: one encoding per item.
    assert rlp.encode(rlp.decode(encoded)) == encoded


@given(uint256)
def test_int_round_trip(value):
    assert rlp.decode_int(rlp.encode_int(value)) == value


@given(transactions)
def test_transaction_round_trip(tx):
    blob = tx.to_rlp()
    restored = Transaction.from_rlp(blob)
    assert restored == tx
    assert restored.to_rlp() == blob
    assert restored.hash() == tx.hash()


@given(headers)
def test_header_round_trip(header):
    blob = header.to_rlp()
    restored = BlockHeader.from_rlp(blob)
    assert restored == header
    assert restored.to_rlp() == blob
    assert restored.hash() == header.hash()


@given(blocks)
def test_block_round_trip(block):
    blob = block.to_rlp()
    restored = Block.from_rlp(blob)
    assert restored.header == block.header
    assert restored.transactions == block.transactions
    assert restored.dag_edges == block.dag_edges
    assert restored.to_rlp() == blob
    assert restored.hash() == block.hash()


@given(receipts)
def test_receipt_round_trip(receipt):
    blob = receipt.to_rlp()
    restored = Receipt.from_rlp(blob)
    assert restored == receipt
    assert restored.to_rlp() == blob
    assert restored.hash() == receipt.hash()


@given(log_entries)
def test_log_entry_round_trip(entry):
    assert LogEntry.from_rlp_item(entry.to_rlp_item()) == entry


def test_create_vs_zero_address_distinct():
    # The zero address and "no address" (contract creation) must stay
    # distinguishable on the wire — a classic RLP encoding bug.
    create = Transaction(sender=1, to=None)
    to_zero = Transaction(sender=1, to=0)
    assert create.to_rlp() != to_zero.to_rlp()
    assert Transaction.from_rlp(create.to_rlp()).to is None
    assert Transaction.from_rlp(to_zero.to_rlp()).to == 0
