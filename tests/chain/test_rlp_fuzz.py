"""Fuzz the RLP decoders: malformed input must raise the typed error.

The WAL scanner trusts this contract — after a CRC pass, decoding a
record either yields a value or raises ``RLPDecodingError``. Any other
escape (IndexError, RecursionError, struct noise) would crash recovery
on exactly the corrupted input it exists to survive.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain import rlp
from repro.chain.block import Block, BlockHeader
from repro.chain.receipt import Receipt
from repro.chain.transaction import Transaction

DECODERS = [
    ("item", rlp.decode),
    ("transaction", Transaction.from_rlp),
    ("header", BlockHeader.from_rlp),
    ("block", Block.from_rlp),
    ("receipt", Receipt.from_rlp),
]


def assert_contained(blob: bytes) -> None:
    """Every decoder either returns a value or raises the typed error."""
    for name, decoder in DECODERS:
        try:
            decoder(blob)
        except rlp.RLPDecodingError:
            pass
        except Exception as exc:  # pragma: no cover - the failure mode
            raise AssertionError(
                f"{name} decoder escaped with {type(exc).__name__} "
                f"on {blob[:40].hex()}…"
            ) from exc


@given(st.binary(max_size=256))
def test_arbitrary_bytes_never_escape(blob):
    assert_contained(blob)


@given(
    st.data(),
    st.sampled_from(["flip", "truncate", "insert", "delete"]),
)
def test_mutated_valid_encodings_never_escape(data, mutation):
    tx = Transaction(
        sender=0xA11CE,
        to=0xB0B,
        value=data.draw(st.integers(min_value=0, max_value=2**64)),
        nonce=3,
        data=data.draw(st.binary(max_size=32)),
    )
    block = Block(
        header=BlockHeader(
            height=5, timestamp=99, coinbase=1, difficulty=1,
            gas_limit=10**7, parent_hash=b"\x17" * 32,
        ),
        transactions=[tx],
        dag_edges=[(0, 0)],
    )
    blob = bytearray(block.to_rlp())
    pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    if mutation == "flip":
        blob[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
    elif mutation == "truncate":
        del blob[pos:]
    elif mutation == "insert":
        blob.insert(pos, data.draw(st.integers(min_value=0, max_value=255)))
    else:
        del blob[pos]
    assert_contained(bytes(blob))


def test_deep_nesting_is_a_typed_error():
    # b"\xc1" * N is N nested single-item lists; without the depth bound
    # this would hit the interpreter recursion limit instead of raising
    # the typed error the scanner catches.
    hostile = b"\xc1" * 10_000 + b"\x80"
    try:
        rlp.decode(hostile)
    except rlp.RLPDecodingError as exc:
        assert "depth" in str(exc) or "nest" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("deep nesting decoded without error")


def test_nesting_at_the_bound_still_decodes():
    item = b""
    for _ in range(rlp.MAX_DEPTH - 1):
        item = [item]
    assert rlp.decode(rlp.encode(item)) == item


@given(st.binary(max_size=64))
def test_trailing_bytes_rejected(blob):
    encoded = rlp.encode(blob)
    try:
        rlp.decode(encoded + b"\x00")
    except rlp.RLPDecodingError:
        pass
    else:  # pragma: no cover
        raise AssertionError("trailing byte accepted")


def test_non_minimal_lengths_rejected():
    # 0xb8 = "bytes, 1-byte length" used for a payload short enough for
    # the compact form; canonical RLP must reject it.
    assert rlp.encode(b"\x01" * 5) == b"\x85" + b"\x01" * 5
    with pytest.raises(rlp.RLPDecodingError):
        rlp.decode(b"\xb8\x05" + b"\x01" * 5)
