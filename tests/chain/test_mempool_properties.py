"""Property tests for mempool admission, eviction, and dissemination.

Hypothesis drives interleaved ``hear``/``propose_block`` sequences and
capacity churn; the mempool's orderings (``known_before``, FIFO take,
eviction/readmission) must match a trivial reference model throughout.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import (
    DuplicateTransactionError,
    Mempool,
    SenderLimitError,
    Transaction,
)
from repro.chain.node import Node


def tx(sender=1, nonce=0, gas_limit=50_000):
    return Transaction(sender=sender, to=2, nonce=nonce,
                       gas_limit=gas_limit)


class TestTypedAdmission:
    def test_duplicate_raises_typed_error(self):
        pool = Mempool()
        pool.add(tx())
        with pytest.raises(DuplicateTransactionError):
            pool.add(tx())
        assert len(pool) == 1

    def test_per_sender_cap_raises_typed_error(self):
        pool = Mempool(per_sender_cap=2)
        pool.add(tx(nonce=0))
        pool.add(tx(nonce=1))
        with pytest.raises(SenderLimitError):
            pool.add(tx(nonce=2))
        # Another sender is unaffected by the first one's flood.
        assert pool.add(tx(sender=9, nonce=0))

    def test_take_frees_sender_slots(self):
        pool = Mempool(per_sender_cap=1)
        pool.add(tx(nonce=0))
        pool.take(1)
        assert pool.add(tx(nonce=1))

    def test_remove_frees_sender_slots(self):
        pool = Mempool(per_sender_cap=1)
        first = tx(nonce=0)
        pool.add(first)
        pool.remove([first])
        assert pool.add(tx(nonce=1))

    def test_eviction_frees_sender_slots(self):
        pool = Mempool(capacity=2, per_sender_cap=2)
        a, b, c = tx(nonce=0), tx(nonce=1), tx(sender=9, nonce=0)
        pool.add(a)
        pool.add(b)
        pool.add(c)  # evicts a, sender 1 drops to one pending slot
        assert pool.add(tx(nonce=3))


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.integers(1, 8),
    arrivals=st.lists(st.integers(0, 15), min_size=1, max_size=40),
)
def test_eviction_keeps_newest_and_allows_readmission(capacity, arrivals):
    """Capacity churn always retains the newest-heard suffix, and an
    evicted transaction readmits as if heard for the first time."""
    pool = Mempool(capacity=capacity)
    model: list[int] = []  # nonces in arrival order
    for nonce in arrivals:
        try:
            pool.add(tx(nonce=nonce))
        except DuplicateTransactionError:
            assert nonce in model[-capacity:] if model else False
            continue
        # Readmission of a previously-evicted nonce goes to the back.
        if nonce in model:
            model.remove(nonce)
        model.append(nonce)
        model = model[-capacity:]
        assert len(pool) == len(model)
    assert [t.nonce for t in pool.pending()] == model
    # Anything evicted is re-admittable right now.
    evicted = set(arrivals) - set(model)
    for nonce in sorted(evicted)[: capacity]:
        assert pool.add(tx(nonce=nonce))


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("hear"), st.integers(0, 30)),
            st.tuples(st.just("propose"), st.integers(1, 4)),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_known_before_under_interleaved_hear_and_propose(ops):
    """`known_before` matches a reference model of (pooled, heard-at)
    across arbitrary interleavings of gossip and block proposals."""
    node = Node()
    heard_at: dict[int, int] = {}  # nonce -> arrival stamp (if pooled)
    for op, value in ops:
        if op == "hear":
            stamp = node.mempool.clock
            if node.hear(tx(nonce=value)):
                heard_at[value] = stamp
            else:
                assert value in heard_at  # duplicate of a pooled tx
        else:
            block = node.propose_block(max_transactions=value)
            took = [t.nonce for t in block.transactions]
            # FIFO: the proposal takes the oldest-heard prefix.
            expected = sorted(heard_at, key=heard_at.get)[:value]
            assert took == expected
            node.execute_block(block)
            for nonce in took:
                del heard_at[nonce]
        now = node.mempool.clock
        for nonce in range(31):
            assert node.mempool.known_before(tx(nonce=nonce), now) == (
                nonce in heard_at
            )
            # Nothing is known before (or at) its own arrival stamp.
            if nonce in heard_at:
                assert not node.mempool.known_before(
                    tx(nonce=nonce), heard_at[nonce]
                )


@settings(max_examples=60, deadline=None)
@given(
    gas_limits=st.lists(
        st.integers(21_000, 200_000), min_size=1, max_size=20
    ),
    gas_target=st.integers(21_000, 500_000),
    count=st.integers(1, 20),
)
def test_take_respects_gas_target(gas_limits, gas_target, count):
    pool = Mempool()
    for nonce, gas_limit in enumerate(gas_limits):
        pool.add(tx(nonce=nonce, gas_limit=gas_limit))
    taken = pool.take(count, gas_target=gas_target)
    # Always at least one (a single over-budget tx must not wedge), in
    # FIFO order, and never past the target beyond the first.
    assert [t.nonce for t in taken] == list(range(len(taken)))
    assert 1 <= len(taken) <= count
    total = sum(t.gas_limit for t in taken)
    if len(taken) > 1:
        assert total <= gas_target
    # Maximality: the next pending tx would not also have fit.
    leftover = pool.pending()
    if leftover and len(taken) < count:
        assert total + leftover[0].gas_limit > gas_target


@settings(max_examples=80, deadline=None)
@given(
    stamps=st.lists(st.integers(0, 50), min_size=1, max_size=25),
    chunk=st.integers(1, 5),
)
def test_arrival_order_survives_out_of_order_heard_at(stamps, chunk):
    """`pending`/`take` order equals a stable sort on heard_at — the
    regression guard for the insertion-ordered pool: in-order gossip
    must never re-sort, and late (out-of-order) stamps must still land
    in their historical position."""
    pool = Mempool()
    for nonce, stamp in enumerate(stamps):
        pool.add(tx(nonce=nonce), heard_at=stamp)
    expected = [
        nonce for nonce, _ in sorted(
            enumerate(stamps), key=lambda item: item[1]
        )
    ]
    assert [t.nonce for t in pool.pending()] == expected
    taken: list[int] = []
    while len(pool):
        got = pool.take(chunk)
        assert got, "take must always make progress"
        taken.extend(t.nonce for t in got)
    assert taken == expected


def test_monotonic_arrivals_never_dirty_the_order():
    """The common case — gossip arriving in stamp order — must keep the
    lazy re-sort switched off (the O(n log n)-per-take regression)."""
    pool = Mempool()
    for nonce in range(20):
        pool.add(tx(nonce=nonce))
    assert not pool._order_dirty
    pool.add(tx(nonce=99), heard_at=3)  # a late straggler
    assert pool._order_dirty
    pool.pending()
    assert not pool._order_dirty  # one re-sort, then clean again


def test_spill_entries_round_trip_preserves_order_and_blooms():
    """Drain → spill → readmit keeps arrival order and reuses the
    spilled blooms verbatim (no re-derivation on restart)."""
    from repro.chain.bloom import AccessBloom
    from repro.chain.state import WorldState

    state = WorldState()
    for sender in (0xA1, 0xA2):
        state.set_balance(sender, 10**9)
    state.clear_journal()
    pool = Mempool(state=state)
    txs = [
        Transaction(sender=0xA1, to=0xB1, value=1, nonce=1,
                    gas_limit=50_000),
        Transaction(sender=0xA2, to=0xB2, value=1, nonce=1,
                    gas_limit=50_000,
                    tags={"reads": [(0xB2, 5)], "writes": [(0xB2, 5)]}),
        Transaction(sender=0xA1, to=0xB1, value=2, nonce=2,
                    gas_limit=50_000),
    ]
    for t in txs:
        pool.add(t)
    spilled = pool.spill_entries()
    assert [t.hash() for t, _ in spilled] == [t.hash() for t in txs]
    fresh = Mempool(state=state)
    for t, blob in spilled:
        fresh.add(t, bloom=AccessBloom.from_bytes(blob))
    assert [t.hash() for t in fresh.pending()] == [t.hash() for t in txs]
    # The declared-access bloom (tags are not on the wire) survived:
    # it still conflicts with a sibling touching the declared key.
    readmitted = fresh.spill_entries()
    declared = AccessBloom.from_bytes(readmitted[1][1])
    assert declared.exact and not declared.is_opaque
    assert declared.may_write((0xB2, 5))
    assert readmitted[1][1] == spilled[1][1]


def test_propose_block_gas_target_matches_mempool_take():
    """The offline proposal path cuts on gas exactly like the serve loop."""
    node = Node()
    for nonce in range(6):
        node.hear(tx(nonce=nonce, gas_limit=40_000))
    block = node.propose_block(max_transactions=10, gas_target=100_000)
    assert [t.nonce for t in block.transactions] == [0, 1]
    assert len(node.mempool) == 4
    node.execute_block(block)
    follow_up = node.propose_block(max_transactions=10, gas_target=100_000)
    assert [t.nonce for t in follow_up.transactions] == [2, 3]
