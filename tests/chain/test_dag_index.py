"""Inverted-index DAG builder vs the O(n²) pairwise executable spec.

``build_dag_edges`` was rewritten around an inverted index keyed by
``(address, slot)``; the original pairwise scan survives as
``build_dag_edges_pairwise``. The property here is exact equality — same
edges, same order — for arbitrary access-set populations, so the fast
builder can never silently drop (or reorder) a dependency.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.chain.dag import build_dag_edges, build_dag_edges_pairwise
from repro.chain.state import AccessSet
from repro.chain.transaction import Transaction

#: A deliberately small key universe so collisions (conflicts) are common.
KEYS = [(addr, slot) for addr in (0xA, 0xB) for slot in range(3)]

access_sets = st.builds(
    AccessSet,
    reads=st.sets(st.sampled_from(KEYS), max_size=4),
    writes=st.sets(st.sampled_from(KEYS), max_size=4),
)


@st.composite
def blocks(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    senders = draw(
        st.lists(
            st.integers(min_value=1, max_value=4), min_size=n, max_size=n
        )
    )
    sets = draw(st.lists(access_sets, min_size=n, max_size=n))
    txs = [
        Transaction(sender=sender, to=0x99, nonce=i)
        for i, sender in enumerate(senders)
    ]
    return txs, sets


@given(blocks())
def test_index_builder_equals_pairwise_spec(block):
    txs, sets = block
    assert build_dag_edges(txs, sets) == build_dag_edges_pairwise(txs, sets)


@given(st.lists(st.integers(min_value=1, max_value=3), max_size=10))
def test_same_sender_only_conflicts(senders):
    # No storage conflicts at all: every edge must come from same-sender
    # nonce ordering, and both builders must agree on it.
    txs = [
        Transaction(sender=sender, to=0x99, nonce=i)
        for i, sender in enumerate(senders)
    ]
    sets = [AccessSet() for _ in txs]
    edges = build_dag_edges(txs, sets)
    assert edges == build_dag_edges_pairwise(txs, sets)
    for i, j in edges:
        assert txs[i].sender == txs[j].sender
        assert i < j


def test_mixed_conflicts_preserve_edge_order():
    # Same-sender chain interleaved with write-write and read-write
    # conflicts; order must match the pairwise spec exactly (sorted by
    # dependent, then dependency).
    txs = [
        Transaction(sender=1, to=0x99, nonce=0),
        Transaction(sender=2, to=0x99, nonce=0),
        Transaction(sender=1, to=0x99, nonce=1),
        Transaction(sender=3, to=0x99, nonce=0),
    ]
    sets = [
        AccessSet(writes={(9, 0)}),
        AccessSet(reads={(9, 0)}, writes={(9, 1)}),
        AccessSet(reads={(9, 1)}),
        AccessSet(writes={(9, 0)}),
    ]
    edges = build_dag_edges(txs, sets)
    assert edges == build_dag_edges_pairwise(txs, sets)
    assert (0, 2) in edges  # same sender
    assert (0, 1) in edges  # write -> read
    assert (1, 2) in edges  # write -> read
    assert (0, 3) in edges  # write -> write
