"""Pack-equivalence property harness for conflict-aware block packing.

The tentpole invariant: a chain cut by ``Mempool.take_packed`` commits
**bit-identical state** to FIFO replay of the same transaction set. The
workloads here are deliberately order-*sensitive* — senders with tight
balances whose transfers succeed or fail depending on credits from
earlier transactions — so any reordering of a conflicting pair would
change which transfers fail and fork the digest. Alongside it:

* lanes never contain a cross-lane real conflict (blooms have no false
  negatives, so bloom-disjoint lanes are really disjoint);
* no starvation: every transaction is included within (rank + 1) cuts
  even under a continuous hot-key flood, and the aging bound holds;
* the parity survives the MTPU executor with injected PU faults.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.mempool import Mempool, PackingPolicy
from repro.chain.node import Node
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.core.mtpu import MTPUExecutor
from repro.core.scheduler import run_spatial_temporal
from repro.faults import PU_DEAD, FaultInjector, FaultPlan, PUFault

#: Small, overlapping account pool with tight balances: transfers
#: frequently conflict AND the conflict order decides which ones fail.
ACCOUNTS = [0x100 + i for i in range(6)]

transfer_specs = st.lists(
    st.tuples(
        st.integers(0, len(ACCOUNTS) - 1),  # sender index
        st.integers(0, len(ACCOUNTS) - 1),  # recipient index
        st.integers(1, 30),                 # value (can exceed balance)
    ),
    min_size=2,
    max_size=24,
)

policies = st.builds(
    PackingPolicy,
    lane_depth=st.one_of(st.none(), st.integers(1, 4)),
    aging_bound=st.integers(0, 4),
)


def seed_state(balances) -> WorldState:
    state = WorldState()
    for account, balance in zip(ACCOUNTS, balances):
        state.set_balance(account, balance)
    state.clear_journal()
    return state


def make_txs(specs) -> list[Transaction]:
    nonces: dict[int, int] = {}
    txs = []
    for sender_idx, recipient_idx, value in specs:
        sender = ACCOUNTS[sender_idx]
        nonces[sender] = nonces.get(sender, 0) + 1
        txs.append(Transaction(
            sender=sender,
            to=ACCOUNTS[recipient_idx],
            value=value,
            nonce=nonces[sender],
            gas_limit=50_000,
        ))
    return txs


def build_chain(balances, txs, packing, policy=None, block_size=4,
                executor=None):
    node = Node(state=seed_state(balances))
    for at, tx in enumerate(txs):
        node.hear(tx, at=at)
    blocks = []
    while len(node.mempool):
        block = node.propose_block(
            max_transactions=block_size,
            packing=packing,
            packing_policy=policy,
        )
        assert block.transactions, "a cut must always make progress"
        if executor is None:
            node.execute_block(block)
        else:
            executor(node, block)
        blocks.append(block)
    return node, blocks


def receipts_by_hash(node):
    out = {}
    for block in node.chain:
        for tx, receipt in zip(
            block.transactions, node.receipts[block.hash()]
        ):
            out[tx.hash()] = receipt
    return out


@settings(max_examples=40, deadline=None)
@given(
    balances=st.lists(
        st.integers(1, 40),
        min_size=len(ACCOUNTS), max_size=len(ACCOUNTS),
    ),
    specs=transfer_specs,
    policy=policies,
    block_size=st.integers(1, 6),
)
def test_packed_chain_is_digest_identical_to_fifo(
    balances, specs, policy, block_size
):
    txs = make_txs(specs)
    fifo, _ = build_chain(balances, txs, "fifo", block_size=block_size)
    packed, packed_blocks = build_chain(
        balances, txs, "conflict_aware", policy=policy,
        block_size=block_size,
    )
    assert (fifo.state.state_digest()
            == packed.state.state_digest())
    # Same per-transaction receipts, not just the same final state.
    assert receipts_by_hash(fifo) == receipts_by_hash(packed)
    # Every transaction committed exactly once.
    committed = [
        tx.hash() for b in packed_blocks for tx in b.transactions
    ]
    assert sorted(committed) == sorted(tx.hash() for tx in txs)


@settings(max_examples=40, deadline=None)
@given(
    balances=st.lists(
        st.integers(1, 40),
        min_size=len(ACCOUNTS), max_size=len(ACCOUNTS),
    ),
    specs=transfer_specs,
    policy=policies,
)
def test_lanes_never_share_a_real_conflict(balances, specs, policy):
    """Cross-lane pairs are disjoint in their *executed* access sets —
    the contract that lets a dispatcher run lanes with no DAG edges
    between them."""
    txs = make_txs(specs)
    _, blocks = build_chain(
        balances, txs, "conflict_aware", policy=policy, block_size=6
    )
    for block in blocks:
        assert block.packed_lanes is not None
        # The lanes partition the block.
        flat = sorted(i for lane in block.packed_lanes for i in lane)
        assert flat == list(range(len(block.transactions)))
        lane_of = {
            i: lane_idx
            for lane_idx, lane in enumerate(block.packed_lanes)
            for i in lane
        }
        artifacts = block.artifacts
        for i in range(len(block.transactions)):
            for j in range(i + 1, len(block.transactions)):
                if lane_of[i] != lane_of[j]:
                    assert not artifacts[i].access.conflicts_with(
                        artifacts[j].access
                    ), (i, j)


def test_cold_transaction_rides_past_a_hot_prefix():
    """A non-conflicting transaction is never deferred — it fills the
    block the hot chain cannot."""
    state = WorldState()
    for account in (0xA, 0xB):
        state.set_balance(account, 10**9)
    state.clear_journal()
    pool = Mempool(state=state)
    hot = 0xAB00
    for i in range(10):
        pool.add(Transaction(sender=0xA, to=hot, value=1, nonce=i + 1,
                             gas_limit=50_000))
    cold = Transaction(sender=0xB, to=0xCD00, value=1, nonce=1,
                       gas_limit=50_000)
    pool.add(cold)
    take = pool.take_packed(
        4, policy=PackingPolicy(lane_depth=2, aging_bound=8)
    )
    hashes = [tx.hash() for tx in take.transactions]
    assert cold.hash() in hashes
    assert len(take.lanes) == 2 and take.deferred > 0


def test_every_deferred_tx_included_within_rank_plus_one_cuts():
    """Anti-starvation under continuous flood: a transaction at backlog
    rank r commits within r+1 cuts, however much newer hot traffic
    keeps arriving behind it."""
    hot = 0xAB00
    state = WorldState()
    senders = [0x500 + i for i in range(4)]
    for sender in senders:
        state.set_balance(sender, 10**9)
    state.clear_journal()
    pool = Mempool(state=state)
    nonces = dict.fromkeys(senders, 0)

    def hot_tx(i):
        sender = senders[i % len(senders)]
        nonces[sender] += 1
        return Transaction(sender=sender, to=hot, value=1,
                           nonce=nonces[sender], gas_limit=50_000)

    victim_rank = 19
    for i in range(victim_rank):
        pool.add(hot_tx(i))
    victim = hot_tx(victim_rank)
    pool.add(victim)
    policy = PackingPolicy(lane_depth=2, aging_bound=3)
    cuts = 0
    while pool.contains(victim):
        cuts += 1
        assert cuts <= victim_rank + 1, "victim starved"
        take = pool.take_packed(8, policy=policy)
        assert take.transactions, "cuts must always make progress"
        # The flood: more conflicting traffic lands behind the victim.
        for i in range(8):
            pool.add(hot_tx(1000 + cuts * 8 + i))
    assert cuts <= victim_rank + 1


@settings(max_examples=15, deadline=None)
@given(
    balances=st.lists(
        st.integers(1, 40),
        min_size=len(ACCOUNTS), max_size=len(ACCOUNTS),
    ),
    specs=transfer_specs,
    dead=st.lists(st.integers(0, 3), min_size=1, max_size=3,
                  unique=True),
    at_cycle=st.integers(0, 2_000),
)
def test_packed_chain_survives_pu_faults(balances, specs, dead, at_cycle):
    """Packed blocks through the MTPU with dead PUs still land on the
    FIFO digest — degradation, never divergence."""
    txs = make_txs(specs)
    fifo, _ = build_chain(balances, txs, "fifo")

    def mtpu_execute(node, block):
        injector = FaultInjector(FaultPlan(
            seed=7,
            pu_faults=tuple(
                PUFault(pu_id=p, kind=PU_DEAD, at_cycle=at_cycle)
                for p in dead
            ),
        ))
        context = node.block_context(block.header.height)
        executor = MTPUExecutor(
            node.state, block=context, num_pus=4,
            artifacts={
                a.tx.hash(): a for a in (block.artifacts or [])
            },
        )
        schedule = run_spatial_temporal(
            executor, block.transactions, block.dag_edges,
            fault_injector=injector,
        )
        receipts = schedule.receipts_in_block_order(block.transactions)
        node.commit_block(block, receipts)

    packed, _ = build_chain(
        balances, txs, "conflict_aware",
        policy=PackingPolicy(lane_depth=2, aging_bound=2),
        executor=mtpu_execute,
    )
    assert (fifo.state.state_digest()
            == packed.state.state_digest())
    assert receipts_by_hash(fifo) == receipts_by_hash(packed)
