"""World state: journaling atomicity and access tracking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.state import AccessSet, WorldState


class TestBasics:
    def test_fresh_account_defaults(self):
        state = WorldState()
        assert state.get_balance(1) == 0
        assert state.get_nonce(1) == 0
        assert state.get_code(1) == b""
        assert state.get_storage(1, 0) == 0

    def test_balance_set_get(self):
        state = WorldState()
        state.set_balance(1, 100)
        assert state.get_balance(1) == 100

    def test_transfer(self):
        state = WorldState()
        state.set_balance(1, 100)
        state.transfer(1, 2, 30)
        assert state.get_balance(1) == 70
        assert state.get_balance(2) == 30

    def test_transfer_insufficient_raises(self):
        state = WorldState()
        with pytest.raises(ValueError):
            state.transfer(1, 2, 1)

    def test_transfer_zero_is_noop(self):
        state = WorldState()
        state.transfer(1, 2, 0)
        assert not state.account_exists(1)

    def test_storage_zero_delete(self):
        state = WorldState()
        state.set_storage(1, 5, 9)
        state.set_storage(1, 5, 0)
        assert state.get_storage(1, 5) == 0
        assert 5 not in state.account(1).storage

    def test_delete_account(self):
        state = WorldState()
        state.set_code(1, b"\x01")
        state.delete_account(1)
        assert not state.account_exists(1)


class TestJournal:
    def test_revert_storage(self):
        state = WorldState()
        state.set_storage(1, 0, 10)
        token = state.snapshot()
        state.set_storage(1, 0, 20)
        state.set_storage(1, 1, 30)
        state.revert(token)
        assert state.get_storage(1, 0) == 10
        assert state.get_storage(1, 1) == 0

    def test_revert_balance_and_nonce(self):
        state = WorldState()
        state.set_balance(1, 5)
        token = state.snapshot()
        state.set_balance(1, 50)
        state.increment_nonce(1)
        state.revert(token)
        assert state.get_balance(1) == 5
        assert state.get_nonce(1) == 0

    def test_revert_account_creation(self):
        state = WorldState()
        token = state.snapshot()
        state.set_balance(42, 1)
        state.revert(token)
        assert not state.account_exists(42)

    def test_nested_snapshots(self):
        state = WorldState()
        outer = state.snapshot()
        state.set_storage(1, 0, 1)
        inner = state.snapshot()
        state.set_storage(1, 0, 2)
        state.revert(inner)
        assert state.get_storage(1, 0) == 1
        state.revert(outer)
        assert state.get_storage(1, 0) == 0

    def test_revert_code_and_delete(self):
        state = WorldState()
        state.set_code(1, b"\xaa")
        token = state.snapshot()
        state.delete_account(1)
        state.revert(token)
        assert state.get_code(1) == b"\xaa"

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 3), st.integers(0, 100)
            ),
            max_size=30,
        )
    )
    def test_revert_restores_digest(self, writes):
        state = WorldState()
        state.set_balance(0, 1000)
        state.clear_journal()
        digest_before = state.state_digest()
        token = state.snapshot()
        for address, slot, value in writes:
            state.set_storage(address, slot, value)
        state.revert(token)
        assert state.state_digest() == digest_before


class TestAccessTracking:
    def test_reads_and_writes_recorded(self):
        state = WorldState()
        access = state.begin_access_tracking()
        state.get_storage(1, 7)
        state.set_storage(2, 8, 1)
        result = state.end_access_tracking()
        assert result is access
        assert (1, 7) in result.reads
        assert (2, 8) in result.writes

    def test_balance_uses_sentinel_key(self):
        state = WorldState()
        state.begin_access_tracking()
        state.get_balance(3)
        access = state.end_access_tracking()
        assert (3, "balance") in access.reads

    def test_tracking_off_by_default(self):
        state = WorldState()
        state.get_storage(1, 1)  # must not raise

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            WorldState().end_access_tracking()


class TestAccessSetConflicts:
    def test_write_write_conflict(self):
        a = AccessSet(writes={(1, 0)})
        b = AccessSet(writes={(1, 0)})
        assert a.conflicts_with(b)

    def test_read_write_conflict_symmetric(self):
        a = AccessSet(reads={(1, 0)})
        b = AccessSet(writes={(1, 0)})
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_read_read_no_conflict(self):
        a = AccessSet(reads={(1, 0)})
        b = AccessSet(reads={(1, 0)})
        assert not a.conflicts_with(b)

    def test_disjoint_no_conflict(self):
        a = AccessSet(reads={(1, 0)}, writes={(1, 1)})
        b = AccessSet(reads={(2, 0)}, writes={(2, 1)})
        assert not a.conflicts_with(b)

    def test_merge(self):
        a = AccessSet(reads={(1, 0)})
        b = AccessSet(writes={(2, 0)})
        a.merge(b)
        assert (2, 0) in a.writes


class TestCopyAndDigest:
    def test_copy_is_deep(self):
        state = WorldState()
        state.set_storage(1, 0, 5)
        clone = state.copy()
        clone.set_storage(1, 0, 9)
        assert state.get_storage(1, 0) == 5

    def test_digest_ignores_empty_accounts(self):
        a = WorldState()
        b = WorldState()
        b.account(5)  # empty account created lazily
        assert a.state_digest() == b.state_digest()

    def test_digest_order_independent(self):
        a = WorldState()
        a.set_balance(1, 10)
        a.set_balance(2, 20)
        b = WorldState()
        b.set_balance(2, 20)
        b.set_balance(1, 10)
        assert a.state_digest() == b.state_digest()
