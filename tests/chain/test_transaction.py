"""Transaction wire format and accessors (paper Fig. 3a)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.chain import Transaction
from repro.crypto import selector


class TestAccessors:
    def test_selector_extraction(self):
        data = selector("transfer(address,uint256)") + b"\x00" * 64
        tx = Transaction(sender=1, to=2, data=data)
        assert tx.selector == selector("transfer(address,uint256)")

    def test_short_data_has_no_selector(self):
        assert Transaction(sender=1, to=2, data=b"\x01").selector is None

    def test_create_has_no_selector(self):
        tx = Transaction(sender=1, to=None, data=b"\x01" * 10)
        assert tx.is_create
        assert tx.selector is None

    def test_tags_do_not_affect_identity(self):
        a = Transaction(sender=1, to=2, tags={"x": 1})
        b = Transaction(sender=1, to=2, tags={"y": 2})
        assert a == b
        assert a.hash() == b.hash()


class TestWireFormat:
    def test_rlp_roundtrip_simple(self):
        tx = Transaction(sender=0xA, to=0xB, nonce=3, gas_limit=90_000,
                         gas_price=7, value=123, data=b"\xde\xad")
        assert Transaction.from_rlp(tx.to_rlp()) == tx

    def test_create_roundtrip(self):
        tx = Transaction(sender=0xA, to=None, data=b"\x60\x00")
        decoded = Transaction.from_rlp(tx.to_rlp())
        assert decoded.to is None

    def test_hash_changes_with_nonce(self):
        a = Transaction(sender=1, to=2, nonce=0)
        b = Transaction(sender=1, to=2, nonce=1)
        assert a.hash() != b.hash()

    @given(
        st.integers(0, (1 << 160) - 1),
        st.one_of(st.none(), st.integers(0, (1 << 160) - 1)),
        st.integers(0, 1 << 32),
        st.integers(0, 1 << 62),
        st.binary(max_size=100),
    )
    def test_rlp_roundtrip_property(self, sender, to, nonce, value, data):
        tx = Transaction(sender=sender, to=to, nonce=nonce, value=value,
                         data=data)
        assert Transaction.from_rlp(tx.to_rlp()) == tx
