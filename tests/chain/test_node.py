"""The three-stage node model: dissemination, consensus, execution."""

import pytest

from repro.chain.node import Node, StageClock
from repro.chain.receipt import receipts_root
from repro.workload import ActionLibrary

import random


@pytest.fixture()
def node(deployment):
    return Node(state=deployment.state.copy())


def feed_transactions(node, deployment, count=10, seed=0):
    library = ActionLibrary(deployment, random.Random(seed))
    for _ in range(count):
        call = library.plan("Dai")
        node.hear(library.to_transaction(call))


class TestStageClock:
    def test_budgets_partition_interval(self):
        clock = StageClock(block_interval=13.0, execution_fraction=0.05)
        assert clock.execution_budget + clock.idle_budget == 13.0
        assert clock.idle_budget > clock.execution_budget


class TestDissemination:
    def test_hear_fills_mempool(self, node, deployment):
        feed_transactions(node, deployment, 5)
        assert len(node.mempool) == 5

    def test_duplicate_hear_is_idempotent(self, node, deployment):
        library = ActionLibrary(deployment, random.Random(1))
        tx = library.to_transaction(library.plan("Dai"))
        node.hear(tx)
        node.hear(tx)
        assert len(node.mempool) == 1

    def test_known_before(self, node, deployment):
        library = ActionLibrary(deployment, random.Random(1))
        tx = library.to_transaction(library.plan("Dai"))
        node.hear(tx, at=5)
        assert node.mempool.known_before(tx, 6)
        assert not node.mempool.known_before(tx, 5)


class TestConsensusAndExecution:
    def test_propose_block_embeds_dag(self, node, deployment):
        feed_transactions(node, deployment, 12)
        block = node.propose_block()
        assert len(block.transactions) == 12
        for i, j in block.dag_edges:
            assert 0 <= i < j < 12

    def test_propose_respects_max(self, node, deployment):
        feed_transactions(node, deployment, 10)
        block = node.propose_block(max_transactions=4)
        assert len(block.transactions) == 4
        assert len(node.mempool) == 6

    def test_execute_block_advances_chain(self, node, deployment):
        feed_transactions(node, deployment, 6)
        block = node.propose_block()
        receipts = node.execute_block(block)
        assert len(node.chain) == 1
        assert len(receipts) == 6
        assert all(r.success for r in receipts)

    def test_verify_block_on_identical_peer(self, node, deployment):
        peer = Node(state=deployment.state.copy())
        feed_transactions(node, deployment, 8)
        block = node.propose_block()
        receipts = node.execute_block(block)
        assert peer.verify_block(block, receipts_root(receipts))

    def test_blockhash_service_spans_chain(self, node, deployment):
        feed_transactions(node, deployment, 2)
        block1 = node.propose_block()
        node.execute_block(block1)
        context = node.block_context()
        assert context.height == 2
        assert context.blockhash_fn(1) == int.from_bytes(
            block1.hash(), "big"
        )
        assert context.blockhash_fn(2) == 0

    def test_execution_is_deterministic_across_nodes(self, deployment):
        results = []
        for _ in range(2):
            node = Node(state=deployment.state.copy())
            feed_transactions(node, deployment, 10, seed=3)
            block = node.propose_block()
            receipts = node.execute_block(block)
            results.append(
                (receipts_root(receipts), node.state.state_digest())
            )
        assert results[0] == results[1]
