"""Dependency-DAG discovery and graph utilities."""

from hypothesis import given
from hypothesis import strategies as st

from repro.chain.dag import (
    build_dag_edges,
    critical_path_length,
    dependency_ratio,
    discover_access_sets,
    indegrees,
    transitive_reduction,
)
from repro.chain.state import AccessSet
from repro.chain.transaction import Transaction


def txs_with_senders(senders):
    return [Transaction(sender=s, to=0x99, nonce=i)
            for i, s in enumerate(senders)]


class TestBuildEdges:
    def test_same_sender_ordering(self):
        txs = txs_with_senders([1, 1, 2])
        sets = [AccessSet() for _ in txs]
        assert build_dag_edges(txs, sets) == [(0, 1)]

    def test_conflict_edge(self):
        txs = txs_with_senders([1, 2])
        sets = [
            AccessSet(writes={(9, 0)}),
            AccessSet(reads={(9, 0)}),
        ]
        assert build_dag_edges(txs, sets) == [(0, 1)]

    def test_edges_point_forward(self):
        txs = txs_with_senders([1, 2, 3, 1, 2])
        sets = [AccessSet(writes={(9, i % 2)}) for i in range(5)]
        for i, j in build_dag_edges(txs, sets):
            assert i < j

    def test_no_conflicts_no_edges(self):
        txs = txs_with_senders([1, 2, 3])
        sets = [AccessSet(writes={(9, i)}) for i in range(3)]
        assert build_dag_edges(txs, sets) == []


class TestTransitiveReduction:
    def test_removes_implied_edge(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        assert transitive_reduction(3, edges) == [(0, 1), (1, 2)]

    def test_keeps_required_edges(self):
        edges = [(0, 2), (1, 2)]
        assert sorted(transitive_reduction(3, edges)) == [(0, 2), (1, 2)]

    def test_long_chain_reduction(self):
        # Complete forward graph reduces to a chain.
        n = 6
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        reduced = transitive_reduction(n, edges)
        assert sorted(reduced) == [(i, i + 1) for i in range(n - 1)]

    @given(st.integers(2, 12), st.data())
    def test_reduction_preserves_reachability(self, n, data):
        all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = data.draw(st.lists(st.sampled_from(all_pairs),
                                   unique=True, max_size=20))
        reduced = transitive_reduction(n, edges)

        def reach(edge_list):
            adj = [set() for _ in range(n)]
            for i, j in edge_list:
                adj[i].add(j)
            closure = [set(a) for a in adj]
            for i in range(n - 1, -1, -1):
                for j in list(closure[i]):
                    closure[i] |= closure[j]
            return closure

        assert reach(edges) == reach(reduced)


class TestMetrics:
    def test_dependency_ratio(self):
        assert dependency_ratio(4, [(0, 1), (0, 2)]) == 0.5
        assert dependency_ratio(0, []) == 0.0

    def test_indegrees(self):
        assert indegrees(3, [(0, 2), (1, 2)]) == [0, 0, 2]

    def test_critical_path(self):
        assert critical_path_length(3, []) == 1
        assert critical_path_length(3, [(0, 1), (1, 2)]) == 3
        assert critical_path_length(4, [(0, 1), (2, 3)]) == 2


class TestDiscovery:
    def test_discovery_leaves_state_untouched(self, deployment):
        from repro.workload import generate_block

        block = generate_block(deployment, num_transactions=10, seed=4)
        digest = deployment.state.state_digest()
        discover_access_sets(block.transactions, deployment.state)
        assert deployment.state.state_digest() == digest

    def test_transfers_between_disjoint_accounts_independent(
        self, deployment
    ):
        from repro.evm import abi

        a, b, c, d = deployment.accounts[:4]
        token = deployment.address_of("Dai")
        txs = [
            Transaction(sender=a, to=token, gas_limit=10**6,
                        data=abi.encode_call(
                            "transfer(address,uint256)", b, 1)),
            Transaction(sender=c, to=token, gas_limit=10**6,
                        data=abi.encode_call(
                            "transfer(address,uint256)", d, 1)),
        ]
        sets = discover_access_sets(txs, deployment.state)
        assert build_dag_edges(txs, sets) == []

    def test_overlapping_transfers_conflict(self, deployment):
        from repro.evm import abi

        a, b, c = deployment.accounts[:3]
        token = deployment.address_of("Dai")
        txs = [
            Transaction(sender=a, to=token, gas_limit=10**6,
                        data=abi.encode_call(
                            "transfer(address,uint256)", b, 1)),
            Transaction(sender=b, to=token, gas_limit=10**6,
                        data=abi.encode_call(
                            "transfer(address,uint256)", c, 1)),
        ]
        sets = discover_access_sets(txs, deployment.state)
        assert build_dag_edges(txs, sets) == [(0, 1)]


class TestNetworkxExport:
    def test_graph_structure(self):
        from repro.chain.dag import to_networkx

        graph = to_networkx(4, [(0, 1), (1, 3)])
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 2
        import networkx as nx

        assert nx.is_directed_acyclic_graph(graph)
        assert nx.dag_longest_path(graph) == [0, 1, 3]

    def test_generated_block_dag_is_acyclic(self, deployment):
        from repro.chain.dag import to_networkx
        from repro.workload import generate_block

        import networkx as nx

        block = generate_block(deployment, num_transactions=30, seed=44)
        graph = to_networkx(len(block.transactions), block.dag_edges)
        assert nx.is_directed_acyclic_graph(graph)
