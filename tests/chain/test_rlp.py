"""RLP wire format: canonical vectors and roundtrip properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain import rlp

# Recursive item strategy: bytes or nested lists of items.
items = st.recursive(
    st.binary(max_size=80),
    lambda children: st.lists(children, max_size=6),
    max_leaves=30,
)


class TestKnownVectors:
    """The canonical test vectors from the Ethereum wiki."""

    def test_empty_string(self):
        assert rlp.encode(b"") == b"\x80"

    def test_single_low_byte_is_itself(self):
        assert rlp.encode(b"\x0f") == b"\x0f"
        assert rlp.encode(b"\x7f") == b"\x7f"

    def test_single_high_byte_gets_prefix(self):
        assert rlp.encode(b"\x80") == b"\x81\x80"

    def test_short_string(self):
        assert rlp.encode(b"dog") == b"\x83dog"

    def test_long_string(self):
        data = b"a" * 56
        assert rlp.encode(data) == b"\xb8\x38" + data

    def test_empty_list(self):
        assert rlp.encode([]) == b"\xc0"

    def test_cat_dog_list(self):
        assert rlp.encode([b"cat", b"dog"]) == b"\xc8\x83cat\x83dog"

    def test_set_theoretic_nesting(self):
        # [ [], [[]], [ [], [[]] ] ]
        item = [[], [[]], [[], [[]]]]
        assert rlp.encode(item) == bytes.fromhex("c7c0c1c0c3c0c1c0")

    def test_long_list(self):
        payload = [b"aaaa"] * 20  # 100 payload bytes -> long form
        encoded = rlp.encode(payload)
        assert encoded[0] == 0xF8
        assert rlp.decode(encoded) == payload


class TestDecodeErrors:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(rlp.RLPDecodingError):
            rlp.decode(b"\x83dogX")

    def test_truncated_payload_rejected(self):
        with pytest.raises(rlp.RLPDecodingError):
            rlp.decode(b"\x83do")

    def test_non_canonical_single_byte_rejected(self):
        # 0x81 0x05 should have been encoded as plain 0x05.
        with pytest.raises(rlp.RLPDecodingError):
            rlp.decode(b"\x81\x05")

    def test_non_canonical_long_length_rejected(self):
        # Long form used for a length < 56.
        with pytest.raises(rlp.RLPDecodingError):
            rlp.decode(b"\xb8\x01a")

    def test_empty_input_rejected(self):
        with pytest.raises(rlp.RLPDecodingError):
            rlp.decode(b"")

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError):
            rlp.encode("not bytes")  # type: ignore[arg-type]


class TestIntegers:
    def test_zero_is_empty(self):
        assert rlp.encode_int(0) == b""

    def test_minimal_big_endian(self):
        assert rlp.encode_int(1024) == b"\x04\x00"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            rlp.encode_int(-1)

    def test_leading_zero_rejected_on_decode(self):
        with pytest.raises(rlp.RLPDecodingError):
            rlp.decode_int(b"\x00\x01")

    @given(st.integers(min_value=0, max_value=1 << 256))
    def test_int_roundtrip(self, value):
        assert rlp.decode_int(rlp.encode_int(value)) == value


class TestRoundtrip:
    @given(items)
    def test_decode_encode_identity(self, item):
        assert rlp.decode(rlp.encode(item)) == item

    @given(st.binary(max_size=300))
    def test_bytes_roundtrip(self, data):
        assert rlp.decode(rlp.encode(data)) == data

    @given(items)
    def test_encoding_is_deterministic(self, item):
        assert rlp.encode(item) == rlp.encode(item)
