"""Blocks: serialization (with the embedded DAG) and BLOCKHASH service."""

from repro.chain import Block, BlockHeader, Transaction


def make_block(height=1, txs=None, edges=None):
    header = BlockHeader(
        height=height, timestamp=1000, coinbase=0xC0, difficulty=1,
        gas_limit=30_000_000,
    )
    return Block(
        header=header,
        transactions=txs or [],
        dag_edges=edges or [],
    )


class TestSerialization:
    def test_roundtrip_empty(self):
        block = make_block()
        decoded = Block.from_rlp(block.to_rlp())
        assert decoded.header == block.header

    def test_roundtrip_with_txs_and_dag(self):
        txs = [
            Transaction(sender=1, to=2, nonce=i, data=bytes([i]))
            for i in range(3)
        ]
        block = make_block(txs=txs, edges=[(0, 1), (1, 2)])
        decoded = Block.from_rlp(block.to_rlp())
        assert decoded.transactions == txs
        assert decoded.dag_edges == [(0, 1), (1, 2)]

    def test_hash_depends_on_parent(self):
        a = make_block()
        b = make_block()
        object.__setattr__(b.header, "parent_hash", b"\x01" * 32)
        assert a.hash() != b.hash()


class TestBlockhash:
    def test_recent_hash_window(self):
        parents = [bytes([i]) * 32 for i in range(5)]
        block = make_block(height=10)
        block.recent_hashes = parents
        # height 9 is distance 1 -> parents[0]
        assert block.blockhash(9) == int.from_bytes(parents[0], "big")
        assert block.blockhash(6) == int.from_bytes(parents[3], "big")

    def test_out_of_window_is_zero(self):
        block = make_block(height=500)
        block.recent_hashes = [b"\x01" * 32]
        assert block.blockhash(500) == 0  # self
        assert block.blockhash(600) == 0  # future
        assert block.blockhash(1) == 0  # too old (and not stored)
