"""Analysis helpers: instruction mixes (Table 6) and bytecode shares
(Table 2)."""

import pytest

from repro.analysis import (
    bytecode_share_table,
    format_table,
    instruction_mix,
    instruction_mix_table,
    measure_bytecode_share,
    static_instruction_mix,
)
from repro.contracts.registry import TOP8_NAMES
from repro.evm.opcodes import Category
from repro.workload import all_entry_function_calls


class TestInstructionMix:
    @pytest.fixture(scope="class")
    def tether_mix(self, deployment):
        txs = all_entry_function_calls(deployment, "TetherToken", seed=51,
                                       per_function=2)
        return instruction_mix(deployment, txs)

    def test_shares_sum_to_one(self, tether_mix):
        assert sum(tether_mix.values()) == pytest.approx(1.0)

    def test_stack_dominates(self, tether_mix):
        # Paper Table 6: stack instructions average 62.24% (56.76%-64.15%).
        assert tether_mix[Category.STACK] > 0.4

    def test_paper_ordering_of_major_categories(self, tether_mix):
        # Stack >> logic >> storage, as in Table 6. (Our compiled code
        # expresses overflow/permission checks as Logic rather than
        # Solidity's heavier Arithmetic, see EXPERIMENTS.md.)
        assert (
            tether_mix[Category.STACK]
            > tether_mix[Category.LOGIC]
            > tether_mix[Category.STORAGE]
        )

    def test_static_mix_close_to_dynamic_shape(self, deployment):
        code = deployment.state.get_code(
            deployment.address_of("TetherToken")
        )
        static = static_instruction_mix(code)
        assert static[Category.STACK] > 0.4

    def test_table_rendering(self, deployment):
        txs = all_entry_function_calls(deployment, "Dai", seed=52)
        table = instruction_mix_table(
            {"Dai": instruction_mix(deployment, txs)}
        )
        assert "Dai" in table
        assert "Stack" in table
        assert "Avg" in table

    def test_routers_have_context_switching(self, deployment):
        txs = all_entry_function_calls(
            deployment, "UniswapV2Router02", seed=53
        )
        mix = instruction_mix(deployment, txs)
        assert mix[Category.CONTEXT] > 0


class TestBytecodeShare:
    def test_bytecode_dominates(self, deployment):
        # Paper Table 2: bytecode is 86%-95% of loaded context data.
        txs = all_entry_function_calls(deployment, "TetherToken", seed=54)
        share = measure_bytecode_share(deployment, txs[0])
        assert share.bytecode_fraction > 0.7
        assert share.contract == "TetherToken"

    def test_total_is_sum(self, deployment):
        txs = all_entry_function_calls(deployment, "WETH9", seed=55)
        share = measure_bytecode_share(deployment, txs[0])
        assert share.total == share.bytecode_bytes + share.other_bytes

    def test_table_rendering(self, deployment):
        shares = []
        for name in TOP8_NAMES[:3]:
            txs = all_entry_function_calls(deployment, name, seed=56)
            shares.append(measure_bytecode_share(deployment, txs[0]))
        table = bytecode_share_table(shares)
        assert "Bytecode" in table
        for share in shares:
            assert share.contract in table

    def test_create_rejected(self, deployment):
        from repro.chain import Transaction

        with pytest.raises(ValueError):
            measure_bytecode_share(
                deployment, Transaction(sender=1, to=None)
            )


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["a", "bee"], [[1, 2.5], [30, 4.0]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "bee" in lines[1]
        assert "2.50" in table

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table
