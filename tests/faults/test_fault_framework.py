"""Detection + recovery tests for every fault class in the FaultPlan API.

Each class of injected fault must be (a) detected — visible in the
block's :class:`~repro.faults.DegradationReport` with counters matching
what the :class:`~repro.faults.FaultInjector` actually injected — and
(b) recovered from: the surviving execution produces state and receipts
identical to honest sequential execution, and a block that cannot be
verified commits nothing.
"""

from dataclasses import replace

import pytest

from repro.chain import (
    InsufficientFundsError,
    IntrinsicGasError,
    Mempool,
    Node,
    Transaction,
)
from repro.chain.dag import (
    build_dag_edges,
    discover_access_sets,
    transitive_reduction,
    verify_dag,
)
from repro.chain.receipt import receipts_root
from repro.core.mtpu import MTPUExecutor
from repro.core.scheduler import run_sequential, run_spatial_temporal
from repro.core.validator import AcceleratedValidator
from repro.faults import (
    DagCorruption,
    DegradationReport,
    FaultInjector,
    FaultPlan,
    PUFault,
    PU_DEAD,
    PU_STALL,
    TxCorruption,
)
from repro.workload import generate_block


def make_validator(deployment, **kwargs):
    kwargs.setdefault("num_pus", 4)
    return AcceleratedValidator(deployment.state.copy(), **kwargs)


def honest_block(deployment, validator, num_transactions=24, seed=7):
    """Disseminate honest traffic into *validator* and package a block."""
    generated = generate_block(
        deployment, num_transactions=num_transactions, seed=seed
    )
    for tx in generated.transactions:
        assert validator.hear(tx)
    return validator.propose_block()


def reference_root(deployment, block):
    """The honest claimed root: sequential execution on a fresh node."""
    node = Node(state=deployment.state.copy())
    return receipts_root(node.execute_block(block)), node.state


class TestInjectorDeterminism:
    def test_same_plan_same_seed_same_injection(self, deployment):
        block = generate_block(deployment, num_transactions=16, seed=3)
        access = discover_access_sets(
            block.transactions, deployment.state.copy()
        )
        edges = transitive_reduction(
            len(block.transactions),
            build_dag_edges(block.transactions, access),
        )
        plan = FaultPlan(
            seed=42,
            dag=DagCorruption(drop_edges=1, bogus_edges=2, make_cycle=True),
            corrupt_receipts_root=True,
            txs=TxCorruption(malformed=2, duplicates=1, underfunded=2),
        )
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            runs.append((
                injector.corrupt_dag(len(block.transactions), edges),
                injector.corrupt_root(b"\xaa" * 32),
                injector.hostile_transactions(list(block.transactions)),
                dict(injector.injected),
            ))
        assert runs[0] == runs[1]

    def test_different_seed_differs(self, deployment):
        block = generate_block(deployment, num_transactions=16, seed=3)
        txs = list(block.transactions)
        spec = TxCorruption(malformed=3, underfunded=3)
        a = FaultInjector(FaultPlan(seed=1, txs=spec))
        b = FaultInjector(FaultPlan(seed=2, txs=spec))
        assert a.hostile_transactions(txs) != b.hostile_transactions(txs)

    def test_empty_plan_injects_nothing(self):
        plan = FaultPlan(seed=0)
        assert plan.empty
        injector = FaultInjector(plan)
        assert injector.corrupt_dag(10, [(0, 1)]) == [(0, 1)]
        assert injector.corrupt_root(b"\x00" * 32) == b"\x00" * 32
        assert injector.hostile_transactions([]) == []
        assert injector.pu_faults(4) == {}
        assert not injector.injected


class TestDagCorruptionRecovery:
    """Fault class 1: corrupted block-embedded DAGs."""

    @pytest.mark.parametrize("spec", [
        DagCorruption(drop_edges=2),
        DagCorruption(bogus_edges=3),
        DagCorruption(make_cycle=True),
        DagCorruption(drop_edges=1, bogus_edges=1, make_cycle=True),
    ], ids=["dropped", "bogus", "cycle", "combined"])
    def test_detected_rebuilt_and_state_matches_sequential(
        self, deployment, spec
    ):
        validator = make_validator(deployment)
        block = honest_block(deployment, validator, seed=11)
        claimed, reference_state = reference_root(deployment, block)

        injector = FaultInjector(FaultPlan(seed=5, dag=spec))
        corrupted = injector.corrupt_dag(
            len(block.transactions), block.dag_edges
        )
        assert sum(
            injector.injected[k] for k in
            ("dag_edge_dropped", "dag_edge_bogus", "dag_cycle")
        ) > 0
        bad_block = replace(block, dag_edges=corrupted)

        outcome = validator.validate(bad_block, claimed_root=claimed)
        assert outcome.verified is True
        assert outcome.committed is True
        # Detection: the verdict names what was wrong, and the report
        # counts one detected fault + one local rebuild.
        assert outcome.dag_verification is not None
        assert not outcome.dag_verification.ok
        assert outcome.report.dag_faults_detected == 1
        assert outcome.report.dag_rebuilds == 1
        # Recovery: scheduling used the rebuilt DAG, so the final state
        # is exactly the sequential reference.
        assert (validator.state.state_digest()
                == reference_state.state_digest())

    def test_honest_dag_passes_verification(self, deployment):
        validator = make_validator(deployment)
        block = honest_block(deployment, validator, seed=12)
        claimed, _ = reference_root(deployment, block)
        outcome = validator.validate(block, claimed_root=claimed)
        assert outcome.verified is True
        assert outcome.dag_verification.ok
        assert outcome.report.dag_faults_detected == 0
        assert outcome.report.dag_rebuilds == 0

    def test_verify_dag_classifies_each_corruption(self, deployment):
        block = generate_block(deployment, num_transactions=20, seed=13)
        txs = block.transactions
        access = discover_access_sets(txs, deployment.state.copy())
        required = set(build_dag_edges(txs, access))
        edges = transitive_reduction(len(txs), sorted(required))
        assert edges, "need at least one dependency to corrupt"

        ok = verify_dag(len(txs), edges, required)
        assert ok.ok and ok.reason() == "ok"

        dropped = verify_dag(len(txs), edges[1:], required)
        assert not dropped.ok and dropped.missing_pairs

        i, j = edges[0]
        cyclic = verify_dag(len(txs), edges + [(j, i)], required)
        assert not cyclic.ok and cyclic.cyclic

        malformed = verify_dag(len(txs), edges + [(0, len(txs))], required)
        assert not malformed.ok and malformed.malformed_edges


class TestPUFailureRecovery:
    """Fault classes 2+3: permanent PU death and transient stalls."""

    def run_with_faults(self, deployment, faults, num_pus=4, seed=21):
        block = generate_block(
            deployment, num_transactions=24, seed=seed
        )
        txs = block.transactions
        state = deployment.state.copy()
        access = discover_access_sets(txs, state)
        edges = transitive_reduction(
            len(txs), build_dag_edges(txs, access)
        )
        injector = FaultInjector(FaultPlan(seed=seed, pu_faults=faults))
        report = DegradationReport()
        par = MTPUExecutor(state, num_pus=num_pus)
        result = run_spatial_temporal(
            par, txs, edges, fault_injector=injector, report=report
        )
        seq = MTPUExecutor(deployment.state.copy(), num_pus=1)
        run_sequential(seq, txs)
        return txs, injector, report, par, result, seq

    # Parallel makespan for these 24-tx blocks is ~3.5k-6.5k cycles, so
    # these strike points land before, during, and near the end of the
    # schedule.
    @pytest.mark.parametrize("at_cycle", [0, 1_000, 3_000])
    def test_dead_pu_state_identical_to_sequential(
        self, deployment, at_cycle
    ):
        faults = (PUFault(pu_id=1, kind=PU_DEAD, at_cycle=at_cycle),)
        txs, injector, report, par, result, seq = self.run_with_faults(
            deployment, faults, seed=21 + at_cycle
        )
        assert report.pu_failures_detected == injector.injected["pu_dead"]
        assert injector.injected["pu_dead"] == 1
        assert par.state.state_digest() == seq.state.state_digest()
        assert receipts_root(result.receipts_in_block_order(txs)) == (
            receipts_root(
                [e.receipt for e in seq.executions]
            )
        )

    def test_multiple_dead_pus_survivors_finish(self, deployment):
        faults = (
            PUFault(pu_id=0, kind=PU_DEAD, at_cycle=100),
            PUFault(pu_id=2, kind=PU_DEAD, at_cycle=800),
            PUFault(pu_id=3, kind=PU_DEAD, at_cycle=2_000),
        )
        txs, injector, report, par, result, seq = self.run_with_faults(
            deployment, faults, seed=33
        )
        assert report.pu_failures_detected == 3
        assert par.state.state_digest() == seq.state.state_digest()
        # All work landed on the lone survivor after the last death.
        assert len(result.executions) == len(txs)

    def test_stalled_pu_resumes_and_state_matches(self, deployment):
        faults = (
            PUFault(pu_id=1, kind=PU_STALL, at_cycle=1_000,
                    stall_cycles=5_000),
        )
        txs, injector, report, par, result, seq = self.run_with_faults(
            deployment, faults, seed=44
        )
        assert report.pu_stalls_detected == injector.injected["pu_stall"]
        assert report.pu_stalls_detected == 1
        assert report.recovery_cycles >= 5_000
        assert par.state.state_digest() == seq.state.state_digest()

    def test_midflight_failure_reschedules_transaction(self, deployment):
        # at_cycle deep inside the run: some PU will be mid-transaction.
        faults = (PUFault(pu_id=0, kind=PU_DEAD, at_cycle=1_500),)
        txs, injector, report, par, result, seq = self.run_with_faults(
            deployment, faults, seed=55
        )
        assert report.pu_failures_detected == 1
        # Every transaction still executed exactly once.
        assert len(result.executions) == len(txs)
        assert par.state.state_digest() == seq.state.state_digest()

    def test_all_pus_dead_is_an_error(self, deployment):
        faults = tuple(
            PUFault(pu_id=p, kind=PU_DEAD, at_cycle=0) for p in range(2)
        )
        with pytest.raises(RuntimeError, match="all PUs failed"):
            self.run_with_faults(deployment, faults, num_pus=2, seed=66)

    def test_validator_survives_pu_death(self, deployment):
        injector = FaultInjector(FaultPlan(
            seed=9,
            pu_faults=(PUFault(pu_id=3, kind=PU_DEAD, at_cycle=1_000),),
        ))
        validator = make_validator(deployment, fault_injector=injector)
        block = honest_block(deployment, validator, seed=77)
        claimed, reference_state = reference_root(deployment, block)
        outcome = validator.validate(block, claimed_root=claimed)
        assert outcome.verified is True
        assert outcome.report.pu_failures_detected == 1
        assert (validator.state.state_digest()
                == reference_state.state_digest())


class TestWrongClaimedRoot:
    """Fault class 4: a consensus message claiming a bogus receipts root."""

    def test_fallback_reported_and_nothing_committed(self, deployment):
        validator = make_validator(deployment)
        block = honest_block(deployment, validator, seed=88)
        claimed, _ = reference_root(deployment, block)

        injector = FaultInjector(FaultPlan(
            seed=3, corrupt_receipts_root=True
        ))
        bogus = injector.corrupt_root(claimed)
        assert bogus != claimed
        assert injector.injected["root_corrupted"] == 1

        before = validator.state.state_digest()
        pending_before = len(validator.node.mempool)
        outcome = validator.validate(block, claimed_root=bogus)

        # Detected: the mismatch triggered the sequential fallback...
        assert outcome.report.root_mismatches == 1
        assert outcome.report.sequential_fallbacks == 1
        # ...which also disagreed with the bogus claim, so the block was
        # rejected and nothing was committed.
        assert outcome.verified is False
        assert outcome.committed is False
        assert outcome.report.blocks_rejected == 1
        assert validator.state.state_digest() == before
        assert validator.chain == []
        assert len(validator.node.mempool) == pending_before

    def test_honest_root_commits_without_fallback(self, deployment):
        validator = make_validator(deployment)
        block = honest_block(deployment, validator, seed=89)
        claimed, reference_state = reference_root(deployment, block)
        outcome = validator.validate(block, claimed_root=claimed)
        assert outcome.verified is True and outcome.committed is True
        assert outcome.report.sequential_fallbacks == 0
        assert len(validator.chain) == 1
        assert (validator.state.state_digest()
                == reference_state.state_digest())


class TestHostileTransactions:
    """Fault class 5: malformed / duplicate / underfunded dissemination."""

    def test_all_hostile_traffic_refused_and_counted(self, deployment):
        validator = make_validator(deployment)
        honest = generate_block(
            deployment, num_transactions=12, seed=14
        ).transactions
        for tx in honest:
            assert validator.hear(tx)

        spec = TxCorruption(malformed=3, duplicates=2, underfunded=4)
        injector = FaultInjector(FaultPlan(seed=8, txs=spec))
        hostile = injector.hostile_transactions(list(honest))
        assert len(hostile) == 9
        for tx in hostile:
            assert validator.hear(tx) is False
        assert len(validator.node.mempool) == len(honest)

        block = validator.propose_block()
        claimed, _ = reference_root(deployment, block)
        outcome = validator.validate(block, claimed_root=claimed)
        assert outcome.report.admission_rejections == sum(
            injector.injected[k] for k in
            ("tx_malformed", "tx_duplicate", "tx_underfunded")
        )
        assert outcome.verified is True

    def test_typed_admission_errors(self, deployment):
        state = deployment.state.copy()
        pool = Mempool(state=state)
        with pytest.raises(IntrinsicGasError):
            pool.add(Transaction(sender=1, to=2, gas_limit=100))
        with pytest.raises(InsufficientFundsError):
            pool.add(Transaction(
                sender=0xBAD, to=2, gas_limit=100_000, value=5
            ))
        assert len(pool) == 0
        # A funded sender passes the same checks.
        funded = deployment.accounts[0]
        assert pool.add(Transaction(
            sender=funded, to=2, gas_limit=100_000, value=5
        ))

    def test_capacity_evicts_oldest_first(self):
        pool = Mempool(capacity=3)
        txs = [
            Transaction(sender=100 + n, to=1, gas_limit=50_000,
                        data=bytes([n]))
            for n in range(5)
        ]
        for tx in txs:
            pool.add(tx)
        assert len(pool) == 3
        assert pool.pending() == txs[2:]
        with pytest.raises(ValueError):
            Mempool(capacity=0)


class TestStaleProfiles:
    """Fault class 6: hotspot profiles invalidated after pre-execution."""

    def test_poisoned_profile_discarded_and_reprofiled(self, deployment):
        from repro.core.hotspot import HotspotOptimizer
        from repro.workload import all_entry_function_calls

        state = deployment.state.copy()
        dai = deployment.address_of("Dai")
        optimizer = HotspotOptimizer(state)
        samples = all_entry_function_calls(deployment, "Dai", seed=4)
        optimizer.optimize_contract(dai, samples)
        probe = samples[0]
        assert optimizer.plan_for(probe) is not None

        injector = FaultInjector(FaultPlan(seed=6, stale_profiles=(dai,)))
        poisoned = injector.poison_profiles(state)
        assert poisoned == [dai]
        assert injector.injected["stale_profile"] == 1

        # Detection: the recorded code hash no longer matches, so the
        # plan is discarded instead of trusted.
        assert optimizer.plan_for(probe) is None
        assert optimizer.stale_plans_discarded == 1
        assert optimizer.take_stale_addresses() == {dai}
        assert optimizer.take_stale_addresses() == set()

        # Recovery: re-profiling against the new code revives the plan.
        optimizer.optimize_contract(dai, samples)
        assert optimizer.plan_for(probe) is not None

    def test_validator_counts_stale_plans(self, deployment):
        validator = make_validator(deployment)
        block = honest_block(deployment, validator, seed=15)
        claimed, _ = reference_root(deployment, block)
        first = validator.validate(block, claimed_root=claimed)
        assert first.verified is True
        hot = tuple(sorted(validator.optimizer.hotspot_addresses))
        assert hot, "first block should have produced hotspots"

        # "Upgrade" every hot contract after it was profiled — on the
        # honest reference world first (so the claimed root reflects the
        # new code), then on the validator's copy (the fault site).
        plan = FaultPlan(seed=6, stale_profiles=hot)
        # The reference node replays block 1 (so height-2 context, e.g.
        # BLOCKHASH, agrees) before the upgrade lands.
        node = Node(state=deployment.state.copy())
        node.execute_block(block)
        FaultInjector(plan).poison_profiles(node.state)
        FaultInjector(plan).poison_profiles(validator.state)

        next_block = honest_block(deployment, validator, seed=16)
        claimed2 = receipts_root(node.execute_block(next_block))
        outcome = validator.validate(next_block, claimed_root=claimed2)
        assert outcome.verified is True
        assert outcome.report.stale_plans_discarded >= 1
        # Stale contracts re-enter the optimization queue, so the next
        # idle slice may re-profile them against the new code.
        assert (validator.state.state_digest()
                == node.state.state_digest())


class TestNodeVerifyBlock:
    """Satellite: Node.verify_block must not commit on mismatch."""

    def test_mismatch_rolls_back_everything(self, deployment):
        node = Node(state=deployment.state.copy())
        txs = generate_block(
            deployment, num_transactions=10, seed=17
        ).transactions
        for tx in txs:
            node.hear(tx)
        block = node.propose_block()
        for tx in block.transactions:  # take() drained them; repool
            node.hear(tx)
        before = node.state.state_digest()
        pending = len(node.mempool)

        verdict = node.verify_block(block, claimed_root=b"\x13" * 32)
        assert not verdict
        assert "mismatch" in verdict.detail
        assert node.state.state_digest() == before
        assert node.chain == []
        assert node.receipts == {}
        assert len(node.mempool) == pending

    def test_match_commits(self, deployment):
        node = Node(state=deployment.state.copy())
        txs = generate_block(
            deployment, num_transactions=10, seed=17
        ).transactions
        for tx in txs:
            node.hear(tx)
        block = node.propose_block()
        claimed, _ = reference_root(deployment, block)
        verdict = node.verify_block(block, claimed_root=claimed)
        assert verdict
        assert verdict.detail == "receipts root matches"
        assert len(node.chain) == 1
        assert block.hash() in node.receipts


class TestDegradationReport:
    def test_merge_and_nonzero_rendering(self):
        a = DegradationReport(dag_faults_detected=1, txs_rescheduled=2)
        b = DegradationReport(dag_faults_detected=1, root_mismatches=1)
        a.merge(b)
        assert a.dag_faults_detected == 2
        assert a.txs_rescheduled == 2
        assert a.root_mismatches == 1
        text = str(a)
        assert "dag_faults_detected=2" in text
        assert "pu_failures_detected" not in text  # zero counters hidden

    def test_clean_report_is_quiet(self):
        clean = DegradationReport()
        assert clean.faults_seen == 0
        assert clean.fallbacks_taken == 0
        assert str(clean) == "DegradationReport(clean)"
