"""Fuzz the proof and witness wire decoders (mirrors test_rlp_fuzz).

The contract under test: any byte string handed to
:func:`repro.trie.decode_proof` either yields a proof or raises the
typed :class:`ProofDecodingError`; :func:`repro.trie.decode_witness`
likewise raises only :class:`WitnessError`. No input — arbitrary bytes
or a mutation of an honest encoding — may escape with an untyped
exception, and no mutated proof may ever *verify* against the root it
was cut from.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.node import Node
from repro.chain.transaction import Transaction
from repro.trie import (
    ProofDecodingError,
    WitnessError,
    decode_proof,
    decode_witness,
    encode_proof,
    verify_account_proof,
    verify_proof_blob,
    verify_storage_proof,
)

DECODERS = [
    (decode_proof, ProofDecodingError),
    (decode_witness, WitnessError),
]


def assert_contained(blob: bytes) -> None:
    """Every decoder accepts the blob or raises exactly its typed error."""
    for decode, error in DECODERS:
        try:
            decode(blob)
        except error:
            pass
        except Exception as exc:  # noqa: BLE001 - the property under test
            raise AssertionError(
                f"{decode.__name__} escaped with "
                f"{type(exc).__name__}: {exc!r}"
            ) from exc


@pytest.fixture(scope="module")
def proven():
    """A small chain with sealed roots, one account and one storage proof."""
    node = Node(emit_witness=True)
    node.state.set_balance(1, 10**12)
    node.state.set_balance(2, 1)
    node.state.set_storage(2, 5, 99)
    node.trie.update(node.state)
    node.hear(Transaction(sender=1, to=3, value=7))
    block = node.propose_block()
    node.execute_block(block)
    root = node.state_root
    account_blob = encode_proof(node.trie.account_proof(1))
    storage_blob = encode_proof(node.trie.storage_proof(2, 5, 99))
    witness_blob = node.witnesses[block.header.height]
    return root, account_blob, storage_blob, witness_blob


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=256))
def test_arbitrary_bytes_are_contained(blob):
    assert_contained(blob)


@settings(max_examples=200, deadline=None)
@given(st.data(), st.sampled_from(["flip", "truncate", "insert", "delete"]))
def test_mutated_proofs_never_verify(proven, data, op):
    root, account_blob, storage_blob, _ = proven
    blob = data.draw(st.sampled_from([account_blob, storage_blob]))
    position = data.draw(
        st.integers(min_value=0, max_value=max(len(blob) - 1, 0))
    )
    if op == "flip":
        flip = data.draw(st.integers(min_value=1, max_value=255))
        mutated = (
            blob[:position]
            + bytes([blob[position] ^ flip])
            + blob[position + 1:]
        )
    elif op == "truncate":
        mutated = blob[:position]
    elif op == "insert":
        mutated = (
            blob[:position]
            + data.draw(st.binary(min_size=1, max_size=4))
            + blob[position:]
        )
    else:
        mutated = blob[:position] + blob[position + 1:]
    if mutated == blob:
        return
    try:
        proof, ok = verify_proof_blob(mutated, root)
    except ProofDecodingError:
        return
    except Exception as exc:  # noqa: BLE001 - the property under test
        raise AssertionError(
            f"mutated proof escaped with {type(exc).__name__}: {exc!r}"
        ) from exc
    assert not ok, f"mutated proof ({op} at {position}) verified"


@settings(max_examples=100, deadline=None)
@given(st.data(), st.sampled_from(["flip", "truncate", "insert", "delete"]))
def test_mutated_witnesses_stay_typed(proven, data, op):
    _, _, _, witness_blob = proven
    position = data.draw(
        st.integers(min_value=0, max_value=max(len(witness_blob) - 1, 0))
    )
    if op == "flip":
        flip = data.draw(st.integers(min_value=1, max_value=255))
        mutated = (
            witness_blob[:position]
            + bytes([witness_blob[position] ^ flip])
            + witness_blob[position + 1:]
        )
    elif op == "truncate":
        mutated = witness_blob[:position]
    elif op == "insert":
        mutated = (
            witness_blob[:position]
            + data.draw(st.binary(min_size=1, max_size=4))
            + witness_blob[position:]
        )
    else:
        mutated = witness_blob[:position] + witness_blob[position + 1:]
    if mutated == witness_blob:
        return
    try:
        decode_witness(mutated)
    except WitnessError:
        pass
    except Exception as exc:  # noqa: BLE001 - the property under test
        raise AssertionError(
            f"mutated witness escaped with {type(exc).__name__}: {exc!r}"
        ) from exc


def test_round_trip_is_identity(proven):
    root, account_blob, storage_blob, _ = proven
    for blob, verify in (
        (account_blob, verify_account_proof),
        (storage_blob, verify_storage_proof),
    ):
        proof = decode_proof(blob)
        assert encode_proof(proof) == blob
        assert verify(proof, root)
        assert not verify(proof, bytes(32))
    for blob in (account_blob, storage_blob):
        proof, ok = verify_proof_blob(blob, root)
        assert ok
        _, bad = verify_proof_blob(blob, bytes(32))
        assert not bad


def test_oversized_blob_is_refused():
    from repro.trie.proof import MAX_PROOF_BYTES

    with pytest.raises(ProofDecodingError):
        decode_proof(b"\x00" * (MAX_PROOF_BYTES + 1))


def test_decoders_demand_bytes():
    for decode, error in DECODERS:
        for bad in (None, "deadbeef", 42, [b""]):
            with pytest.raises(error):
                decode(bad)


def test_verifier_never_throws_on_hostile_proof_objects(proven):
    """The dependency-free verifier returns False, never raises."""
    from repro.trie import AccountProof, StorageProof
    from repro.trie.verify import fold_steps

    root, account_blob, _, _ = proven
    good = decode_proof(account_blob)
    hostile = [
        # non-monotonic step bits (could not come from a real tree)
        dataclasses_replace_steps(good, [(5, b"\x00" * 32),
                                         (5, b"\x00" * 32)]),
        # mis-sized sibling hash
        dataclasses_replace_steps(good, [(1, b"\x00" * 31)]),
        # negative / oversized integers
        AccountProof(address=-1, nonce=0, balance=0,
                     code_hash=b"\x00" * 32, storage_root=b"\x00" * 32),
        AccountProof(address=1, nonce=0, balance=1 << 300,
                     code_hash=b"\x00" * 32, storage_root=b"\x00" * 32),
        # wrong types entirely
        AccountProof(address="1", nonce=0, balance=0,
                     code_hash=None, storage_root=b"\x00" * 32),
    ]
    for proof in hostile:
        assert verify_account_proof(proof, root) is False
    # Zero-valued storage is never in the trie: invalid by construction.
    zero = StorageProof(account=good, slot=1, value=0)
    assert verify_storage_proof(zero, root) is False
    big = StorageProof(account=good, slot=1, value=1 << 256)
    assert verify_storage_proof(big, root) is False
    with pytest.raises(ValueError):
        fold_steps(b"\x00" * 32, b"\x00" * 32,
                   [(2, b"\x00" * 32), (1, b"\x00" * 32)])


def dataclasses_replace_steps(proof, raw_steps):
    from dataclasses import replace

    from repro.trie import ProofStep

    return replace(
        proof,
        steps=tuple(ProofStep(bit, sibling) for bit, sibling in raw_steps),
    )
