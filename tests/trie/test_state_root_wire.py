"""State roots on the wire: every format keeps its legacy generation.

Headers, WAL records, snapshots and replication HELLOs all grew an
optional state-root field. A writer with Merkleization off must emit
byte-identical legacy encodings, and every decoder must accept both
generations for the deprecation window.
"""

import pytest

from repro.chain.block import Block, BlockHeader
from repro.chain.node import Node
from repro.chain.rlp import RLPDecodingError
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.replication import stream
from repro.storage import codec
from repro.storage.snapshot import (
    read_snapshot,
    read_snapshot_root,
    write_snapshot,
)
from repro.trie import StateRootMismatchError, StateTrie


def _sealed_block():
    node = Node()
    node.state.set_balance(1, 10**9)
    node.trie.update(node.state)
    node.hear(Transaction(sender=1, to=2, value=3))
    block = node.propose_block()
    node.execute_block(block)
    return node, block


def test_header_rlp_keeps_legacy_shape_when_unsealed():
    node = Node(merkleize=False)
    node.state.set_balance(1, 10**9)
    node.hear(Transaction(sender=1, to=2, value=3))
    block = node.propose_block()
    node.execute_block(block)
    assert block.header.state_root == b""
    decoded = BlockHeader.from_rlp(block.header.to_rlp())
    assert decoded == block.header


def test_header_rlp_round_trips_state_root():
    _, block = _sealed_block()
    assert len(block.header.state_root) == 32
    decoded = Block.from_rlp(block.to_rlp())
    assert decoded.header.state_root == block.header.state_root
    assert decoded.hash() == block.hash()


def test_sealing_changes_the_block_hash():
    _, block = _sealed_block()
    import dataclasses

    unsealed = dataclasses.replace(
        block, header=dataclasses.replace(block.header, state_root=b"")
    )
    assert unsealed.hash() != block.hash()


def test_seal_state_root_rejects_a_wrong_stamp():
    node, block = _sealed_block()
    import dataclasses

    forged = dataclasses.replace(
        block,
        header=dataclasses.replace(block.header, state_root=bytes(32)),
    )
    with pytest.raises(StateRootMismatchError):
        node.seal_state_root(forged)


def test_wal_record_decodes_every_generation():
    node, block = _sealed_block()
    digest = codec.state_digest_bytes(node.state)
    root = node.state_root
    legacy = codec.encode_wal_payload(block, digest)
    rooted = codec.encode_wal_payload(block, digest, state_root=root)
    full = codec.encode_wal_payload(
        block, digest, state_root=root, witness=b"w" * 40
    )
    assert (
        len(codec.encode_wal_payload(block, digest))
        < len(rooted)
        < len(full)
    )
    for payload, expect_root, expect_witness in (
        (legacy, b"", b""),
        (rooted, root, b""),
        (full, root, b"w" * 40),
    ):
        record = codec.decode_wal_record(payload)
        assert record.block.hash() == block.hash()
        assert record.digest == digest
        assert record.state_root == expect_root
        assert record.witness == expect_witness
    with pytest.raises(RLPDecodingError):
        codec.decode_wal_record(
            codec.encode_wal_payload(block, digest, state_root=b"short")
        )


def test_snapshot_round_trips_root(tmp_path):
    state = WorldState()
    state.set_balance(7, 123)
    state.set_storage(7, 1, 9)
    root = StateTrie.rebuild_root(state)
    digest = codec.state_digest_bytes(state)

    rooted = write_snapshot(str(tmp_path), 5, state, state_root=root)
    assert read_snapshot_root(rooted) == root
    height, read_digest, restored = read_snapshot(rooted)
    assert (height, read_digest) == (5, digest)
    assert StateTrie.rebuild_root(restored) == root

    legacy = write_snapshot(str(tmp_path), 6, state)
    assert read_snapshot_root(legacy) == b""
    assert read_snapshot(legacy)[0] == 6


def test_hello_decodes_both_generations():
    digest = b"\xab" * 32
    root = b"\xcd" * 32
    for state_root, expected in ((b"", b""), (root, root)):
        from repro.storage.wal import RECORD_HEADER

        frame = stream.encode_hello(9, digest, False, state_root=state_root)
        payload = frame[RECORD_HEADER.size:]  # strip the frame header
        msg_type, fields = stream.decode_message(payload)
        assert msg_type == stream.MSG_HELLO
        assert fields == (9, digest, False, expected)
