"""The trie's load-bearing property: incremental == from-scratch.

Every sequence of state mutations — inserts, balance/nonce/storage
churn, deletes, delete-then-redeploy (the CREATE2 shape), journal
revert (the PU-fault replay shape) — must leave the incrementally
maintained root bit-identical to a full rebuild from the flat state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.node import Node
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.trie import EMPTY_ROOT, MerkleTree, StateTrie, WitnessError
from repro.trie.verify import leaf_hash

ADDRESSES = st.integers(min_value=1, max_value=12)
SLOTS = st.integers(min_value=0, max_value=6)
VALUES = st.integers(min_value=0, max_value=2**64)


#: load_account bypasses the journal by design (snapshot restore), so
#: revert scenarios must stick to the journaled subset.
JOURNALED_OPS = ["balance", "nonce", "storage", "code", "delete"]
ALL_OPS = JOURNALED_OPS + ["load"]


def mutate(state: WorldState, data, ops=ALL_OPS) -> None:
    op = data.draw(st.sampled_from(ops))
    address = data.draw(ADDRESSES)
    if op == "balance":
        state.set_balance(address, data.draw(VALUES))
    elif op == "nonce":
        state.set_nonce(address, data.draw(VALUES))
    elif op == "storage":
        state.set_storage(
            address, data.draw(SLOTS), data.draw(VALUES)
        )
    elif op == "code":
        state.set_code(address, data.draw(st.binary(max_size=8)))
    elif op == "delete":
        state.delete_account(address)
    else:
        # The snapshot-install shape: transplant a whole account.
        from repro.chain.account import Account

        state.load_account(address, Account(
            nonce=data.draw(st.integers(min_value=0, max_value=9)),
            balance=data.draw(VALUES),
            storage={1: data.draw(VALUES)},
        ))


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_incremental_root_matches_rebuild(data):
    state = WorldState()
    trie = StateTrie()
    trie.attach(state)
    for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
        for _ in range(data.draw(st.integers(min_value=0, max_value=12))):
            mutate(state, data)
        assert trie.update(state) == StateTrie.rebuild_root(state)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_incremental_root_survives_revert(data):
    """The PU-fault replay shape: execute, revert, re-execute."""
    state = WorldState()
    state.set_balance(1, 10**9)
    trie = StateTrie()
    trie.attach(state)
    baseline = trie.update(state)
    token = state.snapshot()
    for _ in range(data.draw(st.integers(min_value=1, max_value=10))):
        mutate(state, data, ops=JOURNALED_OPS)
    state.revert(token)
    state.clear_journal()
    assert trie.update(state) == baseline
    assert baseline == StateTrie.rebuild_root(state)


def test_delete_then_redeploy_gets_fresh_storage():
    """The CREATE2 shape: same address, new code, empty storage."""
    state = WorldState()
    trie = StateTrie()
    trie.attach(state)
    state.set_balance(5, 1)
    state.set_code(5, b"\x01\x02")
    state.set_storage(5, 3, 77)
    first = trie.update(state)
    state.delete_account(5)
    state.set_balance(5, 1)
    state.set_code(5, b"\x01\x02")
    redeployed = trie.update(state)
    assert redeployed != first  # old storage must not resurrect
    assert redeployed == StateTrie.rebuild_root(state)
    state.set_storage(5, 3, 77)
    assert trie.update(state) == first
    assert trie.update(state) == StateTrie.rebuild_root(state)


def test_empty_accounts_stay_out_of_the_trie():
    state = WorldState()
    trie = StateTrie()
    trie.attach(state)
    state.set_balance(7, 100)
    state.set_balance(7, 0)  # back to empty
    assert trie.update(state) == EMPTY_ROOT
    assert StateTrie.rebuild_root(state) == EMPTY_ROOT


def test_delete_account_evicts_digest_leaf_cache():
    """A deleted account's cached flat-digest leaf must die with it."""
    from repro.storage import codec

    state = WorldState()
    state.set_balance(3, 50)
    baseline = codec.state_digest_bytes(state)
    state.set_balance(9, 10)
    codec.state_digest_bytes(state)  # populate the leaf cache
    state.delete_account(9)
    assert 9 not in state._leaf_hashes
    assert codec.state_digest_bytes(state) == baseline


def test_node_commit_seals_header_and_chains_roots():
    node = Node()
    node.state.set_balance(1, 10**12)
    node.trie.update(node.state)
    roots = [node.state_root]
    for height in range(2):
        node.hear(Transaction(
            sender=1, to=50 + height, value=5, nonce=height,
            gas_limit=100_000,
        ))
        block = node.propose_block()
        node.execute_block(block)
        assert block.header.state_root == node.state_root
        assert block.header.state_root == StateTrie.rebuild_root(
            node.state
        )
        roots.append(block.header.state_root)
    assert len(set(roots)) == 3  # every block moved the root


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_merkle_tree_matches_reference_set_semantics(data):
    """The crit-bit tree agrees with a dict + canonical rebuild."""
    tree = MerkleTree()
    model: dict[bytes, bytes] = {}
    keys = [bytes([i]) * 32 for i in range(8)]
    for _ in range(data.draw(st.integers(min_value=1, max_value=24))):
        key = data.draw(st.sampled_from(keys))
        if data.draw(st.booleans()):
            value = data.draw(st.binary(min_size=32, max_size=32))
            tree.set(key, value)
            model[key] = value
        else:
            tree.delete(key)
            model.pop(key, None)
        reference = MerkleTree()
        for k, v in model.items():
            reference.set(k, v)
        assert tree.root() == reference.root()
        for k, v in model.items():
            assert tree.get(k) == v


def test_prove_and_fold_round_trip():
    from repro.trie.verify import fold_steps

    tree = MerkleTree()
    keys = {bytes([i]) * 32: bytes([i ^ 0xFF]) * 32 for i in range(6)}
    for key, value in keys.items():
        tree.set(key, value)
    root = tree.root()
    for key, value in keys.items():
        steps = tree.prove(key)
        assert fold_steps(key, leaf_hash(key, value), steps) == root
    with pytest.raises(KeyError):
        tree.prove(b"\xAA" * 32)


def test_from_nodes_rejects_malformed_shapes():
    tree = MerkleTree()
    for i in range(4):
        tree.set(bytes([i]) * 32, bytes([i]) * 32)
    nodes = tree.serialize_expanded([bytes([1]) * 32])
    rebuilt = MerkleTree.from_nodes(nodes)
    assert rebuilt.root() == tree.root()
    with pytest.raises(WitnessError):
        MerkleTree.from_nodes(nodes[:-1])  # unbalanced stack
    with pytest.raises(WitnessError):
        MerkleTree.from_nodes(nodes + [("stub", b"\x00" * 32)])
    with pytest.raises(WitnessError):
        MerkleTree.from_nodes([("branch", 0)])  # branch with no children
