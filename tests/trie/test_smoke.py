"""The trie smoke drill itself stays honest (it is a CI gate)."""

from repro.trie.smoke import main, run_smoke


def test_smoke_drill_passes_clean():
    stats = run_smoke(blocks=2, transactions=8, seed=3, workload="mixed")
    assert stats["failures"] == []
    assert stats["blocks"] == 2
    assert stats["proved_accounts"] > 0
    assert stats["proof_bytes_max"] > 0
    assert stats["witness_bytes_max"] > 0
    assert stats["mutations_checked"] > 0


def test_smoke_cli_exit_code():
    assert main(["--blocks", "1", "--transactions", "4"]) == 0
