"""Stateless (witness) validation: bit-identity and loud failure."""

import dataclasses

import pytest

from repro.chain.node import Node
from repro.chain.receipt import receipts_root
from repro.contracts.registry import build_deployment
from repro.serve.loadgen import make_transactions
from repro.trie import (
    StatelessValidator,
    StateRootMismatchError,
    WitnessError,
    decode_witness,
)


def _run_chain(blocks=3, per_block=16, workload="mixed"):
    deployment = build_deployment(num_accounts=16)
    node = Node(state=deployment.state.copy(), emit_witness=True)
    txs = make_transactions(
        deployment, blocks * per_block, workload=workload, seed=11
    )
    pre_roots = [node.state_root]
    receipts_by_height = {}
    for height in range(blocks):
        for tx in txs[height * per_block:(height + 1) * per_block]:
            node.hear(tx)
        block = node.propose_block(max_transactions=per_block)
        receipts_by_height[block.header.height] = node.execute_block(block)
        pre_roots.append(node.state_root)
    return node, pre_roots, receipts_by_height


def test_stateless_replay_is_bit_identical():
    node, pre_roots, receipts_by_height = _run_chain()
    validator = StatelessValidator()
    for index, block in enumerate(node.chain):
        witness = node.witnesses[block.header.height]
        result = validator.validate(
            block, witness, pre_root=pre_roots[index]
        )
        assert result.pre_root == pre_roots[index]
        assert result.post_root == block.header.state_root
        assert receipts_root(result.receipts) == receipts_root(
            receipts_by_height[block.header.height]
        )


def test_wrong_pre_root_is_rejected():
    node, _, _ = _run_chain(blocks=1)
    block = node.chain[0]
    witness = node.witnesses[block.header.height]
    with pytest.raises(StateRootMismatchError):
        StatelessValidator().validate(block, witness, pre_root=bytes(32))


def test_tampered_header_root_is_rejected():
    node, pre_roots, _ = _run_chain(blocks=1)
    block = node.chain[0]
    witness = node.witnesses[block.header.height]
    forged = dataclasses.replace(
        block, header=dataclasses.replace(block.header, state_root=bytes(32))
    )
    with pytest.raises(StateRootMismatchError):
        StatelessValidator().validate(
            forged, witness, pre_root=pre_roots[0]
        )


def test_corrupted_witness_fails_typed_never_validates():
    node, pre_roots, _ = _run_chain(blocks=1)
    block = node.chain[0]
    witness = node.witnesses[block.header.height]
    sealed = block.header.state_root
    stride = max(1, len(witness) // 96)
    for index in range(0, len(witness), stride):
        for flip in (0x01, 0xFF):
            mutated = bytearray(witness)
            mutated[index] ^= flip
            try:
                result = StatelessValidator().validate(
                    block, bytes(mutated), pre_root=pre_roots[0]
                )
            except (WitnessError, StateRootMismatchError):
                continue
            except Exception as exc:  # noqa: BLE001 - property under test
                raise AssertionError(
                    f"corrupted witness escaped with "
                    f"{type(exc).__name__}: {exc!r}"
                ) from exc
            # A flip that still validates must have been semantically
            # inert — the result must still be bit-identical.
            assert result.post_root == sealed


def test_witness_from_wrong_block_is_rejected():
    node, pre_roots, _ = _run_chain(blocks=2)
    first, second = node.chain[0], node.chain[1]
    with pytest.raises((WitnessError, StateRootMismatchError)):
        StatelessValidator().validate(
            first,
            node.witnesses[second.header.height],
            pre_root=pre_roots[0],
        )


def test_witness_covers_reads_and_decodes():
    node, _, _ = _run_chain(blocks=1)
    block = node.chain[0]
    witness = decode_witness(node.witnesses[block.header.height])
    assert witness.pre_root
    senders = {tx.sender for tx in block.transactions}
    covered = {entry.address for entry in witness.accounts}
    assert senders <= covered
