"""Fast end-to-end smoke runs of the expensive experiments.

The benchmarks run these at paper scale; here tiny parameters catch
regressions (API drift, crashed sweeps) inside the regular test suite.
"""

from repro.experiments import (
    ablation_pu_scaling,
    ablation_selection_overhead,
    ablation_state_buffer,
    ablation_unit_capacity,
    ablation_window_size,
    fig12_ilp_ablation,
    fig13_cache_hit_ratio,
    fig14_scheduling_speedup,
    fig15_utilization,
    fig16_redundancy_hotspot,
    headline_speedup,
    table7_ipc,
    table8_bpu_erc20,
    table9_bpu_parallel,
)


class TestSweepSmoke:
    def test_fig12_small(self):
        result = fig12_ilp_ablation(per_function=1)
        assert len(result.rows) == 9  # 8 contracts + Avg
        avg = result.row_by_label("Avg")
        assert avg[3] > 1.0

    def test_fig13_small(self):
        result = fig13_cache_hit_ratio(
            per_function=2, sizes=[64, 512]
        )
        assert result.headers[-1] == "512"
        assert len(result.rows) == 9  # 8 contracts + mixed

    def test_table7_small(self):
        result = table7_ipc(per_function=2)
        for row in result.rows:
            if row[0] == "Avg":
                continue
            assert row[4] <= row[2]  # 2K speedup <= upper

    def test_fig14_small(self):
        result = fig14_scheduling_speedup(
            num_transactions=12, ratios=[0.0, 1.0], pu_counts=(2,)
        )
        assert len(result.rows) == 2
        st_low = result.rows[0][result.headers.index("ST x2")]
        st_high = result.rows[1][result.headers.index("ST x2")]
        assert st_low > st_high

    def test_fig15_small(self):
        result = fig15_utilization(
            num_transactions=12, ratios=[0.0, 1.0]
        )
        assert len(result.rows) == 2

    def test_fig16_small(self):
        result = fig16_redundancy_hotspot(
            num_transactions=12, ratios=[0.0], pu_counts=(2,)
        )
        row = result.rows[0]
        assert row[2] > row[1] * 0.9  # hotspot at least comparable

    def test_table8_small(self):
        result = table8_bpu_erc20(
            num_transactions=12, fractions=(1.0, 0.0)
        )
        assert len(result.rows) == 2

    def test_table9_small(self):
        result = table9_bpu_parallel(
            num_transactions=12, ratios=(1.0, 0.0)
        )
        assert len(result.rows) == 2

    def test_headline_small(self):
        result = headline_speedup(
            num_transactions=12, ratios=(0.0,), pu_counts=(1, 2)
        )
        assert result.rows[-1][0] == "range"


class TestAblationSmoke:
    def test_window(self):
        result = ablation_window_size(
            num_transactions=12, windows=(2, 8)
        )
        assert len(result.rows) == 2

    def test_state_buffer(self):
        result = ablation_state_buffer(capacities=(16, 1024))
        cycles = result.column("cycles")
        assert cycles[1] <= cycles[0]

    def test_unit_capacity(self):
        result = ablation_unit_capacity(per_function=1)
        speedups = result.column("speedup")
        assert speedups[-1] >= speedups[0]

    def test_selection_overhead(self):
        result = ablation_selection_overhead(
            num_transactions=12, overheads=(0, 64)
        )
        speedups = result.column("speedup")
        assert speedups[0] >= speedups[1]

    def test_pu_scaling(self):
        result = ablation_pu_scaling(
            num_transactions=16, pu_counts=(1, 4)
        )
        speedups = result.column("speedup")
        assert speedups[1] > speedups[0]
