"""Deterministic (seeded) fault injection at the plan's named sites.

The injector is the *adversary half* of the framework: given a
:class:`~repro.faults.plan.FaultPlan` it corrupts blocks, roots,
transaction streams, PUs and hotspot profiles. Every mutation is drawn
from ``random.Random(plan.seed)``, so a failing run replays exactly.
The ``injected`` counter records what was actually injected, which the
acceptance tests compare against the defender's
:class:`~repro.faults.report.DegradationReport`.
"""

from __future__ import annotations

import random
from collections import Counter

from ..chain.transaction import Transaction
from .plan import FaultPlan, PUFault

#: Gas limit guaranteed to be below any transaction's intrinsic gas.
_MALFORMED_GAS_LIMIT = 100

#: Address pool for fabricated hostile senders (never funded in genesis).
_HOSTILE_SENDER_BASE = 0xBAD0_0000_0000


class SimulatedCrashError(RuntimeError):
    """Raised at an armed crash point to model sudden process death."""


class FaultInjector:
    """Applies a :class:`FaultPlan` at each injection site."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: What was actually injected, keyed by fault class.
        self.injected: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Consensus stage: the block-embedded DAG and the claimed root
    # ------------------------------------------------------------------
    def corrupt_dag(
        self, count: int, edges: list[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        """Return a corrupted copy of a block's dependency edges."""
        spec = self.plan.dag
        corrupted = list(edges)
        if spec is None or not spec.active or count < 2:
            return corrupted

        for _ in range(min(spec.drop_edges, len(corrupted))):
            victim = self.rng.randrange(len(corrupted))
            corrupted.pop(victim)
            self.injected["dag_edge_dropped"] += 1

        present = set(corrupted)
        attempts = 0
        added = 0
        while added < spec.bogus_edges and attempts < 50 * spec.bogus_edges:
            attempts += 1
            i, j = sorted(self.rng.sample(range(count), 2))
            if (i, j) in present:
                continue
            corrupted.append((i, j))
            present.add((i, j))
            self.injected["dag_edge_bogus"] += 1
            added += 1

        if spec.make_cycle:
            if corrupted:
                i, j = self.rng.choice(corrupted)
            else:
                i, j = 0, 1
                corrupted.append((i, j))
            corrupted.append((j, i))
            self.injected["dag_cycle"] += 1
        return corrupted

    def corrupt_root(self, root: bytes) -> bytes:
        """Flip one byte of the claimed receipts root."""
        if not self.plan.corrupt_receipts_root or not root:
            return root
        position = self.rng.randrange(len(root))
        mutated = bytearray(root)
        mutated[position] ^= 0xFF
        self.injected["root_corrupted"] += 1
        return bytes(mutated)

    # ------------------------------------------------------------------
    # Dissemination stage: hostile transactions
    # ------------------------------------------------------------------
    def hostile_transactions(
        self, honest: list[Transaction]
    ) -> list[Transaction]:
        """Fabricate the plan's malformed/duplicate/underfunded stream.

        The caller disseminates the returned transactions alongside the
        honest traffic; mempool admission is expected to reject them all.
        """
        spec = self.plan.txs
        if spec is None or not spec.active:
            return []
        hostile: list[Transaction] = []
        for n in range(spec.malformed):
            hostile.append(
                Transaction(
                    sender=_HOSTILE_SENDER_BASE + self.rng.randrange(1 << 16),
                    to=self.rng.randrange(1, 1 << 20),
                    gas_limit=_MALFORMED_GAS_LIMIT,
                    data=b"\xde\xad\xbe\xef" * (n + 1),
                )
            )
            self.injected["tx_malformed"] += 1
        for _ in range(min(spec.duplicates, len(honest))):
            hostile.append(self.rng.choice(honest))
            self.injected["tx_duplicate"] += 1
        for _ in range(spec.underfunded):
            hostile.append(
                Transaction(
                    sender=_HOSTILE_SENDER_BASE + self.rng.randrange(1 << 16),
                    to=self.rng.randrange(1, 1 << 20),
                    value=1 + self.rng.randrange(10**18),
                )
            )
            self.injected["tx_underfunded"] += 1
        return hostile

    # ------------------------------------------------------------------
    # Execution stage: PU failures
    # ------------------------------------------------------------------
    def pu_faults(self, num_pus: int) -> dict[int, PUFault]:
        """The plan's PU faults applicable to a machine with *num_pus*."""
        applicable: dict[int, PUFault] = {}
        for fault in self.plan.pu_faults:
            if fault.pu_id < num_pus:
                applicable[fault.pu_id] = fault
                self.injected[f"pu_{fault.kind}"] += 1
        return applicable

    # ------------------------------------------------------------------
    # Durable store: crash windows and at-rest corruption
    # ------------------------------------------------------------------
    def crash_point(self, site: str) -> None:
        """Hook the store fires at named crash windows.

        With ``storage.crash_between_wal_and_snapshot`` armed, the
        ``between_wal_and_snapshot`` site raises — the block is already
        durable in the WAL, its snapshot never lands, and recovery has
        to come from the previous anchor. Fires once per run: the drill
        is one crash, not a store that can never snapshot.
        """
        spec = self.plan.storage
        if (
            site == "between_wal_and_snapshot"
            and spec is not None
            and spec.crash_between_wal_and_snapshot
            and not self.injected["crash_between_wal_and_snapshot"]
        ):
            self.injected["crash_between_wal_and_snapshot"] += 1
            raise SimulatedCrashError(f"injected crash at {site!r}")

    def corrupt_wal(self, data_dir: str) -> list[str]:
        """Damage a data directory's WAL at rest, per the plan.

        Returns descriptions of what was done. Torn tail: the final
        record loses its last bytes (a partial write). CRC corruption:
        one payload byte of ``corrupt_record`` flips — on the final
        record that is tail damage, earlier it is mid-log corruption.
        """
        import os

        from ..storage.wal import RECORD_HEADER, scan_wal

        spec = self.plan.storage
        applied: list[str] = []
        if spec is None or not spec.active:
            return applied
        wal_path = os.path.join(data_dir, "wal.log")
        scan = scan_wal(wal_path)
        if not scan.records:
            return applied

        if spec.torn_tail:
            cut = 1 + self.rng.randrange(
                max(1, len(scan.records[-1]) // 2)
            )
            with open(wal_path, "r+b") as fh:
                fh.truncate(scan.valid_bytes - cut)
            self.injected["wal_torn_tail"] += 1
            applied.append(f"tore {cut} bytes off the final record")

        if spec.corrupt_record is not None:
            index = spec.corrupt_record % len(scan.records)
            offset = sum(
                len(record) + RECORD_HEADER.size
                for record in scan.records[:index]
            ) + RECORD_HEADER.size
            offset += self.rng.randrange(len(scan.records[index]))
            with open(wal_path, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ 0xFF]))
            self.injected["wal_crc_corrupted"] += 1
            applied.append(
                f"flipped a payload byte of record {index} "
                f"at offset {offset}"
            )
        return applied

    # ------------------------------------------------------------------
    # Replication tier: network faults
    # ------------------------------------------------------------------
    def tear_stream(self, blocks_sent: int) -> bool:
        """True when the writer should sever this stream connection now.

        Fires once per torn connection, at most ``tear_count`` times
        total — the drill is a flaky link the replica must survive, not
        a permanently severed one.
        """
        spec = self.plan.network
        if spec is None or spec.tear_after_blocks is None:
            return False
        if self.injected["stream_torn"] >= spec.tear_count:
            return False
        if blocks_sent >= spec.tear_after_blocks:
            self.injected["stream_torn"] += 1
            return True
        return False

    def stall_follower(self) -> float:
        """Seconds the follower should sleep before applying a block."""
        spec = self.plan.network
        if spec is None or spec.stall_apply_s <= 0:
            return 0.0
        self.injected["follower_stalled"] += 1
        return spec.stall_apply_s

    def partitioned(self) -> bool:
        """True while the partition still refuses connection attempts."""
        spec = self.plan.network
        if spec is None or spec.partition_connects <= 0:
            return False
        if self.injected["connect_refused"] < spec.partition_connects:
            self.injected["connect_refused"] += 1
            return True
        return False

    def corrupt_replica_state(self, state, height: int) -> bool:
        """The divergence drill: flip one balance in applied state.

        Mutates through the state's own setters so the digest cache is
        invalidated — the corruption *will* be visible to the next
        digest computation, which is exactly what the replica's
        per-block assertion must catch. Fires once.
        """
        spec = self.plan.network
        if spec is None or spec.corrupt_at_height != height:
            return False
        if self.injected["replica_state_corrupted"]:
            return False
        addresses = state.addresses()
        if not addresses:
            return False
        victim = self.rng.choice(addresses)
        with state.untracked():
            state.set_balance(victim, state.get_balance(victim) + 1)
        state.clear_journal()
        self.injected["replica_state_corrupted"] += 1
        return True

    # ------------------------------------------------------------------
    # Idle slice: stale hotspot profiles
    # ------------------------------------------------------------------
    def poison_profiles(self, state) -> list[int]:
        """Mutate planned contracts *after* they were profiled.

        Appends a dead byte to the contract's code (behaviour-preserving
        but hash-changing) and perturbs a high storage slot, modelling a
        contract upgraded between pre-execution and block arrival.
        """
        poisoned: list[int] = []
        for address in self.plan.stale_profiles:
            code = state.get_code(address)
            if not code:
                continue
            state.set_code(address, code + b"\x00")
            state.clear_journal()
            self.injected["stale_profile"] += 1
            poisoned.append(address)
        return poisoned
