"""Deterministic (seeded) fault injection at the plan's named sites.

The injector is the *adversary half* of the framework: given a
:class:`~repro.faults.plan.FaultPlan` it corrupts blocks, roots,
transaction streams, PUs and hotspot profiles. Every mutation is drawn
from ``random.Random(plan.seed)``, so a failing run replays exactly.
The ``injected`` counter records what was actually injected, which the
acceptance tests compare against the defender's
:class:`~repro.faults.report.DegradationReport`.
"""

from __future__ import annotations

import random
from collections import Counter

from ..chain.transaction import Transaction
from .plan import FaultPlan, PUFault

#: Gas limit guaranteed to be below any transaction's intrinsic gas.
_MALFORMED_GAS_LIMIT = 100

#: Address pool for fabricated hostile senders (never funded in genesis).
_HOSTILE_SENDER_BASE = 0xBAD0_0000_0000


class FaultInjector:
    """Applies a :class:`FaultPlan` at each injection site."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: What was actually injected, keyed by fault class.
        self.injected: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Consensus stage: the block-embedded DAG and the claimed root
    # ------------------------------------------------------------------
    def corrupt_dag(
        self, count: int, edges: list[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        """Return a corrupted copy of a block's dependency edges."""
        spec = self.plan.dag
        corrupted = list(edges)
        if spec is None or not spec.active or count < 2:
            return corrupted

        for _ in range(min(spec.drop_edges, len(corrupted))):
            victim = self.rng.randrange(len(corrupted))
            corrupted.pop(victim)
            self.injected["dag_edge_dropped"] += 1

        present = set(corrupted)
        attempts = 0
        added = 0
        while added < spec.bogus_edges and attempts < 50 * spec.bogus_edges:
            attempts += 1
            i, j = sorted(self.rng.sample(range(count), 2))
            if (i, j) in present:
                continue
            corrupted.append((i, j))
            present.add((i, j))
            self.injected["dag_edge_bogus"] += 1
            added += 1

        if spec.make_cycle:
            if corrupted:
                i, j = self.rng.choice(corrupted)
            else:
                i, j = 0, 1
                corrupted.append((i, j))
            corrupted.append((j, i))
            self.injected["dag_cycle"] += 1
        return corrupted

    def corrupt_root(self, root: bytes) -> bytes:
        """Flip one byte of the claimed receipts root."""
        if not self.plan.corrupt_receipts_root or not root:
            return root
        position = self.rng.randrange(len(root))
        mutated = bytearray(root)
        mutated[position] ^= 0xFF
        self.injected["root_corrupted"] += 1
        return bytes(mutated)

    # ------------------------------------------------------------------
    # Dissemination stage: hostile transactions
    # ------------------------------------------------------------------
    def hostile_transactions(
        self, honest: list[Transaction]
    ) -> list[Transaction]:
        """Fabricate the plan's malformed/duplicate/underfunded stream.

        The caller disseminates the returned transactions alongside the
        honest traffic; mempool admission is expected to reject them all.
        """
        spec = self.plan.txs
        if spec is None or not spec.active:
            return []
        hostile: list[Transaction] = []
        for n in range(spec.malformed):
            hostile.append(
                Transaction(
                    sender=_HOSTILE_SENDER_BASE + self.rng.randrange(1 << 16),
                    to=self.rng.randrange(1, 1 << 20),
                    gas_limit=_MALFORMED_GAS_LIMIT,
                    data=b"\xde\xad\xbe\xef" * (n + 1),
                )
            )
            self.injected["tx_malformed"] += 1
        for _ in range(min(spec.duplicates, len(honest))):
            hostile.append(self.rng.choice(honest))
            self.injected["tx_duplicate"] += 1
        for _ in range(spec.underfunded):
            hostile.append(
                Transaction(
                    sender=_HOSTILE_SENDER_BASE + self.rng.randrange(1 << 16),
                    to=self.rng.randrange(1, 1 << 20),
                    value=1 + self.rng.randrange(10**18),
                )
            )
            self.injected["tx_underfunded"] += 1
        return hostile

    # ------------------------------------------------------------------
    # Execution stage: PU failures
    # ------------------------------------------------------------------
    def pu_faults(self, num_pus: int) -> dict[int, PUFault]:
        """The plan's PU faults applicable to a machine with *num_pus*."""
        applicable: dict[int, PUFault] = {}
        for fault in self.plan.pu_faults:
            if fault.pu_id < num_pus:
                applicable[fault.pu_id] = fault
                self.injected[f"pu_{fault.kind}"] += 1
        return applicable

    # ------------------------------------------------------------------
    # Idle slice: stale hotspot profiles
    # ------------------------------------------------------------------
    def poison_profiles(self, state) -> list[int]:
        """Mutate planned contracts *after* they were profiled.

        Appends a dead byte to the contract's code (behaviour-preserving
        but hash-changing) and perturbs a high storage slot, modelling a
        contract upgraded between pre-execution and block arrival.
        """
        poisoned: list[int] = []
        for address in self.plan.stale_profiles:
            code = state.get_code(address)
            if not code:
                continue
            state.set_code(address, code + b"\x00")
            state.clear_journal()
            self.injected["stale_profile"] += 1
            poisoned.append(address)
        return poisoned
