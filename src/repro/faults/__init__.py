"""Fault injection and graceful-degradation observability.

The paper's co-design trusts its inputs: consensus-stage nodes embed a
dependency DAG in each block and validators execute it on the MTPU,
checking only the receipts digest. This package supplies the adversary
(:class:`FaultInjector`, driven by a declarative seeded
:class:`FaultPlan`) and the accounting (:class:`DegradationReport`) that
let the rest of the system prove it degrades gracefully instead:
corrupted DAGs are rebuilt, dead PUs are drained onto survivors, bogus
claimed roots trigger a sequential fallback, hostile transactions are
refused at admission, and crash faults against the durable store
(:class:`StorageCorruption`) recover to a bit-identical state.
"""

from .injector import FaultInjector, SimulatedCrashError
from .plan import (
    PU_DEAD,
    PU_STALL,
    DagCorruption,
    FaultPlan,
    NetworkFault,
    PUFault,
    StorageCorruption,
    TxCorruption,
)
from .report import DegradationReport

__all__ = [
    "DagCorruption",
    "DegradationReport",
    "FaultInjector",
    "FaultPlan",
    "NetworkFault",
    "PUFault",
    "PU_DEAD",
    "PU_STALL",
    "SimulatedCrashError",
    "StorageCorruption",
    "TxCorruption",
]
