"""Degradation observability: per-block robustness counters.

Every defensive layer increments a counter here instead of logging, so a
node operator (or a test) can assert exactly which faults were seen and
which recovery path handled them. The report is threaded through
:class:`repro.core.validator.ValidationOutcome` and accumulated per
validator lifetime via :meth:`DegradationReport.merge`.

The counters are shared with the metrics registry: incrementing through
:meth:`DegradationReport.count` also bumps the matching ``faults.<name>``
series on the active :class:`repro.obs.MetricsRegistry`, so fault drills
and :class:`repro.obs.BlockPerfReport` perf reports read one source of
truth rather than two drifting sets of counters.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..obs import get_registry


@dataclass
class DegradationReport:
    """Per-block counters: faults seen, fallbacks taken, work redone."""

    #: Block-embedded DAGs that failed verification (cycle, missing
    #: dependency coverage, or spurious/out-of-range edges).
    dag_faults_detected: int = 0
    #: DAGs rebuilt locally after a failed verification.
    dag_rebuilds: int = 0
    #: MTPU receipts roots that disagreed with the block's claimed root.
    root_mismatches: int = 0
    #: Sequential re-executions triggered by a root mismatch.
    sequential_fallbacks: int = 0
    #: Blocks discarded because even sequential execution disagreed with
    #: the claimed root (the claim itself was bogus).
    blocks_rejected: int = 0
    #: PUs that died permanently mid-schedule.
    pu_failures_detected: int = 0
    #: PUs that stalled transiently and later recovered.
    pu_stalls_detected: int = 0
    #: In-flight transactions re-enqueued onto surviving PUs.
    txs_rescheduled: int = 0
    #: Cycles lost to failed/stalled PUs (wasted partial work + stall time).
    recovery_cycles: int = 0
    #: Hotspot plans discarded because the profiled contract changed
    #: after pre-execution (stale profile).
    stale_plans_discarded: int = 0
    #: Pre-executed Compare/Check chunks discarded because the contract's
    #: code was rewritten earlier in the same block.
    stale_chunks_discarded: int = 0
    #: Transactions rejected at dissemination by mempool admission checks.
    admission_rejections: int = 0
    #: Execute-once artifacts discarded because their recorded read
    #: values no longer matched the state (tx re-executed functionally).
    artifact_reexecutions: int = 0

    @property
    def faults_seen(self) -> int:
        """Total distinct fault events detected by any layer."""
        return (
            self.dag_faults_detected
            + self.root_mismatches
            + self.pu_failures_detected
            + self.pu_stalls_detected
            + self.stale_plans_discarded
            + self.stale_chunks_discarded
            + self.admission_rejections
        )

    @property
    def fallbacks_taken(self) -> int:
        """Total recovery actions (degraded-mode paths exercised)."""
        return (
            self.dag_rebuilds
            + self.sequential_fallbacks
            + self.txs_rescheduled
        )

    def count(self, name: str, amount: int = 1) -> None:
        """Increment one counter *and* its ``faults.<name>`` metric series.

        Every live increment site (validator, scheduler driver) goes
        through here; field assignment stays available for tests that
        construct expected reports by hand.
        """
        setattr(self, name, getattr(self, name) + amount)
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults." + name).inc(amount)

    @classmethod
    def from_registry(cls, registry) -> "DegradationReport":
        """Rebuild a report from the registry's ``faults.*`` totals."""
        report = cls()
        for spec in fields(report):
            setattr(report, spec.name, registry.total("faults." + spec.name))
        return report

    def merge(self, other: "DegradationReport") -> None:
        """Fold another report's counters into this one.

        Pure field arithmetic — the registry already saw each event once
        at :meth:`count` time, so merging must not re-publish.
        """
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )

    def as_dict(self) -> dict[str, int]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def __str__(self) -> str:
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        if not nonzero:
            return "DegradationReport(clean)"
        inner = ", ".join(f"{k}={v}" for k, v in nonzero.items())
        return f"DegradationReport({inner})"
