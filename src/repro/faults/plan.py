"""Declarative fault plans: *what* to break, *where*, and *when*.

A :class:`FaultPlan` names the injection sites the framework supports —
one field per site — and is consumed by a seeded
:class:`repro.faults.injector.FaultInjector`, so a plan plus a seed
reproduces the exact same hostile behaviour on every run.

Sites mirror the three-stage node model (paper Fig. 4):

* **consensus** — the block-embedded dependency DAG
  (:class:`DagCorruption`) and the claimed receipts root
  (``corrupt_receipts_root``);
* **dissemination** — malformed / duplicate / underfunded transactions
  (:class:`TxCorruption`);
* **execution** — PU death or transient stalls inside the MTPU
  (:class:`PUFault`) and hotspot profiles invalidated by contract
  changes after pre-execution (``stale_profiles``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DagCorruption:
    """Corrupt the block-embedded dependency DAG before it ships."""

    #: Randomly delete this many real dependency edges (breaks
    #: conflict coverage: dependent transactions look independent).
    drop_edges: int = 0
    #: Insert this many fabricated forward edges between unrelated
    #: transactions (over-serializes the schedule).
    bogus_edges: int = 0
    #: Insert one backward edge closing a cycle through an existing edge.
    make_cycle: bool = False

    @property
    def active(self) -> bool:
        return bool(self.drop_edges or self.bogus_edges or self.make_cycle)


@dataclass(frozen=True)
class TxCorruption:
    """Inject hostile transactions at the dissemination stage."""

    #: Transactions whose gas limit is below their intrinsic gas.
    malformed: int = 0
    #: Exact duplicates of already-disseminated transactions.
    duplicates: int = 0
    #: Value-bearing transactions from senders with zero balance.
    underfunded: int = 0

    @property
    def active(self) -> bool:
        return bool(self.malformed or self.duplicates or self.underfunded)


@dataclass(frozen=True)
class StorageCorruption:
    """Crash-fault drills against the durable store.

    ``corrupt_wal`` applies the torn-tail / CRC damage to a data
    directory *at rest* (between runs); ``crash_between_wal_and_snapshot``
    arms the :meth:`~repro.faults.injector.FaultInjector.crash_point`
    hook the store fires after a block's WAL append but before its
    snapshot write — the widest crash window in the commit path.
    """

    #: Cut bytes off the final WAL record (simulates a torn write).
    torn_tail: bool = False
    #: Flip a payload byte of this record index (None: no CRC damage).
    #: Negative indexes count from the end (-1 = final record → tail
    #: damage; an earlier index → mid-log corruption).
    corrupt_record: int | None = None
    #: Raise :class:`~repro.faults.injector.SimulatedCrashError` at the
    #: between-WAL-and-snapshot crash point.
    crash_between_wal_and_snapshot: bool = False

    @property
    def active(self) -> bool:
        return bool(
            self.torn_tail
            or self.corrupt_record is not None
            or self.crash_between_wal_and_snapshot
        )


@dataclass(frozen=True)
class NetworkFault:
    """Replication-tier network adversity.

    These are the drills the replication layer must survive without
    operator help: a writer that drops the stream mid-block, a follower
    that applies slowly, a partition that refuses connections for a
    while, and — the one that must never be survivable silently — a
    follower whose state is corrupted between blocks so its re-executed
    digest diverges from the writer's stamp.
    """

    #: Sever the writer→replica stream after this many BLOCK messages
    #: on a connection (None: never). The replica sees a torn stream
    #: and must reconnect with backoff.
    tear_after_blocks: int | None = None
    #: How many connections to tear in total (the drill is a flaky
    #: link, not a permanently severed one).
    tear_count: int = 1
    #: Sleep this long in the follower before applying each block (a
    #: stalled follower: lag grows, the proxy must eject it).
    stall_apply_s: float = 0.0
    #: Refuse this many consecutive connection attempts (a partition;
    #: the replica keeps backing off until it lifts).
    partition_connects: int = 0
    #: Corrupt the replica's world state just before it applies this
    #: block height. The digest assertion must catch it — the byte is
    #: flipped *past* the stream CRC, in applied state.
    corrupt_at_height: int | None = None

    @property
    def active(self) -> bool:
        return bool(
            self.tear_after_blocks is not None
            or self.stall_apply_s > 0
            or self.partition_connects
            or self.corrupt_at_height is not None
        )


#: PU fault kinds.
PU_DEAD = "dead"
PU_STALL = "stall"


@dataclass(frozen=True)
class PUFault:
    """One processing unit failing during block execution."""

    pu_id: int
    #: :data:`PU_DEAD` (permanent) or :data:`PU_STALL` (transient).
    kind: str = PU_DEAD
    #: Simulator cycle at which the failure strikes.
    at_cycle: int = 0
    #: For stalls: cycles until the PU comes back.
    stall_cycles: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (PU_DEAD, PU_STALL):
            raise ValueError(f"unknown PU fault kind {self.kind!r}")
        if self.kind == PU_STALL and self.stall_cycles <= 0:
            raise ValueError("a stall fault needs stall_cycles > 0")


@dataclass(frozen=True)
class FaultPlan:
    """Everything an adversarial run will throw at the node."""

    seed: int = 0
    dag: DagCorruption | None = None
    #: Flip a byte of the claimed receipts root in the consensus message.
    corrupt_receipts_root: bool = False
    txs: TxCorruption | None = None
    pu_faults: tuple[PUFault, ...] = field(default_factory=tuple)
    #: Contract addresses whose state is mutated *after* the hotspot
    #: optimizer profiled them (stale-profile fault).
    stale_profiles: tuple[int, ...] = field(default_factory=tuple)
    #: Crash faults against the durable store.
    storage: StorageCorruption | None = None
    #: Network faults against the replication tier.
    network: NetworkFault | None = None

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for fault in self.pu_faults:
            if fault.pu_id in seen:
                raise ValueError(
                    f"duplicate PU fault for pu_id={fault.pu_id}"
                )
            seen.add(fault.pu_id)

    @property
    def empty(self) -> bool:
        return not (
            (self.dag and self.dag.active)
            or self.corrupt_receipts_root
            or (self.txs and self.txs.active)
            or self.pu_faults
            or self.stale_profiles
            or (self.storage and self.storage.active)
            or (self.network and self.network.active)
        )
