"""Execution-information collection: the Contract Table (paper Fig. 10a).

"The execution path of hotspot contracts is persisted to the Contract
Table. Only transactions that call the same smart contract and have the
same entry function have almost completely overlapping execution paths,
so we use the contract address and function identifier as labels."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...evm.code import decode
from ...evm.tracer import TraceStep
from .chunking import ChunkSpans, find_chunks, on_path_fraction, visited_code_bytes
from .constants import FrameAnalysis, analyze_trace


@dataclass
class ExecutionProfile:
    """One Contract Table entry: (contract address, function identifier)."""

    address: int
    selector: bytes
    samples: int = 0
    chunks: ChunkSpans = field(default_factory=ChunkSpans)
    #: PCs visited per code address (the contract itself plus callees).
    visited_pcs: dict[int, set[int]] = field(default_factory=dict)
    analysis: FrameAnalysis = field(default_factory=FrameAnalysis)
    on_path_fraction: float = 1.0

    @property
    def label(self) -> tuple[int, bytes]:
        return (self.address, self.selector)


class ContractTable:
    """Persisted execution information for hotspot contracts."""

    def __init__(self) -> None:
        self._entries: dict[tuple[int, bytes], ExecutionProfile] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, address: int, selector: bytes) -> ExecutionProfile | None:
        return self._entries.get((address, selector))

    def entries(self) -> list[ExecutionProfile]:
        return list(self._entries.values())

    def evict_contract(self, address: int) -> int:
        """Drop every profile of *address* (stale-profile recovery).

        Returns the number of entries removed.
        """
        labels = [
            label for label in self._entries if label[0] == address
        ]
        for label in labels:
            del self._entries[label]
        return len(labels)

    def record(
        self,
        address: int,
        selector: bytes,
        steps: list[TraceStep],
        code_lookup,
    ) -> ExecutionProfile:
        """Fold one sample trace into the profile for (address, selector)."""
        profile = self._entries.get((address, selector))
        if profile is None:
            profile = ExecutionProfile(address=address, selector=selector)
            self._entries[(address, selector)] = profile

        profile.samples += 1
        if profile.samples == 1:
            profile.chunks = find_chunks(steps, address)

        for code_address in {step.code_address for step in steps}:
            visited = profile.visited_pcs.setdefault(code_address, set())
            visited |= visited_code_bytes(steps, code_address)

        analysis = analyze_trace(steps)
        merged = profile.analysis
        merged.const_steps |= analysis.const_steps
        merged.fixed_steps |= analysis.fixed_steps
        merged.blocked_pcs |= analysis.blocked_pcs
        merged.eliminable_pcs |= analysis.eliminable_pcs
        merged.eliminable_pcs -= merged.blocked_pcs
        merged.unprefetchable_pcs |= analysis.unprefetchable_pcs
        merged.prefetch_pcs |= analysis.prefetch_pcs
        merged.prefetch_pcs -= merged.unprefetchable_pcs
        merged.constants.extend(analysis.constants)

        # Bytecode-loading fraction for the hotspot contract itself.
        code = code_lookup(address)
        sizes = {
            instr.pc: instr.size for instr in decode(code)
        }
        profile.on_path_fraction = on_path_fraction(
            profile.visited_pcs.get(address, set()), sizes, len(code)
        )
        return profile
