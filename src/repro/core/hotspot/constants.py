"""Constant-instruction detection and prefetch analysis by backtracking
(paper sections 3.4.3–3.4.4).

Two dataflow lattices are propagated forward over a frame's trace using
the tracer's producer links (which implement the paper's "backtracking"
in reverse):

* **CONST** — the value is a compile-time constant (PUSH immediates and
  pure functions of them, including hashes of constant memory). Stack
  instructions producing CONST values are *eliminated*: their operands
  move to the Constants Table and the consumers fetch from there
  (section 3.4.3's ``0xb3 MSTORE`` / ``0xb7 SHA3`` example).
* **FIXED** — the value is invariant during execution: CONST values plus
  transaction/block attributes (CALLER, CALLVALUE, calldata, ...). A
  dynamic-access instruction (SLOAD, BALANCE, ...) whose key is FIXED is
  *prefetchable*: the access key is computable before execution, so the
  data waits in the data cache (section 3.4.4's three-steps-back SLOAD
  example: hash of a constant and the caller's address).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...evm import opcodes
from ...evm.opcodes import Category
from ...evm.tracer import EXTERNAL_PRODUCER, TraceStep

#: Fixed-access results known before execution (paper Table 3 + Table 4:
#: transaction attributes and block-header fields are all disseminated
#: ahead of the execution stage).
_FIXED_ENV_OPS = frozenset(
    {
        "ADDRESS", "ORIGIN", "CALLER", "CALLVALUE", "CALLDATASIZE",
        "CODESIZE", "GASPRICE", "COINBASE", "TIMESTAMP", "NUMBER",
        "DIFFICULTY", "GASLIMIT", "PC", "BLOCKHASH",
    }
)

_PURE_CATEGORIES = frozenset({Category.ARITHMETIC, Category.LOGIC})


@dataclass
class FrameAnalysis:
    """Analysis result for one call frame's steps."""

    const_steps: set[int] = field(default_factory=set)
    fixed_steps: set[int] = field(default_factory=set)
    #: (code_address, pc) of eliminable stack instructions.
    eliminable_pcs: set[tuple[int, int]] = field(default_factory=set)
    #: (code_address, pc) of stack instructions seen but NOT eliminable —
    #: needed to keep per-contract merges consistent.
    blocked_pcs: set[tuple[int, int]] = field(default_factory=set)
    #: (code_address, pc) of prefetchable dynamic accesses.
    prefetch_pcs: set[tuple[int, int]] = field(default_factory=set)
    #: (code_address, pc) of dynamic accesses that are NOT prefetchable.
    unprefetchable_pcs: set[tuple[int, int]] = field(default_factory=set)
    #: Constants Table contents: values separated from the stack.
    constants: list[int] = field(default_factory=list)


def analyze_frame(steps: list[TraceStep], frame_steps: list[int]) -> FrameAnalysis:
    """Propagate CONST/FIXED over the steps of one frame.

    *frame_steps* are global trace indices belonging to the frame, in
    order. Producer links never cross frames (each frame has its own
    operand stack), so the analysis is self-contained.
    """
    result = FrameAnalysis()
    const: dict[int, bool] = {}
    fixed: dict[int, bool] = {}
    # Per-frame memory fixedness at 32-byte word granularity.
    const_mem: dict[int, bool] = {}
    fixed_mem: dict[int, bool] = {}

    def producer_const(p: int) -> bool:
        return p != EXTERNAL_PRODUCER and const.get(p, False)

    def producer_fixed(p: int) -> bool:
        return p != EXTERNAL_PRODUCER and fixed.get(p, False)

    for index in frame_steps:
        step = steps[index]
        op = step.op
        name = op.name
        key = (step.code_address, step.pc)
        is_const = False
        is_fixed = False

        if name.startswith("PUSH"):
            is_const = True
        elif opcodes.is_dup(op):
            is_const = all(producer_const(p) for p in step.producers)
            is_fixed = all(producer_fixed(p) for p in step.producers)
        elif opcodes.is_swap(op) or name == "POP":
            pass  # no value produced
        elif name == "CALLDATALOAD":
            # Calldata is a transaction attribute: fixed when the offset
            # is fixed.
            is_fixed = all(producer_fixed(p) for p in step.producers)
        elif name in _FIXED_ENV_OPS:
            is_fixed = True
        elif op.category in _PURE_CATEGORIES:
            is_const = bool(step.producers) and all(
                producer_const(p) for p in step.producers
            )
            is_fixed = bool(step.producers) and all(
                producer_fixed(p) for p in step.producers
            )
        elif name == "SHA3":
            offset, length = step.operands[0], step.operands[1]
            inputs_const = all(producer_const(p) for p in step.producers)
            inputs_fixed = all(producer_fixed(p) for p in step.producers)
            words = range(offset, offset + length, 32)
            is_const = inputs_const and all(
                const_mem.get(w, False) for w in words
            )
            is_fixed = inputs_fixed and all(
                fixed_mem.get(w, False) for w in words
            )
        elif name == "MSTORE":
            offset = step.operands[0]
            const_mem[offset] = all(
                producer_const(p) for p in step.producers
            )
            fixed_mem[offset] = all(
                producer_fixed(p) for p in step.producers
            )
        elif name == "MSTORE8":
            offset = step.operands[0]
            const_mem[offset - offset % 32] = False
            fixed_mem[offset - offset % 32] = False
        elif name == "MLOAD":
            offset = step.operands[0]
            offset_const = all(producer_const(p) for p in step.producers)
            offset_fixed = all(producer_fixed(p) for p in step.producers)
            is_const = offset_const and const_mem.get(offset, False)
            is_fixed = offset_fixed and fixed_mem.get(offset, False)
        elif name == "SLOAD" or op.category is Category.STATE_QUERY:
            # The *value* is never fixed (state mutates), but a fixed key
            # means the access is prefetchable.
            if step.producers and all(
                producer_fixed(p) for p in step.producers
            ):
                result.prefetch_pcs.add(key)
            else:
                result.unprefetchable_pcs.add(key)

        is_fixed = is_fixed or is_const
        const[index] = is_const
        fixed[index] = is_fixed
        if is_const:
            result.const_steps.add(index)
        if is_fixed:
            result.fixed_steps.add(index)

        # Elimination: stack instructions producing constants move their
        # operand to the Constants Table.
        if name.startswith("PUSH") or opcodes.is_dup(op):
            if is_const:
                result.eliminable_pcs.add(key)
                if step.results:
                    result.constants.append(step.results[0])
            else:
                result.blocked_pcs.add(key)
    return result


def frame_step_groups(steps: list[TraceStep]) -> list[list[int]]:
    """Group trace indices by call frame (depth + contiguous span).

    A frame's steps are those at its depth between entering and leaving
    it; nested calls interleave deeper steps, which belong to their own
    groups.
    """
    groups: list[list[int]] = []
    stack: list[list[int]] = []
    current_depth = -1
    for i, step in enumerate(steps):
        depth = step.depth
        if depth > current_depth:
            for _ in range(depth - current_depth):
                stack.append([])
                groups.append(stack[-1])
            current_depth = depth
        elif depth < current_depth:
            for _ in range(current_depth - depth):
                stack.pop()
            current_depth = depth
            if not stack:  # defensive: malformed depth sequence
                stack.append([])
                groups.append(stack[-1])
        stack[-1].append(i)
    return [g for g in groups if g]


def analyze_trace(steps: list[TraceStep]) -> FrameAnalysis:
    """Analyze every frame of a transaction trace and merge results."""
    merged = FrameAnalysis()
    for group in frame_step_groups(steps):
        frame_result = analyze_frame(steps, group)
        merged.const_steps |= frame_result.const_steps
        merged.fixed_steps |= frame_result.fixed_steps
        merged.eliminable_pcs |= frame_result.eliminable_pcs
        merged.blocked_pcs |= frame_result.blocked_pcs
        merged.prefetch_pcs |= frame_result.prefetch_pcs
        merged.unprefetchable_pcs |= frame_result.unprefetchable_pcs
        merged.constants.extend(frame_result.constants)
    # A pc blocked in any frame is not eliminable anywhere.
    merged.eliminable_pcs -= merged.blocked_pcs
    merged.prefetch_pcs -= merged.unprefetchable_pcs
    return merged
