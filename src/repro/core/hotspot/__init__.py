"""Hotspot contract optimization (paper section 3.4): execution-info
collection, bytecode chunking with pre-execution, constant-instruction
elimination, and data prefetching."""

from .chunking import ChunkSpans, find_chunks, on_path_fraction
from .constants import FrameAnalysis, analyze_frame, analyze_trace
from .optimizer import HotspotOptimizer, HotspotPlan
from .profiler import ContractTable, ExecutionProfile
from .tracker import HotspotTracker

__all__ = [
    "ChunkSpans",
    "find_chunks",
    "on_path_fraction",
    "FrameAnalysis",
    "analyze_frame",
    "analyze_trace",
    "HotspotOptimizer",
    "HotspotPlan",
    "ContractTable",
    "ExecutionProfile",
    "HotspotTracker",
]
