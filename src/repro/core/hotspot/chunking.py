"""Bytecode chunking and chunk pre-execution (paper sections 3.4.1–3.4.2).

Execution paths of hotspot contracts split into four chunks (Fig. 10b):

* **Compare** — the selector-dispatch ladder (PUSH4/EQ/PUSH2/JUMPI).
* **Check** — the CALLVALUE guard of non-payable functions.
* **Execute** — the function body.
* **End** — the frame terminator.

Compare and Check depend only on transaction attributes (*To*, *Input*,
*CallValue*), all known during dissemination, so for transactions heard
before the block arrives they are **pre-executed** in the idle slice and
skipped at execution time. This module finds those chunk boundaries in a
trace and computes the on-path bytecode fraction used by the
loading optimization ("the bytecode loaded when executing the transfer
function is only 8.2% of the original").
"""

from __future__ import annotations

from dataclasses import dataclass

from ...evm.tracer import TraceStep

#: Ops that may legitimately appear inside a dispatch ladder. Anything
#: else ends the Compare chunk (e.g. a proxy's fallback body).
_SAFE_COMPARE_OPS = frozenset(
    {"CALLDATALOAD", "SHR", "EQ", "JUMPI", "JUMPDEST"}
)


def _is_compare_safe(step: TraceStep) -> bool:
    name = step.op.name
    return (
        name in _SAFE_COMPARE_OPS
        or name.startswith("PUSH")
        or name.startswith("DUP")
    )


@dataclass(frozen=True)
class ChunkSpans:
    """Chunk boundaries as trace-step indices (inclusive ends).

    ``compare_end`` / ``check_end`` are -1 when the chunk is absent.
    The pre-executable prefix is ``steps[0 .. preexec_end]``.
    """

    compare_end: int = -1
    check_end: int = -1

    @property
    def preexec_end(self) -> int:
        """Last step index covered by Compare+Check pre-execution."""
        return max(self.compare_end, self.check_end)


def find_chunks(steps: list[TraceStep], address: int) -> ChunkSpans:
    """Locate the Compare/Check chunk boundaries of a transaction trace.

    Only the top frame (depth 0, code at *address*) is considered: the
    chunk structure of delegated implementations is interior to the
    DELEGATECALL and is not pre-executable as a trace prefix.
    """
    compare_end = -1
    scan_limit = len(steps)
    taken_dispatch = None
    for i, step in enumerate(steps):
        if step.depth != 0 or step.code_address != address:
            scan_limit = i
            break
        if not _is_compare_safe(step):
            scan_limit = i
            break
        if step.op.name == "JUMPI":
            compare_end = i
            if step.extra.get("taken"):
                taken_dispatch = i
                break

    if taken_dispatch is None:
        # Fallback flow (proxy): the ladder ran through without a hit;
        # everything up to the last dispatch JUMPI is pre-executable.
        return ChunkSpans(compare_end=compare_end)

    # Check chunk: JUMPDEST, CALLVALUE, ISZERO, PUSH, JUMPI(taken).
    i = taken_dispatch + 1
    if (
        i < len(steps)
        and steps[i].op.name == "JUMPDEST"
        and i + 1 < len(steps)
        and steps[i + 1].op.name == "CALLVALUE"
    ):
        j = i + 1
        while j < len(steps) and steps[j].op.name != "JUMPI":
            j += 1
        if j < len(steps) and steps[j].extra.get("taken"):
            return ChunkSpans(compare_end=taken_dispatch, check_end=j)
    return ChunkSpans(compare_end=taken_dispatch)


def visited_code_bytes(
    steps: list[TraceStep], code_address: int
) -> set[int]:
    """PCs of instructions executed in *code_address* (any frame)."""
    return {
        step.pc for step in steps if step.code_address == code_address
    }


def on_path_fraction(
    visited_pcs: set[int],
    instruction_sizes: dict[int, int],
    code_size: int,
) -> float:
    """Fraction of the bytecode that must be loaded for this path.

    Chunk granularity means whole instructions (opcode + immediates) are
    loaded for every visited pc.
    """
    if code_size == 0:
        return 1.0
    loaded = sum(instruction_sizes.get(pc, 1) for pc in visited_pcs)
    return min(1.0, loaded / code_size)
