"""Dynamic hotspot identification (paper section 2.2.3).

"Hotspots change over time. For example, the once extremely hot CryptoCat
on Ethereum ... is hardly active anymore." The MTPU therefore cannot
hard-wire its optimized contracts (the paper's criticism of BPU); instead
it tracks invocation frequency and re-targets the optimizer during idle
slices.

:class:`HotspotTracker` keeps an exponentially decayed invocation count
per contract across blocks; :meth:`current_hotspots` is the TOP-k set the
idle-slice optimizer should (re)profile. Decay makes dethroned contracts
(CryptoCat) fall out of the set as traffic moves on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...chain.transaction import Transaction


@dataclass
class HotspotTracker:
    """Decayed per-contract invocation counts across blocks."""

    #: Multiplier applied to all scores at each block boundary. 0.9 keeps
    #: roughly the last ~10 blocks of history relevant.
    decay: float = 0.9
    #: Minimum score for a contract to qualify as a hotspot at all.
    min_score: float = 2.0
    scores: dict[int, float] = field(default_factory=dict)
    blocks_observed: int = 0

    def observe_block(self, transactions: list[Transaction]) -> None:
        """Fold one block's invocations into the decayed scores."""
        for address in list(self.scores):
            self.scores[address] *= self.decay
            if self.scores[address] < 1e-6:
                del self.scores[address]
        for tx in transactions:
            if tx.to is None or tx.selector is None:
                continue  # creations / plain transfers are not SCTs
            self.scores[tx.to] = self.scores.get(tx.to, 0.0) + 1.0
        self.blocks_observed += 1

    def score(self, address: int) -> float:
        return self.scores.get(address, 0.0)

    def current_hotspots(self, k: int = 8) -> list[int]:
        """TOP-k contract addresses by decayed invocation count."""
        eligible = [
            (score, address)
            for address, score in self.scores.items()
            if score >= self.min_score
        ]
        eligible.sort(key=lambda item: (-item[0], item[1]))
        return [address for _, address in eligible[:k]]

    def is_hotspot(self, address: int, k: int = 8) -> bool:
        return address in self.current_hotspots(k)

    def head_share(self, k: int = 5) -> float:
        """Share of (decayed) traffic going to the TOP-k contracts.

        The paper's motivating statistic: 37% of mainnet transactions hit
        the TOP5 contracts.
        """
        total = sum(self.scores.values())
        if not total:
            return 0.0
        top = sorted(self.scores.values(), reverse=True)[:k]
        return sum(top) / total
