"""The hotspot optimizer: offline optimization in the block interval.

Ties the pieces together (paper section 3.4):

1. **Profile** hotspot contracts by tracing sample transactions in the
   idle slice (collecting execution information, section 3.4.1).
2. **Chunk** traces and pre-execute Compare/Check for transactions that
   were disseminated early (sections 3.4.1–3.4.2). Whether a transaction
   was heard in time is decided deterministically from its hash with
   probability ``known_fraction`` (the paper cites 91.45%–98.15%).
3. **Eliminate** constant stack instructions (Constants Table) and build
   the optimized decode views the fill unit packs lines from
   (section 3.4.3).
4. **Prefetch** dynamic accesses with fixed keys (section 3.4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...chain.state import WorldState
from ...chain.transaction import Transaction
from ...evm.context import BlockContext
from ...evm.decoded import DECODE_CACHE
from ...evm.interpreter import EVM
from ...evm.tracer import TraceStep, Tracer
from ...obs import count, timed
from ..mtpu.fill_unit import CodeIndex
from .chunking import find_chunks
from .profiler import ContractTable, ExecutionProfile


@dataclass
class HotspotPlan:
    """Execution-time optimization plan for one (contract, selector)."""

    profile: ExecutionProfile
    eliminated_pcs: frozenset[tuple[int, int]]
    prefetch_pcs: frozenset[tuple[int, int]]
    on_path_fraction: float
    preexecute: bool  # was this transaction known before the block?

    def skip_indices(self, steps: list[TraceStep]) -> set[int]:
        """Trace steps that cost nothing at execution time.

        Pre-executed Compare/Check chunk steps (when the transaction was
        disseminated early) plus constant-eliminated stack instructions.
        """
        skip: set[int] = set()
        if self.preexecute:
            spans = find_chunks(steps, self.profile.address)
            if spans.preexec_end >= 0:
                skip.update(range(spans.preexec_end + 1))
        if self.eliminated_pcs:
            for step in steps:
                if (step.code_address, step.pc) in self.eliminated_pcs:
                    skip.add(step.index)
        return skip

    def prefetched_predicate(self) -> Callable[[TraceStep], bool]:
        prefetch = self.prefetch_pcs

        def predicate(step: TraceStep) -> bool:
            return (step.code_address, step.pc) in prefetch

        return predicate


class HotspotOptimizer:
    """Offline optimizer run in the idle slice of the block interval."""

    def __init__(
        self,
        state: WorldState,
        block: BlockContext | None = None,
        known_fraction: float = 0.95,
        enable_preexecution: bool = True,
        enable_elimination: bool = True,
        enable_prefetch: bool = True,
        enable_chunk_loading: bool = True,
        mempool=None,
        dissemination_cutoff: int | None = None,
    ) -> None:
        self.state = state
        self.block = block or BlockContext()
        self.known_fraction = known_fraction
        #: When a mempool is attached, pre-execution eligibility is the
        #: *actual* dissemination history (paper: a transaction can be
        #: pre-executed iff it was heard before the block arrived) rather
        #: than the known_fraction coin flip.
        self.mempool = mempool
        self.dissemination_cutoff = dissemination_cutoff
        self.enable_preexecution = enable_preexecution
        self.enable_elimination = enable_elimination
        self.enable_prefetch = enable_prefetch
        self.enable_chunk_loading = enable_chunk_loading
        self.contract_table = ContractTable()
        #: Contract-level eliminations merged over every profiled selector.
        self._eliminated_by_code: dict[int, set[tuple[int, int]]] = {}
        self._blocked_by_code: dict[int, set[tuple[int, int]]] = {}
        self._views: dict[int, CodeIndex] = {}
        self.hotspot_addresses: set[int] = set()
        #: Code bytes at profile time, for stale-profile detection: a
        #: contract upgraded after pre-execution invalidates its plans.
        self._profiled_code: dict[int, bytes] = {}
        #: Plans refused because the profiled contract changed.
        self.stale_plans_discarded = 0
        self._stale_addresses: set[int] = set()

    # ------------------------------------------------------------------
    # Offline profiling (the idle time slice)
    # ------------------------------------------------------------------
    def _code_lookup(self, address: int) -> bytes:
        saved = self.state.access
        self.state.access = None
        try:
            return self.state.get_code(address)
        finally:
            self.state.access = saved

    @timed("hotspot.optimize_contract")
    def optimize_contract(
        self, address: int, sample_transactions: list[Transaction]
    ) -> list[ExecutionProfile]:
        """Profile a hotspot contract from sample transactions.

        Samples run on a scratch copy of the state — offline optimization
        must not mutate the chain.
        """
        scratch = self.state.copy()
        evm_state = scratch
        profiles: list[ExecutionProfile] = []
        for tx in sample_transactions:
            if tx.to != address or tx.selector is None:
                continue
            tracer = Tracer()
            evm = EVM(evm_state, block=self.block, tracer=tracer)
            receipt = evm.execute_transaction(tx)
            evm_state.clear_journal()
            if not receipt.success:
                continue
            profile = self.contract_table.record(
                address, tx.selector, tracer.steps, self._code_lookup
            )
            profiles.append(profile)
        self.hotspot_addresses.add(address)
        self._profiled_code[address] = self._code_lookup(address)
        self._rebuild_views(address)
        count("hotspot.contracts_optimized")
        count("hotspot.profiles_recorded", len(profiles))
        return profiles

    def invalidate_contract(self, address: int) -> None:
        """Forget a contract's profiles (stale-profile recovery path).

        Transactions to the contract run unoptimized until the tracker
        re-selects it and a fresh profile is taken in a later idle slice.
        """
        self.contract_table.evict_contract(address)
        self.hotspot_addresses.discard(address)
        self._profiled_code.pop(address, None)
        self._eliminated_by_code.pop(address, None)
        self._blocked_by_code.pop(address, None)
        self._views.pop(address, None)

    def take_stale_addresses(self) -> set[int]:
        """Contracts found stale since the last call (then resets)."""
        stale, self._stale_addresses = self._stale_addresses, set()
        return stale

    def _rebuild_views(self, address: int) -> None:
        """Merge per-selector eliminations and rebuild code views."""
        eliminated: dict[int, set[tuple[int, int]]] = {}
        blocked: dict[int, set[tuple[int, int]]] = {}
        for profile in self.contract_table.entries():
            if profile.address != address:
                continue
            for key in profile.analysis.eliminable_pcs:
                eliminated.setdefault(key[0], set()).add(key)
            for key in profile.analysis.blocked_pcs:
                blocked.setdefault(key[0], set()).add(key)
        for code_address, keys in eliminated.items():
            keys -= blocked.get(code_address, set())
            self._eliminated_by_code.setdefault(code_address, set()).update(
                keys
            )
            self._blocked_by_code.setdefault(code_address, set()).update(
                blocked.get(code_address, set())
            )
            self._eliminated_by_code[code_address] -= self._blocked_by_code[
                code_address
            ]
            self._build_view(code_address)

    def _build_view(self, code_address: int) -> None:
        if not self.enable_elimination:
            return
        eliminated = self._eliminated_by_code.get(code_address, set())
        full = CodeIndex(code_address, self._code_lookup(code_address))
        filtered = [
            instr
            for instr in full.instructions
            if (code_address, instr.pc) not in eliminated
        ]
        self._views[code_address] = CodeIndex.from_instructions(
            code_address, filtered
        )
        # Feed the profile into the functional layer too: a contract hot
        # enough for constant elimination gets a deeper-folded decoded
        # program (the fold is statically sound, so this only changes
        # speed, never semantics — and it is keyed by code content, so a
        # redeploy at this address cannot see a stale specialization).
        if eliminated:
            code = self._code_lookup(code_address)
            if code:
                DECODE_CACHE.specialize(
                    code, {pc for _, pc in eliminated}
                )

    # ------------------------------------------------------------------
    # Execution-time queries
    # ------------------------------------------------------------------
    def code_view(self, code_address: int) -> CodeIndex | None:
        """Optimized decode view, when elimination produced one."""
        return self._views.get(code_address)

    def eliminated_for(self, tx: Transaction) -> frozenset:
        if not self.enable_elimination or tx.to is None:
            return frozenset()
        merged: set[tuple[int, int]] = set()
        for keys in self._eliminated_by_code.values():
            merged |= keys
        return frozenset(merged)

    def _known_before_block(self, tx: Transaction) -> bool:
        """Was this transaction disseminated before the block arrived?

        With an attached mempool this is the real answer; otherwise a
        deterministic coin flip from the transaction hash models the
        paper's 91.45%-98.15% dissemination coverage.
        """
        if self.mempool is not None and self.dissemination_cutoff is not None:
            return self.mempool.known_before(
                tx, self.dissemination_cutoff
            )
        digest = tx.hash()
        value = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return value < self.known_fraction

    def plan_for(self, tx: Transaction) -> HotspotPlan | None:
        """The optimization plan for a transaction, or None."""
        if tx.to is None or tx.to not in self.hotspot_addresses:
            return None
        selector = tx.selector
        if selector is None:
            return None
        recorded = self._profiled_code.get(tx.to)
        if recorded is not None and recorded != self._code_lookup(tx.to):
            # The contract changed after profiling: every plan derived
            # from the old code (chunk boundaries, eliminated PCs,
            # prefetch keys) is stale. Degrade to unoptimized execution
            # and queue the contract for re-profiling.
            self.stale_plans_discarded += 1
            count("hotspot.stale_plans")
            self._stale_addresses.add(tx.to)
            self.invalidate_contract(tx.to)
            return None
        profile = self.contract_table.get(tx.to, selector)
        if profile is None:
            return None
        eliminated = (
            self.eliminated_for(tx) if self.enable_elimination
            else frozenset()
        )
        prefetch = (
            frozenset(profile.analysis.prefetch_pcs)
            if self.enable_prefetch
            else frozenset()
        )
        fraction = (
            profile.on_path_fraction if self.enable_chunk_loading else 1.0
        )
        preexecute = (
            self.enable_preexecution and self._known_before_block(tx)
        )
        return HotspotPlan(
            profile=profile,
            eliminated_pcs=eliminated,
            prefetch_pcs=prefetch,
            on_path_fraction=fraction,
            preexecute=preexecute,
        )
