"""The paper's contribution: MTPU microarchitecture, spatio-temporal
scheduling, and hotspot contract optimization."""

from .validator import AcceleratedValidator, ValidationOutcome

__all__ = ["AcceleratedValidator", "ValidationOutcome"]
