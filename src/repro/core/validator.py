"""An accelerated validator: the full co-design in one adoptable object.

Wires every subsystem into the node lifecycle the paper describes:

* transactions arrive into the mempool (**dissemination**), gated by the
  mempool's admission checks;
* between blocks, the :class:`~repro.core.hotspot.tracker.HotspotTracker`
  picks the current hotspots and the optimizer (re)profiles them within
  the :class:`~repro.chain.node.StageClock`'s idle budget (**the idle
  time slice**, paper section 2.2.4);
* incoming blocks execute on a k-PU MTPU under spatio-temporal
  scheduling, with pre-execution eligibility decided by the mempool's
  actual dissemination history (**execution**), and the result is
  verified against the block's claimed receipts digest.

Unlike the paper's trusting pipeline, :meth:`AcceleratedValidator.validate`
treats every block as adversarial: the embedded DAG is verified (and
rebuilt locally on mismatch) before scheduling, the whole block runs
against a journal snapshot so a failed verification commits nothing, a
receipts-root mismatch degrades to sequential re-execution, and every
fault seen / fallback taken is counted in a per-block
:class:`~repro.faults.DegradationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.block import Block
from ..chain.dag import (
    DagVerification,
    build_dag_edges,
    discover_access_sets,
    transitive_reduction,
    verify_dag,
)
from ..chain.mempool import AdmissionError
from ..chain.node import Node, StageClock
from ..chain.receipt import Receipt, receipts_root
from ..chain.state import WorldState
from ..chain.transaction import Transaction
from ..evm.interpreter import EVM
from ..faults import DegradationReport
from ..obs import BlockPerfReport, get_registry, get_tracer
from .hotspot import HotspotOptimizer
from .hotspot.tracker import HotspotTracker
from .mtpu import MTPUExecutor, PUConfig
from .scheduler import ScheduleResult, run_spatial_temporal

#: Abstract profiling cost per sample transaction, in the StageClock's
#: time units — used to stay within the idle budget.
PROFILE_COST_PER_SAMPLE = 0.01


@dataclass
class ValidationOutcome:
    """Result of validating one block on the accelerated path."""

    block: Block
    receipts: list[Receipt]
    schedule: ScheduleResult
    verified: bool | None  # None when no claimed root was provided
    hotspots_optimized: list[int] = field(default_factory=list)
    #: False when the block was rejected (nothing committed).
    committed: bool = True
    #: Robustness counters for this block (faults seen, fallbacks taken).
    report: DegradationReport = field(default_factory=DegradationReport)
    #: Verdict on the block-embedded DAG (None when verification is off).
    dag_verification: DagVerification | None = None
    #: Per-block performance report, populated when a metrics registry is
    #: active (:func:`repro.obs.use_registry`); None otherwise.
    perf: BlockPerfReport | None = None

    @property
    def makespan_cycles(self) -> int:
        return self.schedule.makespan_cycles


class AcceleratedValidator:
    """A validating node whose execution stage runs on the MTPU."""

    def __init__(
        self,
        state: WorldState,
        num_pus: int = 4,
        pu_config: PUConfig | None = None,
        clock: StageClock | None = None,
        hotspot_top_k: int = 8,
        deployment=None,
        verify_dags: bool = True,
        mempool_capacity: int | None = None,
        fault_injector=None,
    ) -> None:
        self.node = Node(
            state=state, clock=clock or StageClock(),
            mempool_capacity=mempool_capacity,
        )
        self.num_pus = num_pus
        self.pu_config = pu_config or PUConfig()
        self.hotspot_top_k = hotspot_top_k
        self.tracker = HotspotTracker()
        self.optimizer = HotspotOptimizer(
            self.node.state, mempool=self.node.mempool,
            dissemination_cutoff=0,
        )
        #: Deployment handle for sampling hotspot contracts offline; when
        #: absent, profiling uses recently seen mempool transactions.
        self.deployment = deployment
        #: Distrust block-embedded DAGs: verify (and rebuild on mismatch)
        #: before scheduling. Costs one speculative pass per block.
        self.verify_dags = verify_dags
        #: Optional :class:`~repro.faults.FaultInjector` enacting PU
        #: faults inside this validator's MTPU (fault drills).
        self.fault_injector = fault_injector
        #: Lifetime sum of every per-block report.
        self.total_degradation = DegradationReport()
        self._optimized: set[int] = set()
        self._recent_by_contract: dict[int, list[Transaction]] = {}
        self._admission_rejections = 0

    # -- dissemination stage -------------------------------------------------
    def hear(self, tx: Transaction, at: int | None = None) -> bool:
        """Admit a disseminated transaction; False when it was refused.

        Admission failures (intrinsic-gas shortfall, unfunded value
        transfer, duplicate) are counted into the next block's
        :class:`~repro.faults.DegradationReport` rather than raised: a
        node on a hostile network drops garbage and moves on.
        """
        try:
            added = self.node.hear(tx, at=at)
        except AdmissionError:
            self._admission_rejections += 1
            return False
        if not added:
            self._admission_rejections += 1
            return False
        if tx.to is not None and tx.selector is not None:
            bucket = self._recent_by_contract.setdefault(tx.to, [])
            bucket.append(tx)
            del bucket[:-32]  # keep a bounded sample window
        return True

    # -- idle slice -----------------------------------------------------------
    def idle_slice(self) -> list[int]:
        """Run hotspot optimization within the clock's idle budget.

        Returns the contract addresses (re)profiled this interval.
        """
        budget = self.node.clock.idle_budget
        optimized: list[int] = []
        for address in self.tracker.current_hotspots(self.hotspot_top_k):
            if address in self._optimized:
                continue
            samples = self._samples_for(address)
            if not samples:
                continue
            cost = PROFILE_COST_PER_SAMPLE * len(samples)
            if cost > budget:
                break  # the slice is over; resume next interval
            budget -= cost
            self.optimizer.optimize_contract(address, samples)
            self._optimized.add(address)
            optimized.append(address)
        return optimized

    def _samples_for(self, address: int) -> list[Transaction]:
        if self.deployment is not None:
            deployed = self.deployment.by_address(address)
            if deployed is not None:
                from ..workload import all_entry_function_calls

                return all_entry_function_calls(
                    self.deployment, deployed.name, seed=address & 0xFFFF
                )
        return list(self._recent_by_contract.get(address, []))

    # -- consensus + execution stages ---------------------------------------------
    def propose_block(self, max_transactions: int = 200) -> Block:
        return self.node.propose_block(max_transactions)

    def execute_block(
        self, block: Block, claimed_root: bytes | None = None
    ) -> ValidationOutcome:
        """Alias of :meth:`validate` (the historical entry point)."""
        return self.validate(block, claimed_root)

    def validate(
        self, block: Block, claimed_root: bytes | None = None
    ) -> ValidationOutcome:
        """Execute a block on the MTPU, defensively, and advance the chain.

        Degradation paths, in order of engagement:

        1. the block-embedded DAG fails verification → rebuild locally;
        2. a PU dies/stalls mid-schedule → re-enqueue its work on the
           survivors (handled inside :func:`run_spatial_temporal`);
        3. the MTPU receipts root mismatches the claimed root → roll the
           block back and re-execute sequentially;
        4. sequential execution *also* mismatches → the claim is bogus:
           reject the block, committing nothing.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._validate(block, claimed_root)
        with tracer.span(
            "block.validate",
            height=block.header.height,
            txs=len(block.transactions),
        ) as span:
            outcome = self._validate(block, claimed_root)
            span.set(
                committed=outcome.committed,
                verified=outcome.verified,
                makespan_cycles=outcome.makespan_cycles,
            )
            return outcome

    def _validate(
        self, block: Block, claimed_root: bytes | None = None
    ) -> ValidationOutcome:
        report = DegradationReport()
        if self._admission_rejections:
            report.count(
                "admission_rejections", self._admission_rejections
            )
        self._admission_rejections = 0
        registry = get_registry()
        tracer = get_tracer()
        counters_before = (
            registry.counters_flat() if registry.enabled else None
        )

        # Everything heard before "now" was disseminated early enough to
        # pre-execute; the block's own arrival is the cutoff. Block
        # transactions the node never heard (the paper's 2-9% tail) are
        # simply absent from the mempool and not pre-executed.
        self.optimizer.dissemination_cutoff = self.node.mempool.clock
        context = self.node.block_context(block.header.height)
        self.optimizer.block = context

        edges = block.dag_edges
        dag_verdict: DagVerification | None = None
        artifacts: dict[bytes, object] = {}
        if self.verify_dags:
            with tracer.span("block.dag_verify") as dag_span:
                # trace=True: the speculative pass doubles as the block's
                # *only* functional execution — its artifacts (receipt,
                # trace, write journal) are replayed by the MTPU below
                # instead of re-running the EVM (execute-once pipeline).
                access = discover_access_sets(
                    block.transactions, self.node.state, context,
                    trace=True,
                )
                artifacts = {a.tx.hash(): a for a in access}
                required = set(
                    build_dag_edges(block.transactions, access)
                )
                dag_verdict = verify_dag(
                    len(block.transactions), block.dag_edges, required
                )
                if not dag_verdict.ok:
                    report.count("dag_faults_detected")
                    edges = transitive_reduction(
                        len(block.transactions), sorted(required)
                    )
                    report.count("dag_rebuilds")
                dag_span.set(ok=dag_verdict.ok)

        executor = MTPUExecutor(
            self.node.state, block=context, num_pus=self.num_pus,
            pu_config=self.pu_config,
            hotspot_optimizer=self.optimizer,
            artifacts=artifacts,
        )
        # The whole block runs against this snapshot so a failed
        # verification can roll everything back.
        executor.auto_clear_journal = False
        token = self.node.state.snapshot()
        stale_plans_before = self.optimizer.stale_plans_discarded

        with tracer.span("block.schedule") as sched_span:
            schedule = run_spatial_temporal(
                executor, block.transactions, edges,
                fault_injector=self.fault_injector, report=report,
            )
            sched_span.set(
                makespan_cycles=schedule.makespan_cycles,
                num_pus=schedule.num_pus,
            )
        receipts = schedule.receipts_in_block_order(block.transactions)
        if executor.stale_chunks_discarded:
            report.count(
                "stale_chunks_discarded", executor.stale_chunks_discarded
            )
        if executor.artifact_reexecutions:
            report.count(
                "artifact_reexecutions", executor.artifact_reexecutions
            )
        stale_plans = (
            self.optimizer.stale_plans_discarded - stale_plans_before
        )
        if stale_plans:
            report.count("stale_plans_discarded", stale_plans)
        # Contracts whose profiles went stale re-enter the optimization
        # queue for the next idle slice.
        self._optimized -= self.optimizer.take_stale_addresses()

        verified: bool | None = None
        committed = True
        if claimed_root is not None:
            verified = receipts_root(receipts) == claimed_root
            if not verified:
                report.count("root_mismatches")
                self.node.state.revert(token)
                report.count("sequential_fallbacks")
                sequential = self._execute_sequential(block, context)
                if receipts_root(sequential) == claimed_root:
                    # The MTPU result was wrong; the sequential path is
                    # authoritative and its state is already in place.
                    receipts = sequential
                    verified = True
                else:
                    # Even sequential execution disagrees: the claimed
                    # root itself is bogus. Commit nothing.
                    self.node.state.revert(token)
                    report.count("blocks_rejected")
                    committed = False

        self.node.state.clear_journal()
        hotspots: list[int] = []
        if committed:
            # Seal before append: the chain must hold the hash the
            # sealed header commits to.
            self.node.seal_state_root(block)
            self.node.chain.append(block)
            self.node.receipts[block.hash()] = receipts
            self.node.mempool.remove(block.transactions)
            self.tracker.observe_block(block.transactions)
            hotspots = self.idle_slice()
        elif self.node.trie is not None:
            # Rejected block: state is rolled back, but the first-touch
            # capture still lists what execution touched. Drain it now
            # (values re-read from the restored state leave the root
            # unchanged) so the buffer never carries across blocks.
            self.node.trie.update(self.node.state)
        self.total_degradation.merge(report)
        perf: BlockPerfReport | None = None
        if registry.enabled:
            perf = BlockPerfReport.from_execution(
                label=f"block@{block.header.height}",
                schedule=schedule,
                executor=executor,
                degradation=report,
                counters_before=counters_before,
            )
        return ValidationOutcome(
            block=block,
            receipts=receipts,
            schedule=schedule,
            verified=verified,
            hotspots_optimized=hotspots,
            committed=committed,
            report=report,
            dag_verification=dag_verdict,
            perf=perf,
        )

    def _execute_sequential(self, block: Block, context) -> list[Receipt]:
        """The degraded path: plain block-order re-execution."""
        evm = EVM(self.node.state, block=context)
        return [evm.execute_transaction(tx) for tx in block.transactions]

    # -- passthroughs --------------------------------------------------------------
    @property
    def state(self) -> WorldState:
        return self.node.state

    @property
    def chain(self) -> list[Block]:
        return self.node.chain
