"""An accelerated validator: the full co-design in one adoptable object.

Wires every subsystem into the node lifecycle the paper describes:

* transactions arrive into the mempool (**dissemination**);
* between blocks, the :class:`~repro.core.hotspot.tracker.HotspotTracker`
  picks the current hotspots and the optimizer (re)profiles them within
  the :class:`~repro.chain.node.StageClock`'s idle budget (**the idle
  time slice**, paper section 2.2.4);
* incoming blocks execute on a k-PU MTPU under spatio-temporal
  scheduling, with pre-execution eligibility decided by the mempool's
  actual dissemination history (**execution**), and the result is
  verified against the block's claimed receipts digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.block import Block
from ..chain.node import Node, StageClock
from ..chain.receipt import Receipt, receipts_root
from ..chain.state import WorldState
from ..chain.transaction import Transaction
from .hotspot import HotspotOptimizer
from .hotspot.tracker import HotspotTracker
from .mtpu import MTPUExecutor, PUConfig
from .scheduler import ScheduleResult, run_spatial_temporal

#: Abstract profiling cost per sample transaction, in the StageClock's
#: time units — used to stay within the idle budget.
PROFILE_COST_PER_SAMPLE = 0.01


@dataclass
class ValidationOutcome:
    """Result of validating one block on the accelerated path."""

    block: Block
    receipts: list[Receipt]
    schedule: ScheduleResult
    verified: bool | None  # None when no claimed root was provided
    hotspots_optimized: list[int] = field(default_factory=list)

    @property
    def makespan_cycles(self) -> int:
        return self.schedule.makespan_cycles


class AcceleratedValidator:
    """A validating node whose execution stage runs on the MTPU."""

    def __init__(
        self,
        state: WorldState,
        num_pus: int = 4,
        pu_config: PUConfig | None = None,
        clock: StageClock | None = None,
        hotspot_top_k: int = 8,
        deployment=None,
    ) -> None:
        self.node = Node(state=state, clock=clock or StageClock())
        self.num_pus = num_pus
        self.pu_config = pu_config or PUConfig()
        self.hotspot_top_k = hotspot_top_k
        self.tracker = HotspotTracker()
        self.optimizer = HotspotOptimizer(
            self.node.state, mempool=self.node.mempool,
            dissemination_cutoff=0,
        )
        #: Deployment handle for sampling hotspot contracts offline; when
        #: absent, profiling uses recently seen mempool transactions.
        self.deployment = deployment
        self._optimized: set[int] = set()
        self._recent_by_contract: dict[int, list[Transaction]] = {}

    # -- dissemination stage -------------------------------------------------
    def hear(self, tx: Transaction, at: int | None = None) -> None:
        self.node.hear(tx, at=at)
        if tx.to is not None and tx.selector is not None:
            bucket = self._recent_by_contract.setdefault(tx.to, [])
            bucket.append(tx)
            del bucket[:-32]  # keep a bounded sample window

    # -- idle slice -----------------------------------------------------------
    def idle_slice(self) -> list[int]:
        """Run hotspot optimization within the clock's idle budget.

        Returns the contract addresses (re)profiled this interval.
        """
        budget = self.node.clock.idle_budget
        optimized: list[int] = []
        for address in self.tracker.current_hotspots(self.hotspot_top_k):
            if address in self._optimized:
                continue
            samples = self._samples_for(address)
            if not samples:
                continue
            cost = PROFILE_COST_PER_SAMPLE * len(samples)
            if cost > budget:
                break  # the slice is over; resume next interval
            budget -= cost
            self.optimizer.optimize_contract(address, samples)
            self._optimized.add(address)
            optimized.append(address)
        return optimized

    def _samples_for(self, address: int) -> list[Transaction]:
        if self.deployment is not None:
            deployed = self.deployment.by_address(address)
            if deployed is not None:
                from ..workload import all_entry_function_calls

                return all_entry_function_calls(
                    self.deployment, deployed.name, seed=address & 0xFFFF
                )
        return list(self._recent_by_contract.get(address, []))

    # -- consensus + execution stages ---------------------------------------------
    def propose_block(self, max_transactions: int = 200) -> Block:
        return self.node.propose_block(max_transactions)

    def execute_block(
        self, block: Block, claimed_root: bytes | None = None
    ) -> ValidationOutcome:
        """Execute a block on the MTPU and advance the chain."""
        # Everything heard before "now" was disseminated early enough to
        # pre-execute; the block's own arrival is the cutoff. Block
        # transactions the node never heard (the paper's 2-9% tail) are
        # simply absent from the mempool and not pre-executed.
        self.optimizer.dissemination_cutoff = self.node.mempool.clock
        context = self.node.block_context(block.header.height)
        self.optimizer.block = context
        executor = MTPUExecutor(
            self.node.state, block=context, num_pus=self.num_pus,
            pu_config=self.pu_config,
            hotspot_optimizer=self.optimizer,
        )
        schedule = run_spatial_temporal(
            executor, block.transactions, block.dag_edges
        )
        receipts = schedule.receipts_in_block_order(block.transactions)

        verified: bool | None = None
        if claimed_root is not None:
            verified = receipts_root(receipts) == claimed_root

        self.node.state.clear_journal()
        self.node.chain.append(block)
        self.node.receipts[block.hash()] = receipts
        self.node.mempool.remove(block.transactions)
        self.tracker.observe_block(block.transactions)
        hotspots = self.idle_slice()
        return ValidationOutcome(
            block=block,
            receipts=receipts,
            schedule=schedule,
            verified=verified,
            hotspots_optimized=hotspots,
        )

    # -- passthroughs --------------------------------------------------------------
    @property
    def state(self) -> WorldState:
        return self.node.state

    @property
    def chain(self) -> list[Block]:
        return self.node.chain
