"""MTPU microarchitecture: fill unit, DB cache, pipeline timing, memory
hierarchy, and the analytical area/power model."""

from .area import AreaReport, MTPUAreaConfig, bpu_equivalents, estimate_area
from .db_cache import CacheStats, DBCache
from .fill_unit import CodeIndex, DBCacheLine, FillConfig, LineSlot, build_line
from .folding import FOLDABLE_CONSUMERS, FoldedOp, try_fold
from .memory import CallContractStack, ContextLoadModel, StateBuffer
from .processor import MTPUExecutor, TxExecution
from .pu import PU, PUConfig, TraceTiming
from .timing import DEFAULT_TIMING, TimingConfig

__all__ = [
    "AreaReport",
    "MTPUAreaConfig",
    "bpu_equivalents",
    "estimate_area",
    "CacheStats",
    "DBCache",
    "CodeIndex",
    "DBCacheLine",
    "FillConfig",
    "LineSlot",
    "build_line",
    "FOLDABLE_CONSUMERS",
    "FoldedOp",
    "try_fold",
    "CallContractStack",
    "ContextLoadModel",
    "StateBuffer",
    "MTPUExecutor",
    "TxExecution",
    "PU",
    "PUConfig",
    "TraceTiming",
    "DEFAULT_TIMING",
    "TimingConfig",
]
