"""Analytical area and power model (paper Table 5).

Substitution note (DESIGN.md): the paper reports Synopsys DC synthesis at
SMIC 45nm; we reproduce the breakdown with an SRAM+logic area model whose
coefficients are calibrated against Table 5's own rows, so configuration
sweeps (cache sizes, PU counts) stay anchored to the published design
point: 79.623 mm², 8.648 W at 300 MHz with 4 PUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KB = 1024

#: mm^2 per KB of SRAM, calibrated per structure from Table 5. The spread
#: reflects port counts and cell types (e.g. the multi-ported State Buffer
#: is ~2x denser in area cost than the instruction cache).
SRAM_MM2_PER_KB = {
    "icache": 0.227 / 16,
    "dcache": 0.547 / 64,
    "mem": 2.238 / 128,
    "stack": 0.337 / 32,
    "gas": 0.013 / (32 / KB),
    "db_cache": 3.006 / 234,
    "call_contract_stack": 4.785 / 417,
    "receipt_buffer": 5.483 / 512,
    "state_buffer": 25.473 / 2048,
}

EXECUTION_UNIT_MM2 = 0.916
CORE_MISC_MM2 = 0.097

#: Paper: 8.648 W at 300 MHz for the 4-PU configuration -> W per mm^2.
POWER_DENSITY_W_PER_MM2 = 8.648 / 79.623
DEFAULT_CLOCK_MHZ = 300


@dataclass
class MTPUAreaConfig:
    """Structure sizes (defaults are the paper's design point)."""

    icache_kb: float = 16
    dcache_kb: float = 64
    mem_kb: float = 128
    stack_kb: float = 32
    gas_bytes: float = 32
    db_cache_kb: float = 234
    call_contract_stack_kb: float = 417
    receipt_buffer_kb: float = 512
    state_buffer_kb: float = 2048
    num_pus: int = 4

    @classmethod
    def from_cache_entries(
        cls, db_cache_entries: int = 2048, num_pus: int = 4
    ) -> "MTPUAreaConfig":
        """Size the DB cache from its entry count.

        The paper's 234 KB at 2K entries implies ~117 bytes/line (slots,
        R/W/F/G fields, next-address).
        """
        bytes_per_line = 234 * KB / 2048
        return cls(
            db_cache_kb=db_cache_entries * bytes_per_line / KB,
            num_pus=num_pus,
        )


@dataclass
class AreaReport:
    """Component-level area breakdown (mm^2)."""

    core_components: dict[str, float] = field(default_factory=dict)
    core_total: float = 0.0
    pu_total: float = 0.0
    processor_components: dict[str, float] = field(default_factory=dict)
    total: float = 0.0
    power_watts: float = 0.0
    clock_mhz: float = DEFAULT_CLOCK_MHZ

    def rows(self) -> list[tuple[str, float]]:
        """Flat rows in Table 5 order."""
        ordered = [
            ("Instruction cache", self.core_components["icache"]),
            ("Data cache", self.core_components["dcache"]),
            ("MEM", self.core_components["mem"]),
            ("Stack", self.core_components["stack"]),
            ("Gas", self.core_components["gas"]),
            ("DB cache", self.core_components["db_cache"]),
            ("Execution unit", self.core_components["execution_unit"]),
            ("Else", self.core_components["else"]),
            ("Core", self.core_total),
            ("Call_Contract Stack",
             self.processor_components["call_contract_stack"]),
            ("Processing Unit (x{})".format(
                self.processor_components["num_pus"]), self.pu_total),
            ("Receipt Buffer", self.processor_components["receipt_buffer"]),
            ("State Buffer", self.processor_components["state_buffer"]),
            ("Total", self.total),
        ]
        return ordered


#: Paper section 4.4: the MTPU costs ~17% more area and ~10% more energy
#: than BPU, the price of the multi-layer-parallelism hardware.
MTPU_OVER_BPU_AREA = 1.17
MTPU_OVER_BPU_ENERGY = 1.10


def bpu_equivalents(report: "AreaReport") -> tuple[float, float]:
    """(area mm^2, power W) of the BPU comparator implied by the paper's
    published overhead ratios."""
    return (
        report.total / MTPU_OVER_BPU_AREA,
        report.power_watts / MTPU_OVER_BPU_ENERGY,
    )


def estimate_area(config: MTPUAreaConfig | None = None) -> AreaReport:
    """Compute the Table 5 breakdown for a configuration."""
    config = config or MTPUAreaConfig()
    core = {
        "icache": config.icache_kb * SRAM_MM2_PER_KB["icache"],
        "dcache": config.dcache_kb * SRAM_MM2_PER_KB["dcache"],
        "mem": config.mem_kb * SRAM_MM2_PER_KB["mem"],
        "stack": config.stack_kb * SRAM_MM2_PER_KB["stack"],
        "gas": (config.gas_bytes / KB) * SRAM_MM2_PER_KB["gas"],
        "db_cache": config.db_cache_kb * SRAM_MM2_PER_KB["db_cache"],
        "execution_unit": EXECUTION_UNIT_MM2,
        "else": CORE_MISC_MM2,
    }
    core_total = sum(core.values())
    call_stack = (
        config.call_contract_stack_kb
        * SRAM_MM2_PER_KB["call_contract_stack"]
    )
    pu_area = core_total + call_stack
    receipt = config.receipt_buffer_kb * SRAM_MM2_PER_KB["receipt_buffer"]
    state = config.state_buffer_kb * SRAM_MM2_PER_KB["state_buffer"]
    total = pu_area * config.num_pus + receipt + state
    return AreaReport(
        core_components=core,
        core_total=core_total,
        pu_total=pu_area * config.num_pus,
        processor_components={
            "call_contract_stack": call_stack,
            "receipt_buffer": receipt,
            "state_buffer": state,
            "num_pus": config.num_pus,
        },
        total=total,
        power_watts=total * POWER_DENSITY_W_PER_MM2,
    )
