"""MTPU top level: functional execution fused with PU timing.

The :class:`MTPUExecutor` is what schedulers drive: it executes a
transaction *functionally* (reference EVM, producing the receipt and the
dataflow trace) and *temporally* (replaying the trace through a PU's
pipeline/DB-cache model), returning both. The shared state buffer and the
per-PU DB caches / Call_Contract stacks persist across transactions, so
redundancy scheduled onto one PU compounds exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ...chain.receipt import Receipt
from ...chain.state import CODE_KEY, WorldState
from ...chain.transaction import Transaction
from ...evm.context import BlockContext
from ...evm.interpreter import EVM
from ...evm.tracer import Tracer
from ...obs import get_registry, get_tracer
from .memory import StateBuffer
from .pu import PU, PUConfig, TraceTiming


@dataclass
class TxExecution:
    """Result of one transaction on one PU."""

    tx: Transaction
    receipt: Receipt
    pu_id: int
    context_cycles: int
    timing: TraceTiming
    hotspot_applied: bool = False
    #: Addresses whose code this transaction rewrote (stale-chunk
    #: bookkeeping; needed to undo tracking on retraction).
    code_writes: frozenset[int] = frozenset()

    @property
    def cycles(self) -> int:
        return self.context_cycles + self.timing.cycles

    @property
    def instructions(self) -> int:
        return self.timing.instructions


class MTPUExecutor:
    """A k-PU MTPU over one world state."""

    def __init__(
        self,
        state: WorldState,
        block: BlockContext | None = None,
        num_pus: int = 4,
        pu_config: PUConfig | None = None,
        hotspot_optimizer=None,
        artifacts: dict | None = None,
    ) -> None:
        self.state = state
        self.block = block or BlockContext()
        self.pu_config = pu_config or PUConfig()
        self.state_buffer = StateBuffer(
            self.pu_config.timing.state_buffer_entries
        )
        self.hotspot_optimizer = hotspot_optimizer
        self.pus = [
            PU(
                pu_id=i,
                config=self.pu_config,
                state_buffer=self.state_buffer,
                code_lookup=self._code_lookup,
            )
            for i in range(num_pus)
        ]
        self.executions: list[TxExecution] = []
        #: When False, the journal accumulates across transactions so a
        #: caller (fault-tolerant scheduler, verifying validator) can
        #: snapshot/revert; the caller owns clearing it.
        self.auto_clear_journal = True
        #: Addresses whose *code* was rewritten earlier in this block —
        #: pre-executed Compare/Check chunks reading that code are stale.
        self._code_written: set[int] = set()
        #: Pre-executed hotspot chunks discarded as stale this block.
        self.stale_chunks_discarded = 0
        #: tx hash -> :class:`~repro.chain.journal.ExecutionArtifact`
        #: from consensus-stage pre-execution (the execute-once
        #: pipeline). A fresh artifact is *replayed* — journal apply +
        #: trace-driven timing — instead of re-running the EVM.
        self.artifacts = artifacts or {}
        #: Transactions replayed from artifacts / re-executed because
        #: their artifact's read set had been overwritten.
        self.artifact_reuses = 0
        self.artifact_reexecutions = 0

    def _code_lookup(self, address: int) -> bytes:
        # Bypass access tracking: timing-model code fetches must not
        # pollute the dependency analysis.
        saved = self.state.access
        self.state.access = None
        try:
            return self.state.get_code(address)
        finally:
            self.state.access = saved

    def execute_on(self, pu: PU, tx: Transaction) -> TxExecution:
        """Run one transaction functionally and time it on *pu*."""
        span_tracer = get_tracer()
        if not span_tracer.enabled:
            return self._execute_on(pu, tx)
        with span_tracer.span("tx.execute", pu=pu.pu_id) as span:
            execution = self._execute_on(pu, tx)
            span.set(
                contract=(
                    f"{tx.to:#x}" if tx.to is not None else None
                ),
                cycles=execution.cycles,
                instructions=execution.instructions,
                hotspot=execution.hotspot_applied,
            )
            return execution

    def _execute_on(self, pu: PU, tx: Transaction) -> TxExecution:
        if not self.pu_config.redundancy_reuse:
            # Without the redundancy optimization, every transaction
            # rebuilds its context and decoded-bytecode state from scratch.
            pu.db_cache.invalidate()
            pu.call_stack.clear()

        # Execute-once pipeline: a fresh consensus-stage artifact is
        # replayed (journal apply) instead of re-running the EVM. The
        # trace it carries still drives the full PU timing model below,
        # so cycle accounting is identical either way.
        artifact = self.artifacts.get(tx.hash()) if self.artifacts else None
        if artifact is not None and artifact.steps is not None:
            if artifact.is_fresh(self.state):
                artifact.journal.apply(self.state)
                if self.state.access is not None:
                    self.state.access.merge(artifact.access)
                receipt = artifact.receipt
                access = artifact.access
                steps = artifact.steps
                self.artifact_reuses += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter("evm.tx_reuses").inc()
            else:
                artifact = None
                self.artifact_reexecutions += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter("evm.tx_reexecutions").inc()
        else:
            artifact = None
        if artifact is None:
            tracer = Tracer()
            evm = EVM(self.state, block=self.block, tracer=tracer)
            saved_access = self.state.access
            access = self.state.begin_access_tracking()
            try:
                receipt = evm.execute_transaction(tx)
            finally:
                self.state.end_access_tracking()
                if saved_access is not None:
                    saved_access.merge(access)
                self.state.access = saved_access
            steps = tracer.steps
        if self.auto_clear_journal:
            self.state.clear_journal()
        code_writes = {
            address
            for address, slot in access.writes
            if slot == CODE_KEY
        }

        skip: set[int] | None = None
        prefetched = None
        on_path_fraction = 1.0
        hotspot_applied = False
        if self.hotspot_optimizer is not None and tx.to is not None:
            plan = self.hotspot_optimizer.plan_for(tx)
            if plan is not None and plan.preexecute and (
                tx.to in self._code_written
            ):
                # The callee's code was rewritten by an earlier
                # transaction in this block: the Compare/Check chunks
                # pre-executed against the old code are stale. Degrade
                # to a plan without pre-execution credit.
                plan = replace(plan, preexecute=False)
                self.stale_chunks_discarded += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter("hotspot.stale_chunks").inc()
            if plan is not None:
                skip = plan.skip_indices(steps)
                prefetched = plan.prefetched_predicate()
                on_path_fraction = plan.on_path_fraction
                hotspot_applied = True
                registry = get_registry()
                if registry.enabled:
                    registry.counter("hotspot.plans_applied").inc()
                    if plan.preexecute:
                        registry.counter("hotspot.preexec_txs").inc()
                    if skip:
                        registry.counter(
                            "hotspot.instructions_skipped"
                        ).inc(len(skip))
                # Give the PU the constant-eliminated decode views so the
                # fill unit packs the optimized instruction stream.
                for code_address in {
                    s.code_address for s in steps
                }:
                    view = self.hotspot_optimizer.code_view(code_address)
                    if view is not None:
                        pu.install_code_view(code_address, view)

        context_cycles = 0
        if tx.to is not None:
            context_cycles = pu.context_setup_cycles(
                tx.to, len(tx.data), on_path_fraction
            )
        timing = pu.time_trace(steps, prefetched, skip)

        pu.current_contract = tx.to
        pu.busy_cycles += context_cycles + timing.cycles
        pu.transactions_executed += 1
        self._code_written |= code_writes
        execution = TxExecution(
            tx=tx,
            receipt=receipt,
            pu_id=pu.pu_id,
            context_cycles=context_cycles,
            timing=timing,
            hotspot_applied=hotspot_applied,
            code_writes=frozenset(code_writes),
        )
        self.executions.append(execution)
        return execution

    def retract(self, execution: TxExecution, journal_token: int) -> None:
        """Undo a speculative execution whose PU failed mid-flight.

        Requires :attr:`auto_clear_journal` to be False so the state can
        be reverted to *journal_token* (taken just before the dispatch).
        The transaction will re-execute on a surviving PU later.
        """
        if self.auto_clear_journal:
            raise RuntimeError(
                "retract() needs auto_clear_journal=False to roll back"
            )
        self.state.revert(journal_token)
        self.executions.remove(execution)
        pu = self.pus[execution.pu_id]
        pu.busy_cycles -= execution.cycles
        pu.transactions_executed -= 1
        # Drop code-write tracking unless another (committed) execution
        # also rewrote the same address.
        still_written = {
            address
            for other in self.executions
            for address in other.code_writes
        }
        self._code_written &= still_written

    # -- aggregate metrics ------------------------------------------------
    def total_instructions(self) -> int:
        return sum(e.instructions for e in self.executions)

    def total_cycles_sequentialized(self) -> int:
        """Sum of per-transaction cycles (single-PU equivalent)."""
        return sum(e.cycles for e in self.executions)

    def receipts(self) -> list[Receipt]:
        return [e.receipt for e in self.executions]
