"""Pattern recognition and instruction folding (paper section 3.3.4).

"We perform pattern recognition and instruction folding on the decoded
instructions to eliminate some redundant operations. When a foldable
pattern occurs, the fill unit fills the synthesized instruction directly
into the cache line."

The implemented pattern family is the one the paper illustrates
(``PUSH4 0xCC80F6F3; EQ`` → a synthetic compare-against-immediate): one or
two PUSH instructions immediately feeding a consumer become immediates of
a synthesized instruction. This simultaneously

* removes the PUSHes from the issue stream (they no longer occupy a Stack
  functional-unit field), and
* eliminates the RAW dependency between the PUSH and its consumer.

Gas correctness is preserved: the synthesized instruction carries the
summed static gas of all constituent instructions (the line's G field).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...evm.code import Instruction
from ...evm.opcodes import is_push

#: Consumers whose top stack operand(s) may be replaced by PUSH immediates.
#: Maps op name -> max number of leading operands foldable.
FOLDABLE_CONSUMERS: dict[str, int] = {
    # logic / compare
    "EQ": 2, "LT": 2, "GT": 2, "SLT": 2, "SGT": 2,
    "AND": 2, "OR": 2, "XOR": 2, "SHL": 1, "SHR": 1, "SAR": 1,
    # arithmetic
    "ADD": 2, "SUB": 2, "MUL": 2, "DIV": 2, "MOD": 2,
    # memory / storage addressing
    "MLOAD": 1, "MSTORE": 1, "MSTORE8": 1, "SLOAD": 1, "SSTORE": 1,
    # control transfer targets (the dispatch-ladder pattern)
    "JUMP": 1, "JUMPI": 1,
    # environment
    "CALLDATALOAD": 1,
}


@dataclass(frozen=True)
class FoldedOp:
    """A synthesized instruction: consumer + absorbed PUSH immediates."""

    primary: Instruction
    absorbed: tuple[Instruction, ...] = ()

    @property
    def pc(self) -> int:
        """Address of the first constituent instruction."""
        return self.absorbed[0].pc if self.absorbed else self.primary.pc

    @property
    def pcs(self) -> tuple[int, ...]:
        """All constituent pcs in original program order."""
        return tuple(instr.pc for instr in self.absorbed) + (
            self.primary.pc,
        )

    @property
    def orig_count(self) -> int:
        """How many original instructions this op stands for."""
        return 1 + len(self.absorbed)

    @property
    def static_gas(self) -> int:
        """Summed static gas of every constituent (keeps G correct)."""
        return self.primary.op.gas + sum(
            instr.op.gas for instr in self.absorbed
        )

    @property
    def stack_inputs(self) -> int:
        """Operands still taken from the stack after folding."""
        return self.primary.op.pops - len(self.absorbed)

    @property
    def end_pc(self) -> int:
        """PC just past the last constituent byte."""
        return self.primary.next_pc

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        if not self.absorbed:
            return f"<{self.primary.op.name}@{self.primary.pc:#x}>"
        imms = ",".join(f"{a.immediate:#x}" for a in self.absorbed)
        return (
            f"<{self.primary.op.name}({imms})@{self.pc:#x}"
            f" x{self.orig_count}>"
        )


def try_fold(
    instructions: list[Instruction], index: int, enabled: bool = True
) -> tuple[FoldedOp, int]:
    """Fold the pattern starting at *index*; returns (op, next index).

    When *enabled* is False (or no pattern matches), the instruction is
    wrapped unfolded.
    """
    instr = instructions[index]
    if not enabled or not is_push(instr.op):
        return FoldedOp(primary=instr), index + 1

    # Try PUSH [PUSH] consumer.
    if index + 2 < len(instructions) and is_push(
        instructions[index + 1].op
    ):
        consumer = instructions[index + 2]
        limit = FOLDABLE_CONSUMERS.get(consumer.op.name, 0)
        if limit >= 2:
            return (
                FoldedOp(
                    primary=consumer,
                    absorbed=(instr, instructions[index + 1]),
                ),
                index + 3,
            )
    if index + 1 < len(instructions):
        consumer = instructions[index + 1]
        limit = FOLDABLE_CONSUMERS.get(consumer.op.name, 0)
        if limit >= 1:
            return (
                FoldedOp(primary=consumer, absorbed=(instr,)),
                index + 2,
            )
    return FoldedOp(primary=instr), index + 1
