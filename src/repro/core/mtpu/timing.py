"""The MTPU cost model.

Substitution note (DESIGN.md): the paper measures cycles on synthesized
45nm RTL with Ramulator DRAM; we use a parameterized functional-timing
model. All coefficients live in :class:`TimingConfig` so ablations and
sensitivity studies can sweep them. Defaults are chosen so the *baseline*
single-PU machine lands near the paper's implied ~1.9 cycles/instruction
(Table 7: IPC ≈ 1.9 × speedup), and slow operations (storage, hashing,
context switches) carry realistic relative weight.

Baseline per-instruction cost (in-order, no DB cache, paper Fig. 8a):

    issue(1) + operand_fetch(1 if the op pops) + unit_latency + mem_stall

The stack architecture serializes back-to-back instructions (every
instruction depends on its predecessor through the stack top), so there is
no overlap credit in the baseline.

DB-cache line cost (paper section 3.3.3): all instructions in a hit line
issue together::

    1 + max(unit_latency over the line) + max(mem_stall over the line)

with the line's summed gas deducted once (the G field), no per-instruction
operand-fetch penalty (R/W sequence numbers feed operands directly), and
forwarding hiding one RAW inside the line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...evm.opcodes import Category

#: Default extra execute latency per functional unit (beyond the 1-cycle
#: issue slot). Reconfigurable units (arith/logic/stack) complete in the
#: half cycle — zero extra.
DEFAULT_UNIT_LATENCY: dict[Category, int] = {
    Category.ARITHMETIC: 0,
    Category.LOGIC: 0,
    Category.STACK: 0,
    Category.BRANCH: 0,
    Category.CONTROL: 0,
    Category.FIXED_ACCESS: 0,
    Category.MEMORY: 1,  # in-core MEM port
    Category.SHA: 0,  # dynamic part charged per word below
    Category.STORAGE: 0,  # dynamic part charged via memory hierarchy
    Category.STATE_QUERY: 0,  # dynamic part charged via memory hierarchy
    Category.CONTEXT: 0,  # dynamic part charged via call overhead
}


@dataclass
class TimingConfig:
    """All cycle-cost coefficients of the MTPU model."""

    # -- core pipeline -----------------------------------------------------
    issue_cycles: int = 1  # one issue slot per instruction / per line
    operand_fetch_cycles: int = 1  # baseline stack read (hidden in lines)
    unit_latency: dict[Category, int] = field(
        default_factory=lambda: dict(DEFAULT_UNIT_LATENCY)
    )
    # Heavy arithmetic surcharges.
    mul_div_extra: int = 2
    exp_extra: int = 4

    # -- hashing --------------------------------------------------------------
    sha3_base: int = 4
    sha3_per_word: int = 1

    # -- memory hierarchy (paper section 3.3.6) ---------------------------------
    state_buffer_latency: int = 4  # warm state in the env buffer
    main_memory_latency: int = 20  # cold state from main memory
    prefetched_latency: int = 0  # hotspot-prefetched, already in dcache
    sstore_latency: int = 4  # write into the state buffer
    log_latency: int = 3  # receipt-buffer append

    # -- context switching ----------------------------------------------------
    call_overhead: int = 24  # frame setup/teardown
    context_load_bus_bytes: int = 32  # main-memory bus width per cycle
    context_fixed_cycles: int = 6  # fixed-length context fields (Table 4)

    # -- DB cache / fill unit ------------------------------------------------
    db_cache_entries: int = 2048  # paper settles at 2K entries
    fill_extra_per_line: int = 0  # fill runs off the critical path
    state_buffer_entries: int = 4096  # warm (address,slot) capacity
    call_contract_stack_bytes: int = 417 * 1024  # paper Table 5

    def unit_extra(self, category: Category, op_name: str) -> int:
        """Execute-stage latency beyond the issue slot for one op."""
        extra = self.unit_latency.get(category, 0)
        if op_name in ("MUL", "DIV", "SDIV", "MOD", "SMOD", "MULMOD",
                       "ADDMOD"):
            extra += self.mul_div_extra
        elif op_name == "EXP":
            extra += self.exp_extra
        return extra

    def context_load_cycles(self, byte_count: int) -> int:
        """Cycles to stream *byte_count* bytes over the main-memory bus."""
        if byte_count <= 0:
            return 0
        return -(-byte_count // self.context_load_bus_bytes)  # ceil


DEFAULT_TIMING = TimingConfig()
