"""The three-level memory hierarchy (paper section 3.3.6).

* **In-core** — instruction/data caches, MEM, stack, constants table.
  These are implicit in the pipeline's per-op latencies.
* **Execution-environment buffer** — the shared :class:`StateBuffer`
  (warm state, parallel read/write, written back after commit) and the
  per-PU :class:`CallContractStack` (contract bytecode + invocation data;
  the bytecode dominates load overhead and is reused across redundant
  transactions).
* **Main memory** — cold storage; modeled as a flat latency plus a bus
  bandwidth for context streaming (the Ramulator substitution, see
  DESIGN.md).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .timing import TimingConfig


class CallContractStack:
    """Per-PU contract context store, LRU by bytecode bytes.

    Redundant transactions scheduled to the same PU hit here and skip
    reloading their contract's bytecode (the dominant share of context
    data, paper Table 2).
    """

    def __init__(self, capacity_bytes: int = 417 * 1024) -> None:
        self.capacity_bytes = capacity_bytes
        self._resident: OrderedDict[int, int] = OrderedDict()  # addr->bytes
        self._used = 0
        self.bytecode_loads = 0
        self.bytecode_reuses = 0
        self.bytes_loaded = 0

    def load(self, code_address: int, code_size: int) -> int:
        """Bring a contract's bytecode in; returns bytes actually loaded
        (0 on reuse)."""
        if code_address in self._resident:
            self._resident.move_to_end(code_address)
            self.bytecode_reuses += 1
            return 0
        while self._used + code_size > self.capacity_bytes and self._resident:
            _, evicted = self._resident.popitem(last=False)
            self._used -= evicted
        self._resident[code_address] = code_size
        self._used += code_size
        self.bytecode_loads += 1
        self.bytes_loaded += code_size
        return code_size

    def resident(self, code_address: int) -> bool:
        return code_address in self._resident

    def clear(self) -> None:
        self._resident.clear()
        self._used = 0


class StateBuffer:
    """Shared warm-state buffer: (address, slot) entries with LRU capacity.

    "Reuse of the latest state in the State Buffer effectively reduces
    redundant accesses to off-chip memory. ... the state of dependent
    transactions is kept for a period of time so that subsequent
    transactions are able to access it directly."
    """

    def __init__(self, entries: int = 4096) -> None:
        self.entries = entries
        self._warm: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, address: int, slot: int) -> bool:
        """Touch an entry; True when it was already warm."""
        key = (address, slot)
        if key in self._warm:
            self._warm.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._warm[key] = None
        if len(self._warm) > self.entries:
            self._warm.popitem(last=False)
        return False

    def warm(self, address: int, slot: int) -> None:
        """Install an entry without counting an access (e.g. a write)."""
        key = (address, slot)
        self._warm[key] = None
        self._warm.move_to_end(key)
        if len(self._warm) > self.entries:
            self._warm.popitem(last=False)

    def clear(self) -> None:
        self._warm.clear()


@dataclass
class ContextLoadModel:
    """Cycle cost of constructing a transaction's execution context.

    Fixed-length fields (block header + transaction record, paper
    Table 4) stream in a constant number of cycles because they are stored
    contiguously; variable-length parts (calldata, bytecode) pay bus
    cycles. Bytecode loads are skipped when the Call_Contract Stack
    already holds the contract, and scaled down to the on-path fraction
    under hotspot chunk-loading optimization (paper section 3.4.2).
    """

    timing: TimingConfig = field(default_factory=TimingConfig)

    def cycles(
        self,
        calldata_bytes: int,
        bytecode_bytes: int,
        bytecode_resident: bool,
        on_path_fraction: float = 1.0,
    ) -> int:
        cost = self.timing.context_fixed_cycles
        cost += self.timing.context_load_cycles(calldata_bytes)
        if not bytecode_resident:
            effective = int(bytecode_bytes * on_path_fraction)
            cost += self.timing.context_load_cycles(effective)
        return cost
