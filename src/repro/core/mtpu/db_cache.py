"""The decoded-bytecode cache (DB cache, paper section 3.3.3).

An LRU cache of :class:`~repro.core.mtpu.fill_unit.DBCacheLine` objects
keyed by (code address, start pc). "Each line is identified by the address
of the first filled instruction. If the address of the next instruction
hits a line in the DB cache, all instructions of this line will take
precedence over the normal execution path and skip the decoding stage."

Single-instruction lines are never cached; their addresses go to a small
side table so the hotspot profiler can keep a complete execution path
(paper section 3.4.1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ...obs import get_registry
from .fill_unit import DBCacheLine


@dataclass
class CacheStats:
    """Hit/miss accounting, per PU."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    single_instruction_lines: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.single_instruction_lines = 0


class DBCache:
    """Fully-associative LRU cache of decoded-bytecode lines."""

    def __init__(self, entries: int = 2048, pu_id: int | None = None) -> None:
        if entries <= 0:
            raise ValueError("cache needs at least one entry")
        self.entries = entries
        self._lines: OrderedDict[tuple[int, int], DBCacheLine] = (
            OrderedDict()
        )
        #: Side records of single-instruction addresses (hotspot tracking).
        self.single_records: set[tuple[int, int]] = set()
        self.stats = CacheStats()
        # Metric handles resolve once here; under the default no-op
        # registry these are shared null singletons and every inc() below
        # is a no-op call.
        registry = get_registry()
        labels = {} if pu_id is None else {"pu": str(pu_id)}
        self._m_lookups = registry.counter("db_cache.lookups", **labels)
        self._m_hits = registry.counter("db_cache.hits", **labels)
        self._m_misses = registry.counter("db_cache.misses", **labels)
        self._m_insertions = registry.counter(
            "db_cache.insertions", **labels
        )
        self._m_evictions = registry.counter("db_cache.evictions", **labels)

    def __len__(self) -> int:
        return len(self._lines)

    def note_hit(self) -> None:
        """Account one probe that hit (all hit paths funnel here)."""
        self.stats.hits += 1
        self._m_lookups.inc()
        self._m_hits.inc()

    def note_miss(self) -> None:
        """Account one probe that missed."""
        self.stats.misses += 1
        self._m_lookups.inc()
        self._m_misses.inc()

    def lookup(self, code_address: int, pc: int) -> DBCacheLine | None:
        """Probe the cache; counts a hit or miss."""
        key = (code_address, pc)
        line = self._lines.get(key)
        if line is not None:
            self._lines.move_to_end(key)
            self.note_hit()
            return line
        self.note_miss()
        return None

    def peek(self, code_address: int, pc: int) -> DBCacheLine | None:
        """Probe without disturbing LRU order or stats."""
        return self._lines.get((code_address, pc))

    def insert(self, line: DBCacheLine) -> None:
        """Insert a freshly filled line (evicting LRU on overflow)."""
        if not line.cacheable:
            self.stats.single_instruction_lines += 1
            self.single_records.add((line.code_address, line.start_pc))
            return
        key = (line.code_address, line.start_pc)
        if key in self._lines:
            # Refill replaces the resident line (e.g. after the hotspot
            # optimizer swapped in an eliminated decode view).
            self._lines[key] = line
            self._lines.move_to_end(key)
            return
        self._lines[key] = line
        self.stats.insertions += 1
        self._m_insertions.inc()
        if len(self._lines) > self.entries:
            self._lines.popitem(last=False)
            self.stats.evictions += 1
            self._m_evictions.inc()

    def invalidate(self) -> None:
        """Drop all lines (e.g. between unrelated experiments)."""
        self._lines.clear()
        self.single_records.clear()

    def invalidate_code(self, code_address: int) -> None:
        """Drop every line of one contract (its decode view changed)."""
        stale = [key for key in self._lines if key[0] == code_address]
        for key in stale:
            del self._lines[key]

    def resident_lines(self) -> list[DBCacheLine]:
        """Snapshot of cached lines, LRU first."""
        return list(self._lines.values())
