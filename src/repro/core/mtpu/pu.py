"""Processing-unit timing model: replaying traces through the pipeline.

A PU owns a DB cache and a Call_Contract Stack; it times a transaction by
walking its dataflow trace (from the functional EVM) and charging cycles
according to :class:`~repro.core.mtpu.timing.TimingConfig`:

* **Baseline path** (no DB cache, or a miss): each instruction pays
  issue + operand-fetch + unit latency + memory stalls — the sequential
  six-stage pipeline of paper Fig. 8(a), fully serialized by stack
  dependencies.
* **Hit path**: a DB-cache line issues all its instructions in one slot;
  the line's cost is ``1 + max(unit latency) + max(memory stall)`` and the
  line's summed gas is deducted once (the G field).

On a miss the fill unit constructs the line *off the critical path* (the
covered instructions run at baseline cost) and inserts it, so subsequent
redundant transactions on the same PU hit it — the paper's reuse effect
(section 3.3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ...evm.opcodes import Category
from ...evm.tracer import TraceStep
from ...obs import get_registry
from .db_cache import DBCache
from .fill_unit import CodeIndex, DBCacheLine, FillConfig
from .memory import CallContractStack, ContextLoadModel, StateBuffer
from .timing import TimingConfig

#: Sentinel slots for non-storage state accesses in the state buffer.
_BALANCE_SLOT = -1
_CODE_SLOT = -2


@dataclass
class PUConfig:
    """Per-PU feature switches (the paper's Fig. 12 ablation axes)."""

    enable_db_cache: bool = True  # F&D: fill unit + DB cache
    enable_forwarding: bool = True  # DF: data forwarding
    enable_folding: bool = True  # IF: instruction folding
    perfect_cache: bool = False  # Fig. 12 upper bound: 100% hit rate
    cache_entries: int = 2048
    #: Redundancy optimization (paper Fig. 16a): keep the DB cache and the
    #: Call_Contract Stack warm across transactions on the same PU. When
    #: False (the Fig. 14 configurations), both are flushed per
    #: transaction, so each transaction pays its own fills and context
    #: loads.
    redundancy_reuse: bool = True
    #: Per-functional-unit line fields; None uses the fill unit's default
    #: (see fill_unit.DEFAULT_UNIT_CAPACITY). An empty dict models the
    #: paper's literal one-field-per-unit lines.
    unit_capacity: dict | None = None
    timing: TimingConfig = field(default_factory=TimingConfig)

    def fill_config(self) -> FillConfig:
        if self.unit_capacity is not None:
            return FillConfig(
                folding=self.enable_folding,
                forwarding=self.enable_forwarding,
                unit_capacity=dict(self.unit_capacity),
            )
        return FillConfig(
            folding=self.enable_folding,
            forwarding=self.enable_forwarding,
        )


@dataclass
class TraceTiming:
    """Cycle accounting for one timed trace."""

    cycles: int = 0
    instructions: int = 0  # executed original instructions
    issue_slots: int = 0  # lines + single issues
    line_hits: int = 0
    line_instructions: int = 0  # instructions issued from hit lines
    stall_cycles: int = 0  # memory-stall share of cycles
    prefetch_hits: int = 0  # accesses served by hotspot prefetch

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


class PU:
    """One processing unit of the MTPU."""

    def __init__(
        self,
        pu_id: int,
        config: PUConfig,
        state_buffer: StateBuffer,
        code_lookup: Callable[[int], bytes],
    ) -> None:
        self.pu_id = pu_id
        self.config = config
        self.timing = config.timing
        self.state_buffer = state_buffer
        self.code_lookup = code_lookup
        self.db_cache = DBCache(config.cache_entries, pu_id=pu_id)
        self.call_stack = CallContractStack(
            config.timing.call_contract_stack_bytes
        )
        self.context_model = ContextLoadModel(config.timing)
        self._code_indexes: dict[int, CodeIndex] = {}
        #: Contract currently (last) executed — scheduler redundancy hint.
        self.current_contract: int | None = None
        self.busy_until: float = 0.0
        self.busy_cycles: int = 0
        self.transactions_executed: int = 0
        #: Per-trace accumulators (reset by :meth:`time_trace`).
        self._stall_cycles = 0
        self._prefetch_hits = 0

    # -- static decode cache ------------------------------------------------
    def code_index(self, code_address: int) -> CodeIndex:
        index = self._code_indexes.get(code_address)
        if index is None:
            index = CodeIndex(code_address, self.code_lookup(code_address))
            self._code_indexes[code_address] = index
        return index

    def install_code_view(self, code_address: int, view: CodeIndex) -> None:
        """Replace the decode view (hotspot-optimized instruction stream).

        Lines built from the previous view are dropped: a line whose pcs
        include eliminated instructions would never match an optimized
        trace again and would otherwise pin its slot forever.
        """
        if self._code_indexes.get(code_address) is view:
            return
        self._code_indexes[code_address] = view
        self.db_cache.invalidate_code(code_address)

    # -- memory stalls ----------------------------------------------------------
    def _memory_stall(
        self,
        step: TraceStep,
        prefetched: Callable[[TraceStep], bool] | None,
    ) -> int:
        timing = self.timing
        name = step.op.name
        if name == "SLOAD":
            if prefetched is not None and prefetched(step):
                self._prefetch_hits += 1
                return timing.prefetched_latency
            warm = self.state_buffer.access(
                step.extra.get("address", 0), step.extra.get("slot", 0)
            )
            return (
                timing.state_buffer_latency
                if warm
                else timing.main_memory_latency
            )
        if name == "SSTORE":
            self.state_buffer.warm(
                step.extra.get("address", 0), step.extra.get("slot", 0)
            )
            return timing.sstore_latency
        if step.op.category is Category.STATE_QUERY:
            if prefetched is not None and prefetched(step):
                self._prefetch_hits += 1
                return timing.prefetched_latency
            slot = _BALANCE_SLOT if name == "BALANCE" else _CODE_SLOT
            warm = self.state_buffer.access(
                step.extra.get("address", 0), slot
            )
            return (
                timing.state_buffer_latency
                if warm
                else timing.main_memory_latency
            )
        if step.op.category is Category.SHA:
            words = (step.extra.get("length", 0) + 31) // 32
            return timing.sha3_base + timing.sha3_per_word * words
        if step.op.category is Category.CONTEXT:
            stall = timing.call_overhead
            target = step.extra.get("target")
            if target is not None:
                code_size = len(self.code_lookup(target))
                loaded = self.call_stack.load(target, code_size)
                stall += timing.context_load_cycles(loaded)
            return stall
        if name.startswith("LOG"):
            return timing.log_latency
        return 0

    def _baseline_step_cycles(
        self,
        step: TraceStep,
        prefetched: Callable[[TraceStep], bool] | None,
    ) -> int:
        timing = self.timing
        cost = timing.issue_cycles
        if step.op.pops > 0:
            cost += timing.operand_fetch_cycles
        cost += timing.unit_extra(step.op.category, step.op.name)
        stall = self._memory_stall(step, prefetched)
        self._stall_cycles += stall
        return cost + stall

    # -- trace timing ------------------------------------------------------------
    def time_trace(
        self,
        steps: list[TraceStep],
        prefetched: Callable[[TraceStep], bool] | None = None,
        skip: set[int] | None = None,
    ) -> TraceTiming:
        """Cycle-count a trace through this PU's pipeline.

        *skip* contains trace indices removed by hotspot optimization
        (pre-executed chunks, constant-eliminated stack feeders); they
        cost nothing and are invisible to line matching.
        """
        timing_result = TraceTiming()
        config = self.config
        fill_config = config.fill_config()
        if skip:
            steps = [s for s in steps if s.index not in skip]
        timing_result.instructions = len(steps)
        self._stall_cycles = 0
        self._prefetch_hits = 0

        i = 0
        n = len(steps)
        while i < n:
            step = steps[i]
            if not config.enable_db_cache:
                timing_result.cycles += self._baseline_step_cycles(
                    step, prefetched
                )
                timing_result.issue_slots += 1
                i += 1
                continue

            line, hit = self._find_line(step, fill_config)
            covered = (
                self._match_line(line, steps, i) if (line and hit) else 0
            )
            if covered:
                # Hit: the whole line issues in one slot.
                cost = self.timing.issue_cycles
                max_unit = 0
                max_stall = 0
                for covered_step in steps[i : i + covered]:
                    max_unit = max(
                        max_unit,
                        self.timing.unit_extra(
                            covered_step.op.category, covered_step.op.name
                        ),
                    )
                    max_stall = max(
                        max_stall,
                        self._memory_stall(covered_step, prefetched),
                    )
                cost += max_unit + max_stall
                self._stall_cycles += max_stall
                timing_result.cycles += cost
                timing_result.issue_slots += 1
                timing_result.line_hits += 1
                timing_result.line_instructions += covered
                i += covered
            else:
                # Miss: run the covered span at baseline cost while the
                # fill unit builds the line off the critical path.
                span = len(line.pcs) if line else 1
                span = min(span, n - i)
                span = self._contiguous_span(line, steps, i, span)
                for covered_step in steps[i : i + span]:
                    timing_result.cycles += self._baseline_step_cycles(
                        covered_step, prefetched
                    )
                    timing_result.issue_slots += 1
                if line is not None and not config.perfect_cache:
                    self.db_cache.insert(line)
                i += span
        timing_result.stall_cycles = self._stall_cycles
        timing_result.prefetch_hits = self._prefetch_hits
        registry = get_registry()
        if registry.enabled:
            self._emit_trace_metrics(registry, timing_result)
        return timing_result

    def _emit_trace_metrics(
        self, registry, timing_result: TraceTiming
    ) -> None:
        """Publish one timed trace's aggregates as pu.* counters."""
        labels = {"pu": str(self.pu_id)}
        registry.counter("pu.traces", **labels).inc()
        registry.counter("pu.instructions", **labels).inc(
            timing_result.instructions
        )
        registry.counter("pu.cycles", **labels).inc(timing_result.cycles)
        registry.counter("pu.issue_slots", **labels).inc(
            timing_result.issue_slots
        )
        registry.counter("pu.line_hits", **labels).inc(
            timing_result.line_hits
        )
        registry.counter("pu.line_instructions", **labels).inc(
            timing_result.line_instructions
        )
        registry.counter("pu.stall_cycles", **labels).inc(
            timing_result.stall_cycles
        )
        registry.counter("pu.prefetch_hits", **labels).inc(
            timing_result.prefetch_hits
        )

    def _find_line(
        self, step: TraceStep, fill_config: FillConfig
    ) -> tuple[DBCacheLine | None, bool]:
        """(line, hit). On a miss the returned line is the one the fill
        unit just constructed (for insertion), not a usable hit."""
        if self.config.perfect_cache:
            # Upper-bound mode: every cacheable line is present.
            line = self.db_cache.peek(step.code_address, step.pc)
            if line is None:
                line = self.code_index(step.code_address).line_at(
                    step.pc, fill_config
                )
                if line is not None and line.cacheable:
                    self.db_cache.insert(line)
            if line is not None and line.cacheable:
                self.db_cache.note_hit()
                return line, True
            self.db_cache.note_miss()
            return line, False

        line = self.db_cache.lookup(step.code_address, step.pc)
        if line is not None:
            return line, True
        # Miss: fill unit constructs the candidate line.
        return (
            self.code_index(step.code_address).line_at(step.pc, fill_config),
            False,
        )

    @staticmethod
    def _match_line(
        line: DBCacheLine | None, steps: list[TraceStep], i: int
    ) -> int:
        """Steps covered if the trace follows the line exactly, else 0."""
        if line is None or not line.cacheable:
            return 0
        pcs = line.pcs
        if i + len(pcs) > len(steps):
            return 0
        for offset, pc in enumerate(pcs):
            step = steps[i + offset]
            if step.pc != pc or step.code_address != line.code_address:
                return 0
        return len(pcs)

    @staticmethod
    def _contiguous_span(
        line: DBCacheLine | None,
        steps: list[TraceStep],
        i: int,
        span: int,
    ) -> int:
        """Clamp a miss span to trace steps matching the line's pcs."""
        if line is None:
            return 1
        pcs = line.pcs
        count = 0
        for offset in range(min(span, len(pcs))):
            if i + offset >= len(steps):
                break
            step = steps[i + offset]
            if (
                step.pc != pcs[offset]
                or step.code_address != line.code_address
            ):
                break
            count += 1
        return max(count, 1)

    # -- per-transaction context ----------------------------------------------------
    def context_setup_cycles(
        self,
        contract_address: int,
        calldata_bytes: int,
        on_path_fraction: float = 1.0,
    ) -> int:
        """Cycles to build the execution context for a transaction."""
        code_size = len(self.code_lookup(contract_address))
        resident = self.call_stack.resident(contract_address)
        if not resident:
            self.call_stack.load(contract_address, code_size)
        return self.context_model.cycles(
            calldata_bytes=calldata_bytes,
            bytecode_bytes=code_size,
            bytecode_resident=resident,
            on_path_fraction=on_path_fraction,
        )
