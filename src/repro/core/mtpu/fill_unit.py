"""The fill unit: packs decoded bytecode into DB-cache lines.

Paper section 3.3.3: "The fill unit collects the decoded bytecode and
fills the cache lines according to data dependencies and control logic.
All instructions in the same line are combined together and can be issued
in the same cycle."

Line-termination rules implemented here (sections 3.3.3–3.3.4):

* **Functional-unit fields** — each line has one fixed-length field per
  functional unit, so a second instruction needing an occupied unit ends
  the line.
* **RAW dependencies** — a within-line RAW normally ends the line; one RAW
  between two *reconfigurable* (half-cycle) units can be hidden by data
  forwarding (the F field), at most once per line. Instruction folding
  eliminates PUSH→consumer RAWs before they count.
* **WAR/WAW** — eliminated by the R/W stack sequence numbers, never
  terminate a line.
* **Control flow** — a branch is included and ends its line (the successor
  address is recorded at the end of the line); JUMPDESTs start new lines
  so jump targets are line-addressable; frame terminators end the line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...evm import opcodes
from ...evm.code import Instruction, decode
from ...obs import get_registry
from ...evm.opcodes import (
    FORWARD_CONSUMER_CATEGORIES,
    RECONFIGURABLE_CATEGORIES,
    Category,
)
from .folding import FoldedOp, try_fold

#: Hard cap on issued (post-folding) ops per line: one per functional unit
#: would allow 11; real fill units bound line length lower.
MAX_SLOTS_PER_LINE = 8

#: Marker for stack values that predate the line (no within-line RAW).
_EXTERNAL = -1


@dataclass(frozen=True)
class LineSlot:
    """One issued (possibly folded) operation within a line."""

    op: FoldedOp
    forwarded_from: int | None = None  # F field: producer slot index


@dataclass
class DBCacheLine:
    """One decoded-bytecode cache line."""

    code_address: int
    start_pc: int
    slots: list[LineSlot]
    next_pc: int  # fall-through successor (recorded at line end)
    gas_static: int = 0  # G field
    reads: int = 0  # R field: stack words consumed at issue
    writes: int = 0  # W field: stack words produced at issue

    @property
    def pcs(self) -> tuple[int, ...]:
        """All original instruction pcs covered, in execution order."""
        result: list[int] = []
        for slot in self.slots:
            result.extend(slot.op.pcs)
        return tuple(result)

    @property
    def orig_count(self) -> int:
        """Original instructions represented (folded PUSHes included)."""
        return sum(slot.op.orig_count for slot in self.slots)

    @property
    def issued_count(self) -> int:
        """Post-folding operations issued in parallel."""
        return len(self.slots)

    @property
    def used_forward(self) -> bool:
        return any(slot.forwarded_from is not None for slot in self.slots)

    @property
    def cacheable(self) -> bool:
        """Lines holding a single instruction are not cached (section
        3.4.1: fetching one instruction from the DB cache is inefficient;
        such lines are only recorded for hotspot path tracking)."""
        return self.orig_count >= 2

    @property
    def ends_with_branch(self) -> bool:
        last = self.slots[-1].op.primary.op
        return opcodes.is_branch(last) or last.is_terminator


#: Issued ops a line may hold per functional unit. Stack and memory units
#: are dual-ported (two fixed-length fields each) — without this, the ISA's
#: 62% stack share (paper Table 6) would cap lines at ~2 instructions,
#: far below the ~3.8 original-instructions-per-line Table 7 implies.
DEFAULT_UNIT_CAPACITY: dict[Category, int] = {
    Category.STACK: 3,
    Category.MEMORY: 2,
    Category.ARITHMETIC: 2,
    Category.LOGIC: 2,
}


@dataclass
class FillConfig:
    """Ablation switches for the fill unit (paper Fig. 12)."""

    folding: bool = True  # IF: instruction folding
    forwarding: bool = True  # DF: data forwarding
    max_slots: int = MAX_SLOTS_PER_LINE
    unit_capacity: dict[Category, int] = field(
        default_factory=lambda: dict(DEFAULT_UNIT_CAPACITY)
    )

    def capacity(self, category: Category) -> int:
        return self.unit_capacity.get(category, 1)


def _stack_reads(op: FoldedOp) -> list[int]:
    """Depths (0 = top) this op reads from the pre-op stack."""
    name = op.primary.op.name
    if opcodes.is_dup(op.primary.op):
        n = op.primary.op.value - 0x80 + 1
        return [n - 1]
    if opcodes.is_swap(op.primary.op):
        n = op.primary.op.value - 0x90 + 1
        return [0, n]
    return list(range(op.stack_inputs))


def _stack_delta(op: FoldedOp) -> tuple[int, int]:
    """(pops, pushes) against the simulated stack for this op."""
    primary = op.primary.op
    if opcodes.is_dup(primary):
        return (0, 1)
    if opcodes.is_swap(primary):
        return (0, 0)  # handled specially (positions swap in place)
    return (op.stack_inputs, primary.pushes)


def build_line(
    code_address: int,
    instructions: list[Instruction],
    index_of_pc: dict[int, int],
    start_pc: int,
    config: FillConfig | None = None,
) -> DBCacheLine | None:
    """Build one line starting at *start_pc*; None if pc is undecodable."""
    config = config or FillConfig()
    start_index = index_of_pc.get(start_pc)
    if start_index is None:
        return None

    slots: list[LineSlot] = []
    used_units: dict[Category, int] = {}
    forward_used = False
    gas_static = 0
    reads = 0
    writes = 0
    # Simulated top-of-stack segment: producer slot index or _EXTERNAL.
    sim: list[int] = []
    external_reads = 0

    index = start_index
    pos_pc = start_pc
    while index < len(instructions) and len(slots) < config.max_slots:
        op, next_index = try_fold(instructions, index, config.folding)
        primary = op.primary.op

        # JUMPDESTs begin new lines (jump targets must be line heads) —
        # unless this one *is* the head.
        if primary.name == "JUMPDEST" and slots:
            break

        category = primary.category
        if used_units.get(category, 0) >= config.capacity(category):
            break

        # Dependency analysis against within-line producers.
        read_depths = _stack_reads(op)
        producer_slots = []
        for depth in read_depths:
            if depth < len(sim):
                producer = sim[len(sim) - 1 - depth]
                if producer != _EXTERNAL:
                    producer_slots.append(producer)
        forwarded_from: int | None = None
        if producer_slots:
            producer_index = producer_slots[0]
            producer_category = (
                slots[producer_index].op.primary.op.category
            )
            can_forward = (
                config.forwarding
                and not forward_used
                and len(producer_slots) == 1
                and producer_category in RECONFIGURABLE_CATEGORIES
                and category in FORWARD_CONSUMER_CATEGORIES
            )
            if can_forward:
                forward_used = True
                forwarded_from = producer_index
            else:
                break

        # Accept the op into the line.
        slot_index = len(slots)
        slots.append(LineSlot(op=op, forwarded_from=forwarded_from))
        used_units[category] = used_units.get(category, 0) + 1
        gas_static += op.static_gas

        # Update the simulated stack.
        if opcodes.is_dup(primary):
            # The duplicate is produced by this DUP slot.
            sim.append(slot_index)
        elif opcodes.is_swap(primary):
            n = primary.value - 0x90 + 1
            while len(sim) < n + 1:
                sim.insert(0, _EXTERNAL)
                external_reads += 1
            sim[-1], sim[-1 - n] = sim[-1 - n], sim[-1]
        else:
            pops, pushes = _stack_delta(op)
            for _ in range(pops):
                if sim:
                    sim.pop()
                else:
                    external_reads += 1
            for _ in range(pushes):
                sim.append(slot_index)

        index = next_index
        pos_pc = op.end_pc

        if (
            opcodes.is_branch(primary)
            or primary.is_terminator
            or primary.category is Category.CONTEXT
        ):
            # Control leaves the straight-line window: branches take the
            # pipeline elsewhere, terminators end the frame, and
            # context-switching ops hand execution to the callee.
            break

    if not slots:
        return None

    reads = external_reads
    writes = len(sim)
    line = DBCacheLine(
        code_address=code_address,
        start_pc=start_pc,
        slots=slots,
        next_pc=pos_pc,
        gas_static=gas_static,
        reads=reads,
        writes=writes,
    )
    registry = get_registry()
    if registry.enabled:
        registry.counter("fill.lines_built").inc()
        registry.counter("fill.instructions_packed").inc(line.orig_count)
        folded = line.orig_count - line.issued_count
        if folded:
            registry.counter("fill.folded_instructions").inc(folded)
        if forward_used:
            registry.counter("fill.forwards").inc()
        registry.histogram("fill.line_length").observe(line.orig_count)
    return line


class CodeIndex:
    """Decoded view of one contract's bytecode, shared across lines."""

    def __init__(self, code_address: int, code: bytes) -> None:
        self.code_address = code_address
        self.instructions = decode(code)
        self.index_of_pc = {
            instr.pc: i for i, instr in enumerate(self.instructions)
        }

    @classmethod
    def from_instructions(
        cls, code_address: int, instructions: list[Instruction]
    ) -> "CodeIndex":
        """Build a view from an already-filtered instruction stream.

        Used by the hotspot optimizer: constant-eliminated instructions
        are dropped from the stream, so lines built from the view pack the
        surviving instructions more densely (their dependencies through
        the eliminated stack ops are gone — the Constants Table supplies
        the operands instead).
        """
        view = cls.__new__(cls)
        view.code_address = code_address
        view.instructions = list(instructions)
        view.index_of_pc = {
            instr.pc: i for i, instr in enumerate(view.instructions)
        }
        return view

    def line_at(
        self, start_pc: int, config: FillConfig | None = None
    ) -> DBCacheLine | None:
        return build_line(
            self.code_address,
            self.instructions,
            self.index_of_pc,
            start_pc,
            config,
        )
