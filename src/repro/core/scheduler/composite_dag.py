"""The composite DAG (paper Fig. 6).

Nodes are a block's transactions; directed edges are execution-order
dependencies; each node carries *contract invocation information* (the To
address + function identifier) and a redundancy value V — how many more
times the same contract will be invoked by remaining transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...chain.transaction import Transaction


@dataclass
class CompositeDAG:
    """Dependency + redundancy structure over one block's transactions."""

    transactions: list[Transaction]
    edges: list[tuple[int, int]]

    def __post_init__(self) -> None:
        n = len(self.transactions)
        self.successors: list[list[int]] = [[] for _ in range(n)]
        self.predecessors: list[list[int]] = [[] for _ in range(n)]
        for i, j in self.edges:
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"edge ({i},{j}) out of range")
            if i >= j:
                raise ValueError(
                    f"edge ({i},{j}) must point forward in block order"
                )
            self.successors[i].append(j)
            self.predecessors[j].append(i)
        self._remaining_indegree = [len(p) for p in self.predecessors]
        self.completed: set[int] = set()
        self.started: set[int] = set()
        # Redundancy values: V(i) = remaining future invocations of the
        # same contract (paper: "the value of the T0 node indicates that
        # the SC1 invoked by T0 will be executed three more times").
        self._remaining_per_contract: dict[int | None, int] = {}
        for tx in self.transactions:
            key = tx.to
            self._remaining_per_contract[key] = (
                self._remaining_per_contract.get(key, 0) + 1
            )

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.transactions)

    def contract_of(self, index: int) -> int | None:
        return self.transactions[index].to

    def value(self, index: int) -> int:
        """Current V for a node: future same-contract invocations."""
        remaining = self._remaining_per_contract.get(
            self.contract_of(index), 0
        )
        return max(0, remaining - 1)

    def is_ready(self, index: int) -> bool:
        """All predecessors completed."""
        return (
            index not in self.started
            and self._remaining_indegree[index] == 0
        )

    def is_admissible(self, index: int) -> bool:
        """All predecessors completed *or running* — the window-admission
        rule: such transactions may sit in main memory as candidates while
        their last dependency is still executing."""
        if index in self.started:
            return False
        return all(
            p in self.completed or p in self.started
            for p in self.predecessors[index]
        )

    def blocked_by_running(self, index: int, running: set[int]) -> bool:
        """Does the candidate depend on a transaction still executing?"""
        return any(
            p in running and p not in self.completed
            for p in self.predecessors[index]
        )

    def ready_transactions(self) -> list[int]:
        return [
            i
            for i in range(len(self.transactions))
            if self.is_ready(i)
        ]

    # -- state transitions -----------------------------------------------------
    def start(self, index: int) -> None:
        if index in self.started:
            raise ValueError(f"transaction {index} already started")
        self.started.add(index)
        key = self.contract_of(index)
        self._remaining_per_contract[key] -= 1

    def abort(self, index: int) -> None:
        """Roll a started-but-unfinished transaction back to pending.

        Used when the PU executing it dies or stalls: the transaction
        becomes schedulable again (on a surviving PU) and its redundancy
        value V is restored, since the invocation will happen after all.
        """
        if index not in self.started:
            raise ValueError(f"transaction {index} never started")
        if index in self.completed:
            raise ValueError(f"transaction {index} already completed")
        self.started.discard(index)
        self._remaining_per_contract[self.contract_of(index)] += 1

    def complete(self, index: int) -> None:
        if index not in self.started:
            raise ValueError(f"transaction {index} never started")
        if index in self.completed:
            raise ValueError(f"transaction {index} already completed")
        self.completed.add(index)
        for successor in self.successors[index]:
            self._remaining_indegree[successor] -= 1

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.transactions)
