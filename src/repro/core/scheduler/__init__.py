"""Spatio-temporal transaction scheduling (paper section 3.2)."""

from .composite_dag import CompositeDAG
from .simulator import (
    ScheduleResult,
    run_sequential,
    run_spatial_temporal,
    run_synchronous,
)
from .spatial_temporal import SelectionOutcome, SpatialTemporalScheduler
from .tables import (
    SchedulingEntry,
    SchedulingTable,
    TransactionEntry,
    TransactionTable,
)

__all__ = [
    "CompositeDAG",
    "ScheduleResult",
    "run_sequential",
    "run_spatial_temporal",
    "run_synchronous",
    "SelectionOutcome",
    "SpatialTemporalScheduler",
    "SchedulingEntry",
    "SchedulingTable",
    "TransactionEntry",
    "TransactionTable",
]
