"""The Scheduling Table and Transaction Table (paper section 3.2).

These model the hardware structures literally: the candidate window holds
m transactions in main memory; per-PU De/Re entries are m-bit vectors; the
Transaction Table carries a lock bit and the priority value V. A valid
bit per dependency entry avoids dirty reads during the CPU's asynchronous
updates ("Invalid dependencies are treated as all zeros because the
completed transaction no longer affects the execution of other
transactions").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SchedulingEntry:
    """One PU's row: De and Re bit vectors over the candidate window."""

    dependency_bits: int = 0  # De: bit i => candidate i depends on my tx
    redundancy_bits: int = 0  # Re: bit i => candidate i is redundant w/ mine
    valid: bool = True  # guards against dirty reads

    def effective_dependency(self) -> int:
        """De as seen by readers: invalid entries read as all-zeros."""
        return self.dependency_bits if self.valid else 0


@dataclass
class TransactionEntry:
    """One candidate slot: the transaction index, lock, and V priority."""

    tx_index: int = -1  # -1 = empty slot
    locked: bool = False
    value: int = 0  # V: redundancy priority

    @property
    def occupied(self) -> bool:
        return self.tx_index >= 0


class SchedulingTable:
    """Per-PU De/Re vectors over an m-slot candidate window."""

    def __init__(self, num_pus: int, window_size: int) -> None:
        self.window_size = window_size
        self.entries = [SchedulingEntry() for _ in range(num_pus)]

    def set_masks(
        self, pu_id: int, dependency_bits: int, redundancy_bits: int
    ) -> None:
        entry = self.entries[pu_id]
        entry.valid = False  # CPU begins its update
        entry.dependency_bits = dependency_bits
        entry.redundancy_bits = redundancy_bits
        entry.valid = True

    def invalidate(self, pu_id: int) -> None:
        """PU finished its transaction: its De no longer binds anyone."""
        self.entries[pu_id].valid = False

    def clear(self, pu_id: int) -> None:
        """Hard-invalidate a PU's column (dead/stalled PU recovery).

        Unlike :meth:`invalidate` — which only masks the entry until the
        CPU's next refresh — this wipes the De/Re vectors so a failed
        PU's stale dependencies can never block surviving PUs, even
        through a later spurious revalidation.
        """
        entry = self.entries[pu_id]
        entry.dependency_bits = 0
        entry.redundancy_bits = 0
        entry.valid = False

    def blocked_mask(self, exclude_pu: int | None = None) -> int:
        """OR of all (valid) dependency vectors: candidates that must not
        be selected because they depend on a running transaction."""
        mask = 0
        for pu_id, entry in enumerate(self.entries):
            if pu_id == exclude_pu:
                continue
            mask |= entry.effective_dependency()
        return mask

    def redundancy_mask(self, pu_id: int) -> int:
        return self.entries[pu_id].redundancy_bits


class TransactionTable:
    """The m candidate slots with lock bits and V priorities."""

    def __init__(self, window_size: int) -> None:
        self.window_size = window_size
        self.slots = [TransactionEntry() for _ in range(window_size)]

    def free_slots(self) -> list[int]:
        return [i for i, slot in enumerate(self.slots) if not slot.occupied]

    def occupied_mask(self) -> int:
        mask = 0
        for i, slot in enumerate(self.slots):
            if slot.occupied and not slot.locked:
                mask |= 1 << i
        return mask

    def write(self, slot_index: int, tx_index: int, value: int) -> None:
        slot = self.slots[slot_index]
        if slot.occupied:
            raise ValueError(f"slot {slot_index} still occupied")
        slot.tx_index = tx_index
        slot.locked = False
        slot.value = value

    def lock(self, slot_index: int) -> int:
        """PU takes a candidate: lock it and return the tx index."""
        slot = self.slots[slot_index]
        if not slot.occupied or slot.locked:
            raise ValueError(f"slot {slot_index} not available")
        slot.locked = True
        return slot.tx_index

    def release(self, slot_index: int) -> None:
        """CPU clears a consumed slot after the PU's read completes."""
        slot = self.slots[slot_index]
        slot.tx_index = -1
        slot.locked = False
        slot.value = 0

    def slot_of(self, tx_index: int) -> int | None:
        for i, slot in enumerate(self.slots):
            if slot.tx_index == tx_index:
                return i
        return None
