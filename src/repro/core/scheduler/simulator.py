"""Event-driven execution of a block on a multi-PU MTPU.

Three drivers, matching the paper's evaluation configurations:

* :func:`run_sequential` — one PU, block order (the Fig. 14 baseline).
* :func:`run_synchronous` — k PUs with barrier rounds: each round takes a
  set of pairwise-independent ready transactions, executes them in
  parallel, and waits for the slowest ("synchronous execution of
  transactions", Fig. 14a).
* :func:`run_spatial_temporal` — the paper's asynchronous scheduler
  (Fig. 14b): PUs pick work the moment they go idle, guided by the
  Scheduling/Transaction tables.

All drivers execute transactions *functionally* in an order that is a
linear extension of the dependency DAG, so the final state and receipts
equal sequential execution — asserted by the integration tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ...chain.receipt import Receipt
from ...chain.transaction import Transaction
from ...faults.plan import PU_DEAD
from ...obs import get_registry
from ..mtpu.processor import MTPUExecutor, TxExecution
from .composite_dag import CompositeDAG
from .spatial_temporal import SpatialTemporalScheduler

#: Cycles charged for one table-consultation selection step — the paper
#: bounds it to O(n) bit operations off the main execution path.
SELECTION_OVERHEAD_CYCLES = 2


@dataclass
class ScheduleResult:
    """Outcome and metrics of one scheduled block execution."""

    makespan_cycles: int
    executions: list[TxExecution]
    num_pus: int
    pu_busy_cycles: list[int] = field(default_factory=list)
    redundancy_hit_ratio: float = 0.0
    rounds: int = 0  # synchronous driver only
    #: Spatio-temporal scheduler counters (admitted/commits/aborts/...).
    scheduler_stats: dict = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Mean busy fraction across PUs (paper Fig. 15)."""
        if not self.makespan_cycles or not self.num_pus:
            return 0.0
        busy = sum(self.pu_busy_cycles)
        return busy / (self.makespan_cycles * self.num_pus)

    @property
    def total_instructions(self) -> int:
        return sum(e.instructions for e in self.executions)

    def receipts_in_block_order(
        self, transactions: list[Transaction]
    ) -> list[Receipt]:
        by_hash = {e.tx.hash(): e.receipt for e in self.executions}
        return [by_hash[tx.hash()] for tx in transactions]

    def speedup_over(self, baseline: "ScheduleResult") -> float:
        if self.makespan_cycles == 0:
            return float("inf")
        return baseline.makespan_cycles / self.makespan_cycles


def run_sequential(
    executor: MTPUExecutor, transactions: list[Transaction]
) -> ScheduleResult:
    """Block-order execution on PU0 — the paper's 1× reference."""
    pu = executor.pus[0]
    makespan = 0
    for tx in transactions:
        execution = executor.execute_on(pu, tx)
        makespan += execution.cycles
    return ScheduleResult(
        makespan_cycles=makespan,
        executions=list(executor.executions),
        num_pus=1,
        pu_busy_cycles=[makespan],
    )


def run_synchronous(
    executor: MTPUExecutor,
    transactions: list[Transaction],
    edges: list[tuple[int, int]],
) -> ScheduleResult:
    """Barrier-round parallel execution.

    Each round grabs up to k ready transactions in block order and
    barriers on the slowest — the classic concurrency-control execution
    model the paper compares against.
    """
    dag = CompositeDAG(transactions, edges)
    pus = executor.pus
    makespan = 0
    rounds = 0
    busy = [0] * len(pus)
    while not dag.done:
        ready = dag.ready_transactions()[: len(pus)]
        if not ready:
            raise RuntimeError("synchronous driver stalled (cyclic DAG?)")
        round_cycles = 0
        for pu, tx_index in zip(pus, ready):
            dag.start(tx_index)
            execution = executor.execute_on(
                pu, transactions[tx_index]
            )
            busy[pu.pu_id] += execution.cycles
            round_cycles = max(round_cycles, execution.cycles)
        for tx_index in ready:
            dag.complete(tx_index)
        makespan += round_cycles
        rounds += 1
    return ScheduleResult(
        makespan_cycles=makespan,
        executions=list(executor.executions),
        num_pus=len(pus),
        pu_busy_cycles=busy,
        rounds=rounds,
    )


#: Event kinds in the simulation heap.
_COMPLETE = 0
_RESUME = 1


def run_spatial_temporal(
    executor: MTPUExecutor,
    transactions: list[Transaction],
    edges: list[tuple[int, int]],
    window_size: int | None = None,
    selection_overhead: int = SELECTION_OVERHEAD_CYCLES,
    fault_injector=None,
    report=None,
) -> ScheduleResult:
    """Asynchronous execution under the spatio-temporal scheduler.

    When a :class:`~repro.faults.FaultInjector` is supplied, its PU
    faults are enacted: a PU that dies (or stalls past its timeout) has
    its in-flight transaction rolled back and re-enqueued on surviving
    PUs, its Scheduling-Table column cleared, and the lost cycles
    recorded into *report* (a
    :class:`~repro.faults.DegradationReport`). The final state and
    receipts remain identical to sequential execution.
    """
    dag = CompositeDAG(transactions, edges)
    scheduler = SpatialTemporalScheduler(
        dag, num_pus=len(executor.pus), window_size=window_size
    )
    pus = executor.pus
    busy = [0] * len(pus)

    pending_faults = {}
    if fault_injector is not None:
        pending_faults = dict(fault_injector.pu_faults(len(pus)))
        if pending_faults:
            # Mid-flight recovery needs the journal for rollback.
            executor.auto_clear_journal = False

    #: (time, sequence, kind, pu_id, tx_index) events.
    events: list[tuple[int, int, int, int, int]] = []
    sequence = 0
    now = 0
    idle = set(range(len(pus)))
    dead: set[int] = set()
    makespan = 0

    def record(counter: str, amount: int = 1) -> None:
        # DegradationReport.count also publishes to the faults.* metric
        # series — the report and the registry stay one source of truth.
        if report is not None:
            report.count(counter, amount)
            return
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults." + counter).inc(amount)

    while not dag.done:
        progressed = True
        while progressed:
            progressed = False
            for pu_id in sorted(idle):
                fault = pending_faults.get(pu_id)
                if fault is not None and fault.at_cycle <= now:
                    # The PU fails before it can pick up new work.
                    pending_faults.pop(pu_id)
                    idle.discard(pu_id)
                    scheduler.on_pu_dead(pu_id)
                    if fault.kind == PU_DEAD:
                        dead.add(pu_id)
                        record("pu_failures_detected")
                    else:
                        record("pu_stalls_detected")
                        record("recovery_cycles", fault.stall_cycles)
                        sequence += 1
                        heapq.heappush(events, (
                            max(now, fault.at_cycle + fault.stall_cycles),
                            sequence, _RESUME, pu_id, -1,
                        ))
                    progressed = True
                    continue
                outcome = scheduler.select(pu_id)
                if outcome is None:
                    continue
                scheduler.on_start(pu_id, outcome)
                token = (
                    executor.state.snapshot() if pending_faults else 0
                )
                execution = executor.execute_on(
                    pus[pu_id], transactions[outcome.tx_index]
                )
                duration = execution.cycles + selection_overhead
                fault = pending_faults.get(pu_id)
                if fault is not None and fault.at_cycle < now + duration:
                    # The PU dies/stalls mid-execution: roll the
                    # speculative state back and re-enqueue the
                    # transaction on the survivors.
                    pending_faults.pop(pu_id)
                    fail_at = max(now, fault.at_cycle)
                    executor.retract(execution, token)
                    scheduler.on_abort(pu_id, outcome.tx_index)
                    wasted = fail_at - now
                    busy[pu_id] += wasted
                    idle.discard(pu_id)
                    record("txs_rescheduled")
                    record("recovery_cycles", wasted)
                    if fault.kind == PU_DEAD:
                        dead.add(pu_id)
                        record("pu_failures_detected")
                    else:
                        record("pu_stalls_detected")
                        record("recovery_cycles", fault.stall_cycles)
                        sequence += 1
                        heapq.heappush(events, (
                            fail_at + fault.stall_cycles,
                            sequence, _RESUME, pu_id, -1,
                        ))
                    progressed = True
                    continue
                busy[pu_id] += duration
                sequence += 1
                heapq.heappush(
                    events,
                    (now + duration, sequence, _COMPLETE, pu_id,
                     outcome.tx_index),
                )
                idle.discard(pu_id)
                progressed = True

        if not events:
            if not dag.done:
                if len(dead) == len(pus):
                    raise RuntimeError(
                        "all PUs failed; no survivors to finish the block "
                        f"({len(dag.completed)}/{len(dag)} done)"
                    )
                raise RuntimeError(
                    "spatial-temporal driver stalled "
                    f"({len(dag.completed)}/{len(dag)} done)"
                )
            break
        end_time, _, kind, pu_id, tx_index = heapq.heappop(events)
        now = max(now, end_time)
        if kind == _COMPLETE:
            makespan = max(makespan, now)
            scheduler.on_complete(pu_id, tx_index)
        idle.add(pu_id)

    return ScheduleResult(
        makespan_cycles=makespan,
        executions=list(executor.executions),
        num_pus=len(pus),
        pu_busy_cycles=busy,
        redundancy_hit_ratio=scheduler.redundancy_hit_ratio,
        scheduler_stats=scheduler.stats(),
    )
