"""The spatio-temporal scheduling algorithm (paper section 3.2).

Decoupled roles:

* **CPU (write path)** — keeps the m-slot candidate window filled with
  admissible transactions (all predecessors completed *or running*),
  prioritizing candidates redundant with currently-executing contracts,
  then larger V; refreshes every PU's De/Re bit vectors.
* **PU (read path)** — on becoming free: mask out candidates that depend
  on any running transaction (①), prefer candidates redundant with its own
  last contract (②), otherwise take the largest V; lock the slot, read the
  transaction (③–⑤ happen on the CPU side afterwards).

Spatial dimension: conflict-free candidates run asynchronously in
parallel. Temporal dimension: redundant transactions land back-to-back on
the same PU, compounding DB-cache and context reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...obs import get_registry
from .composite_dag import CompositeDAG
from .tables import SchedulingTable, TransactionTable


@dataclass
class SelectionOutcome:
    """What a PU's selection step produced (for metrics/tests)."""

    tx_index: int
    slot_index: int
    redundant: bool  # chosen via the Re mask
    value: int


class SpatialTemporalScheduler:
    """The paper's scheduler over a composite DAG."""

    def __init__(
        self,
        dag: CompositeDAG,
        num_pus: int,
        window_size: int | None = None,
    ) -> None:
        self.dag = dag
        self.num_pus = num_pus
        self.window_size = window_size or max(8, 2 * num_pus)
        self.scheduling_table = SchedulingTable(num_pus, self.window_size)
        self.transaction_table = TransactionTable(self.window_size)
        #: tx index currently running on each PU (None = idle).
        self.running: list[int | None] = [None] * num_pus
        #: last contract each PU executed (for Re computation).
        self.last_contract: list[int | None] = [None] * num_pus
        self._queued: set[int] = set()
        self.redundant_selections = 0
        self.total_selections = 0
        #: Dispatch accounting: every admission ends in exactly one
        #: commit or abort (the metric-invariant suite asserts this).
        self.admitted = 0
        self.commits = 0
        self.aborts = 0
        self._occupancy_sum = 0
        self._occupancy_samples = 0
        registry = get_registry()
        self._m_selections = registry.counter("sched.selections")
        self._m_redundant = registry.counter("sched.redundant_selections")
        self._m_admitted = registry.counter("sched.admitted")
        self._m_commits = registry.counter("sched.commits")
        self._m_aborts = registry.counter("sched.aborts")
        self._m_occupancy = registry.histogram("sched.window_occupancy")
        self.refill()

    # ------------------------------------------------------------------
    # CPU write path
    # ------------------------------------------------------------------
    def refill(self) -> None:
        """Fill free window slots with the best admissible transactions."""
        free = self.transaction_table.free_slots()
        if not free:
            self._occupancy_sum += self.window_size
            self._occupancy_samples += 1
            self._m_occupancy.observe(self.window_size)
            self._refresh_masks()
            return
        candidates = [
            i
            for i in range(len(self.dag))
            if i not in self._queued and self.dag.is_admissible(i)
        ]
        running_contracts = {
            self.dag.contract_of(tx)
            for tx in self.running
            if tx is not None
        }

        def priority(index: int) -> tuple:
            # Prefer candidates redundant with running contracts, then
            # larger V, then block order.
            redundant = self.dag.contract_of(index) in running_contracts
            return (not redundant, -self.dag.value(index), index)

        candidates.sort(key=priority)
        for slot, tx_index in zip(free, candidates):
            self.transaction_table.write(
                slot, tx_index, self.dag.value(tx_index)
            )
            self._queued.add(tx_index)
        occupancy = sum(
            1 for slot in self.transaction_table.slots if slot.occupied
        )
        self._occupancy_sum += occupancy
        self._occupancy_samples += 1
        self._m_occupancy.observe(occupancy)
        self._refresh_masks()

    def _refresh_masks(self) -> None:
        """Recompute every PU's De/Re bits over the current window."""
        for pu_id in range(self.num_pus):
            running_tx = self.running[pu_id]
            de = 0
            re = 0
            reference_contract = (
                self.dag.contract_of(running_tx)
                if running_tx is not None
                else self.last_contract[pu_id]
            )
            for slot_index, slot in enumerate(
                self.transaction_table.slots
            ):
                if not slot.occupied:
                    continue
                candidate = slot.tx_index
                if running_tx is not None and self.dag.blocked_by_running(
                    candidate, {running_tx}
                ):
                    de |= 1 << slot_index
                if (
                    reference_contract is not None
                    and self.dag.contract_of(candidate)
                    == reference_contract
                ):
                    re |= 1 << slot_index
            if running_tx is None:
                # Invalid (idle) entries read as all-zero dependencies.
                self.scheduling_table.set_masks(pu_id, de, re)
                self.scheduling_table.invalidate(pu_id)
                self.scheduling_table.entries[pu_id].redundancy_bits = re
            else:
                self.scheduling_table.set_masks(pu_id, de, re)

    # ------------------------------------------------------------------
    # PU read path
    # ------------------------------------------------------------------
    def select(self, pu_id: int) -> SelectionOutcome | None:
        """One PU's transaction selection (steps ① and ② of Fig. 6)."""
        available = self.transaction_table.occupied_mask()
        blocked = self.scheduling_table.blocked_mask(exclude_pu=pu_id)
        allowed = available & ~blocked
        if not allowed:
            return None

        self.total_selections += 1
        self._m_selections.inc()
        re_mask = self.scheduling_table.redundancy_mask(pu_id)
        preferred = allowed & re_mask
        redundant = bool(preferred)
        pick_mask = preferred if preferred else allowed

        # Among the picked mask: redundant hit takes the lowest slot;
        # otherwise the largest V wins.
        best_slot = None
        best_value = -1
        for slot_index in range(self.window_size):
            if not (pick_mask >> slot_index) & 1:
                continue
            if redundant:
                best_slot = slot_index
                break
            value = self.transaction_table.slots[slot_index].value
            if value > best_value:
                best_value = value
                best_slot = slot_index
        assert best_slot is not None
        tx_index = self.transaction_table.lock(best_slot)
        if redundant:
            self.redundant_selections += 1
            self._m_redundant.inc()
        return SelectionOutcome(
            tx_index=tx_index,
            slot_index=best_slot,
            redundant=redundant,
            value=self.transaction_table.slots[best_slot].value,
        )

    # ------------------------------------------------------------------
    # Lifecycle notifications from the simulator
    # ------------------------------------------------------------------
    def on_start(self, pu_id: int, outcome: SelectionOutcome) -> None:
        self.admitted += 1
        self._m_admitted.inc()
        self.dag.start(outcome.tx_index)
        self.running[pu_id] = outcome.tx_index
        self.last_contract[pu_id] = self.dag.contract_of(outcome.tx_index)
        self.transaction_table.release(outcome.slot_index)
        self._queued.discard(outcome.tx_index)
        self.refill()

    def on_complete(self, pu_id: int, tx_index: int) -> None:
        self.commits += 1
        self._m_commits.inc()
        self.dag.complete(tx_index)
        self.running[pu_id] = None
        self.scheduling_table.invalidate(pu_id)
        self.refill()

    def on_abort(self, pu_id: int, tx_index: int) -> None:
        """The PU running *tx_index* failed: undo the dispatch.

        The transaction returns to the pending pool (a surviving PU will
        re-select it), the failed PU's Scheduling-Table column is hard
        cleared, and window candidates that were admitted on the strength
        of the aborted transaction "running" are evicted — they are no
        longer admissible and selecting one would break serializability.
        """
        self.aborts += 1
        self._m_aborts.inc()
        self.dag.abort(tx_index)
        self.running[pu_id] = None
        self.scheduling_table.clear(pu_id)
        for slot_index, slot in enumerate(self.transaction_table.slots):
            if (
                slot.occupied
                and not slot.locked
                and not self.dag.is_admissible(slot.tx_index)
            ):
                self._queued.discard(slot.tx_index)
                self.transaction_table.release(slot_index)
        self.refill()

    def on_pu_dead(self, pu_id: int) -> None:
        """Permanently retire a PU: its column must never bind again."""
        self.scheduling_table.clear(pu_id)
        self.running[pu_id] = None

    @property
    def redundancy_hit_ratio(self) -> float:
        if not self.total_selections:
            return 0.0
        return self.redundant_selections / self.total_selections

    def stats(self) -> dict:
        """Scheduler counters for :class:`ScheduleResult`/perf reports."""
        mean_occupancy = (
            self._occupancy_sum / self._occupancy_samples
            if self._occupancy_samples
            else 0.0
        )
        return {
            "admitted": self.admitted,
            "commits": self.commits,
            "aborts": self.aborts,
            "selections": self.total_selections,
            "redundant_selections": self.redundant_selections,
            "window_size": self.window_size,
            "window_occupancy_mean": mean_occupancy,
        }
