"""Comparator baselines (the paper's section 4.4)."""

from .bpu import BPUModel, measure_gsc_costs

__all__ = ["BPUModel", "measure_gsc_costs"]
