"""BPU: the Blockchain Processing Unit comparator (Lu & Peng, DAC'20).

Substitution note (DESIGN.md): BPU is closed-source; the paper compares
against it in Tables 8–9. BPU's published structure is two engines — a
GSC (general smart contract) engine and an App engine specialized for
ERC20 dataflow. Table 8's BPU column is reproduced to <3% by the Amdahl
model

    speedup(p) = 1 / ((1 - p) + p / alpha),   alpha ≈ 12.82

(p = ERC20 transaction share), which is what this module implements. The
GSC engine's absolute per-transaction cost is proxied by our baseline PU
(no DB cache, no reuse), making BPU and MTPU numbers directly comparable
against the same 1× reference, as in the paper.

For multi-core (Table 9) BPU schedules rounds synchronously — it has no
fine-grained transaction scheduler — so its parallel composition is
barrier-limited by the dependency DAG.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.transaction import Transaction
from ..chain.state import WorldState
from ..evm.context import BlockContext
from ..core.mtpu.processor import MTPUExecutor
from ..core.mtpu.pu import PUConfig
from ..core.scheduler.composite_dag import CompositeDAG

#: App-engine speedup on ERC20 transactions, calibrated from paper
#: Table 8 (100% ERC20, single core => 12.82x).
DEFAULT_APP_ENGINE_ALPHA = 12.82


def measure_gsc_costs(
    state: WorldState,
    transactions: list[Transaction],
    block: BlockContext | None = None,
) -> list[int]:
    """Per-transaction cycles on the GSC-engine proxy (baseline PU)."""
    executor = MTPUExecutor(
        state.copy(),
        block=block,
        num_pus=1,
        pu_config=PUConfig(enable_db_cache=False, redundancy_reuse=False),
    )
    pu = executor.pus[0]
    return [executor.execute_on(pu, tx).cycles for tx in transactions]


@dataclass
class BPUModel:
    """The two-engine BPU performance model."""

    app_engine_alpha: float = DEFAULT_APP_ENGINE_ALPHA

    def tx_cycles(self, tx: Transaction, gsc_cycles: int) -> float:
        """Cycles for one transaction: App engine for ERC20, else GSC."""
        if tx.tags.get("is_erc20"):
            return gsc_cycles / self.app_engine_alpha
        return float(gsc_cycles)

    def run_single_core(
        self, transactions: list[Transaction], gsc_costs: list[int]
    ) -> float:
        """Sequential single-core execution time (cycles)."""
        return sum(
            self.tx_cycles(tx, cost)
            for tx, cost in zip(transactions, gsc_costs)
        )

    def run_parallel(
        self,
        transactions: list[Transaction],
        gsc_costs: list[int],
        edges: list[tuple[int, int]],
        cores: int = 4,
    ) -> float:
        """Synchronous (barrier-round) multi-core execution time."""
        dag = CompositeDAG(transactions, edges)
        makespan = 0.0
        while not dag.done:
            ready = dag.ready_transactions()[:cores]
            if not ready:
                raise RuntimeError("BPU parallel driver stalled")
            round_cycles = 0.0
            for tx_index in ready:
                dag.start(tx_index)
                round_cycles = max(
                    round_cycles,
                    self.tx_cycles(
                        transactions[tx_index], gsc_costs[tx_index]
                    ),
                )
            for tx_index in ready:
                dag.complete(tx_index)
            makespan += round_cycles
        return makespan

    @staticmethod
    def analytic_single_core_speedup(
        erc20_fraction: float, alpha: float = DEFAULT_APP_ENGINE_ALPHA
    ) -> float:
        """The closed-form Amdahl speedup (paper Table 8's BPU row)."""
        return 1.0 / ((1.0 - erc20_fraction) + erc20_fraction / alpha)
