"""Replication chaos drill: SIGKILL a replica mid-stream, prove it heals.

``python -m repro.replication.smoke`` runs the full fault-tolerance
drill over real processes and sockets:

1. start a writer (``repro serve --replication-port``), two verifying
   replicas (``repro replicate``) and a read proxy (``repro proxy``)
   as subprocesses;
2. drive the writer with closed-loop write load while continuously
   reading balances (and subscribing to newHeads) through the proxy;
3. SIGKILL one replica mid-stream — no drain, no goodbye;
4. restart it on the same port and let reconnect/backoff + catch-up
   heal it;
5. assert: every proxy read was answered (zero unanswered, zero
   errors), the proxy ejected or failed over around the dead replica,
   and both replicas reconverge to a state digest *bit-identical* to
   the writer's at the same height.

With ``--divergence`` a third replica is started with an injected
silent state corruption (``--corrupt-at-height``); the drill then also
asserts the divergence was detected by the digest assertion and healed
by a snapshot resync — never served.

The CI ``replication-smoke`` job runs exactly this.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

import repro

from ..contracts.registry import build_deployment

_ANNOUNCE_RE = re.compile(r"(listening|streaming) on ([\d.]+):(\d+)")


class ManagedProcess:
    """One ``repro`` subcommand subprocess plus its announced ports."""

    def __init__(self, argv: list[str], announcements: int = 1):
        self.argv = argv
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env.get("PYTHONPATH", "")
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.stderr_lines: list[str] = []
        #: Ports in announcement order (writer: [rpc, stream]).
        self.ports: list[int] = []
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                break
            self.stderr_lines.append(line.rstrip())
            match = _ANNOUNCE_RE.search(line)
            if match:
                self.ports.append(int(match.group(3)))
                if len(self.ports) >= announcements:
                    return
        raise RuntimeError(
            f"{argv[0]} never announced its port(s):\n"
            + "\n".join(self.stderr_lines)
        )

    @property
    def port(self) -> int:
        return self.ports[0]

    def kill(self) -> None:
        """SIGKILL — no drain, no cleanup; the stream just tears."""
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self) -> int:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGINT)
        try:
            self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self.proc.kill()
            self.proc.wait()
        if self.proc.stderr is not None:
            self.stderr_lines.extend(
                line.rstrip() for line in self.proc.stderr
            )
        return self.proc.returncode


def _replica_argv(
    writer_stream_port: int,
    accounts: int,
    port: int = 0,
    corrupt_at_height: int | None = None,
) -> list[str]:
    argv = [
        "replicate",
        "--host", "127.0.0.1",
        "--port", str(port),
        "--accounts", str(accounts),
        "--writer-stream-port", str(writer_stream_port),
    ]
    if corrupt_at_height is not None:
        argv += ["--corrupt-at-height", str(corrupt_at_height)]
    return argv


async def _rpc(port: int, method: str, params=None, timeout=5.0):
    from ..serve.loadgen import RpcClient

    client = await RpcClient.connect("127.0.0.1", port)
    try:
        return await asyncio.wait_for(
            client.call(method, params), timeout=timeout
        )
    finally:
        await client.close()


async def _read_forever(
    proxy_port: int, accounts: list[int], stats: dict,
    stop: asyncio.Event,
) -> None:
    """Hammer the proxy with balance reads until told to stop.

    Every read is accounted for: the acceptance gate is zero
    unanswered and zero errors — the proxy must route around whatever
    the drill kills.
    """
    from ..serve.loadgen import RpcClient, RpcClientError

    client = await RpcClient.connect("127.0.0.1", proxy_port)
    index = 0
    try:
        while not stop.is_set():
            address = accounts[index % len(accounts)]
            index += 1
            stats["attempted"] += 1
            try:
                await asyncio.wait_for(
                    client.call(
                        "repro_getBalance", {"address": hex(address)}
                    ),
                    timeout=10.0,
                )
            except RpcClientError as err:
                stats["errors"] += 1
                stats.setdefault("error_samples", []).append(str(err))
            except (ConnectionError, asyncio.TimeoutError):
                stats["unanswered"] += 1
            else:
                stats["answered"] += 1
            await asyncio.sleep(0.002)
    finally:
        await client.close()


async def _subscribe_heads(
    proxy_port: int, heads: list[int], stop: asyncio.Event
) -> None:
    from ..serve.loadgen import RpcClient

    client = await RpcClient.connect("127.0.0.1", proxy_port)
    try:
        await client.call("repro_subscribe", {"topic": "newHeads"})
        while not stop.is_set():
            try:
                note = await client.next_notification(timeout=0.25)
            except asyncio.TimeoutError:
                continue
            head = (note.get("params") or {}).get("result") or {}
            heads.append(int(head.get("height", 0)))
    finally:
        await client.close()


async def _wait_converged(
    writer_port: int, replica_ports: list[int], timeout_s: float
) -> tuple[dict | None, list[dict]]:
    """Poll health until every replica matches the writer bit-for-bit."""
    deadline = time.monotonic() + timeout_s
    writer_health: dict | None = None
    replica_healths: list[dict] = []
    while time.monotonic() < deadline:
        try:
            writer_health = await _rpc(writer_port, "repro_health")
            replica_healths = [
                await _rpc(port, "repro_health")
                for port in replica_ports
            ]
        except (ConnectionError, OSError, asyncio.TimeoutError):
            await asyncio.sleep(0.2)
            continue
        if writer_health["height"] > 0 and all(
            h["height"] == writer_health["height"]
            and h["stateDigest"] == writer_health["stateDigest"]
            for h in replica_healths
        ):
            return writer_health, replica_healths
        await asyncio.sleep(0.1)
    return writer_health, replica_healths


async def _drive(
    writer: ManagedProcess,
    replicas: list[ManagedProcess],
    proxy: ManagedProcess,
    accounts: int,
    clients: int,
    total: int,
    kill_after_blocks: int,
    converge_timeout_s: float,
) -> dict:
    from ..serve.loadgen import LoadGenerator

    deployment = build_deployment(num_accounts=accounts)
    loadgen = LoadGenerator(
        "127.0.0.1", writer.port, deployment=deployment
    )
    load_task = asyncio.ensure_future(
        loadgen.run_closed_loop(total, clients=clients, seed=13)
    )
    stop = asyncio.Event()
    read_stats = {"attempted": 0, "answered": 0, "errors": 0,
                  "unanswered": 0}
    reader = asyncio.ensure_future(
        _read_forever(
            proxy.port, list(deployment.accounts), read_stats, stop
        )
    )
    heads: list[int] = []
    subscriber = asyncio.ensure_future(
        _subscribe_heads(proxy.port, heads, stop)
    )
    failures: list[str] = []
    victim = replicas[0]
    victim_port = victim.port
    restarted: ManagedProcess | None = None
    try:
        # -- wait until the stream is live, then pull the plug ------------
        while True:
            stats = await _rpc(writer.port, "repro_stats")
            if stats["chainHeight"] >= kill_after_blocks:
                break
            if load_task.done():
                break
            await asyncio.sleep(0.02)
        victim.kill()
        killed_at = (await _rpc(writer.port, "repro_stats"))[
            "chainHeight"
        ]
        # -- restart on the same port (the proxy knows this endpoint);
        # process spawn blocks, so keep reads flowing via the executor.
        loop = asyncio.get_running_loop()
        restarted = await loop.run_in_executor(
            None,
            lambda: ManagedProcess(
                _replica_argv(
                    writer.ports[1], accounts, port=victim_port
                )
            ),
        )
        replicas[0] = restarted
        await load_task
        # -- reconvergence: bit-identical digests at the same height ------
        writer_health, replica_healths = await _wait_converged(
            writer.port,
            [r.port for r in replicas],
            converge_timeout_s,
        )
        if writer_health is None:
            failures.append("writer health never answered")
            replica_healths = []
        else:
            for health in replica_healths:
                if (
                    health["height"] != writer_health["height"]
                    or health["stateDigest"]
                    != writer_health["stateDigest"]
                ):
                    failures.append(
                        f"replica at height {health['height']} digest "
                        f"{health['stateDigest'][:16]}… never "
                        f"reconverged with writer height "
                        f"{writer_health['height']} digest "
                        f"{writer_health['stateDigest'][:16]}…"
                    )
        proxy_stats = await _rpc(proxy.port, "repro_stats")
    finally:
        stop.set()
        await asyncio.gather(
            reader, subscriber, return_exceptions=True
        )
        if not load_task.done():
            load_task.cancel()
            await asyncio.gather(load_task, return_exceptions=True)
    load = load_task.result() if not load_task.cancelled() else None

    # -- the acceptance gates ---------------------------------------------
    if read_stats["unanswered"]:
        failures.append(
            f"{read_stats['unanswered']} proxy reads went unanswered"
        )
    if read_stats["errors"]:
        failures.append(
            f"{read_stats['errors']} proxy reads errored "
            f"(first: {read_stats.get('error_samples', ['?'])[0]})"
        )
    if read_stats["answered"] == 0:
        failures.append("no proxy read was answered")
    if proxy_stats["ejects"] + proxy_stats["failovers"] == 0:
        failures.append(
            "proxy never ejected or failed over around the killed "
            "replica"
        )
    if not heads:
        failures.append("proxy subscriber saw no newHeads")
    if load is not None and load.ok == 0:
        failures.append("write load got nothing committed")
    restart_stats = (
        replica_healths[0].get("replication", {})
        if replica_healths
        else {}
    )
    return {
        "killed_at_height": killed_at,
        "writer_height": (
            writer_health["height"] if writer_health else None
        ),
        "writer_digest": (
            writer_health["stateDigest"] if writer_health else None
        ),
        "reads": read_stats,
        "heads_seen": len(heads),
        "proxy": proxy_stats,
        "restarted_replica": restart_stats,
        "write_load": load.to_dict() if load is not None else None,
        "failures": failures,
    }


async def _divergence_drill(
    writer: ManagedProcess,
    accounts: int,
    corrupt_at_height: int,
    converge_timeout_s: float,
) -> dict:
    """A replica with injected silent corruption must detect and heal.

    The corrupted block's digest cannot match the writer's WAL stamp,
    so the replica must raise the typed divergence, roll back, and
    resync from a snapshot — ending bit-identical anyway.
    """
    replica = ManagedProcess(
        _replica_argv(
            writer.ports[1], accounts,
            corrupt_at_height=corrupt_at_height,
        )
    )
    failures: list[str] = []
    try:
        writer_health, healths = await _wait_converged(
            writer.port, [replica.port], converge_timeout_s
        )
        replication = (
            healths[0].get("replication", {}) if healths else {}
        )
        if not healths or writer_health is None or (
            healths[0]["stateDigest"] != writer_health["stateDigest"]
        ):
            failures.append(
                "diverged replica never reconverged to the writer's "
                "digest"
            )
        if replication.get("divergences", 0) < 1:
            failures.append(
                "injected corruption was never detected as a "
                "divergence"
            )
        if replication.get("resyncs", 0) < 1:
            failures.append(
                "divergence did not heal through a snapshot resync"
            )
    finally:
        replica.stop()
    return {"replication": replication, "failures": failures}


def run_replication_drill(
    accounts: int = 32,
    replicas: int = 2,
    clients: int = 8,
    total: int = 600,
    kill_after_blocks: int = 8,
    block_size: int = 8,
    snapshot_interval: int = 4,
    divergence: bool = False,
    corrupt_at_height: int = 3,
    converge_timeout_s: float = 60.0,
    data_dir: str | None = None,
) -> dict:
    """The full drill; returns a result dict with a ``failures`` list."""
    data_dir = data_dir or tempfile.mkdtemp(prefix="repro-repl-smoke-")
    writer = ManagedProcess(
        [
            "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--data-dir", data_dir,
            "--accounts", str(accounts),
            "--fsync", "never",
            "--block-size", str(block_size),
            "--interval-ms", "10",
            "--snapshot-interval", str(snapshot_interval),
            "--replication-port", "0",
        ],
        announcements=2,  # the RPC port, then the stream port
    )
    followers: list[ManagedProcess] = []
    proxy: ManagedProcess | None = None
    try:
        followers = [
            ManagedProcess(_replica_argv(writer.ports[1], accounts))
            for _ in range(replicas)
        ]
        proxy_argv = [
            "proxy",
            "--host", "127.0.0.1", "--port", "0",
            "--writer", f"127.0.0.1:{writer.port}",
            "--health-interval", "0.1",
        ]
        for follower in followers:
            proxy_argv += ["--replica", f"127.0.0.1:{follower.port}"]
        proxy = ManagedProcess(proxy_argv)

        result = asyncio.run(_drive(
            writer, followers, proxy, accounts, clients, total,
            kill_after_blocks, converge_timeout_s,
        ))
        if divergence:
            result["divergence"] = asyncio.run(_divergence_drill(
                writer, accounts, corrupt_at_height,
                converge_timeout_s,
            ))
            result["failures"].extend(
                result["divergence"]["failures"]
            )
    finally:
        if proxy is not None:
            proxy.stop()
        for follower in followers:
            if follower.proc.poll() is None:
                follower.stop()
        writer.stop()
    result["data_dir"] = data_dir
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accounts", type=int, default=32)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--transactions", type=int, default=600)
    parser.add_argument(
        "--kill-after-blocks", type=int, default=8,
        help="SIGKILL the first replica once the writer reaches this "
             "height",
    )
    parser.add_argument("--block-size", type=int, default=8)
    parser.add_argument("--snapshot-interval", type=int, default=4)
    parser.add_argument(
        "--divergence", action="store_true",
        help="additionally run the injected-corruption divergence drill",
    )
    parser.add_argument(
        "--corrupt-at-height", type=int, default=3,
        help="height the divergence drill corrupts (default: 3)",
    )
    parser.add_argument(
        "--converge-timeout", type=float, default=60.0,
        help="seconds to wait for digest reconvergence (default: 60)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="reuse a directory instead of a fresh tempdir",
    )
    args = parser.parse_args(argv)

    result = run_replication_drill(
        accounts=args.accounts,
        replicas=args.replicas,
        clients=args.clients,
        total=args.transactions,
        kill_after_blocks=args.kill_after_blocks,
        block_size=args.block_size,
        snapshot_interval=args.snapshot_interval,
        divergence=args.divergence,
        corrupt_at_height=args.corrupt_at_height,
        converge_timeout_s=args.converge_timeout,
        data_dir=args.data_dir,
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    if result["failures"]:
        print(
            "REPLICATION SMOKE FAILED: "
            + "; ".join(result["failures"]),
            file=sys.stderr,
        )
        return 1
    print(
        f"replication-smoke ok: killed a replica at height "
        f"{result['killed_at_height']}, reconverged bit-identical at "
        f"height {result['writer_height']}; "
        f"{result['reads']['answered']}/{result['reads']['attempted']} "
        f"proxy reads answered (0 unanswered), "
        f"{result['heads_seen']} heads pushed, proxy ejects "
        f"{result['proxy']['ejects']} failovers "
        f"{result['proxy']['failovers']}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
