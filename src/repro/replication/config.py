"""Replication-tier configuration: stream, backoff, and proxy knobs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BackoffPolicy:
    """Jittered exponential backoff for torn streams and dead backends.

    Delay for attempt *n* (0-based) is ``base * multiplier**n`` capped at
    ``max_delay_s``, then scattered by ``jitter`` (a fraction: 0.5 means
    the delay lands uniformly in [0.5x, 1.5x]). Jitter is what keeps a
    fleet of replicas that lost the same writer from reconnecting in
    lockstep and re-creating the thundering herd that tore them off.
    """

    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng) -> float:
        raw = min(
            self.max_delay_s,
            self.base_delay_s * (self.multiplier ** max(0, attempt)),
        )
        if self.jitter <= 0:
            return raw
        spread = self.jitter
        return raw * (1.0 + rng.uniform(-spread, spread))


@dataclass
class ReplicationConfig:
    """Everything the streamer, replicas, and proxy need to know."""

    # -- the writer's stream listener -------------------------------------
    host: str = "127.0.0.1"
    #: Writer-side WAL stream port (0: ephemeral, read back after bind).
    stream_port: int = 0

    # -- streaming --------------------------------------------------------
    #: Writer poll cadence for new WAL records when no commit wake-up
    #: arrives (the wake-up path makes this a fallback, not the latency).
    poll_interval_s: float = 0.05
    #: A replica more than this many blocks behind is caught up from the
    #: newest snapshot instead of replaying the whole WAL suffix.
    snapshot_catchup_blocks: int = 256

    # -- replica behaviour ------------------------------------------------
    #: Reconnect/backoff policy for torn streams.
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: Seed for backoff jitter (deterministic tests).
    seed: int = 0
    #: Replica-side read timeout on the stream; a silent writer beyond
    #: this is treated as a torn stream (reconnect with backoff).
    stream_read_timeout_s: float = 30.0

    # -- proxy ------------------------------------------------------------
    #: Proxy health-check cadence.
    health_interval_s: float = 0.25
    #: Per-backend health/read RPC timeout; a slower backend is ejected.
    backend_timeout_s: float = 2.0
    #: Eject a replica whose height lags the writer by more than this
    #: many blocks (stale reads); it rejoins once it catches back up.
    max_lag_blocks: int = 1024

    def __post_init__(self) -> None:
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.snapshot_catchup_blocks <= 0:
            raise ValueError("snapshot_catchup_blocks must be positive")
        if self.health_interval_s <= 0:
            raise ValueError("health_interval_s must be positive")
        if self.max_lag_blocks <= 0:
            raise ValueError("max_lag_blocks must be positive")
