"""The writer side: tail the WAL, stream blocks to followers.

The :class:`WalStreamer` is an asyncio TCP server the writer runs next
to its RPC listener. Each follower connection opens with a HELLO naming
the follower's applied height and state digest; the streamer validates
that claim against its own WAL stamps and either

* streams incrementally — a :class:`~repro.storage.tail.WalTailReader`
  positioned at the follower's height feeds CRC-framed BLOCK messages as
  commits land (woken by the block builder's ``on_new_head`` callback,
  with a poll-interval fallback), or
* resyncs from snapshot — when the follower asked for one, claims a
  digest the WAL stamps contradict (divergence), or is further behind
  than ``snapshot_catchup_blocks`` — by shipping the newest on-disk
  snapshot at/below the writer's head and streaming the WAL suffix from
  there.

The streamer never trusts the follower: a digest mismatch at HELLO time
means the follower's universe is wrong, and the only thing it is offered
is a snapshot, never a suffix that would silently extend a diverged
state.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import time

from ..chain.block import BLOCKHASH_WINDOW
from ..obs import get_registry
from ..storage import codec, snapshot
from ..storage.errors import CorruptSnapshotError
from ..storage.store import WAL_NAME
from ..storage.tail import WalTailReader
from . import stream
from .config import ReplicationConfig
from .errors import StreamProtocolError


#: Newest records kept pre-framed in memory (see ``_WalIndex.frames``).
#: Larger than the default snapshot catch-up threshold, so any follower
#: offered a stream instead of a snapshot is served from the cache.
FRAME_CACHE_RECORDS = 1024


class _WalIndex:
    """The writer's in-memory view of its own WAL: stamps and hashes.

    ``stamps[i]`` is the post-state digest of block height ``i + 1``;
    ``hashes[i]`` its block hash (served to resyncing followers so
    BLOCKHASH stays answerable across a snapshot gap). Refreshed
    incrementally by tailing the same file the store appends to.

    ``frames[i]`` is the fully framed BLOCK message for record ``i``,
    built once at discovery and written verbatim to every follower —
    decoding, re-framing, and CRC work happen once per commit instead
    of once per commit *per connection*. Only the newest
    :data:`FRAME_CACHE_RECORDS` are retained; colder catch-ups read the
    WAL file directly. The cached ``sent_at`` stamp is the moment the
    writer discovered the commit, so follower lag measures
    commit-to-apply time.
    """

    def __init__(self, wal_path: str) -> None:
        self._tail = WalTailReader(wal_path)
        self.stamps: list[bytes] = []
        self.hashes: list[bytes] = []
        self.roots: list[bytes] = []
        self.frames: dict[int, bytes] = {}

    @property
    def height(self) -> int:
        return len(self.stamps)

    def refresh(self) -> None:
        for payload in self._tail.poll():
            record = codec.decode_wal_record(payload)
            self.stamps.append(record.digest)
            self.hashes.append(record.block.hash())
            self.roots.append(record.block.header.state_root)
            index = len(self.stamps) - 1
            self.frames[index] = stream.encode_block(
                int(time.time() * 1e6), len(self.stamps), payload
            )
            self.frames.pop(index - FRAME_CACHE_RECORDS, None)

    def stamp(self, height: int) -> bytes | None:
        """The writer's digest after block *height* (None if unknown)."""
        if 1 <= height <= len(self.stamps):
            return self.stamps[height - 1]
        return None

    def root(self, height: int) -> bytes | None:
        """The sealed state root of block *height* (None if unknown or
        written by an un-Merkleized node)."""
        if 1 <= height <= len(self.roots):
            return self.roots[height - 1] or None
        return None

    def recent_hashes(self, height: int) -> list[tuple[int, bytes]]:
        """(height, hash) for the BLOCKHASH window ending at *height*."""
        lo = max(1, height - BLOCKHASH_WINDOW + 1)
        return [(h, self.hashes[h - 1]) for h in range(lo, height + 1)]


class WalStreamer:
    """Streams the writer's WAL to follower connections."""

    def __init__(
        self,
        data_dir: str,
        config: ReplicationConfig | None = None,
        fault_injector=None,
    ) -> None:
        self.data_dir = str(data_dir)
        self.config = config or ReplicationConfig()
        #: Optional :class:`repro.faults.FaultInjector` whose
        #: ``tear_stream`` hook severs connections mid-stream.
        self.fault_injector = fault_injector
        self._index = _WalIndex(os.path.join(self.data_dir, WAL_NAME))
        self._server: asyncio.base_events.Server | None = None
        #: Per-connection commit wake-ups (set by notify_commit).
        self._wakes: set[asyncio.Event] = set()
        self._genesis_digest: bytes | None = None
        # -- counters (mirrored into repro.obs when enabled) -------------
        self.connections_total = 0
        self.connections_active = 0
        self.blocks_streamed = 0
        self.snapshots_sent = 0
        self.rejected_hellos = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle,
            host=self.config.host,
            port=self.config.stream_port,
        )
        # Ephemeral-port runs read the bound port back.
        self.config.stream_port = (
            self._server.sockets[0].getsockname()[1]
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for wake in list(self._wakes):
            wake.set()

    def notify_commit(self, block=None, receipts=None) -> None:
        """Wake every streaming connection; a new WAL record landed.

        Signature matches the block builder's ``on_new_head`` callback
        so it wires straight in; the arguments are unused — the WAL
        itself is the source of truth for what to send.
        """
        for wake in self._wakes:
            wake.set()

    # -- hello validation ----------------------------------------------------
    def _genesis_stamp(self) -> bytes | None:
        if self._genesis_digest is None:
            path = os.path.join(self.data_dir, snapshot.snapshot_name(0))
            try:
                _, self._genesis_digest = snapshot.read_snapshot_stamp(
                    path
                )
            except (OSError, CorruptSnapshotError):
                return None
        return self._genesis_digest

    def _needs_snapshot(
        self,
        height: int,
        digest: bytes,
        asked: bool,
        state_root: bytes = b"",
    ) -> bool:
        """Whether a follower's HELLO claim forces a snapshot resync."""
        if asked or height > self._index.height:
            return True
        if height == 0:
            genesis = self._genesis_stamp()
            if genesis is not None and digest != genesis:
                return True
        elif self._index.stamp(height) != digest:
            return True  # divergence: never extend a wrong universe
        if state_root and height > 0:
            # A claimed Merkle root is validated exactly like the
            # digest; a WAL written without roots vouches for nothing
            # and stays silent.
            stamped = self._index.root(height)
            if stamped is not None and stamped != state_root:
                return True
        return (
            self._index.height - height
            > self.config.snapshot_catchup_blocks
        )

    def _newest_snapshot(self) -> tuple[int, bytes] | None:
        """(height, raw file payload) of the newest loadable snapshot."""
        for height, path in snapshot.list_snapshots(self.data_dir):
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
                from ..storage.wal import unframe_record

                return height, unframe_record(blob)
            except Exception:
                continue  # damaged anchor: fall back to an older one
        return None

    # -- per-connection streaming --------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_total += 1
        self.connections_active += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("replication.connections").inc()
            registry.gauge("replication.followers").set(
                self.connections_active
            )
        wake = asyncio.Event()
        self._wakes.add(wake)
        try:
            await self._stream_to(reader, writer, wake)
        except (
            ConnectionError,
            StreamProtocolError,
            asyncio.TimeoutError,
            OSError,
        ):
            pass  # torn/bogus follower: its problem, not the writer's
        finally:
            self._wakes.discard(wake)
            self.connections_active -= 1
            if registry.enabled:
                registry.gauge("replication.followers").set(
                    self.connections_active
                )
            with contextlib.suppress(Exception):
                writer.close()

    async def _stream_to(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        wake: asyncio.Event,
    ) -> None:
        msg_type, fields = await stream.read_message(
            reader, timeout=self.config.stream_read_timeout_s
        )
        if msg_type != stream.MSG_HELLO:
            self.rejected_hellos += 1
            raise StreamProtocolError("expected HELLO")
        height, digest, need_snapshot, claimed_root = fields
        self._index.refresh()
        start_height = height
        stamped_root = (
            self._index.root(height) if claimed_root and height > 0 else None
        )
        if height == 0:
            genesis = self._genesis_stamp()
            diverged = genesis is not None and digest != genesis
        else:
            diverged = height <= self._index.height and (
                self._index.stamp(height) != digest
                or (
                    stamped_root is not None
                    and stamped_root != claimed_root
                )
            )
        if self._needs_snapshot(
            height, digest, need_snapshot, claimed_root
        ):
            newest = self._newest_snapshot()
            if newest is not None and (
                newest[0] > height or diverged or need_snapshot
            ):
                snap_height, payload = newest
                writer.write(stream.encode_snapshot(
                    payload, self._index.recent_hashes(snap_height)
                ))
                await writer.drain()
                self.snapshots_sent += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter("replication.snapshots_sent").inc()
                start_height = snap_height
            # else: behind but no newer anchor on disk — the WAL suffix
            # from the follower's own height is the only way forward.
        next_index = start_height
        blocks_sent = 0
        while True:
            self._index.refresh()
            sent_this_poll = 0
            while next_index < self._index.height:
                if (
                    self.fault_injector is not None
                    and self.fault_injector.tear_stream(blocks_sent)
                ):
                    return  # injected torn stream: sever abruptly
                frame = self._index.frames.get(next_index)
                if frame is None:
                    # Colder than the frame cache: read the suffix off
                    # the file once; later rounds hit the cache again.
                    cold = WalTailReader(
                        os.path.join(self.data_dir, WAL_NAME),
                        start_record=next_index,
                    )
                    payloads = cold.poll()
                    if not payloads:
                        break  # racing a torn tail: wait for the wake
                    now_us = int(time.time() * 1e6)
                    height = self._index.height
                    for payload in payloads:
                        if (
                            self.fault_injector is not None
                            and self.fault_injector.tear_stream(
                                blocks_sent
                            )
                        ):
                            return
                        writer.write(stream.encode_block(
                            now_us, height, payload
                        ))
                        next_index += 1
                        blocks_sent += 1
                        self.blocks_streamed += 1
                        sent_this_poll += 1
                    continue
                writer.write(frame)
                next_index += 1
                blocks_sent += 1
                self.blocks_streamed += 1
                sent_this_poll += 1
            if sent_this_poll:
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "replication.blocks_streamed"
                    ).inc(sent_this_poll)
                await writer.drain()
            if self._server is None:
                return  # streamer stopped
            wake.clear()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    wake.wait(), timeout=self.config.poll_interval_s
                )
            # A follower that closes its end surfaces as a send failure
            # on the next write; also poll its read side so a clean
            # close is noticed even when no blocks are flowing.
            if reader.at_eof():
                raise ConnectionError("follower closed")

    def stats(self) -> dict:
        return {
            "connectionsTotal": self.connections_total,
            "connectionsActive": self.connections_active,
            "blocksStreamed": self.blocks_streamed,
            "snapshotsSent": self.snapshots_sent,
            "walHeight": self._index.height,
        }
