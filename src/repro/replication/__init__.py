"""repro.replication — fault-tolerant read replicas over WAL streaming.

The durability layer already writes every committed block to a CRC-framed
WAL; this package turns that log into a replication stream. The writer's
:class:`WalStreamer` tails its own WAL and ships each record over TCP to
any number of :class:`Replica` followers, which *re-execute* every block
and assert bit-identity of the resulting state digest against the
writer's — a diverged replica raises a typed
:class:`ReplicaDivergenceError` and resyncs itself from the writer's
newest snapshot rather than ever serving a wrong answer. Followers
reconnect through torn streams with jittered exponential backoff and
catch up from a snapshot when too far behind; a :class:`ReadProxy`
round-robins reads across healthy replicas (probed via the ``health``
RPC) and fails over to the writer so reads never stop.

``python -m repro.replication.smoke`` is the chaos drill: SIGKILL a
follower mid-stream under write load, restart it, and require digest
bit-identical reconvergence while the proxy answers every read.
"""

from .config import BackoffPolicy, ReplicationConfig
from .errors import (
    ReplicaDivergenceError,
    ReplicationError,
    StreamProtocolError,
)
from .proxy import ReadProxy
from .replica import Replica
from .streamer import WalStreamer

__all__ = [
    "BackoffPolicy",
    "ReadProxy",
    "Replica",
    "ReplicaDivergenceError",
    "ReplicationConfig",
    "ReplicationError",
    "StreamProtocolError",
    "WalStreamer",
]
