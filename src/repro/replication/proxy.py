"""The read proxy: one endpoint, many replicas, reads never stop.

A :class:`ReadProxy` listens on its own JSON-RPC port and routes:

* ``repro_getBalance`` / ``repro_getReceipt`` — round-robin across
  *healthy* replicas; a replica that fails or times out is ejected on
  the spot and the request retries on the next backend, falling back to
  the writer so a read is answered as long as *anything* is alive.
* ``repro_subscribe`` (newHeads) — a dedicated upstream subscription
  per downstream subscriber; when its replica dies, the pump fails
  over to another backend and re-subscribes, deduplicating heads by
  height across the switch.
* ``repro_sendTransaction`` — always forwarded to the writer (replicas
  are read-only by construction).

Health is actively probed: every ``health_interval_s`` the proxy calls
the ``repro_health`` RPC on every backend. A replica is healthy when it
answers in time and its height is within ``max_lag_blocks`` of the
writer's; ejected replicas rejoin automatically on their next good
probe — no operator in the loop.
"""

from __future__ import annotations

import asyncio
import contextlib

from ..obs import get_registry
from ..serve import protocol
from ..serve.errors import INTERNAL_ERROR, INVALID_PARAMS, RpcError
from ..serve.loadgen import RpcClient, RpcClientError
from .config import ReplicationConfig

#: Read methods that are safe to serve from any healthy replica.
#: Proofs round-robin too: any replica at the same height serves the
#: same state root, so a proof verifies no matter who cut it.
_READ_METHODS = (
    "repro_getBalance",
    "repro_getReceipt",
    "repro_getProof",
    "repro_getStorageProof",
    "repro_getBlock",
)


class _Backend:
    """One upstream server (a replica, or the writer)."""

    def __init__(self, host: str, port: int, is_writer: bool = False):
        self.host = host
        self.port = port
        self.is_writer = is_writer
        self.client: RpcClient | None = None
        self.healthy = is_writer  # replicas must prove themselves first
        self.height = 0
        self.last_error = ""

    @property
    def name(self) -> str:
        role = "writer" if self.is_writer else "replica"
        return f"{role}@{self.host}:{self.port}"

    async def call(self, method: str, params, timeout: float):
        if self.client is None or self.client._pump.done():
            self.client = await asyncio.wait_for(
                RpcClient.connect(self.host, self.port), timeout=timeout
            )
        return await asyncio.wait_for(
            self.client.call(method, params), timeout=timeout
        )

    async def fail(self, reason: str) -> None:
        self.healthy = False
        self.last_error = reason
        if self.client is not None:
            client, self.client = self.client, None
            with contextlib.suppress(Exception):
                await client.close()


class ReadProxy:
    """Round-robin read router over a writer and N replicas."""

    def __init__(
        self,
        writer_addr: tuple[str, int],
        replica_addrs: list[tuple[str, int]],
        config: ReplicationConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config or ReplicationConfig()
        self.host = host
        self.port = port
        self.writer = _Backend(*writer_addr, is_writer=True)
        self.replicas = [_Backend(h, p) for h, p in replica_addrs]
        self._server: asyncio.base_events.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._sub_tasks: set[asyncio.Task] = set()
        self._rr = 0
        self._next_subscription = 1
        self._stopping = False
        # -- counters ----------------------------------------------------
        self.reads_proxied = 0
        self.writer_fallback_reads = 0
        self.writes_forwarded = 0
        self.failovers = 0
        self.ejects = 0
        self.health_probes = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        # Probe once before accepting traffic so the first reads already
        # know which replicas are alive.
        await self._probe_all()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop(), name="proxy-health"
        )

    async def stop(self) -> None:
        self._stopping = True
        for task in (self._health_task, *self._sub_tasks):
            if task is not None:
                task.cancel()
        for task in (self._health_task, *list(self._sub_tasks)):
            if task is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        self._health_task = None
        self._sub_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for backend in (self.writer, *self.replicas):
            await backend.fail("proxy stopped")

    # -- health ------------------------------------------------------------
    async def _health_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.config.health_interval_s)
            await self._probe_all()

    async def _probe_all(self) -> None:
        await asyncio.gather(
            *(self._probe(b) for b in (self.writer, *self.replicas))
        )

    async def _probe(self, backend: _Backend) -> None:
        self.health_probes += 1
        try:
            health = await backend.call(
                "repro_health", None, self.config.backend_timeout_s
            )
            backend.height = int(health.get("height", 0))
        except (
            RpcClientError,
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
        ) as exc:
            if backend.healthy:
                self.ejects += 1
                self._count("replication.proxy_ejects")
            await backend.fail(repr(exc))
            return
        was_healthy = backend.healthy
        if backend.is_writer:
            backend.healthy = True
        else:
            lag = max(0, self.writer.height - backend.height)
            backend.healthy = lag <= self.config.max_lag_blocks
            if was_healthy and not backend.healthy:
                self.ejects += 1
                self._count("replication.proxy_ejects")

    def _count(self, name: str, n: int = 1) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(name).inc(n)

    # -- connection handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in tasks:
                task.cancel()
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_line(self, line, writer, lock) -> None:
        request_id = None
        try:
            obj = protocol.decode_frame(line)
            request_id = obj.get("id")
            result = await self._dispatch(obj, writer, lock)
            reply = protocol.response(request_id, result)
        except RpcError as err:
            reply = protocol.error_response(request_id, err)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            reply = protocol.error_response(
                request_id, RpcError(INTERNAL_ERROR, repr(exc))
            )
        async with lock:
            writer.write(protocol.encode_frame(reply))
            with contextlib.suppress(ConnectionError):
                await writer.drain()

    # -- routing -------------------------------------------------------------
    async def _dispatch(self, obj: dict, writer, lock) -> object:
        method = obj.get("method")
        params = obj.get("params") or {}
        if method in _READ_METHODS:
            return await self._read(method, params)
        if method == "repro_sendTransaction":
            return await self._forward_write(params)
        if method == "repro_subscribe":
            return self._subscribe(params, writer, lock)
        if method == "repro_stats":
            return self.stats()
        if method == "repro_health":
            return self.health()
        raise RpcError(
            INVALID_PARAMS, f"proxy does not route {method!r}"
        )

    def _read_order(self) -> list[_Backend]:
        healthy = [b for b in self.replicas if b.healthy]
        if healthy:
            pivot = self._rr % len(healthy)
            self._rr += 1
            healthy = healthy[pivot:] + healthy[:pivot]
        # The writer is always the last resort: reads never stop while
        # anything is alive.
        return [*healthy, self.writer]

    async def _read(self, method: str, params) -> object:
        for backend in self._read_order():
            try:
                result = await backend.call(
                    method, params, self.config.backend_timeout_s
                )
            except RpcClientError as err:
                # A typed RPC refusal is a real answer from a live
                # backend (bad params etc.) — surface it, don't fail
                # over past it.
                raise RpcError(err.code, str(err), err.data) from None
            except (ConnectionError, OSError, asyncio.TimeoutError):
                if backend.healthy and not backend.is_writer:
                    self.ejects += 1
                    self._count("replication.proxy_ejects")
                await backend.fail("read failed")
                self.failovers += 1
                self._count("replication.proxy_failovers")
                continue
            self.reads_proxied += 1
            if backend.is_writer:
                self.writer_fallback_reads += 1
            self._count("replication.proxy_reads")
            return result
        raise RpcError(INTERNAL_ERROR, "no backend answered the read")

    async def _forward_write(self, params) -> object:
        try:
            result = await self.writer.call(
                "repro_sendTransaction", params, None
            )
        except RpcClientError as err:
            raise RpcError(err.code, str(err), err.data) from None
        except (ConnectionError, OSError) as exc:
            raise RpcError(
                INTERNAL_ERROR, f"writer unreachable: {exc!r}"
            ) from None
        self.writes_forwarded += 1
        return result

    # -- subscriptions ---------------------------------------------------------
    def _subscribe(self, params: dict, writer, lock) -> dict:
        topic = params.get("topic", "newHeads")
        if topic != "newHeads":
            raise RpcError(INVALID_PARAMS, f"unknown topic {topic!r}")
        sub_id = self._next_subscription
        self._next_subscription += 1
        task = asyncio.ensure_future(
            self._run_subscription(writer, lock, sub_id)
        )
        self._sub_tasks.add(task)
        task.add_done_callback(self._sub_tasks.discard)
        return {"subscription": sub_id}

    async def _run_subscription(self, down_writer, lock, sub_id) -> None:
        """Pump upstream newHeads to one downstream subscriber.

        Each subscription owns its own upstream connection, so a dying
        replica only forces *this* pump to fail over; heads are deduped
        by height across the switch.
        """
        last_height = 0
        while not self._stopping and not down_writer.is_closing():
            backend = self._read_order()[0]
            client = None
            try:
                client = await RpcClient.connect(
                    backend.host, backend.port
                )
                await client.call(
                    "repro_subscribe", {"topic": "newHeads"}
                )
                while not down_writer.is_closing():
                    try:
                        note = await client.next_notification(
                            timeout=0.5
                        )
                    except asyncio.TimeoutError:
                        if client._pump.done():
                            raise ConnectionError("upstream closed")
                        continue
                    head = (note.get("params") or {}).get("result") or {}
                    height = int(head.get("height", 0))
                    if height <= last_height:
                        continue  # replayed across a failover
                    last_height = height
                    frame = protocol.encode_frame(
                        protocol.notification(
                            "repro_subscription",
                            {
                                "topic": "newHeads",
                                "subscription": sub_id,
                                "result": head,
                            },
                        )
                    )
                    async with lock:
                        down_writer.write(frame)
                        with contextlib.suppress(ConnectionError):
                            await down_writer.drain()
            except asyncio.CancelledError:
                raise
            except Exception:
                self.failovers += 1
                self._count("replication.proxy_failovers")
                await asyncio.sleep(self.config.health_interval_s)
            finally:
                if client is not None:
                    with contextlib.suppress(Exception):
                        await client.close()

    # -- introspection -----------------------------------------------------
    def health(self) -> dict:
        return {
            "role": "proxy",
            "writerHeight": self.writer.height,
            "backends": [
                {
                    "name": b.name,
                    "healthy": b.healthy,
                    "height": b.height,
                    "lastError": b.last_error,
                }
                for b in (self.writer, *self.replicas)
            ],
        }

    def stats(self) -> dict:
        return {
            "role": "proxy",
            "readsProxied": self.reads_proxied,
            "writerFallbackReads": self.writer_fallback_reads,
            "writesForwarded": self.writes_forwarded,
            "failovers": self.failovers,
            "ejects": self.ejects,
            "healthProbes": self.health_probes,
            "healthyReplicas": sum(
                1 for b in self.replicas if b.healthy
            ),
        }
