"""The replication wire protocol: CRC-framed RLP messages over TCP.

Framing reuses the WAL's own record discipline — a ``>II`` header of
(payload length, CRC32) followed by the payload — so a byte flipped in
flight is caught exactly like a byte flipped on disk, and a connection
cut mid-message is indistinguishable from EOF (both mean "reconnect").

Message payloads are RLP lists tagged with a type byte:

* ``HELLO``    (replica → writer): ``[type, height, digest, need_snapshot,
  state_root?]`` — "I have applied blocks through *height* and my state
  digest is *digest*; start me from there (or send a snapshot if I
  asked, or if you cannot vouch for my digest)". Merkleizing replicas
  append their applied trie root; the writer cross-checks it against
  its WAL stamps exactly like the digest.
* ``SNAPSHOT`` (writer → replica): ``[type, snapshot_payload,
  recent_hashes]`` — the exact payload of a snapshot file
  (``RLP([height, digest, state])``) plus the hashes of up to the 256
  blocks ending at the snapshot height, so a replica that never saw
  those blocks can still answer BLOCKHASH for them; the replica
  replaces its world wholesale.
* ``BLOCK``    (writer → replica): ``[type, sent_at_us, writer_height,
  wal_payload]`` — one WAL record (``RLP([block, post_state_digest])``)
  plus the writer's wall-clock send time and chain height at send,
  which is what replication lag (seconds and blocks) is measured
  against on a shared clock.
"""

from __future__ import annotations

import asyncio
import zlib

from ..chain import rlp
from ..storage.wal import RECORD_HEADER, frame_record
from .errors import StreamProtocolError

MSG_HELLO = 1
MSG_SNAPSHOT = 2
MSG_BLOCK = 3

#: Bound on one stream message (a full state snapshot rides in one).
MAX_MESSAGE_BYTES = 1 << 30


def encode_hello(
    height: int,
    digest: bytes,
    need_snapshot: bool,
    state_root: bytes = b"",
) -> bytes:
    """HELLO claim. A Merkleizing replica appends its applied state
    root as a 5th field; legacy replicas keep the 4-field form."""
    fields = [
        rlp.encode_int(MSG_HELLO),
        rlp.encode_int(height),
        digest,
        rlp.encode_int(1 if need_snapshot else 0),
    ]
    if state_root:
        fields.append(state_root)
    return frame_record(rlp.encode(fields))


def encode_snapshot(
    snapshot_payload: bytes,
    recent_hashes: list[tuple[int, bytes]] | None = None,
) -> bytes:
    return frame_record(rlp.encode([
        rlp.encode_int(MSG_SNAPSHOT),
        snapshot_payload,
        [
            [rlp.encode_int(height), block_hash]
            for height, block_hash in (recent_hashes or [])
        ],
    ]))


def encode_block(
    sent_at_us: int, writer_height: int, wal_payload: bytes
) -> bytes:
    return frame_record(rlp.encode([
        rlp.encode_int(MSG_BLOCK),
        rlp.encode_int(sent_at_us),
        rlp.encode_int(writer_height),
        wal_payload,
    ]))


def decode_message(payload: bytes) -> tuple[int, tuple]:
    """Decode one unframed message payload into (type, fields)."""
    try:
        fields = rlp.as_list(rlp.decode(payload), "stream message")
        if not fields:
            raise rlp.RLPDecodingError("empty stream message")
        msg_type = rlp.decode_int(rlp.as_bytes(fields[0], "message type"))
        if msg_type == MSG_HELLO:
            if len(fields) not in (4, 5):
                raise rlp.RLPDecodingError(
                    f"hello must be a 4- or 5-item list, "
                    f"got {len(fields)}"
                )
            state_root = b""
            if len(fields) == 5:
                state_root = rlp.as_bytes(fields[4], "hello state root")
                if state_root and len(state_root) != 32:
                    raise rlp.RLPDecodingError(
                        "hello state root must be 32 bytes"
                    )
            return MSG_HELLO, (
                rlp.decode_int(rlp.as_bytes(fields[1], "hello height")),
                rlp.as_bytes(fields[2], "hello digest"),
                bool(rlp.decode_int(
                    rlp.as_bytes(fields[3], "hello need_snapshot")
                )),
                state_root,
            )
        if msg_type == MSG_SNAPSHOT:
            wanted = rlp.as_list(fields, "snapshot", 3)
            recent: list[tuple[int, bytes]] = []
            for pair in rlp.as_list(wanted[2], "snapshot hashes"):
                entry = rlp.as_list(pair, "snapshot hash entry", 2)
                recent.append((
                    rlp.decode_int(rlp.as_bytes(entry[0], "hash height")),
                    rlp.as_bytes(entry[1], "block hash"),
                ))
            return MSG_SNAPSHOT, (
                rlp.as_bytes(wanted[1], "snapshot payload"),
                recent,
            )
        if msg_type == MSG_BLOCK:
            wanted = rlp.as_list(fields, "block", 4)
            return MSG_BLOCK, (
                rlp.decode_int(rlp.as_bytes(wanted[1], "block sent_at")),
                rlp.decode_int(
                    rlp.as_bytes(wanted[2], "block writer height")
                ),
                rlp.as_bytes(wanted[3], "block payload"),
            )
    except rlp.RLPDecodingError as exc:
        raise StreamProtocolError(f"undecodable message: {exc}") from None
    raise StreamProtocolError(f"unknown message type {msg_type}")


async def read_message(
    reader: asyncio.StreamReader, timeout: float | None = None
) -> tuple[int, tuple]:
    """Read one framed message; raises on EOF, CRC damage, or timeout.

    ``ConnectionError`` on a cleanly closed stream (torn stream to the
    caller), :class:`StreamProtocolError` on framing/CRC damage,
    ``asyncio.TimeoutError`` when *timeout* elapses with no bytes.
    """

    async def _read() -> tuple[int, tuple]:
        header = await reader.readexactly(RECORD_HEADER.size)
        length, crc = RECORD_HEADER.unpack(header)
        if length > MAX_MESSAGE_BYTES:
            raise StreamProtocolError(
                f"implausible message length {length}"
            )
        payload = await reader.readexactly(length)
        if zlib.crc32(payload) != crc:
            raise StreamProtocolError("message CRC mismatch")
        return decode_message(payload)

    try:
        if timeout is None:
            return await _read()
        return await asyncio.wait_for(_read(), timeout=timeout)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        raise ConnectionError("stream closed") from None
