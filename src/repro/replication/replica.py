"""The follower: connect, verify every block, resync on divergence.

A :class:`Replica` owns the client end of the replication stream. Its
loop is a small, explicit state machine:

    CONNECT → HELLO → (SNAPSHOT?) → APPLY* → torn? → BACKOFF → CONNECT

* **CONNECT/HELLO** — dial the writer's stream port and claim the
  applied height and state digest. The writer decides incremental
  stream vs snapshot resync from that claim.
* **APPLY** — for each BLOCK message: re-execute the block's
  transactions against local state (on a worker thread, under the
  builder's state lock so concurrent reads stay consistent) and assert
  the resulting state digest is bit-identical to the one the writer
  stamped into its WAL. A match commits and feeds the serve layer
  (getReceipt, newHeads subscribers); a mismatch raises
  :class:`~repro.replication.errors.ReplicaDivergenceError` *after
  rolling the block back* — diverged state is never committed and never
  served.
* **BACKOFF** — any torn stream (connection error, timeout, protocol
  damage) reconnects with jittered exponential backoff. A divergence
  also reconnects, but with ``need_snapshot`` set: the only acceptable
  continuation of a diverged universe is a wholesale replacement from
  the writer's newest snapshot.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import time
from collections import deque

from ..chain import rlp
from ..chain.block import BLOCKHASH_WINDOW
from ..evm.context import BlockContext
from ..evm.decoded import warm_code, warm_state_codes
from ..evm.interpreter import EVM
from ..obs import get_registry
from ..storage import codec
from ..trie import (
    StatelessValidator,
    StateRootMismatchError,
    StateTrie,
    WitnessError,
)
from . import stream
from .config import ReplicationConfig
from .errors import ReplicaDivergenceError, StreamProtocolError

#: Bounded retention of per-block lag samples (bench reads these).
_LAG_SAMPLE_CAP = 4096


class Replica:
    """A verifying follower bound to one read-only serve stack."""

    def __init__(
        self,
        node,
        builder,
        writer_host: str,
        writer_stream_port: int,
        config: ReplicationConfig | None = None,
        fault_injector=None,
        mode: str = "execute",
    ) -> None:
        if mode not in ("execute", "witness"):
            raise ValueError(f"unknown replica mode {mode!r}")
        self.node = node
        self.builder = builder
        self.writer_host = writer_host
        self.writer_stream_port = writer_stream_port
        self.config = config or ReplicationConfig()
        self.fault_injector = fault_injector
        #: ``execute`` re-runs every block against full local state (and,
        #: when Merkleizing, additionally asserts the sealed header
        #: root). ``witness`` validates statelessly: each block must
        #: arrive with a witness, is re-executed from it alone, and only
        #: the root chain is maintained — the full state is never
        #: updated, so witness replicas serve receipts and validation,
        #: not balance reads.
        self.mode = mode
        self._validator = StatelessValidator()
        #: Witness-mode chain anchors: the last verified root, and the
        #: writer's echoed digest stamp (our HELLO claim — we cannot
        #: recompute a flat digest without full state).
        self._last_root: bytes | None = None
        self._last_digest: bytes | None = None
        self._rng = random.Random(self.config.seed)
        #: Applied chain height. Decoupled from ``len(node.chain)``
        #: because a snapshot resync replaces state without replaying
        #: the blocks below the anchor.
        self.height = len(node.chain)
        #: height -> block hash for the BLOCKHASH window, including the
        #: pre-snapshot prefix a resync ships alongside the state.
        self._hashes: dict[int, bytes] = {
            block.header.height: block.hash() for block in node.chain
        }
        self._need_snapshot = False
        self._stopping = False
        self._task: asyncio.Task | None = None
        self.connected = False
        # -- counters (mirrored into repro.obs when enabled) -------------
        self.blocks_applied = 0
        self.reconnects = 0
        self.resyncs = 0
        self.divergences = 0
        self.last_lag_s = 0.0
        self.last_lag_blocks = 0
        self.lag_samples_s: deque[float] = deque(maxlen=_LAG_SAMPLE_CAP)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self.run(), name="replica-stream"
            )

    async def stop(self) -> None:
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    # -- the reconnect loop ------------------------------------------------
    async def run(self) -> None:
        attempt = 0
        while not self._stopping:
            try:
                if (
                    self.fault_injector is not None
                    and self.fault_injector.partitioned()
                ):
                    raise ConnectionError("injected partition")
                await self._session()
                attempt = 0
            except ReplicaDivergenceError:
                self.divergences += 1
                self._need_snapshot = True
                attempt = 0  # resync is urgent: restart at base delay
                registry = get_registry()
                if registry.enabled:
                    registry.counter("replication.divergences").inc()
            except (
                ConnectionError,
                StreamProtocolError,
                asyncio.TimeoutError,
                OSError,
            ):
                pass
            if self._stopping:
                return
            delay = self.config.backoff.delay(attempt, self._rng)
            attempt += 1
            self.reconnects += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("replication.reconnects").inc()
            await asyncio.sleep(delay)

    async def _session(self) -> None:
        reader, writer = await asyncio.open_connection(
            self.writer_host, self.writer_stream_port
        )
        self.connected = True
        try:
            with self.builder.state_lock:
                if self.mode == "witness":
                    # A witness replica's state is frozen at its last
                    # anchor; its claim is the writer's own echoed stamp
                    # plus the root chain it has verified itself.
                    digest = self._last_digest or codec.state_digest_bytes(
                        self.node.state
                    )
                    root = self._last_root or b""
                else:
                    digest = codec.state_digest_bytes(self.node.state)
                    root = (
                        self.node.state_root
                        if getattr(self.node, "trie", None) is not None
                        else b""
                    )
            writer.write(stream.encode_hello(
                self.height, digest, self._need_snapshot, root
            ))
            await writer.drain()
            loop = asyncio.get_running_loop()
            while not self._stopping:
                msg_type, fields = await stream.read_message(
                    reader, timeout=self.config.stream_read_timeout_s
                )
                if msg_type == stream.MSG_SNAPSHOT:
                    payload, recent = fields
                    await loop.run_in_executor(
                        None, self._apply_snapshot, payload, recent
                    )
                elif msg_type == stream.MSG_BLOCK:
                    await self._handle_block(loop, fields)
                else:
                    raise StreamProtocolError(
                        "unexpected HELLO from writer"
                    )
        finally:
            self.connected = False
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_block(self, loop, fields) -> None:
        sent_at_us, writer_height, wal_payload = fields
        if self.fault_injector is not None:
            stall = self.fault_injector.stall_follower()
            if stall > 0:
                await asyncio.sleep(stall)
        record = codec.decode_wal_record(wal_payload)
        block = record.block
        height = block.header.height
        if height <= self.height:
            return  # reconnect overlap: already applied
        if height != self.height + 1:
            raise StreamProtocolError(
                f"stream gap: got block {height}, applied {self.height}"
            )
        if self.mode == "witness":
            apply = self._apply_block_witness
        else:
            apply = self._apply_block
        receipts = await loop.run_in_executor(None, apply, record)
        # Feed the serve layer on the event loop (subscription writes
        # and receipt indexing are loop-thread affairs, exactly as the
        # writer's builder resolves there).
        self.builder._resolve(block, receipts)
        self.last_lag_s = max(0.0, time.time() - sent_at_us / 1e6)
        self.last_lag_blocks = max(0, writer_height - height)
        self.lag_samples_s.append(self.last_lag_s)
        registry = get_registry()
        if registry.enabled:
            registry.counter("replication.blocks_applied").inc()
            registry.gauge("replication.lag_blocks").set(
                self.last_lag_blocks
            )
            registry.histogram("replication.lag_ms").observe(
                self.last_lag_s * 1000.0
            )

    # -- apply paths (worker thread, under the state lock) -----------------
    def _context_for(self, block) -> BlockContext:
        header = block.header
        height = header.height
        hashes = self._hashes

        def blockhash_fn(query_height: int) -> int:
            distance = height - query_height
            if 1 <= distance <= BLOCKHASH_WINDOW:
                value = hashes.get(query_height)
                if value is not None:
                    return int.from_bytes(value, "big")
            return 0

        return BlockContext(
            height=height,
            timestamp=header.timestamp,
            coinbase=header.coinbase,
            difficulty=header.difficulty,
            gas_limit=header.gas_limit,
            blockhash_fn=blockhash_fn,
        )

    def _apply_block(self, record):
        block, expected = record.block, record.digest
        with self.builder.state_lock:
            state = self.node.state
            height = block.header.height
            if self.fault_injector is not None:
                self.fault_injector.corrupt_replica_state(state, height)
            token = state.snapshot()
            evm = EVM(state, block=self._context_for(block))
            try:
                receipts = [
                    evm.execute_transaction(tx)
                    for tx in block.transactions
                ]
            except Exception:
                state.revert(token)
                state.clear_journal()
                raise
            actual = codec.state_digest_bytes(state)
            if actual != expected:
                # Roll the block back *before* raising: between now and
                # the snapshot resync, reads keep seeing the last good
                # state — diverged state is never served.
                state.revert(token)
                state.clear_journal()
                raise ReplicaDivergenceError(height, expected, actual)
            if getattr(self.node, "trie", None) is not None:
                try:
                    # Compare-or-stamp: a header the writer sealed must
                    # re-seal bit-identically from our replayed state.
                    self.node.seal_state_root(block)
                except StateRootMismatchError:
                    state.revert(token)
                    state.clear_journal()
                    # The trie now disagrees with the reverted state,
                    # but divergence forces a snapshot resync which
                    # re-attaches it from scratch.
                    raise ReplicaDivergenceError(
                        height,
                        block.header.state_root or b"",
                        self.node.state_root,
                    ) from None
            state.clear_journal()
            self.node.chain.append(block)
            self.node.receipts[block.hash()] = receipts
            # Keep the replica's decoded-program cache warm for code the
            # block deployed (mirrors Node.commit_block on the primary).
            accounts = state._accounts
            for receipt in receipts:
                if receipt.success and receipt.contract_address is not None:
                    account = accounts.get(receipt.contract_address)
                    if account is not None and account.code:
                        warm_code(account.code)
            self._hashes[height] = block.hash()
            self._hashes.pop(height - BLOCKHASH_WINDOW, None)
            self.height = height
            self.blocks_applied += 1
            return receipts

    def _apply_block_witness(self, record):
        """Stateless apply: re-execute from the block witness alone.

        The full world state is never touched — only the verified root
        chain (and the writer's echoed digest stamp, for HELLO claims)
        advances. Any witness damage or root mismatch is a divergence:
        the only continuation is a snapshot resync.
        """
        block = record.block
        height = block.header.height
        if not record.witness or not block.header.state_root:
            raise StreamProtocolError(
                f"block {height} carries no witness/state root; a "
                "witness-mode replica needs a writer running with "
                "--emit-witness"
            )
        try:
            result = self._validator.validate(
                block,
                record.witness,
                context=self._context_for(block),
                pre_root=self._last_root,
            )
        except (WitnessError, StateRootMismatchError) as exc:
            raise ReplicaDivergenceError(
                height, block.header.state_root, b""
            ) from exc
        with self.builder.state_lock:
            self._last_root = result.post_root
            self._last_digest = record.digest
            self.node.chain.append(block)
            self.node.receipts[block.hash()] = result.receipts
            self._hashes[height] = block.hash()
            self._hashes.pop(height - BLOCKHASH_WINDOW, None)
            self.height = height
            self.blocks_applied += 1
        return result.receipts

    def _apply_snapshot(
        self, payload: bytes, recent: list[tuple[int, bytes]]
    ) -> None:
        try:
            fields = rlp.as_list(rlp.decode(payload), "snapshot")
            if len(fields) not in (3, 4):
                raise rlp.RLPDecodingError(
                    f"snapshot must be a 3- or 4-item list, "
                    f"got {len(fields)}"
                )
            height = rlp.decode_int(fields[0])
            digest = rlp.as_bytes(fields[1], "snapshot digest")
            state = codec.state_from_rlp(
                rlp.as_bytes(fields[2], "snapshot state")
            )
            root = b""
            if len(fields) == 4:
                root = rlp.as_bytes(fields[3], "snapshot state root")
                if root and len(root) != 32:
                    raise rlp.RLPDecodingError(
                        "snapshot state root must be 32 bytes"
                    )
        except rlp.RLPDecodingError as exc:
            raise StreamProtocolError(
                f"undecodable snapshot: {exc}"
            ) from None
        if codec.state_digest_bytes(state) != digest:
            raise StreamProtocolError(
                "snapshot state does not match its stamped digest"
            )
        if root and StateTrie.rebuild_root(state) != root:
            raise StreamProtocolError(
                "snapshot state does not match its stamped state root"
            )
        with self.builder.state_lock:
            self.node.state = state
            self.node.mempool.state = state
            # A snapshot may carry contracts this replica never executed;
            # pre-decode them so post-resync blocks replay at full speed.
            warm_state_codes(state)
            self.node.chain = []
            self.node.receipts = {}
            self.builder.committed.clear()
            self.builder._history.clear()
            self._hashes = dict(recent)
            self.height = height
            if getattr(self.node, "trie", None) is not None:
                self.node.attach_trie()
            # Re-anchor the witness-mode chain at the snapshot.
            self._last_digest = digest
            self._last_root = root or (
                self.node.state_root
                if getattr(self.node, "trie", None) is not None
                else None
            )
        self._need_snapshot = False
        self.resyncs += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("replication.resyncs").inc()

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        return {
            "height": self.height,
            "connected": self.connected,
            "blocksApplied": self.blocks_applied,
            "reconnects": self.reconnects,
            "resyncs": self.resyncs,
            "divergences": self.divergences,
            "lagSeconds": round(self.last_lag_s, 6),
            "lagBlocks": self.last_lag_blocks,
        }
