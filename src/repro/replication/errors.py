"""Typed replication-tier errors.

Divergence is the error that must never be silent: a replica that
re-executed a block and produced a different state digest than the
writer stamped into the WAL is serving a different universe. It gets a
type of its own, it is counted, and the replica's reaction is mandatory
(drop the diverged state, resync from the writer's snapshot) — never
"log and keep serving".
"""

from __future__ import annotations


class ReplicationError(Exception):
    """Base class for replication-tier failures."""


class StreamProtocolError(ReplicationError):
    """A peer sent a frame that does not decode as a stream message."""


class ReplicaDivergenceError(ReplicationError):
    """A replica's re-executed state digest differs from the writer's.

    Carries enough to debug the divergence offline; the replica's
    required response is a snapshot resync, never continued serving.
    """

    def __init__(self, height: int, expected: bytes, actual: bytes):
        super().__init__(
            f"replica diverged at block {height}: re-executed digest "
            f"{actual.hex()[:16]}… != writer's {expected.hex()[:16]}…"
        )
        self.height = height
        self.expected = expected
        self.actual = actual
