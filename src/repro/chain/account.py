"""Accounts: externally-owned and contract accounts (paper Table 4 "State")."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto import keccak256

EMPTY_CODE_HASH = keccak256(b"")


@dataclass
class Account:
    """One world-state account.

    Matches the paper's main-memory *State* record: address, nonce,
    balance, code length/hash/body and the contract storage.
    """

    nonce: int = 0
    balance: int = 0
    code: bytes = b""
    storage: dict[int, int] = field(default_factory=dict)

    @property
    def code_hash(self) -> bytes:
        """Hash of the contract code (EMPTY_CODE_HASH for EOAs)."""
        return keccak256(self.code) if self.code else EMPTY_CODE_HASH

    @property
    def is_contract(self) -> bool:
        """True when the account carries code."""
        return bool(self.code)

    @property
    def is_empty(self) -> bool:
        """True for the canonical empty account (no nonce/balance/code)."""
        return self.nonce == 0 and self.balance == 0 and not self.code

    def copy(self) -> "Account":
        """Deep copy (storage included)."""
        return Account(self.nonce, self.balance, self.code, dict(self.storage))
