"""A blockchain node implementing the three-stage model (paper Fig. 4).

* **Dissemination** — transactions arrive continuously into the mempool.
* **Consensus** — the elected node packages transactions (plus the
  dependency DAG and execution results) into a block.
* **Execution** — every node executes the block's transactions against its
  local state and verifies the results.

The :class:`StageClock` models the timing structure the hotspot optimizer
exploits: execution occupies only a slice of each block interval, leaving
an idle budget for offline optimization (paper section 2.2.4).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..evm.context import BlockContext
from ..evm.decoded import warm_code
from ..evm.interpreter import EVM
from ..obs import get_registry
from ..trie import StateRootMismatchError, StateTrie, build_witness
from .block import BLOCKHASH_WINDOW, Block, BlockHeader
from .dag import build_dag_edges, discover_access_sets, transitive_reduction
from .mempool import DuplicateTransactionError, Mempool
from .receipt import Receipt, receipts_root
from .state import WorldState
from .transaction import Transaction


@dataclass
class BlockVerification:
    """Outcome of :meth:`Node.verify_block` (truthiness = verified)."""

    ok: bool
    claimed_root: bytes
    actual_root: bytes

    def __bool__(self) -> bool:
        return self.ok

    @property
    def detail(self) -> str:
        if self.ok:
            return "receipts root matches"
        return (
            f"receipts root mismatch: claimed "
            f"{self.claimed_root.hex()[:16]}…, computed "
            f"{self.actual_root.hex()[:16]}…"
        )


@dataclass
class StageClock:
    """Timing of the three-stage model within one block interval.

    Units are abstract "time" (the paper uses seconds; Ethereum's interval
    is ~13s with execution well under a second of it).
    """

    block_interval: float = 13.0
    execution_fraction: float = 0.05  # share of the interval spent executing

    @property
    def execution_budget(self) -> float:
        """Time available to the execution stage per block."""
        return self.block_interval * self.execution_fraction

    @property
    def idle_budget(self) -> float:
        """Idle slice per block, available for hotspot optimization."""
        return self.block_interval * (1.0 - self.execution_fraction)


class Node:
    """A validating node: mempool + state + chain."""

    def __init__(
        self,
        state: WorldState | None = None,
        clock: StageClock | None = None,
        coinbase: int = 0xC0FFEE,
        mempool_capacity: int | None = None,
        per_sender_cap: int | None = None,
        store=None,
        merkleize: bool = True,
        emit_witness: bool = False,
    ) -> None:
        self.state = state or WorldState()
        self.mempool = Mempool(
            capacity=mempool_capacity,
            state=self.state,
            per_sender_cap=per_sender_cap,
        )
        self.clock = clock or StageClock()
        self.coinbase = coinbase
        self.chain: list[Block] = []
        self.receipts: dict[bytes, list[Receipt]] = {}
        #: Optional :class:`repro.storage.ChainStore`. When set,
        #: :meth:`commit_block` appends the block to the WAL *before*
        #: mutating in-memory structures, so anything the node claims to
        #: have committed is at least as durable as the fsync policy.
        self.store = store
        #: Authenticated state (repro.trie). With ``merkleize`` on (the
        #: default; the flat digest remains alongside during the
        #: deprecation window) every committed header is sealed with the
        #: incremental trie's root; ``emit_witness`` additionally builds
        #: a stateless-validation witness per block.
        self.emit_witness = emit_witness
        self.trie: StateTrie | None = None
        #: height -> witness blob, bounded to the BLOCKHASH window.
        self.witnesses: dict[int, bytes] = {}
        if merkleize:
            self.attach_trie()
        elif emit_witness:
            raise ValueError("emit_witness requires merkleize")

    def attach_trie(self) -> bytes:
        """(Re)build the state trie over the current state and enable
        first-touch capture; returns the current root. Call again after
        wholesale state replacement (snapshot resync, recovery attach)."""
        self.trie = StateTrie()
        root = self.trie.attach(self.state)
        if self.emit_witness:
            self.state._track_reads = True
        return root

    @property
    def state_root(self) -> bytes:
        """Current trie root (empty bytes when not Merkleizing)."""
        return self.trie.root() if self.trie is not None else b""

    # -- dissemination stage -------------------------------------------------
    def hear(self, tx: Transaction, at: int | None = None) -> bool:
        """Receive a transaction from the P2P network.

        Returns True when newly pooled, False for a duplicate (gossip
        re-announcements are normal, not an error); raises
        :class:`~repro.chain.mempool.AdmissionError` for transactions
        failing intrinsic admission checks. RPC front-ends that want the
        typed :class:`~repro.chain.mempool.DuplicateTransactionError`
        call :meth:`Mempool.add` directly.
        """
        try:
            return self.mempool.add(tx, heard_at=at)
        except DuplicateTransactionError:
            return False

    # -- consensus stage -------------------------------------------------------
    def block_context(self, height: int | None = None) -> BlockContext:
        """Environment for executing the next block."""
        if height is None:
            height = len(self.chain) + 1
        parent_hashes = [b.hash() for b in reversed(self.chain)]

        def blockhash_fn(query_height: int, _hashes=parent_hashes,
                         _height=height) -> int:
            distance = _height - query_height
            if 1 <= distance <= BLOCKHASH_WINDOW and distance <= len(_hashes):
                return int.from_bytes(_hashes[distance - 1], "big")
            return 0

        return BlockContext(
            height=height,
            timestamp=1_600_000_000 + height * int(self.clock.block_interval),
            coinbase=self.coinbase,
            difficulty=1,
            gas_limit=30_000_000,
            blockhash_fn=blockhash_fn,
        )

    def propose_block(
        self,
        max_transactions: int = 200,
        gas_target: int | None = None,
        transactions: list[Transaction] | None = None,
        packing: str = "fifo",
        packing_policy=None,
        executor: str | None = None,
    ) -> Block:
        """Package mempool transactions into a block with its DAG.

        The block is cut when either *max_transactions* or the
        cumulative *gas_target* is reached (oldest first) — the same
        policy the serve loop's continuous block builder uses. Passing
        *transactions* skips the mempool take (the serve loop cuts on
        the event loop and proposes on a worker thread).

        ``packing="conflict_aware"`` cuts via
        :meth:`~repro.chain.mempool.Mempool.take_packed` instead:
        mutually conflicting transactions are spread across blocks (and
        grouped into parallel lanes within one), with *packing_policy*
        (:class:`~repro.chain.mempool.PackingPolicy`) controlling lane
        depth and the anti-starvation aging bound. The cut rides on
        ``Block.packed_lanes`` / ``packed_parallelism``.

        The dependency DAG is discovered by speculative execution on a
        state copy and stored (transitively reduced) in the block, as the
        paper's consensus-stage nodes do; the pre-execution artifacts
        ride along on ``Block.artifacts`` for execute-once replay.

        ``executor="occ"`` skips discovery entirely: the block carries no
        DAG and no artifacts, and the speculative engine
        (:meth:`execute_block_occ`) finds conflicts at run time — the
        path for dynamic-storage-key workloads whose access sets cannot
        be declared or discovered ahead of reordering.
        """
        if packing not in ("fifo", "conflict_aware"):
            raise ValueError(f"unknown packing {packing!r}")
        packed = None
        if transactions is not None:
            txs = transactions
        elif packing == "conflict_aware":
            packed = self.mempool.take_packed(
                max_transactions,
                gas_target=gas_target,
                policy=packing_policy,
            )
            txs = packed.transactions
        else:
            txs = self.mempool.take(max_transactions, gas_target=gas_target)
        height = len(self.chain) + 1
        context = self.block_context(height)
        if executor == "occ":
            artifacts, edges = None, []
        else:
            artifacts = discover_access_sets(txs, self.state, context)
            edges = transitive_reduction(
                len(txs), build_dag_edges(txs, artifacts)
            )
        parent_hash = self.chain[-1].hash() if self.chain else b"\x00" * 32
        header = BlockHeader(
            height=height,
            timestamp=context.timestamp,
            coinbase=self.coinbase,
            difficulty=1,
            gas_limit=context.gas_limit,
            parent_hash=parent_hash,
        )
        recent = [b.hash() for b in reversed(self.chain)][:BLOCKHASH_WINDOW]
        block = Block(
            header=header,
            transactions=txs,
            dag_edges=edges,
            recent_hashes=recent,
            artifacts=artifacts,
        )
        if packed is not None:
            block.packed_lanes = packed.lanes
            block.packed_parallelism = packed.parallelism
            registry = get_registry()
            if registry.enabled and packed.transactions:
                registry.histogram("block.packed_parallelism").observe(
                    packed.parallelism
                )
        return block

    # -- execution stage ----------------------------------------------------------
    def execute_block(self, block: Block) -> list[Receipt]:
        """Sequentially execute a block's transactions and append it.

        This is the paper's baseline behaviour (Fig. 1). Parallel
        executors (the MTPU simulator) produce the same receipts and final
        state; tests compare against this path via
        :func:`repro.chain.receipt.receipts_root`.
        """
        context = self.block_context(block.header.height)
        evm = EVM(self.state, block=context)
        receipts = [evm.execute_transaction(tx) for tx in block.transactions]
        self.commit_block(block, receipts)
        return receipts

    def execute_block_occ(
        self,
        block: Block,
        num_workers: int = 4,
        backend: str = "process",
        max_retries: int = 8,
    ):
        """Execute a block speculatively (Block-STM OCC) and commit it.

        No declared access sets, DAG, or pre-execution artifacts are
        needed — conflicts are discovered by read-set validation at
        commit time, and receipts/state stay bit-identical to
        :meth:`execute_block` (the engine guarantees it, falling back to
        sequential execution past the retry budget). The engine's
        *actual* access sets and abort counts feed the mempool's
        :class:`~repro.chain.bloom.AccessEstimator`, so conflict-aware
        packing of future blocks improves from observed behaviour.

        Node contexts carry a live BLOCKHASH service, which cannot cross
        the process boundary — the engine degrades to its ``serial``
        backend here. Returns the engine's
        :class:`~repro.parallel.speculate.SpeculativeBlockResult`.
        """
        from ..parallel.speculate import SpeculativeBlockExecutor

        context = self.block_context(block.header.height)
        with SpeculativeBlockExecutor(
            self.state,
            block=context,
            num_workers=num_workers,
            backend=backend,
            max_retries=max_retries,
        ) as executor:
            result = executor.execute_block(block.transactions)
        self.mempool.observe_outcomes(result.artifacts, result.abort_counts)
        self.commit_block(block, result.receipts)
        return result

    def commit_block(self, block: Block, receipts: list[Receipt]) -> None:
        """Append an executed block: chain, receipts, mempool, journal.

        The caller has already applied the block's state effects (via
        :meth:`execute_block`, the MTPU, or the parallel backend); this
        is the one shared commit path. With a store attached the WAL
        append (and, per policy, the fsync) happens first — a crash
        after this method returns costs nothing that was committed.

        When Merkleizing, the witness (which needs the *pre-block* trie
        shape and the undrained touch capture) is built first, then the
        header is sealed with the post-block root, so the WAL record and
        the chain both carry the sealed header.
        """
        witness = None
        if self.trie is not None and self.emit_witness:
            witness = build_witness(self.trie, self.state, block)
        self.seal_state_root(block)
        self.state.clear_journal()
        if self.store is not None:
            self.store.append_block(block, self.state, witness=witness)
        self.chain.append(block)
        if witness is not None:
            height = block.header.height
            self.witnesses[height] = witness
            self.witnesses.pop(height - BLOCKHASH_WINDOW, None)
        self.receipts[block.hash()] = receipts
        # Warm the decoded-program cache for code deployed in this block
        # so the very next call to a fresh contract skips the AOT decode.
        # Raw account reads: no access tracking, no journal.
        accounts = self.state._accounts
        for receipt in receipts:
            if receipt.success and receipt.contract_address is not None:
                account = accounts.get(receipt.contract_address)
                if account is not None and account.code:
                    warm_code(account.code)
        self.mempool.remove(block.transactions)
        # Committed access sets feed the pack-time estimator (when one
        # is attached) for future undeclared calls of the same shape.
        self.mempool.observe_block(block.artifacts)

    def seal_state_root(self, block: Block) -> None:
        """Fold the block's state effects into the trie and seal (or
        check) the header's ``state_root``.

        A header that already carries a root — replication, recovery
        replay — is *checked*: disagreement raises
        :class:`~repro.trie.StateRootMismatchError` and nothing is
        stamped. An empty header is stamped in place (the ``Block`` is
        mutable; its frozen header is replaced), so the block's hash
        from here on commits to the post-state root.
        """
        if self.trie is None:
            return
        root = self.trie.update(self.state)
        claimed = block.header.state_root
        if claimed:
            if claimed != root:
                raise StateRootMismatchError(
                    f"block {block.header.height} claims state root "
                    f"{claimed.hex()[:16]}…, local trie computed "
                    f"{root.hex()[:16]}…"
                )
        else:
            block.header = dataclasses.replace(
                block.header, state_root=root
            )

    def verify_block(
        self, block: Block, claimed_root: bytes
    ) -> BlockVerification:
        """Re-execute against a snapshot and compare the receipts digest.

        On a match the block commits exactly as :meth:`execute_block`
        would. On a mismatch *nothing* changes: world state is rolled
        back to the snapshot, the block is not appended, no receipts are
        stored and the mempool keeps its transactions — a bogus claimed
        root must not poison the node. The returned
        :class:`BlockVerification` is truthy iff verified and carries
        the mismatch detail otherwise.
        """
        context = self.block_context(block.header.height)
        token = self.state.snapshot()
        evm = EVM(self.state, block=context)
        receipts = [evm.execute_transaction(tx) for tx in block.transactions]
        actual = receipts_root(receipts)
        if actual != claimed_root:
            self.state.revert(token)
            self.state.clear_journal()
            return BlockVerification(
                ok=False, claimed_root=claimed_root, actual_root=actual
            )
        self.commit_block(block, receipts)
        return BlockVerification(
            ok=True, claimed_root=claimed_root, actual_root=actual
        )
