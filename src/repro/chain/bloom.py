"""Per-transaction access-set bloom filters for conflict-aware packing.

FAFO (PAPERS.md, arxiv 2507.10757) reorders transactions *at block
formation time* using compact per-transaction access summaries: two bit
masks (read side / write side) over hashed ``(address, slot)`` keys. Two
transactions *may* conflict when write∩write, write∩read, or read∩write
of their masks is non-empty — the same predicate as
:meth:`repro.chain.state.AccessSet.conflicts_with`, evaluated with two
integer ANDs. Bloom filters have **no false negatives**: if the masks
are disjoint the underlying key sets are disjoint, so packing
non-conflicting lanes from blooms can never miss a real conflict (it can
only be conservative about phantom ones).

Reordering user transactions is only sound when the summary is a
*superset* of what the transaction will actually touch. Three sources,
in decreasing precision:

* **declared** — the submitter attached explicit read/write key sets in
  ``Transaction.tags`` (``"reads"`` / ``"writes"``); trusted as exact.
* **pure transfer** — no calldata, recipient has no code at admission
  time: the access set is exactly {sender/recipient balances, recipient
  code probe}; derived and exact.
* **estimated** — last-seen access keys for the same ``(to, selector)``
  from committed execution artifacts (the hotspot-profile shape). A
  heuristic: marked ``exact=False`` and only used for reordering when
  the operator opts in (``trust_estimates``); otherwise such
  transactions get the :meth:`AccessBloom.opaque` filter, which
  conflicts with everything and therefore keeps them in FIFO order
  relative to *all* neighbours — safe degradation, never divergence.

Every bloom additionally records the sender's implicit balance + nonce
writes (fee payment, nonce bump), so two transactions from one sender
always conflict and keep their nonce order under any packing.
"""

from __future__ import annotations

from hashlib import blake2b

from ..obs import get_registry
from .state import BALANCE_KEY, CODE_KEY, NONCE_KEY

#: Default filter geometry. Conflict tests are *mask intersections*, so
#: the false-positive rate is ~(k·n₁)(k·n₂)/m per side pair — unlike a
#: membership bloom, fewer hashes and a sparse mask win: one hash over
#: 8192 bits holds the pairwise rate near 0.4% for a typical transfer
#: (4 reads / 3 writes) and ~1% for 10-key sets (measured in
#: ``tests/chain/test_access_bloom.py``) at 1 KiB per side in the
#: spill file.
DEFAULT_BITS = 8192
DEFAULT_HASHES = 1


def _key_hash(key: tuple) -> int:
    """Stable 128-bit hash of an ``(address, slot)`` key.

    ``repr`` keeps integer slots and the string sentinels (``"balance"``,
    ``"code"``, ``"nonce"``) in disjoint namespaces.
    """
    address, slot = key
    blob = f"{address}:{slot!r}".encode()
    return int.from_bytes(blake2b(blob, digest_size=16).digest(), "big")


class AccessBloom:
    """Read/write bit masks over hashed access keys.

    ``exact=True`` promises the masks cover a superset of the keys the
    transaction will actually touch — the precondition for reordering.
    """

    __slots__ = ("bits", "hashes", "read_mask", "write_mask", "exact")

    def __init__(
        self,
        bits: int = DEFAULT_BITS,
        hashes: int = DEFAULT_HASHES,
        exact: bool = True,
    ) -> None:
        if bits <= 0 or bits % 8:
            raise ValueError("bloom bits must be a positive multiple of 8")
        if hashes <= 0:
            raise ValueError("bloom hashes must be positive")
        self.bits = bits
        self.hashes = hashes
        self.read_mask = 0
        self.write_mask = 0
        self.exact = exact

    # -- construction ------------------------------------------------------
    def _mask_for(self, key: tuple) -> int:
        digest = _key_hash(key)
        h1, h2 = digest >> 64, digest & ((1 << 64) - 1)
        mask = 0
        for i in range(self.hashes):
            mask |= 1 << ((h1 + i * h2) % self.bits)
        return mask

    def add_read(self, key: tuple) -> None:
        self.read_mask |= self._mask_for(key)

    def add_write(self, key: tuple) -> None:
        self.write_mask |= self._mask_for(key)

    @classmethod
    def from_keys(
        cls,
        reads,
        writes,
        bits: int = DEFAULT_BITS,
        hashes: int = DEFAULT_HASHES,
        exact: bool = True,
    ) -> "AccessBloom":
        bloom = cls(bits=bits, hashes=hashes, exact=exact)
        for key in reads:
            bloom.add_read(tuple(key))
        for key in writes:
            bloom.add_write(tuple(key))
        return bloom

    @classmethod
    def opaque(
        cls, bits: int = DEFAULT_BITS, hashes: int = DEFAULT_HASHES
    ) -> "AccessBloom":
        """A filter that conflicts with everything (unknown access set).

        Opaque transactions are never reordered relative to anything —
        the packer treats them exactly as FIFO does.
        """
        bloom = cls(bits=bits, hashes=hashes, exact=False)
        bloom.read_mask = bloom.write_mask = (1 << bits) - 1
        return bloom

    @property
    def is_opaque(self) -> bool:
        full = (1 << self.bits) - 1
        return self.read_mask == full and self.write_mask == full

    # -- queries -----------------------------------------------------------
    def may_read(self, key: tuple) -> bool:
        mask = self._mask_for(key)
        return (self.read_mask & mask) == mask

    def may_write(self, key: tuple) -> bool:
        mask = self._mask_for(key)
        return (self.write_mask & mask) == mask

    def may_conflict(self, other: "AccessBloom") -> bool:
        """True unless the two access sets are *provably* disjoint.

        Mirrors :meth:`AccessSet.conflicts_with`: W∩W, W∩R, or R∩W.
        A ``False`` here is definitive (no false negatives); ``True``
        may be a bloom collision.
        """
        return bool(
            (self.write_mask & other.write_mask)
            | (self.write_mask & other.read_mask)
            | (self.read_mask & other.write_mask)
        )

    def merge(self, other: "AccessBloom") -> None:
        """Fold *other* into this filter (lane / deferred aggregates)."""
        if other.bits != self.bits:
            raise ValueError("cannot merge blooms of different widths")
        self.read_mask |= other.read_mask
        self.write_mask |= other.write_mask
        self.exact = self.exact and other.exact

    # -- serialization (mempool spill file) --------------------------------
    def to_bytes(self) -> bytes:
        """Stable encoding: version, hashes, exact flag, then the masks."""
        width = self.bits // 8
        return bytes([1, self.hashes, 1 if self.exact else 0]) + (
            self.read_mask.to_bytes(width, "big")
            + self.write_mask.to_bytes(width, "big")
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "AccessBloom":
        if len(blob) < 3 or blob[0] != 1:
            raise ValueError("unknown access-bloom encoding")
        body = blob[3:]
        if len(body) % 2:
            raise ValueError("truncated access-bloom masks")
        width = len(body) // 2
        bloom = cls(bits=width * 8, hashes=blob[1], exact=bool(blob[2]))
        bloom.read_mask = int.from_bytes(body[:width], "big")
        bloom.write_mask = int.from_bytes(body[width:], "big")
        return bloom

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AccessBloom)
            and self.bits == other.bits
            and self.hashes == other.hashes
            and self.exact == other.exact
            and self.read_mask == other.read_mask
            and self.write_mask == other.write_mask
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "opaque" if self.is_opaque else (
            "exact" if self.exact else "estimate"
        )
        return f"AccessBloom({kind}, bits={self.bits})"


class AccessEstimator:
    """Last-seen access keys per ``(to, selector)`` call shape.

    Fed from committed execution artifacts (the same signal the hotspot
    profile aggregates); :meth:`estimate` unions every key the shape was
    ever seen touching, which tracks stable access patterns (token
    transfers between varying parties still differ in *values*, so the
    union keeps growing toward a superset for hot shapes) but stays a
    heuristic — callers must treat the result as ``exact=False``.
    """

    def __init__(self, max_shapes: int = 4096, decay: int = 4) -> None:
        self.max_shapes = max_shapes
        #: Consecutive mispredictions (missed keys or OCC aborts) per
        #: shape before the stale union is *replaced* by the latest
        #: actual access set instead of widened further.
        self.decay = decay
        self._shapes: dict[tuple, tuple[set, set]] = {}
        #: shape -> current misprediction streak.
        self._stale: dict[tuple, int] = {}

    def __len__(self) -> int:
        return len(self._shapes)

    @staticmethod
    def _shape(tx) -> tuple | None:
        if tx.is_create or not tx.data:
            return None
        return (tx.to, bytes(tx.selector))

    def observe(self, artifact) -> None:
        """Record one committed artifact's access set."""
        shape = self._shape(artifact.tx)
        if shape is None:
            return
        entry = self._shapes.get(shape)
        if entry is None:
            if len(self._shapes) >= self.max_shapes:
                evicted = next(iter(self._shapes))
                self._shapes.pop(evicted)
                self._stale.pop(evicted, None)
            entry = (set(), set())
            self._shapes[shape] = entry
        entry[0].update(artifact.reads)
        entry[1].update(artifact.writes)

    def observe_actual(self, artifact, aborts: int = 0) -> None:
        """Record an *OCC outcome*: actual access set plus conflict cost.

        Where :meth:`observe` only ever widens a shape's union (safe for
        reorder-soundness, but unions drift stale as contracts change
        behaviour), this closes the loop from the speculative engine: a
        shape whose estimate keeps mispredicting — the actual execution
        touched keys the estimate missed, or the transaction kept
        aborting under OCC — is *replaced* by the latest actual access
        set after :attr:`decay` consecutive mispredictions. Each
        misprediction increments the ``packing.estimate_corrections``
        counter so the drift is visible in ``repro obs-report``.
        """
        shape = self._shape(artifact.tx)
        if shape is None:
            return
        entry = self._shapes.get(shape)
        if entry is None:
            self.observe(artifact)
            return
        reads, writes = set(artifact.reads), set(artifact.writes)
        missed = not (reads <= entry[0] and writes <= entry[1])
        if missed or aborts:
            self._stale[shape] = self._stale.get(shape, 0) + 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("packing.estimate_corrections").inc()
            if self._stale[shape] >= self.decay:
                # The accumulated union is stale: start over from what
                # the engine actually observed.
                self._shapes[shape] = (reads, writes)
                self._stale[shape] = 0
                return
        else:
            self._stale.pop(shape, None)
        entry[0].update(reads)
        entry[1].update(writes)

    def estimate(self, tx) -> tuple[set, set] | None:
        """(reads, writes) last seen for this call shape, or None."""
        shape = self._shape(tx)
        if shape is None:
            return None
        entry = self._shapes.get(shape)
        if entry is None:
            return None
        return entry


def _declared_sets(tx) -> tuple[list, list] | None:
    reads = tx.tags.get("reads")
    writes = tx.tags.get("writes")
    if reads is None and writes is None:
        return None
    return (list(reads or ()), list(writes or ()))


def bloom_for_transaction(
    tx,
    state=None,
    estimator: AccessEstimator | None = None,
    trust_estimates: bool = False,
    bits: int = DEFAULT_BITS,
    hashes: int = DEFAULT_HASHES,
) -> AccessBloom:
    """Build the admission-time bloom for *tx* (see module docstring).

    Callers hold whatever lock guards *state*: the code probe for the
    pure-transfer case reads shared world state.
    """
    declared = _declared_sets(tx)
    if declared is not None:
        reads, writes = declared
        bloom = AccessBloom.from_keys(reads, writes, bits, hashes)
        bloom.add_read((tx.sender, BALANCE_KEY))
        bloom.add_write((tx.sender, BALANCE_KEY))
        bloom.add_read((tx.sender, NONCE_KEY))
        bloom.add_write((tx.sender, NONCE_KEY))
        return bloom
    if not tx.is_create and not tx.data and state is not None:
        with state.untracked():
            code = state.get_code(tx.to)
        if not code:
            # Pure value transfer to a code-free account: the access set
            # is closed-form (verified against discover_access_sets).
            return AccessBloom.from_keys(
                reads=[
                    (tx.sender, BALANCE_KEY),
                    (tx.sender, NONCE_KEY),
                    (tx.to, BALANCE_KEY),
                    (tx.to, CODE_KEY),
                ],
                writes=[
                    (tx.sender, BALANCE_KEY),
                    (tx.sender, NONCE_KEY),
                    (tx.to, BALANCE_KEY),
                ],
                bits=bits,
                hashes=hashes,
            )
    if trust_estimates and estimator is not None:
        estimate = estimator.estimate(tx)
        if estimate is not None:
            reads, writes = estimate
            bloom = AccessBloom.from_keys(
                reads, writes, bits, hashes, exact=False
            )
            bloom.add_read((tx.sender, BALANCE_KEY))
            bloom.add_write((tx.sender, BALANCE_KEY))
            bloom.add_read((tx.sender, NONCE_KEY))
            bloom.add_write((tx.sender, NONCE_KEY))
            return bloom
    return AccessBloom.opaque(bits=bits, hashes=hashes)
