"""Recursive Length Prefix (RLP) serialization.

The paper (section 2.1): "Transactions are network transported and
persisted by recursive length prefix (RLP)." This is a complete
implementation of the Ethereum RLP wire format over the item domain
``Item = bytes | list[Item]``.
"""

from __future__ import annotations

Item = bytes | list["Item"]

#: Maximum list nesting accepted by :func:`decode`. Well past anything the
#: chain's wire formats produce (≤ 4 levels), but bounded so hostile input
#: like ``b"\xc1" * 10**6`` raises a typed error instead of blowing the
#: interpreter's recursion limit.
MAX_DEPTH = 64


class RLPDecodingError(ValueError):
    """Raised for malformed RLP input."""


#: Alias — some call sites and docs use the shorter spelling.
RlpDecodeError = RLPDecodingError


def encode(item: Item) -> bytes:
    """Encode an item (bytes, or arbitrarily nested lists of bytes)."""
    if isinstance(item, (bytes, bytearray)):
        return _encode_bytes(bytes(item))
    if isinstance(item, list):
        payload = b"".join(encode(sub) for sub in item)
        return _length_prefix(len(payload), 0xC0) + payload
    raise TypeError(f"cannot RLP-encode {type(item).__name__}")


def decode(data: bytes) -> Item:
    """Decode a complete RLP blob; trailing bytes are an error."""
    item, consumed = _decode_at(data, 0)
    if consumed != len(data):
        raise RLPDecodingError(
            f"trailing bytes: consumed {consumed} of {len(data)}"
        )
    return item


def encode_int(value: int) -> bytes:
    """Encode a non-negative integer as minimal big-endian bytes."""
    if value < 0:
        raise ValueError("RLP integers must be non-negative")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def decode_int(data: bytes) -> int:
    """Decode minimal big-endian bytes back to an integer."""
    if not isinstance(data, (bytes, bytearray)):
        raise RLPDecodingError(
            f"integer field must be bytes, got {type(data).__name__}"
        )
    if data and data[0] == 0:
        raise RLPDecodingError("integer encoding has leading zero byte")
    return int.from_bytes(data, "big")


def as_bytes(item: Item, what: str = "item") -> bytes:
    """Require a decoded item to be a byte string (typed error otherwise)."""
    if not isinstance(item, (bytes, bytearray)):
        raise RLPDecodingError(f"{what} must be a byte string")
    return bytes(item)


def as_list(item: Item, what: str = "item",
            length: int | None = None) -> list:
    """Require a decoded item to be a list (of *length*, when given)."""
    if not isinstance(item, list):
        raise RLPDecodingError(f"{what} must be a list")
    if length is not None and len(item) != length:
        raise RLPDecodingError(
            f"{what} must be a {length}-item list, got {len(item)}"
        )
    return item


def _encode_bytes(data: bytes) -> bytes:
    if len(data) == 1 and data[0] < 0x80:
        return data
    return _length_prefix(len(data), 0x80) + data


def _length_prefix(length: int, offset: int) -> bytes:
    if length < 56:
        return bytes([offset + length])
    length_bytes = encode_int(length)
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def _decode_at(data: bytes, pos: int, depth: int = 0) -> tuple[Item, int]:
    if pos >= len(data):
        raise RLPDecodingError("unexpected end of input")
    prefix = data[pos]
    if prefix < 0x80:  # single byte literal
        return bytes([prefix]), pos + 1
    if prefix < 0xB8:  # short string
        length = prefix - 0x80
        chunk = _take(data, pos + 1, length)
        if length == 1 and chunk[0] < 0x80:
            raise RLPDecodingError("non-canonical single byte encoding")
        return chunk, pos + 1 + length
    if prefix < 0xC0:  # long string
        len_of_len = prefix - 0xB7
        length = _read_length(data, pos + 1, len_of_len)
        start = pos + 1 + len_of_len
        return _take(data, start, length), start + length
    if depth >= MAX_DEPTH:
        raise RLPDecodingError(f"list nesting exceeds {MAX_DEPTH}")
    if prefix < 0xF8:  # short list
        length = prefix - 0xC0
        return _decode_list(data, pos + 1, length, depth)
    # long list
    len_of_len = prefix - 0xF7
    length = _read_length(data, pos + 1, len_of_len)
    return _decode_list(data, pos + 1 + len_of_len, length, depth)


def _decode_list(
    data: bytes, start: int, length: int, depth: int
) -> tuple[Item, int]:
    end = start + length
    if end > len(data):
        raise RLPDecodingError("list payload exceeds input")
    items: list[Item] = []
    pos = start
    while pos < end:
        item, pos = _decode_at(data, pos, depth + 1)
        if pos > end:
            raise RLPDecodingError("list item exceeds list payload")
        items.append(item)
    return items, end


def _read_length(data: bytes, pos: int, len_of_len: int) -> int:
    raw = _take(data, pos, len_of_len)
    if raw and raw[0] == 0:
        raise RLPDecodingError("length encoding has leading zero byte")
    length = int.from_bytes(raw, "big")
    if length < 56:
        raise RLPDecodingError("non-canonical long-form length")
    return length


def _take(data: bytes, pos: int, length: int) -> bytes:
    if pos + length > len(data):
        raise RLPDecodingError("payload exceeds input")
    return data[pos : pos + length]
