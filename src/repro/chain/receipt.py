"""Execution receipts and event logs.

Receipts are what the MTPU's Receipt Buffer holds (paper section 3.3.6)
and what other nodes verify during the execution stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import keccak256
from . import rlp


@dataclass(frozen=True)
class LogEntry:
    """One LOG0..LOG4 event emitted during execution."""

    address: int
    topics: tuple[int, ...]
    data: bytes

    def to_rlp_item(self) -> list:
        return [
            rlp.encode_int(self.address),
            [rlp.encode_int(topic) for topic in self.topics],
            self.data,
        ]


@dataclass(frozen=True)
class Receipt:
    """Outcome of one transaction execution."""

    tx_hash: bytes
    success: bool
    gas_used: int
    logs: tuple[LogEntry, ...] = ()
    output: bytes = b""
    contract_address: int | None = None
    error: str = ""

    def to_rlp(self) -> bytes:
        """Canonical encoding used for receipt hashing/verification."""
        return rlp.encode(
            [
                self.tx_hash,
                rlp.encode_int(1 if self.success else 0),
                rlp.encode_int(self.gas_used),
                [log.to_rlp_item() for log in self.logs],
                self.output,
            ]
        )

    def hash(self) -> bytes:
        return keccak256(self.to_rlp())


def receipts_root(receipts: list[Receipt]) -> bytes:
    """Order-sensitive digest over a block's receipts.

    Two nodes that executed a block through different schedules must agree
    on this digest — the integration tests use it to check serializability
    end to end.
    """
    return keccak256(b"".join(receipt.hash() for receipt in receipts))
