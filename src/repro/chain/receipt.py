"""Execution receipts and event logs.

Receipts are what the MTPU's Receipt Buffer holds (paper section 3.3.6)
and what other nodes verify during the execution stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import keccak256
from . import rlp


@dataclass(frozen=True)
class LogEntry:
    """One LOG0..LOG4 event emitted during execution."""

    address: int
    topics: tuple[int, ...]
    data: bytes

    def to_rlp_item(self) -> list:
        return [
            rlp.encode_int(self.address),
            [rlp.encode_int(topic) for topic in self.topics],
            self.data,
        ]

    @classmethod
    def from_rlp_item(cls, item) -> "LogEntry":
        fields = rlp.as_list(item, "log entry", 3)
        return cls(
            address=rlp.decode_int(fields[0]),
            topics=tuple(
                rlp.decode_int(topic)
                for topic in rlp.as_list(fields[1], "log topics")
            ),
            data=rlp.as_bytes(fields[2], "log data"),
        )


@dataclass(frozen=True)
class Receipt:
    """Outcome of one transaction execution."""

    tx_hash: bytes
    success: bool
    gas_used: int
    logs: tuple[LogEntry, ...] = ()
    output: bytes = b""
    contract_address: int | None = None
    error: str = ""

    def to_rlp(self) -> bytes:
        """Canonical encoding used for receipt hashing/verification.

        Every field is on the wire (``contract_address`` as an empty or
        20-byte string, ``error`` as UTF-8), so the encoding round-trips
        through :meth:`from_rlp` — the property the storage layer's WAL
        format tests lean on.
        """
        return rlp.encode(
            [
                self.tx_hash,
                rlp.encode_int(1 if self.success else 0),
                rlp.encode_int(self.gas_used),
                [log.to_rlp_item() for log in self.logs],
                self.output,
                b"" if self.contract_address is None
                else self.contract_address.to_bytes(20, "big"),
                self.error.encode("utf-8"),
            ]
        )

    @classmethod
    def from_rlp(cls, blob: bytes) -> "Receipt":
        """Decode a receipt; malformed input raises RLPDecodingError."""
        fields = rlp.as_list(rlp.decode(blob), "receipt", 7)
        success = rlp.decode_int(fields[1])
        if success not in (0, 1):
            raise rlp.RLPDecodingError("receipt success must be 0 or 1")
        contract = rlp.as_bytes(fields[5], "receipt contract_address")
        if contract and len(contract) != 20:
            raise rlp.RLPDecodingError(
                "receipt contract_address must be empty or 20 bytes"
            )
        try:
            error = rlp.as_bytes(fields[6], "receipt error").decode("utf-8")
        except UnicodeDecodeError:
            raise rlp.RLPDecodingError(
                "receipt error is not valid UTF-8"
            ) from None
        return cls(
            tx_hash=rlp.as_bytes(fields[0], "receipt tx_hash"),
            success=bool(success),
            gas_used=rlp.decode_int(fields[2]),
            logs=tuple(
                LogEntry.from_rlp_item(item)
                for item in rlp.as_list(fields[3], "receipt logs")
            ),
            output=rlp.as_bytes(fields[4], "receipt output"),
            contract_address=(
                None if contract == b"" else int.from_bytes(contract, "big")
            ),
            error=error,
        )

    def hash(self) -> bytes:
        return keccak256(self.to_rlp())


def receipts_root(receipts: list[Receipt]) -> bytes:
    """Order-sensitive digest over a block's receipts.

    Two nodes that executed a block through different schedules must agree
    on this digest — the integration tests use it to check serializability
    end to end.
    """
    return keccak256(b"".join(receipt.hash() for receipt in receipts))
