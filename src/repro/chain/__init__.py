"""Blockchain substrate: state, transactions, blocks, and the three-stage
dissemination → consensus → execution node model (paper Fig. 4)."""

from .account import Account
from .state import AccessSet, WorldState
from .transaction import Transaction
from .receipt import LogEntry, Receipt
from .block import Block, BlockHeader
from .bloom import AccessBloom, AccessEstimator, bloom_for_transaction
from .mempool import (
    AdmissionError,
    DuplicateTransactionError,
    InsufficientFundsError,
    IntrinsicGasError,
    Mempool,
    PackedTake,
    PackingPolicy,
    SenderLimitError,
)


def __getattr__(name: str):
    # Node/StageClock are imported lazily: repro.chain.node depends on
    # repro.evm, which itself imports repro.chain.receipt — a cycle if
    # resolved eagerly at package-init time.
    if name in ("Node", "StageClock", "BlockVerification"):
        from . import node

        return getattr(node, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Account",
    "AccessBloom",
    "AccessEstimator",
    "AccessSet",
    "AdmissionError",
    "bloom_for_transaction",
    "WorldState",
    "Transaction",
    "LogEntry",
    "Receipt",
    "Block",
    "BlockHeader",
    "BlockVerification",
    "DuplicateTransactionError",
    "InsufficientFundsError",
    "IntrinsicGasError",
    "Mempool",
    "Node",
    "PackedTake",
    "PackingPolicy",
    "SenderLimitError",
    "StageClock",
]
