"""Transactions (paper Fig. 3(a) / Table 4).

A transaction is either a plain token transfer or a smart-contract
invocation (SCT). The *To* field selects the callee contract and the
*Input* data carries the 4-byte function identifier plus ABI-encoded
arguments — exactly the information the spatio-temporal scheduler uses for
pre-static analysis (paper section 2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto import keccak256
from . import rlp


@dataclass(frozen=True)
class Transaction:
    """An immutable transaction record."""

    sender: int  # From
    to: int | None  # None => contract creation
    nonce: int = 0
    gas_limit: int = 10_000_000
    gas_price: int = 1
    value: int = 0  # CallValue
    data: bytes = b""  # Input: selector + ABI args (or init code)
    # Metadata attached by workload generation (not part of the wire format):
    tags: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def is_create(self) -> bool:
        """True for contract-creation transactions."""
        return self.to is None

    @property
    def selector(self) -> bytes | None:
        """The function identifier (first 4 bytes of Input), if present."""
        if self.is_create or len(self.data) < 4:
            return None
        return self.data[:4]

    def to_rlp(self) -> bytes:
        """RLP wire encoding (paper: transactions are RLP transported)."""
        # Addresses are fixed 20-byte fields (as in Ethereum): this keeps
        # the zero address distinguishable from the empty `to` of a
        # contract-creation transaction.
        fields = [
            rlp.encode_int(self.nonce),
            rlp.encode_int(self.gas_price),
            rlp.encode_int(self.gas_limit),
            self.sender.to_bytes(20, "big"),
            b"" if self.to is None else self.to.to_bytes(20, "big"),
            rlp.encode_int(self.value),
            self.data,
        ]
        return rlp.encode(fields)

    @classmethod
    def from_rlp(cls, blob: bytes) -> "Transaction":
        """Decode a transaction from its RLP wire encoding.

        Malformed input — wrong shape, non-bytes fields, bad address
        widths — raises :class:`~repro.chain.rlp.RLPDecodingError`, never
        a raw ``IndexError``/``TypeError``.
        """
        item = rlp.as_list(rlp.decode(blob), "transaction", 7)
        nonce, gas_price, gas_limit, sender, to, value, data = item
        sender_bytes = rlp.as_bytes(sender, "transaction sender")
        if len(sender_bytes) != 20:
            raise rlp.RLPDecodingError("transaction sender must be 20 bytes")
        to_bytes = rlp.as_bytes(to, "transaction to")
        if to_bytes and len(to_bytes) != 20:
            raise rlp.RLPDecodingError(
                "transaction to must be empty or 20 bytes"
            )
        return cls(
            sender=int.from_bytes(sender_bytes, "big"),
            to=None if to_bytes == b"" else int.from_bytes(to_bytes, "big"),
            nonce=rlp.decode_int(nonce),
            gas_limit=rlp.decode_int(gas_limit),
            gas_price=rlp.decode_int(gas_price),
            value=rlp.decode_int(value),
            data=rlp.as_bytes(data, "transaction data"),
        )

    def hash(self) -> bytes:
        """Transaction hash over the wire encoding (memoized).

        Transactions are immutable, so the keccak over the RLP encoding
        is computed once and cached — it is consulted per call in the
        mempool, receipt ordering, artifact lookup and fault reports.
        """
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = keccak256(self.to_rlp())
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        dest = "CREATE" if self.to is None else f"{self.to:#x}"
        sel = self.selector.hex() if self.selector else "-"
        return f"<Tx {self.sender:#x}->{dest} sel={sel} value={self.value}>"
