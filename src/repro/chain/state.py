"""The world state: account store with journaling and access tracking.

Two capabilities the rest of the system leans on:

* **Journaling / snapshots** — transaction atomicity: a frame that runs out
  of gas or REVERTs rolls back exactly its own writes (paper section 3.3.6:
  "If an exception occurs, the modified state is discarded without
  affecting the original state").
* **Access tracking** — every storage/balance/code read and write is
  recorded into an :class:`AccessSet`. Read/write sets are how the
  consensus stage discovers the inter-transaction dependency DAG that the
  spatio-temporal scheduler consumes (paper section 2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .account import Account

# Journal entries are (undo_callable) thunks; a snapshot is an index into
# the journal list.
_Undo = Callable[[], None]

#: Sentinel slot used in access sets for balance/nonce/code-level accesses
#: (as opposed to a concrete storage slot).
BALANCE_KEY = "balance"
CODE_KEY = "code"


@dataclass
class AccessSet:
    """Read and write sets of one transaction execution.

    Keys are ``(address, slot)`` pairs where ``slot`` is either a storage
    slot number or one of the sentinels :data:`BALANCE_KEY` /
    :data:`CODE_KEY`.
    """

    reads: set[tuple[int, int | str]] = field(default_factory=set)
    writes: set[tuple[int, int | str]] = field(default_factory=set)

    def conflicts_with(self, other: "AccessSet") -> bool:
        """True when the two transactions cannot be reordered freely.

        Conflict = write/write, read/write or write/read overlap — the
        standard serializability condition used to build the paper's DAG.
        """
        if self.writes & other.writes:
            return True
        if self.writes & other.reads:
            return True
        if self.reads & other.writes:
            return True
        return False

    def merge(self, other: "AccessSet") -> None:
        """Fold another access set (e.g. a child call frame) into this one."""
        self.reads |= other.reads
        self.writes |= other.writes


class WorldState:
    """Mutable account store backing transaction execution."""

    def __init__(self) -> None:
        self._accounts: dict[int, Account] = {}
        self._journal: list[_Undo] = []
        self.access: AccessSet | None = None

    # -- account lifecycle -------------------------------------------------
    def account(self, address: int) -> Account:
        """Fetch (creating lazily) the account at *address*."""
        acct = self._accounts.get(address)
        if acct is None:
            acct = Account()
            self._accounts[address] = acct
            self._journal.append(lambda: self._accounts.pop(address, None))
        return acct

    def account_exists(self, address: int) -> bool:
        """True if the account exists and is non-empty."""
        acct = self._accounts.get(address)
        return acct is not None and not acct.is_empty

    def delete_account(self, address: int) -> None:
        """SELFDESTRUCT: remove the account entirely."""
        acct = self._accounts.pop(address, None)
        if acct is not None:
            self._journal.append(
                lambda: self._accounts.__setitem__(address, acct)
            )
        self._record_write(address, CODE_KEY)
        self._record_write(address, BALANCE_KEY)

    def addresses(self) -> list[int]:
        """All known account addresses (sorted, deterministic)."""
        return sorted(self._accounts)

    # -- balances ------------------------------------------------------------
    def get_balance(self, address: int) -> int:
        self._record_read(address, BALANCE_KEY)
        acct = self._accounts.get(address)
        return acct.balance if acct else 0

    def set_balance(self, address: int, value: int) -> None:
        acct = self.account(address)
        old = acct.balance
        if old != value:
            self._journal.append(lambda: setattr(acct, "balance", old))
            acct.balance = value
        self._record_write(address, BALANCE_KEY)

    def transfer(self, sender: int, recipient: int, value: int) -> None:
        """Move *value* tokens; raises ValueError on insufficient balance."""
        if value == 0:
            return
        if self.get_balance(sender) < value:
            raise ValueError(f"insufficient balance at {sender:#x}")
        self.set_balance(sender, self.get_balance(sender) - value)
        self.set_balance(recipient, self.get_balance(recipient) + value)

    # -- nonces ----------------------------------------------------------------
    def get_nonce(self, address: int) -> int:
        acct = self._accounts.get(address)
        return acct.nonce if acct else 0

    def increment_nonce(self, address: int) -> None:
        acct = self.account(address)
        old = acct.nonce
        self._journal.append(lambda: setattr(acct, "nonce", old))
        acct.nonce = old + 1

    # -- code -------------------------------------------------------------------
    def get_code(self, address: int) -> bytes:
        self._record_read(address, CODE_KEY)
        acct = self._accounts.get(address)
        return acct.code if acct else b""

    def set_code(self, address: int, code: bytes) -> None:
        acct = self.account(address)
        old = acct.code
        self._journal.append(lambda: setattr(acct, "code", old))
        acct.code = code
        self._record_write(address, CODE_KEY)

    # -- storage ------------------------------------------------------------------
    def get_storage(self, address: int, slot: int) -> int:
        self._record_read(address, slot)
        acct = self._accounts.get(address)
        if acct is None:
            return 0
        return acct.storage.get(slot, 0)

    def set_storage(self, address: int, slot: int, value: int) -> None:
        acct = self.account(address)
        old = acct.storage.get(slot)

        def undo() -> None:
            if old is None:
                acct.storage.pop(slot, None)
            else:
                acct.storage[slot] = old

        self._journal.append(undo)
        if value == 0:
            acct.storage.pop(slot, None)
        else:
            acct.storage[slot] = value
        self._record_write(address, slot)

    # -- journaling -------------------------------------------------------------
    def snapshot(self) -> int:
        """Mark a rollback point; returns an opaque token for revert()."""
        return len(self._journal)

    def revert(self, token: int) -> None:
        """Undo all writes made since snapshot *token*."""
        while len(self._journal) > token:
            self._journal.pop()()

    def commit(self, token: int) -> None:
        """Discard undo entries newer than *token* (writes become final
        relative to that snapshot; outer snapshots can still revert them)."""
        # Journal entries must be kept so outer frames can still revert;
        # commit is a no-op by design. It exists to make call-frame intent
        # explicit at the interpreter layer.
        del token

    def clear_journal(self) -> None:
        """Drop all undo history (call between transactions)."""
        self._journal.clear()

    # -- access tracking -----------------------------------------------------------
    def begin_access_tracking(self) -> AccessSet:
        """Start recording reads/writes into a fresh access set."""
        self.access = AccessSet()
        return self.access

    def end_access_tracking(self) -> AccessSet:
        """Stop recording and return the collected access set."""
        access, self.access = self.access, None
        if access is None:
            raise RuntimeError("access tracking was not active")
        return access

    def _record_read(self, address: int, slot: int | str) -> None:
        if self.access is not None:
            self.access.reads.add((address, slot))

    def _record_write(self, address: int, slot: int | str) -> None:
        if self.access is not None:
            self.access.writes.add((address, slot))

    # -- copying -------------------------------------------------------------------
    def copy(self) -> "WorldState":
        """Deep copy with a fresh (empty) journal."""
        clone = WorldState()
        clone._accounts = {
            addr: acct.copy() for addr, acct in self._accounts.items()
        }
        return clone

    def state_digest(self) -> tuple:
        """A hashable, order-independent summary of the full state.

        Used by tests to assert that two execution schedules produced the
        same final state (serializability).
        """
        return tuple(
            (
                addr,
                acct.nonce,
                acct.balance,
                acct.code,
                tuple(sorted(acct.storage.items())),
            )
            for addr, acct in sorted(self._accounts.items())
            if not acct.is_empty
        )
