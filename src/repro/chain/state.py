"""The world state: account store with journaling and access tracking.

Two capabilities the rest of the system leans on:

* **Journaling / snapshots** — transaction atomicity: a frame that runs out
  of gas or REVERTs rolls back exactly its own writes (paper section 3.3.6:
  "If an exception occurs, the modified state is discarded without
  affecting the original state").
* **Access tracking** — every storage/balance/code read and write is
  recorded into an :class:`AccessSet`. Read/write sets are how the
  consensus stage discovers the inter-transaction dependency DAG that the
  spatio-temporal scheduler consumes (paper section 2.2.2).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from .account import Account

#: Sentinel slot used in access sets for balance/nonce/code-level accesses
#: (as opposed to a concrete storage slot).
BALANCE_KEY = "balance"
CODE_KEY = "code"
#: Journal-only sentinel: nonces are deliberately outside access tracking
#: (they never create DAG edges) but write journals must still carry them.
NONCE_KEY = "nonce"

# Journal entries are tagged tuples describing one reversible mutation:
#   ("created", address)               — account lazily materialized
#   ("deleted", address, account)      — SELFDESTRUCT removed the account
#   ("balance", address, old_value)
#   ("nonce", address, old_value)
#   ("code", address, old_code)
#   ("storage", address, slot, old_value_or_None)
# A snapshot is an index into the journal list. The structured form (vs.
# opaque undo closures) is what lets the execute-once pipeline read the
# exact mutation set of a transaction back out of the journal.


@dataclass
class AccessSet:
    """Read and write sets of one transaction execution.

    Keys are ``(address, slot)`` pairs where ``slot`` is either a storage
    slot number or one of the sentinels :data:`BALANCE_KEY` /
    :data:`CODE_KEY`.
    """

    reads: set[tuple[int, int | str]] = field(default_factory=set)
    writes: set[tuple[int, int | str]] = field(default_factory=set)

    def conflicts_with(self, other: "AccessSet") -> bool:
        """True when the two transactions cannot be reordered freely.

        Conflict = write/write, read/write or write/read overlap — the
        standard serializability condition used to build the paper's DAG.
        """
        if self.writes & other.writes:
            return True
        if self.writes & other.reads:
            return True
        if self.reads & other.writes:
            return True
        return False

    def merge(self, other: "AccessSet") -> None:
        """Fold another access set (e.g. a child call frame) into this one."""
        self.reads |= other.reads
        self.writes |= other.writes


class _TriePre:
    """First-touch pre-image of one account within the current block.

    Captured lazily by ``WorldState._mark_dirty`` the first time a block
    touches an address, before the mutation lands. The captured fields
    are what the address looked like at block start; ``slots`` maps each
    first-touched storage slot to its old value (0 = absent), and
    ``storage_full`` snapshots the whole storage dict when an operation
    replaces it wholesale (SELFDESTRUCT, snapshot transplant) — after
    that, per-slot olds stop being recorded because block-start storage
    is already fully determined.

    The dict of these (``WorldState._trie_pre``) doubles as the Merkle
    trie's dirty set: :meth:`repro.trie.StateTrie.update` drains it.
    """

    __slots__ = ("exists", "nonce", "balance", "code", "slots",
                 "storage_full")

    def __init__(self, account: Account | None) -> None:
        if account is None:
            self.exists = False
            self.nonce = 0
            self.balance = 0
            self.code = b""
        else:
            self.exists = True
            self.nonce = account.nonce
            self.balance = account.balance
            self.code = account.code
        self.slots: dict[int, int] = {}
        self.storage_full: dict[int, int] | None = None


class WorldState:
    """Mutable account store backing transaction execution."""

    def __init__(self) -> None:
        self._accounts: dict[int, Account] = {}
        self._journal: list[tuple] = []
        self.access: AccessSet | None = None
        # Per-account digest leaf cache (maintained by
        # repro.storage.codec.state_digest_bytes): addresses whose leaf
        # must be recomputed, and the cached 32-byte leaf hashes. Every
        # mutator marks the touched address dirty so the commit-path
        # digest costs O(touched accounts), not O(total state).
        self._digest_dirty: set[int] = set()
        self._leaf_hashes: dict[int, bytes] = {}
        # First-touch pre-image capture for the authenticated state trie
        # (see _TriePre). Off by default; StateTrie.attach enables
        # mutation capture, witness-emitting nodes also enable read
        # capture so block witnesses cover every address execution saw.
        self._track_trie = False
        self._track_reads = False
        self._trie_pre: dict[int, _TriePre] = {}

    def _mark_dirty(self, address: int) -> _TriePre | None:
        """Dirty *address* for the digest and (when tracking) capture its
        first-touch pre-image. Call *before* mutating the account."""
        self._digest_dirty.add(address)
        if not self._track_trie:
            return None
        pre = self._trie_pre.get(address)
        if pre is None:
            pre = _TriePre(self._accounts.get(address))
            self._trie_pre[address] = pre
        return pre

    def _mark_read(self, address: int) -> None:
        if self._track_reads and address not in self._trie_pre:
            self._trie_pre[address] = _TriePre(self._accounts.get(address))

    # -- account lifecycle -------------------------------------------------
    def account(self, address: int) -> Account:
        """Fetch (creating lazily) the account at *address*."""
        acct = self._accounts.get(address)
        if acct is None:
            self._mark_dirty(address)
            acct = Account()
            self._accounts[address] = acct
            self._journal.append(("created", address))
        return acct

    def account_exists(self, address: int) -> bool:
        """True if the account exists and is non-empty."""
        self._mark_read(address)
        acct = self._accounts.get(address)
        return acct is not None and not acct.is_empty

    def has_account(self, address: int) -> bool:
        """True if the account record is materialized (even when empty)."""
        return address in self._accounts

    def delete_account(self, address: int) -> None:
        """SELFDESTRUCT: remove the account entirely."""
        pre = self._mark_dirty(address)
        acct = self._accounts.pop(address, None)
        if pre is not None and pre.storage_full is None:
            # Wholesale storage replacement: the per-slot diff log stops
            # here; block-start storage = this snapshot + earlier olds.
            pre.storage_full = dict(acct.storage) if acct else {}
        if acct is not None:
            self._journal.append(("deleted", address, acct))
        # The cached digest leaf must die with the account, or a
        # tombstoned address could resurface in a later digest.
        self._leaf_hashes.pop(address, None)
        self._record_write(address, CODE_KEY)
        self._record_write(address, BALANCE_KEY)

    def addresses(self) -> list[int]:
        """All known account addresses (sorted, deterministic)."""
        return sorted(self._accounts)

    # -- balances ------------------------------------------------------------
    def get_balance(self, address: int) -> int:
        self._record_read(address, BALANCE_KEY)
        self._mark_read(address)
        acct = self._accounts.get(address)
        return acct.balance if acct else 0

    def set_balance(self, address: int, value: int) -> None:
        acct = self.account(address)
        old = acct.balance
        if old != value:
            self._journal.append(("balance", address, old))
            self._mark_dirty(address)
            acct.balance = value
        self._record_write(address, BALANCE_KEY)

    def transfer(self, sender: int, recipient: int, value: int) -> None:
        """Move *value* tokens; raises ValueError on insufficient balance."""
        if value == 0:
            return
        if self.get_balance(sender) < value:
            raise ValueError(f"insufficient balance at {sender:#x}")
        self.set_balance(sender, self.get_balance(sender) - value)
        self.set_balance(recipient, self.get_balance(recipient) + value)

    # -- nonces ----------------------------------------------------------------
    def get_nonce(self, address: int) -> int:
        self._mark_read(address)
        acct = self._accounts.get(address)
        return acct.nonce if acct else 0

    def increment_nonce(self, address: int) -> None:
        acct = self.account(address)
        old = acct.nonce
        self._journal.append(("nonce", address, old))
        self._mark_dirty(address)
        acct.nonce = old + 1

    def set_nonce(self, address: int, value: int) -> None:
        """Directly set a nonce (journal replay; not an EVM operation)."""
        acct = self.account(address)
        old = acct.nonce
        if old != value:
            self._journal.append(("nonce", address, old))
            self._mark_dirty(address)
            acct.nonce = value

    # -- code -------------------------------------------------------------------
    def get_code(self, address: int) -> bytes:
        self._record_read(address, CODE_KEY)
        self._mark_read(address)
        acct = self._accounts.get(address)
        return acct.code if acct else b""

    def set_code(self, address: int, code: bytes) -> None:
        acct = self.account(address)
        old = acct.code
        self._journal.append(("code", address, old))
        self._mark_dirty(address)
        acct.code = code
        self._record_write(address, CODE_KEY)

    # -- storage ------------------------------------------------------------------
    def get_storage(self, address: int, slot: int) -> int:
        self._record_read(address, slot)
        self._mark_read(address)
        acct = self._accounts.get(address)
        if acct is None:
            return 0
        return acct.storage.get(slot, 0)

    def set_storage(self, address: int, slot: int, value: int) -> None:
        acct = self.account(address)
        old = acct.storage.get(slot)
        self._journal.append(("storage", address, slot, old))
        pre = self._mark_dirty(address)
        if pre is not None and pre.storage_full is None:
            pre.slots.setdefault(slot, old or 0)
        if value == 0:
            acct.storage.pop(slot, None)
        else:
            acct.storage[slot] = value
        self._record_write(address, slot)

    # -- journaling -------------------------------------------------------------
    def snapshot(self) -> int:
        """Mark a rollback point; returns an opaque token for revert()."""
        return len(self._journal)

    def revert(self, token: int) -> None:
        """Undo all writes made since snapshot *token*."""
        accounts = self._accounts
        while len(self._journal) > token:
            entry = self._journal.pop()
            kind = entry[0]
            self._digest_dirty.add(entry[1])
            if kind == "storage":
                _, address, slot, old = entry
                acct = accounts[address]
                if old is None:
                    acct.storage.pop(slot, None)
                else:
                    acct.storage[slot] = old
            elif kind == "balance":
                accounts[entry[1]].balance = entry[2]
            elif kind == "nonce":
                accounts[entry[1]].nonce = entry[2]
            elif kind == "code":
                accounts[entry[1]].code = entry[2]
            elif kind == "created":
                accounts.pop(entry[1], None)
            elif kind == "deleted":
                accounts[entry[1]] = entry[2]
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown journal entry {kind!r}")

    def changes_since(self, token: int) -> list[tuple]:
        """The journal entries recorded since snapshot *token*, in order.

        Each entry carries the *old* value (see the journal format above);
        callers combine it with the current state to derive a
        transaction's write journal without re-executing anything.
        """
        return self._journal[token:]

    def commit(self, token: int) -> None:
        """Discard undo entries newer than *token* (writes become final
        relative to that snapshot; outer snapshots can still revert them)."""
        # Journal entries must be kept so outer frames can still revert;
        # commit is a no-op by design. It exists to make call-frame intent
        # explicit at the interpreter layer.
        del token

    def clear_journal(self) -> None:
        """Drop all undo history (call between transactions)."""
        self._journal.clear()

    # -- access tracking -----------------------------------------------------------
    def begin_access_tracking(self) -> AccessSet:
        """Start recording reads/writes into a fresh access set."""
        self.access = AccessSet()
        return self.access

    def end_access_tracking(self) -> AccessSet:
        """Stop recording and return the collected access set."""
        access, self.access = self.access, None
        if access is None:
            raise RuntimeError("access tracking was not active")
        return access

    def _record_read(self, address: int, slot: int | str) -> None:
        if self.access is not None:
            self.access.reads.add((address, slot))

    def _record_write(self, address: int, slot: int | str) -> None:
        if self.access is not None:
            self.access.writes.add((address, slot))

    @contextmanager
    def untracked(self):
        """Suspend access tracking for bookkeeping reads/writes.

        Used wherever the infrastructure (journal replay, artifact
        freshness checks, timing-model code fetches) touches state without
        that touch being part of the transaction's semantic access set.
        """
        saved, self.access = self.access, None
        try:
            yield self
        finally:
            self.access = saved

    def load_account(self, address: int, account: Account) -> None:
        """Install an account record directly (snapshot restore).

        Bypasses the journal and access tracking — this is bulk state
        loading by the storage layer, not an EVM-visible mutation.
        """
        pre = self._mark_dirty(address)
        if pre is not None and pre.storage_full is None:
            old = self._accounts.get(address)
            pre.storage_full = dict(old.storage) if old else {}
        self._accounts[address] = account

    # -- copying -------------------------------------------------------------------
    def copy(self) -> "WorldState":
        """Deep copy with a fresh (empty) journal.

        Trie pre-image tracking does not carry over: a clone has no
        attached trie, and speculative copies (DAG discovery) must not
        feed captures back into the original's dirty set.
        """
        clone = WorldState()
        clone._accounts = {
            addr: acct.copy() for addr, acct in self._accounts.items()
        }
        clone._digest_dirty = set(self._digest_dirty)
        clone._leaf_hashes = dict(self._leaf_hashes)
        return clone

    def state_digest(self) -> tuple:
        """A hashable, order-independent summary of the full state.

        Used by tests to assert that two execution schedules produced the
        same final state (serializability).
        """
        return tuple(
            (
                addr,
                acct.nonce,
                acct.balance,
                acct.code,
                tuple(sorted(acct.storage.items())),
            )
            for addr, acct in sorted(self._accounts.items())
            if not acct.is_empty
        )
