"""Dependency-DAG discovery (paper section 2.2.2).

"Dependencies between transactions is represented by a directed acyclic
graph (DAG), which is discovered by nodes in the consensus stage through
concurrency control or software transaction memory."

We discover the DAG the way a consensus-stage node can: speculatively
execute the candidate batch once (on a throwaway copy of the state) while
recording read/write sets, then draw an edge i → j (i before j in block
order) whenever the two access sets conflict or the transactions share a
sender (nonce ordering).
"""

from __future__ import annotations

from .state import AccessSet, WorldState
from .transaction import Transaction


def discover_access_sets(
    transactions: list[Transaction],
    state: WorldState,
    block_context=None,
) -> list[AccessSet]:
    """Speculatively execute the batch, returning per-transaction access sets.

    The input *state* is not modified: execution happens on a deep copy.
    """
    from ..evm.interpreter import EVM  # local import avoids a cycle

    scratch = state.copy()
    evm = EVM(scratch, block=block_context)
    access_sets: list[AccessSet] = []
    for tx in transactions:
        scratch.begin_access_tracking()
        evm.execute_transaction(tx)
        access_sets.append(scratch.end_access_tracking())
        scratch.clear_journal()
    return access_sets


def build_dag_edges(
    transactions: list[Transaction],
    access_sets: list[AccessSet],
) -> list[tuple[int, int]]:
    """Conflict edges (i, j) with i < j in block order.

    Includes read/write-set conflicts and same-sender ordering. The result
    is acyclic by construction (edges always point forward in block order).
    """
    edges: list[tuple[int, int]] = []
    for j in range(len(transactions)):
        for i in range(j):
            if transactions[i].sender == transactions[j].sender:
                edges.append((i, j))
            elif access_sets[i].conflicts_with(access_sets[j]):
                edges.append((i, j))
    return edges


def transitive_reduction(
    count: int, edges: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Drop edges implied by transitivity (keeps schedules identical).

    The paper stores the DAG in the block; a reduced DAG is smaller on the
    wire and speeds up the scheduler's indegree bookkeeping.
    """
    successors: list[set[int]] = [set() for _ in range(count)]
    for i, j in edges:
        successors[i].add(j)

    # reach[i] = nodes reachable from i via >=2 hops
    reach_two: list[set[int]] = [set() for _ in range(count)]
    for i in range(count - 1, -1, -1):
        for j in successors[i]:
            reach_two[i] |= successors[j]
            reach_two[i] |= reach_two[j]

    return [(i, j) for i, j in edges if j not in reach_two[i]]


def to_networkx(count: int, edges: list[tuple[int, int]]):
    """The dependency DAG as a networkx DiGraph (for graph analytics:
    longest paths, width, visualization)."""
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(count))
    graph.add_edges_from(edges)
    return graph


def dependency_ratio(count: int, edges: list[tuple[int, int]]) -> float:
    """Fraction of transactions with at least one incoming dependency.

    This is the x-axis of the paper's Figs. 14–16 and Table 9.
    """
    if count == 0:
        return 0.0
    dependent = {j for _, j in edges}
    return len(dependent) / count


def indegrees(count: int, edges: list[tuple[int, int]]) -> list[int]:
    """Indegree per transaction index."""
    degrees = [0] * count
    for _, j in edges:
        degrees[j] += 1
    return degrees


def critical_path_length(count: int, edges: list[tuple[int, int]]) -> int:
    """Longest chain length (in transactions) through the DAG."""
    successors: list[list[int]] = [[] for _ in range(count)]
    for i, j in edges:
        successors[i].append(j)
    depth = [1] * count
    # Edges point forward in index order, so a reverse sweep is a valid
    # topological order.
    for i in range(count - 1, -1, -1):
        for j in successors[i]:
            depth[i] = max(depth[i], 1 + depth[j])
    return max(depth, default=0)
